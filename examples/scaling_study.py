#!/usr/bin/env python
"""The compositing bottleneck: why the paper exists.

The rendering phase is embarrassingly parallel — its per-rank work drops
like 1/P — but the compositing phase exchanges subimages, so past a
threshold it dominates the frame time (the paper's introduction).  This
example models a full frame (render + composite) across processor
counts for plain BS and for BSBRC and prints where each curve stops
scaling.

Usage:
    python examples/scaling_study.py [--full] [--dataset engine_low]
"""

import argparse
import sys

from repro.analysis.tables import format_generic
from repro.experiments.harness import run_method, workload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="engine_low")
    parser.add_argument("--full", action="store_true")
    args = parser.parse_args(argv)

    if args.full:
        image_size, volume_shape, ranks = 384, None, (2, 4, 8, 16, 32, 64)
        voxels = 256 * 256 * 110
    else:
        image_size, volume_shape, ranks = 96, (64, 64, 28), (2, 4, 8)
        voxels = 64 * 64 * 28

    work = workload(
        args.dataset, image_size, max_ranks=max(ranks), volume_shape=volume_shape
    )

    # Model the (perfectly parallel) render phase with the SP2's over
    # constant as a per-sample cost proxy: T_render(P) ~ voxels/P * t.
    render_unit = 2.0e-6  # seconds per voxel sample on the POWER2-class node
    rows = []
    for num_ranks in ranks:
        t_render = voxels / num_ranks * render_unit
        bs, _ = run_method(work, "bs", num_ranks)
        brc, _ = run_method(work, "bsbrc", num_ranks)
        frame_bs = t_render + bs.t_total
        frame_brc = t_render + brc.t_total
        rows.append(
            (
                num_ranks,
                f"{t_render * 1e3:9.1f}",
                f"{bs.t_total * 1e3:8.1f}",
                f"{frame_bs * 1e3:9.1f}",
                f"{brc.t_total * 1e3:8.1f}",
                f"{frame_brc * 1e3:9.1f}",
            )
        )

    print(f"Frame-time model for {args.dataset} ({image_size}x{image_size}):\n")
    print(
        format_generic(
            ["P", "render ms", "BS comp", "BS frame", "BSBRC comp", "BSBRC frame"],
            rows,
        )
    )

    base_bs = float(rows[0][3])
    base_brc = float(rows[0][5])
    last_bs = float(rows[-1][3])
    last_brc = float(rows[-1][5])
    print(
        f"\nSpeedup {ranks[0]}->{ranks[-1]} PEs: "
        f"BS {base_bs / last_bs:.2f}x vs BSBRC {base_brc / last_brc:.2f}x"
    )
    print(
        "\nThe render term shrinks with P but the BS compositing term *grows*"
        "\n(every stage composites A/2^k pixels regardless of content), so the"
        "\nBS frame time flattens early — the bottleneck the sparse methods fix."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
