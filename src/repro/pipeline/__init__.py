"""End-to-end sort-last-sparse pipeline."""

from .assemble import OwnedTile, assemble_tiles, tile_from_outcome
from .config import RunConfig
from .phases import (
    GATHER_STAGE,
    Scene,
    build_scene,
    composite_phase,
    gather_phase,
    pipeline_rank_program,
    render_phase,
)
from .session import RenderJob, RenderSession
from .system import (
    CompositingRun,
    SortLastSystem,
    SystemResult,
    assemble_final,
    run_compositing,
    validate_ownership,
)

__all__ = [
    "CompositingRun",
    "GATHER_STAGE",
    "OwnedTile",
    "RenderJob",
    "RenderSession",
    "RunConfig",
    "Scene",
    "SortLastSystem",
    "SystemResult",
    "assemble_final",
    "assemble_tiles",
    "build_scene",
    "composite_phase",
    "gather_phase",
    "pipeline_rank_program",
    "render_phase",
    "run_compositing",
    "tile_from_outcome",
    "validate_ownership",
]
