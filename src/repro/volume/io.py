"""Volume and image I/O helpers.

Volumes round-trip through compressed ``.npz``; final images are written
as binary PGM (grayscale, what the paper's 8-bit gray-level renderer
produced) so results can be inspected with any image viewer and diffed
byte-for-byte in tests.
"""

from __future__ import annotations

import os

import numpy as np

from ..errors import ConfigurationError
from .grid import VolumeGrid

__all__ = [
    "save_volume",
    "load_volume",
    "write_pgm",
    "read_pgm",
    "write_ppm",
    "read_ppm",
    "to_gray8",
]


def save_volume(grid: VolumeGrid, path: str | os.PathLike) -> None:
    """Write a volume to compressed ``.npz`` (fields: data, name)."""
    np.savez_compressed(path, data=grid.data, name=np.asarray(grid.name))


def load_volume(path: str | os.PathLike) -> VolumeGrid:
    """Inverse of :func:`save_volume`."""
    with np.load(path, allow_pickle=False) as archive:
        if "data" not in archive:
            raise ConfigurationError(f"{path!s} is not a saved volume (missing 'data')")
        name = str(archive["name"]) if "name" in archive else "volume"
        return VolumeGrid(data=archive["data"], name=name)


def to_gray8(plane: np.ndarray, *, gain: float = 1.0) -> np.ndarray:
    """Map a float intensity plane to uint8 grayscale with clipping."""
    return np.clip(np.asarray(plane, dtype=np.float64) * gain * 255.0, 0.0, 255.0).astype(
        np.uint8
    )


def write_pgm(path: str | os.PathLike, gray: np.ndarray) -> None:
    """Write a uint8 grayscale image as binary PGM (P5)."""
    gray = np.asarray(gray)
    if gray.ndim != 2 or gray.dtype != np.uint8:
        raise ConfigurationError(
            f"write_pgm expects a 2-D uint8 array, got {gray.dtype} shape {gray.shape}"
        )
    height, width = gray.shape
    with open(path, "wb") as fh:
        fh.write(f"P5\n{width} {height}\n255\n".encode("ascii"))
        fh.write(gray.tobytes())


#: Appended to size-mismatch errors: the one corruption mode that has
#: actually bitten this repo (git newline-normalizing a binary fixture).
_CORRUPTION_HINT = (
    "likely cause: the binary file was corrupted by a text checkout "
    "(newline normalization rewrites 0x0D/0x0A pixel bytes) — ensure "
    ".gitattributes marks *.pgm/*.ppm as binary and re-fetch or "
    "regenerate the file"
)


def _read_netpbm(path: str | os.PathLike, magic: bytes, channels: int) -> np.ndarray:
    with open(path, "rb") as fh:
        blob = fh.read()
    parts = blob.split(b"\n", 3)
    if len(parts) < 4 or parts[0] != magic:
        raise ConfigurationError(
            f"{path!s} is not a binary {magic.decode()} netpbm file"
        )
    try:
        width, height = (int(tok) for tok in parts[1].split())
        maxval = int(parts[2])
    except ValueError as exc:
        raise ConfigurationError(
            f"{path!s} has an unreadable netpbm header ({exc}); {_CORRUPTION_HINT}"
        ) from exc
    if maxval != 255:
        raise ConfigurationError(f"unsupported netpbm maxval {maxval}")
    expected = width * height * channels
    pixels = np.frombuffer(parts[3][:expected], dtype=np.uint8)
    if pixels.size != expected:
        raise ConfigurationError(
            f"{path!s} truncated: {pixels.size} of {expected} pixel bytes; "
            f"{_CORRUPTION_HINT}"
        )
    shape = (height, width) if channels == 1 else (height, width, channels)
    return pixels.reshape(shape).copy()


def read_pgm(path: str | os.PathLike) -> np.ndarray:
    """Read a binary PGM (P5) written by :func:`write_pgm`.

    Raises :class:`ConfigurationError` on malformed or truncated files,
    naming the likely cause (binary file mangled by a text checkout).
    """
    return _read_netpbm(path, b"P5", 1)


def write_ppm(path: str | os.PathLike, rgb: np.ndarray) -> None:
    """Write a uint8 RGB image as binary PPM (P6)."""
    rgb = np.asarray(rgb)
    if rgb.ndim != 3 or rgb.shape[2] != 3 or rgb.dtype != np.uint8:
        raise ConfigurationError(
            f"write_ppm expects an (h, w, 3) uint8 array, got {rgb.dtype} shape {rgb.shape}"
        )
    height, width = rgb.shape[:2]
    with open(path, "wb") as fh:
        fh.write(f"P6\n{width} {height}\n255\n".encode("ascii"))
        fh.write(rgb.tobytes())


def read_ppm(path: str | os.PathLike) -> np.ndarray:
    """Read a binary PPM (P6) written by :func:`write_ppm`."""
    return _read_netpbm(path, b"P6", 3)
