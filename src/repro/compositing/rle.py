"""Blank/non-blank run-length codec (BSLC and BSBRC wire compression).

Unlike Ahrens & Painter's value-based RLE (good for integer-valued
surface-rendering pixels), the paper encodes only the *background /
foreground* classification of each pixel (§3.3): floating-point volume
pixels almost never repeat exactly, so value RLE would degenerate while
mask RLE still compresses the long blank spans of sparse subimages.

Wire format
-----------
A sequence of ``uint16`` run lengths that **starts with a blank run**
(possibly of length zero) and then strictly alternates
blank/non-blank/blank/...  Runs longer than 65535 are split by inserting
a zero-length run of the opposite class, so any mask of any length has an
exact encoding.  Each code element costs 2 bytes on the wire
(``RLE_CODE_BYTES``), matching the paper's ``2 · R_code`` terms.
"""

from __future__ import annotations

import numpy as np

from ..errors import WireFormatError

__all__ = ["rle_encode_mask", "rle_decode_mask", "count_nonblank", "MAX_RUN"]

#: Largest run representable by one uint16 code element.
MAX_RUN = 0xFFFF


def rle_encode_mask(mask: np.ndarray) -> np.ndarray:
    """Encode a 1-D boolean mask into alternating uint16 run lengths.

    ``mask[i]`` is True for non-blank pixels.  Runs alternate starting
    with blank; over-long runs are split with zero-length opposite runs.
    The empty mask encodes to an empty code array.
    """
    mask = np.asarray(mask)
    if mask.ndim != 1:
        raise WireFormatError(f"mask must be 1-D, got shape {mask.shape}")
    n = mask.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.uint16)
    mask = mask.astype(bool, copy=False)
    # Boundaries between runs: positions where the value changes.
    change = np.flatnonzero(mask[1:] != mask[:-1]) + 1
    starts = np.concatenate(([0], change))
    ends = np.concatenate((change, [n]))
    lengths = ends - starts
    first_is_blank = not bool(mask[0])

    codes: list[int] = []
    if not first_is_blank:
        codes.append(0)  # leading zero-length blank run
    for run_len in lengths:
        run_len = int(run_len)
        while run_len > MAX_RUN:
            codes.append(MAX_RUN)
            codes.append(0)  # zero run of the opposite class
            run_len -= MAX_RUN
        codes.append(run_len)
    return np.asarray(codes, dtype=np.uint16)


def rle_decode_mask(codes: np.ndarray, n: int) -> np.ndarray:
    """Decode run lengths back to a boolean mask of length ``n``.

    Raises :class:`WireFormatError` when the codes do not sum to ``n``.
    """
    codes = np.asarray(codes, dtype=np.uint16)
    if codes.ndim != 1:
        raise WireFormatError(f"codes must be 1-D, got shape {codes.shape}")
    total = int(codes.sum(dtype=np.int64))
    if total != n:
        raise WireFormatError(f"run lengths sum to {total}, expected {n}")
    mask = np.zeros(n, dtype=bool)
    pos = 0
    blank = True
    for code in codes:
        run = int(code)
        if not blank and run:
            mask[pos : pos + run] = True
        pos += run
        blank = not blank
    return mask


def count_nonblank(codes: np.ndarray) -> int:
    """Number of non-blank pixels described by a code sequence.

    Non-blank runs occupy the odd positions of the alternating sequence.
    """
    codes = np.asarray(codes, dtype=np.uint16)
    if codes.ndim != 1:
        raise WireFormatError(f"codes must be 1-D, got shape {codes.shape}")
    return int(codes[1::2].sum(dtype=np.int64))
