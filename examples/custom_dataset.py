#!/usr/bin/env python
"""Bring your own data: composite a user-defined volume.

Shows the extension points a downstream user needs: build a
``VolumeGrid`` from any scalar field (here, a torus with a density
gradient), pick a ``TransferFunction`` window, and drive the pipeline
pieces directly — partition, per-rank render, compositing method of
your choice — without going through the dataset registry.

Usage:
    python examples/custom_dataset.py [--method bslc] [--ranks 8]
"""

import argparse
import sys

import numpy as np

from repro import (
    SP2,
    Camera,
    TransferFunction,
    VolumeGrid,
    depth_order,
    recursive_bisect,
    render_subvolume,
    run_compositing,
)
from repro.pipeline.system import assemble_final
from repro.render.reference import composite_sequential, luminance
from repro.volume.io import to_gray8, write_pgm


def make_torus(shape=(64, 64, 32), major=0.55, minor=0.22) -> VolumeGrid:
    """A torus in the xy plane whose density rises with angle."""
    nx, ny, nz = shape
    xs = (np.arange(nx) + 0.5) / nx * 2.0 - 1.0
    ys = (np.arange(ny) + 0.5) / ny * 2.0 - 1.0
    zs = (np.arange(nz) + 0.5) / nz * 2.0 - 1.0
    X = xs[:, None, None]
    Y = ys[None, :, None]
    Z = zs[None, None, :]
    ring = np.sqrt(X**2 + Y**2) - major
    dist = np.sqrt(ring**2 + Z**2)
    body = np.clip((minor - dist) / minor, 0.0, 1.0)
    swirl = 0.55 + 0.45 * np.arctan2(Y, X) / np.pi  # density gradient
    return VolumeGrid.from_field(body * swirl, name="torus")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--method", default="bsbrc")
    parser.add_argument("--ranks", type=int, default=8)
    parser.add_argument("--out", default="torus.pgm")
    args = parser.parse_args(argv)

    volume = make_torus()
    transfer = TransferFunction(lo=0.10, hi=0.60, max_alpha=0.5, name="torus")
    camera = Camera(
        width=160, height=160, volume_shape=volume.shape, rot_x=55.0, rot_y=15.0
    )
    print(volume.describe())

    # Phase 1: partition the volume over the simulated processors.
    plan = recursive_bisect(volume.shape, args.ranks)

    # Phase 2: each rank renders its subvolume (embarrassingly parallel).
    subimages = [
        render_subvolume(volume, transfer, camera, plan.extent(rank))
        for rank in range(args.ranks)
    ]

    # Phase 3: composite on the simulated SP2.
    run = run_compositing(subimages, args.method, plan, camera.view_dir, SP2)
    final = assemble_final(run.outcomes, camera.height, camera.width)

    reference = composite_sequential(subimages, depth_order(plan, camera.view_dir))
    print(f"max |parallel - sequential| = {final.max_abs_diff(reference):.2e}")

    stats = run.stats
    print(
        f"{args.method} on P={args.ranks}: "
        f"T_total = {stats.t_total * 1e3:.2f} ms, M_max = {stats.mmax_bytes} B"
    )

    write_pgm(args.out, to_gray8(luminance(final), gain=2.2))
    print(f"Image written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
