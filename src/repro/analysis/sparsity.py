"""Sparsity analytics: the image structure that drives method choice.

The paper's entire §3 argument turns on three properties of a rendered
subimage: how many pixels are non-blank, how *tight* the bounding
rectangle is around them (BSBR's regime), and how *coherent* the
blank/non-blank runs are (BSLC/BSBRC's regime).  This module measures
all three, per subimage and per compositing stage, so datasets and
viewpoints can be characterized quantitatively (e.g. "cube: 6% pixels
in a 74%-of-frame rect at density 0.09 — BSBR's worst case").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


from ..compositing.rle import rle_encode_mask
from ..render.image import SubImage
from ..types import RLE_CODE_BYTES, PIXEL_BYTES, RECT_INFO_BYTES, Rect
from .tables import format_generic

__all__ = [
    "SubimageSparsity",
    "measure_sparsity",
    "sparsity_table",
    "wire_cost_estimates",
]


@dataclass(frozen=True)
class SubimageSparsity:
    """Sparsity profile of one subimage."""

    num_pixels: int
    nonblank: int
    rect: Rect
    runs: int  # mask-RLE code elements over the full frame, row-major

    @property
    def nonblank_fraction(self) -> float:
        """Foreground coverage of the whole frame."""
        return self.nonblank / self.num_pixels if self.num_pixels else 0.0

    @property
    def rect_fraction(self) -> float:
        """Bounding-rect area as a fraction of the frame."""
        return self.rect.area / self.num_pixels if self.num_pixels else 0.0

    @property
    def rect_density(self) -> float:
        """Foreground density *inside* the bounding rect (BSBR's figure
        of merit: 1.0 = BSBR ships no waste)."""
        return self.nonblank / self.rect.area if self.rect.area else 0.0

    @property
    def mean_run_length(self) -> float:
        """Average run length (coherence; long runs = cheap RLE)."""
        return self.num_pixels / self.runs if self.runs else float(self.num_pixels)


def measure_sparsity(image: SubImage) -> SubimageSparsity:
    """Profile one subimage."""
    mask = image.nonblank_mask()
    codes = rle_encode_mask(mask.ravel())
    return SubimageSparsity(
        num_pixels=image.num_pixels,
        nonblank=int(mask.sum()),
        rect=image.bounding_rect(),
        runs=int(codes.size),
    )


def wire_cost_estimates(profile: SubimageSparsity) -> dict[str, int]:
    """One-shot wire cost of shipping this subimage under each format.

    Not a substitute for running the methods (which halve images per
    stage) — a per-image first-order comparison of the formats:
    ``bs`` = every pixel, ``bsbr`` = rect info + rect pixels, ``bslc`` =
    full-frame run codes + non-blank pixels, ``bsbrc`` ≈ rect info +
    codes-within-rect (bounded above by full-frame codes) + non-blank.
    """
    return {
        "bs": profile.num_pixels * PIXEL_BYTES,
        "bsbr": RECT_INFO_BYTES + profile.rect.area * PIXEL_BYTES,
        "bslc": profile.runs * RLE_CODE_BYTES + profile.nonblank * PIXEL_BYTES,
        "bsbrc": (
            RECT_INFO_BYTES
            + profile.runs * RLE_CODE_BYTES
            + profile.nonblank * PIXEL_BYTES
        ),
    }


def sparsity_table(
    labels: Sequence[str], images: Sequence[SubImage], *, title: str = ""
) -> str:
    """Render a sparsity-profile table for a set of (labelled) images."""
    if len(labels) != len(images):
        raise ValueError(f"{len(labels)} labels for {len(images)} images")
    rows = []
    for label, image in zip(labels, images):
        profile = measure_sparsity(image)
        costs = wire_cost_estimates(profile)
        best = min(costs, key=costs.get)  # type: ignore[arg-type]
        rows.append(
            (
                label,
                f"{profile.nonblank_fraction:.1%}",
                f"{profile.rect_fraction:.1%}",
                f"{profile.rect_density:.2f}",
                f"{profile.mean_run_length:.1f}",
                best,
            )
        )
    header = [
        "image",
        "nonblank",
        "rect area",
        "rect density",
        "mean run",
        "cheapest wire",
    ]
    table = format_generic(header, rows)
    return (title + "\n" + table) if title else table
