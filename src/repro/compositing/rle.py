"""Blank/non-blank run-length codec (BSLC and BSBRC wire compression).

Unlike Ahrens & Painter's value-based RLE (good for integer-valued
surface-rendering pixels), the paper encodes only the *background /
foreground* classification of each pixel (§3.3): floating-point volume
pixels almost never repeat exactly, so value RLE would degenerate while
mask RLE still compresses the long blank spans of sparse subimages.

Wire format
-----------
A sequence of ``uint16`` run lengths that **starts with a blank run**
(possibly of length zero) and then strictly alternates
blank/non-blank/blank/...  Runs longer than 65535 are split by inserting
a zero-length run of the opposite class, so any mask of any length has an
exact encoding.  Each code element costs 2 bytes on the wire
(``RLE_CODE_BYTES``), matching the paper's ``2 · R_code`` terms.

Both directions are fully vectorized: encode derives run lengths from
value-change positions and materializes over-long-run splits with
arithmetic on the run-length array; decode is a single ``np.repeat`` of
the alternating class pattern.  The original Python-loop implementations
are kept as ``_rle_encode_mask_loop`` / ``_rle_decode_mask_loop`` — the
byte-identity oracles for the fuzz tests and the "before" side of
``benchmarks/bench_hotpaths.py``.
"""

from __future__ import annotations

import numpy as np

from .. import perf
from ..errors import WireFormatError

__all__ = ["rle_encode_mask", "rle_decode_mask", "count_nonblank", "MAX_RUN"]

#: Largest run representable by one uint16 code element.
MAX_RUN = 0xFFFF


def _change_points(mask: np.ndarray) -> np.ndarray:
    """Ascending indices ``i > 0`` where ``mask[i] != mask[i - 1]``.

    Run boundaries are sparse in run-structured masks, so for large
    inputs the positions are extracted via ``np.packbits``: zero bytes
    (8 unchanged pixels) are skipped wholesale and only the few nonzero
    bytes are unpacked, which is several times faster than scanning the
    dense boolean array with ``np.flatnonzero``.
    """
    neq = mask[1:] != mask[:-1]
    if neq.size >= 4096:
        packed = np.packbits(neq)  # zero-padded tail adds no changes
        # np.nonzero only has a fast path for bool inputs, so give it
        # bool views instead of the raw uint8 arrays.
        nzb = np.flatnonzero(packed != 0)
        if nzb.size == 0:
            return nzb
        bits = np.flatnonzero(np.unpackbits(packed[nzb]).view(np.bool_))
        # In-place arithmetic: these are output-sized temporaries on the
        # hot path, so avoid re-allocating one per operator.
        change = nzb[bits >> 3]
        change *= 8
        bits &= 7
        change += bits
        change += 1
        return change
    return np.flatnonzero(neq) + 1


def rle_encode_mask(mask: np.ndarray) -> np.ndarray:
    """Encode a 1-D boolean mask into alternating uint16 run lengths.

    ``mask[i]`` is True for non-blank pixels.  Runs alternate starting
    with blank; over-long runs are split with zero-length opposite runs.
    The empty mask encodes to an empty code array.
    """
    mask = np.asarray(mask)
    if mask.ndim != 1:
        raise WireFormatError(f"mask must be 1-D, got shape {mask.shape}")
    n = mask.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.uint16)
    mask = mask.astype(bool, copy=False)
    # Boundaries between runs: positions where the value changes.
    change = _change_points(mask)
    # Run lengths, assembled with one allocation instead of the two
    # concatenations np.diff(prepend=..., append=...) would make.
    lengths = np.empty(change.size + 1, dtype=np.int64)
    if change.size:
        lengths[0] = change[0]
        np.subtract(change[1:], change[:-1], out=lengths[1:-1])
        lengths[-1] = n - change[-1]
    else:
        lengths[0] = n
    lead = int(mask[0])  # leading zero-length blank run needed?

    perf.incr("rle.encode_calls")

    if lengths.max(initial=0) <= MAX_RUN:
        # Fast path: no run needs splitting.
        codes = np.empty(lead + lengths.size, dtype=np.uint16)
        codes[:lead] = 0
        codes[lead:] = lengths
        perf.incr("rle.codes", codes.size)
        return codes

    # General path: a run of length L > MAX_RUN becomes
    # [MAX_RUN, 0] * nsplit + [L - nsplit * MAX_RUN]  with
    # nsplit = (L - 1) // MAX_RUN, exactly as the loop encoder emits.
    nsplit = (lengths - 1) // MAX_RUN
    counts = 2 * nsplit + 1  # code elements produced per run
    starts = lead + np.concatenate(([0], np.cumsum(counts[:-1])))
    total = lead + int(counts.sum())
    codes = np.zeros(total, dtype=np.uint16)  # zeros: lead + opposite-class splits
    # Positions of the full MAX_RUN pieces: starts[i] + 2*j, j < nsplit[i].
    split_runs = np.flatnonzero(nsplit)
    if split_runs.size:
        reps = nsplit[split_runs]
        base = np.repeat(starts[split_runs], reps)
        # Within-run piece index 0..nsplit-1, built without a Python loop.
        offsets = np.arange(reps.sum(), dtype=np.int64) - np.repeat(
            np.cumsum(reps) - reps, reps
        )
        codes[base + 2 * offsets] = MAX_RUN
    codes[starts + 2 * nsplit] = lengths - nsplit * MAX_RUN
    perf.incr("rle.codes", codes.size)
    return codes


def rle_decode_mask(codes: np.ndarray, n: int) -> np.ndarray:
    """Decode run lengths back to a boolean mask of length ``n``.

    Raises :class:`WireFormatError` when the codes do not sum to ``n``.
    """
    codes = np.asarray(codes, dtype=np.uint16)
    if codes.ndim != 1:
        raise WireFormatError(f"codes must be 1-D, got shape {codes.shape}")
    total = int(codes.sum(dtype=np.int64))
    if total != n:
        raise WireFormatError(f"run lengths sum to {total}, expected {n}")
    perf.incr("rle.decode_calls")
    # Even positions are blank runs, odd positions non-blank.
    classes = np.zeros(codes.size, dtype=bool)
    classes[1::2] = True
    return np.repeat(classes, codes)


def count_nonblank(codes: np.ndarray) -> int:
    """Number of non-blank pixels described by a code sequence.

    Non-blank runs occupy the odd positions of the alternating sequence.
    """
    codes = np.asarray(codes, dtype=np.uint16)
    if codes.ndim != 1:
        raise WireFormatError(f"codes must be 1-D, got shape {codes.shape}")
    return int(codes[1::2].sum(dtype=np.int64))


# --------------------------------------------------------------------------
# loop reference implementations (oracles for tests and benchmarks)
# --------------------------------------------------------------------------
def _rle_encode_mask_loop(mask: np.ndarray) -> np.ndarray:
    """Original list-append encoder; byte-identity oracle, do not optimize."""
    mask = np.asarray(mask)
    if mask.ndim != 1:
        raise WireFormatError(f"mask must be 1-D, got shape {mask.shape}")
    n = mask.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.uint16)
    mask = mask.astype(bool, copy=False)
    change = np.flatnonzero(mask[1:] != mask[:-1]) + 1
    starts = np.concatenate(([0], change))
    ends = np.concatenate((change, [n]))
    lengths = ends - starts
    first_is_blank = not bool(mask[0])

    codes: list[int] = []
    if not first_is_blank:
        codes.append(0)  # leading zero-length blank run
    for run_len in lengths:
        run_len = int(run_len)
        while run_len > MAX_RUN:
            codes.append(MAX_RUN)
            codes.append(0)  # zero run of the opposite class
            run_len -= MAX_RUN
        codes.append(run_len)
    return np.asarray(codes, dtype=np.uint16)


def _rle_decode_mask_loop(codes: np.ndarray, n: int) -> np.ndarray:
    """Original per-run decoder; oracle for the vectorized decode."""
    codes = np.asarray(codes, dtype=np.uint16)
    if codes.ndim != 1:
        raise WireFormatError(f"codes must be 1-D, got shape {codes.shape}")
    total = int(codes.sum(dtype=np.int64))
    if total != n:
        raise WireFormatError(f"run lengths sum to {total}, expected {n}")
    mask = np.zeros(n, dtype=bool)
    pos = 0
    blank = True
    for code in codes:
        run = int(code)
        if not blank and run:
            mask[pos : pos + run] = True
        pos += run
        blank = not blank
    return mask
