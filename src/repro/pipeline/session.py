"""Multi-render sessions: a warm backend accepting many jobs.

The one-shot entry (:class:`~repro.pipeline.system.SortLastSystem`)
builds everything per call.  A :class:`RenderSession` decouples the
expensive, reusable state from any single render: it owns **one**
backend instance and a base :class:`~repro.pipeline.config.RunConfig`,
and accepts a stream of :class:`RenderJob`\\ s — each a *delta* against
the base config (new camera angles, a different compositing method, a
different dataset, an injected fault plan) plus per-job run options.

What "warm" buys per substrate:

* **sim** — all ranks live in the session's process, so the scene memo
  (:data:`~repro.pipeline.phases._SCENE_MEMO`) and any on-disk render
  cache are hot across jobs; nothing is ever forked.  Live
  :class:`~repro.cluster.progress.ProgressFeed` streaming works here.
* **mp** — worker processes are forked per job (the protocol ties a
  queue fabric's lifetime to one run), but forking *from the session's
  warmed parent* means children inherit the populated scene memo, and
  the ``REPRO_CACHE_DIR`` render cache carries rendered subimages
  across jobs — the dominant per-job cost for repeated cameras.

Determinism contract: a session adds no hidden state that feeds the
render — back-to-back jobs on one session produce timelines and images
bit-identical to fresh one-shot runs of the same configs (tested in
``tests/test_session.py``).

Sessions are intentionally synchronous — one job at a time per session.
Concurrency across *sessions* (N users multiplexed over one bounded
worker pool, with per-session QoS) is the serving layer's job:
:mod:`repro.serving`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from ..cluster.backend import Backend, make_backend
from ..cluster.faults import FaultPlan
from ..cluster.progress import ProgressFeed
from ..errors import ConfigurationError
from .config import RunConfig
from .system import SortLastSystem, SystemResult

__all__ = ["RenderJob", "RenderSession"]


@dataclass(frozen=True)
class RenderJob:
    """One render request against a session's base configuration.

    ``deltas`` are :meth:`RunConfig.with_` keyword overrides (e.g.
    ``{"rot_y": 45.0}``, ``{"method": "tile-routed:rle"}``,
    ``{"dataset": "sphere"}``); everything else mirrors the run options
    of :meth:`~repro.pipeline.system.SortLastSystem.run`.  ``recovery``
    of ``None`` defers to the (possibly overridden) config's policy.
    """

    deltas: Mapping[str, Any] = field(default_factory=dict)
    gather_final: bool = True
    trace: bool = False
    fault_plan: Optional[FaultPlan] = None
    recovery: Optional[str] = None
    schedule_policy: Any = None
    #: Live partial-frame feed (sim substrate only; one feed per job).
    progress: Optional[ProgressFeed] = None
    #: Free-form tag carried through for the submitter's bookkeeping.
    label: Optional[str] = None
    #: Wall-clock budget in seconds from admission; the serving layer
    #: drops queued-past-deadline jobs before execution and aborts
    #: running ones at checkpoint/tile boundaries (``None`` = no limit).
    deadline_s: Optional[float] = None
    #: Caller-owned checkpoint store for whole-run resume (see
    #: :meth:`~repro.pipeline.system.SortLastSystem.run`); requires a
    #: resume-capable recovery policy.
    checkpoint_store: Any = None
    #: Resume point against ``checkpoint_store``: ``None`` (fresh),
    #: ``"common"`` (highest loadable common stage), or a stage int.
    resume: "None | int | str" = None

    def config_for(self, base: RunConfig) -> RunConfig:
        """The job's effective config: ``base`` with this job's deltas."""
        return base.with_(**dict(self.deltas)) if self.deltas else base


class RenderSession:
    """A warm backend plus a base config, accepting many render jobs.

    >>> session = RenderSession(RunConfig(num_ranks=4, image_size=128))
    >>> a = session.submit(rot_y=30.0)
    >>> b = session.submit(method="tile-routed:rle")   # doctest: +SKIP

    The same :class:`~repro.cluster.backend.Backend` instance executes
    every job; jobs run synchronously in submission order.  Use one
    session per logical client and :class:`repro.serving.RenderService`
    to multiplex sessions over a shared bounded worker pool.
    """

    def __init__(
        self,
        config: RunConfig,
        *,
        backend: "str | Backend | None" = None,
        name: Optional[str] = None,
    ):
        if backend is None:
            backend = config.backend
        self.backend: Backend = (
            make_backend(backend) if isinstance(backend, str) else backend
        )
        self.config = config
        self.name = name if name is not None else f"session-{id(self):x}"
        #: Jobs completed so far (successful submits).
        self.jobs_completed = 0
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def submit(self, job: Optional[RenderJob] = None, /, **deltas: Any) -> SystemResult:
        """Run one job on the warm backend and return its result.

        Pass a prepared :class:`RenderJob`, or just config deltas as
        keywords (``session.submit(rot_y=45.0)``) for a plain render.
        """
        if self._closed:
            raise ConfigurationError(f"render session {self.name!r} is closed")
        if job is None:
            job = RenderJob(deltas=deltas)
        elif deltas:
            raise ConfigurationError(
                "pass either a RenderJob or config deltas, not both"
            )
        cfg = job.config_for(self.config)
        result = SortLastSystem(cfg).run(
            gather_final=job.gather_final,
            backend=self.backend,
            trace=job.trace,
            fault_plan=job.fault_plan,
            recovery=job.recovery,
            schedule_policy=job.schedule_policy,
            progress=job.progress,
            checkpoint_store=job.checkpoint_store,
            resume=job.resume,
        )
        self.jobs_completed += 1
        return result

    def close(self) -> None:
        """Mark the session closed; further submits raise."""
        self._closed = True

    def __enter__(self) -> "RenderSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return (
            f"RenderSession({self.name!r}, backend={self.backend.name!r}, "
            f"jobs={self.jobs_completed}, {state})"
        )
