"""Per-stage breakdown of one compositing run (the §3 view of the data).

The paper's equations are all per-stage sums: BS moves ``A/2^k`` pixels
at stage ``k``, BSBR the stage's receiving-rectangle pixels, BSLC/BSBRC
the stage's run codes and non-blank pixels.  This experiment runs one
(dataset, method, P) configuration and tabulates exactly those per-stage
quantities — averaged and maxed over ranks — so the equations can be
read directly off the simulated execution.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.tables import format_generic
from ..cluster.model import SP2, MachineModel
from ..cluster.topology import log2_int
from .harness import run_method, workload

__all__ = ["StageBreakdown", "run_stage_breakdown", "format_stage_breakdown"]


@dataclass(frozen=True)
class StageBreakdown:
    """Aggregates of one compositing stage across ranks."""

    stage: int
    mean_bytes_recv: float
    max_bytes_recv: int
    mean_comp_ms: float
    mean_comm_ms: float
    mean_over_pixels: float
    mean_encode_pixels: float
    mean_a_rec: float
    mean_a_opaque: float
    empty_recv_rects: int


def run_stage_breakdown(
    *,
    dataset: str = "engine_high",
    method: str = "bsbrc",
    num_ranks: int = 16,
    image_size: int = 384,
    machine: MachineModel = SP2,
    volume_shape=None,
    max_ranks: int | None = None,
    method_options: dict | None = None,
) -> list[StageBreakdown]:
    """Run one configuration and reduce its stats per stage."""
    work = workload(
        dataset,
        image_size,
        max_ranks=max_ranks if max_ranks is not None else max(num_ranks, 8),
        volume_shape=volume_shape,
    )
    _, run = run_method(
        work, method, num_ranks, machine=machine, **(method_options or {})
    )
    # Report the stages the method actually ran: grouped schedules
    # (e.g. radix-k 4,2) finish in fewer rounds than log2 P.
    observed = {
        idx
        for rank_stats in run.stats.rank_stats
        for idx in rank_stats.stages
        if 0 <= idx < log2_int(num_ranks)
    }
    out: list[StageBreakdown] = []
    for stage in sorted(observed):
        buckets = [
            rank_stats.stages.get(stage) for rank_stats in run.stats.rank_stats
        ]
        buckets = [bucket for bucket in buckets if bucket is not None]
        count = max(1, len(buckets))
        out.append(
            StageBreakdown(
                stage=stage,
                mean_bytes_recv=sum(b.bytes_recv for b in buckets) / count,
                max_bytes_recv=max((b.bytes_recv for b in buckets), default=0),
                mean_comp_ms=sum(b.comp_time for b in buckets) / count * 1e3,
                mean_comm_ms=sum(b.comm_time for b in buckets) / count * 1e3,
                mean_over_pixels=sum(
                    b.counters.get("over", 0) for b in buckets
                ) / count,
                mean_encode_pixels=sum(
                    b.counters.get("encode", 0) for b in buckets
                ) / count,
                mean_a_rec=sum(b.counters.get("a_rec", 0) for b in buckets) / count,
                mean_a_opaque=sum(
                    b.counters.get("a_opaque", 0) for b in buckets
                ) / count,
                empty_recv_rects=sum(
                    b.counters.get("empty_recv_rect", 0) for b in buckets
                ),
            )
        )
    return out


def format_stage_breakdown(
    breakdown: list[StageBreakdown], *, title: str = ""
) -> str:
    rows = [
        (
            b.stage,
            f"{b.mean_bytes_recv:.0f}",
            b.max_bytes_recv,
            f"{b.mean_comp_ms:.3f}",
            f"{b.mean_comm_ms:.3f}",
            f"{b.mean_over_pixels:.0f}",
            f"{b.mean_encode_pixels:.0f}",
            f"{b.mean_a_rec:.0f}",
            f"{b.mean_a_opaque:.0f}",
            b.empty_recv_rects,
        )
        for b in breakdown
    ]
    table = format_generic(
        [
            "stage",
            "recv B (mean)",
            "recv B (max)",
            "comp ms",
            "comm ms",
            "over px",
            "encode px",
            "a_rec",
            "a_opaque",
            "empty rects",
        ],
        rows,
    )
    return (title + "\n" + table) if title else table
