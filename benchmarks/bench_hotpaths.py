#!/usr/bin/env python
"""Hot-path micro-benchmarks: before/after speedups, machine-readable.

Each hot path times the kept *reference* implementation (the pre-overhaul
per-step marcher / loop codecs / copying unpack) against the production
one **in the same process on the same inputs**, asserting the outputs are
bit-identical first.  Results land in ``BENCH_hotpaths.json`` at the repo
root — the perf trajectory's seed — as ``reference_s`` / ``optimized_s``
/ ``speedup`` per hot path, per mode (``full`` = paper scale, ``smoke``
= seconds-fast CI scale).

Usage::

    python benchmarks/bench_hotpaths.py            # full scale, report only
    python benchmarks/bench_hotpaths.py --smoke    # small/fast variant
    python benchmarks/bench_hotpaths.py --update   # write results to JSON
    python benchmarks/bench_hotpaths.py --check    # exit 1 on regression

``--check`` compares the *speedup ratio* of each hot path against the
recorded baseline for the same mode and fails when a path lost more than
2x — speedups are machine-neutral, so the check is meaningful on any
host.  In full mode it additionally enforces the floor speedups the
overhaul promises (3x raycast, 10x RLE).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

BASELINE_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_hotpaths.json"
)

#: Full-mode floor speedups (the PR's acceptance criteria).
FULL_MODE_FLOORS = {
    "raycast_engine_high": 3.0,
    "rle_encode_mask": 10.0,
    "rle_decode_mask": 10.0,
}
#: A hot path "regresses" when its speedup halves versus the baseline.
REGRESSION_FACTOR = 2.0


def _time(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


# --------------------------------------------------------------------------
# hot paths
# --------------------------------------------------------------------------
def bench_raycast(smoke: bool) -> dict:
    from repro.render.camera import Camera
    from repro.render.raycast import render_full
    from repro.volume.datasets import make_dataset

    if smoke:
        size, shape, repeats = 96, (64, 64, 28), 2
    else:
        size, shape, repeats = 384, None, 3
    volume, transfer = make_dataset("engine_high", shape)
    camera = Camera(
        width=size, height=size, volume_shape=volume.shape, rot_x=20.0, rot_y=30.0
    )
    reference = render_full(volume, transfer, camera, march="reference")
    optimized = render_full(volume, transfer, camera)
    if not (
        np.array_equal(reference.intensity, optimized.intensity)
        and np.array_equal(reference.opacity, optimized.opacity)
    ):
        raise AssertionError("chunked marcher is not bit-identical to the reference")
    ref_s = _time(lambda: render_full(volume, transfer, camera, march="reference"), repeats)
    opt_s = _time(lambda: render_full(volume, transfer, camera), repeats)
    return {
        "detail": f"engine_high render_full {size}x{size}, volume {volume.shape}",
        "reference_s": ref_s,
        "optimized_s": opt_s,
        "speedup": ref_s / opt_s,
    }


def _bench_mask(side: int) -> np.ndarray:
    """Deterministic subimage-like mask: alternating geometric runs.

    Mean run lengths (blank 20 px, foreground 7 px) model the
    fragmented scanlines of a high-threshold sparse dataset, where both
    codecs see many short runs per row.
    """
    n = side * side
    rng = np.random.default_rng(7)
    blank = rng.geometric(1.0 / 20.0, size=n // 10 + 16)
    fg = rng.geometric(1.0 / 7.0, size=blank.size)
    lengths = np.stack([blank, fg], axis=1).ravel()
    lengths = lengths[np.cumsum(lengths) < n]
    mask = np.zeros(n, dtype=bool)
    pos = np.concatenate(([0], np.cumsum(lengths)))
    for start, end in zip(pos[1::2], pos[2::2]):
        mask[start:end] = True
    mask[n - 3 :] = True  # exercise a trailing foreground run
    return mask


def bench_rle(smoke: bool) -> tuple[dict, dict]:
    from repro.compositing.rle import (
        _rle_decode_mask_loop,
        _rle_encode_mask_loop,
        rle_decode_mask,
        rle_encode_mask,
    )

    side = 128 if smoke else 768
    repeats = 7 if smoke else 25
    mask = _bench_mask(side)
    codes = rle_encode_mask(mask)
    if not np.array_equal(codes, _rle_encode_mask_loop(mask)):
        raise AssertionError("vectorized RLE encode is not byte-identical")
    if not np.array_equal(rle_decode_mask(codes, mask.size), _rle_decode_mask_loop(codes, mask.size)):
        raise AssertionError("vectorized RLE decode mismatch")

    enc = {
        "detail": f"{side}x{side} mask, {codes.size} codes",
        "reference_s": _time(lambda: _rle_encode_mask_loop(mask), repeats),
        "optimized_s": _time(lambda: rle_encode_mask(mask), repeats),
    }
    enc["speedup"] = enc["reference_s"] / enc["optimized_s"]
    dec = {
        "detail": f"{side}x{side} mask, {codes.size} codes",
        "reference_s": _time(lambda: _rle_decode_mask_loop(codes, mask.size), repeats),
        "optimized_s": _time(lambda: rle_decode_mask(codes, mask.size), repeats),
    }
    dec["speedup"] = dec["reference_s"] / dec["optimized_s"]
    return enc, dec


def bench_wire(smoke: bool) -> dict:
    from repro.compositing.wire import pack_bsbrc, unpack_bsbrc
    from repro.types import Rect

    side = 128 if smoke else 768
    repeats = 5 if smoke else 3
    mask = _bench_mask(side).reshape(side, side)
    rng = np.random.default_rng(11)
    opacity = np.where(mask, rng.uniform(0.1, 0.9, (side, side)), 0.0)
    intensity = np.where(mask, rng.uniform(0.1, 1.0, (side, side)), 0.0)
    rect = Rect(0, 0, side, side)
    msg = pack_bsbrc(intensity, opacity, rect).buffer

    def legacy_unpack() -> None:
        # Pre-overhaul pixel block handling: defensive per-column copies.
        _, positions, flat_i, flat_a = unpack_bsbrc(msg)
        flat_i.copy(), flat_a.copy()

    ref_s = _time(legacy_unpack, repeats)
    opt_s = _time(lambda: unpack_bsbrc(msg), repeats)
    return {
        "detail": f"BSBRC unpack, {side}x{side} rect, {len(msg)} wire bytes",
        "reference_s": ref_s,
        "optimized_s": opt_s,
        "speedup": ref_s / opt_s,
    }


def bench_render_cache(smoke: bool) -> dict:
    from repro.experiments.harness import RenderedWorkload

    size, shape, ranks = (48, (32, 32, 16), 8) if smoke else (192, (96, 96, 42), 16)
    with tempfile.TemporaryDirectory() as cache_dir:
        t0 = time.perf_counter()
        RenderedWorkload("engine_high", size, max_ranks=ranks, volume_shape=shape, cache_dir=cache_dir)
        cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        RenderedWorkload("engine_high", size, max_ranks=ranks, volume_shape=shape, cache_dir=cache_dir)
        warm_s = time.perf_counter() - t0
    return {
        "detail": f"engine_high workload {size}px P={ranks}, cold render vs disk-cache load",
        "reference_s": cold_s,
        "optimized_s": warm_s,
        "speedup": cold_s / warm_s,
    }


# --------------------------------------------------------------------------
# driver
# --------------------------------------------------------------------------
def run(smoke: bool) -> dict:
    results: dict[str, dict] = {}
    results["raycast_engine_high"] = bench_raycast(smoke)
    results["rle_encode_mask"], results["rle_decode_mask"] = bench_rle(smoke)
    results["wire_unpack_bsbrc"] = bench_wire(smoke)
    results["render_workload_cache"] = bench_render_cache(smoke)
    return results


def check(results: dict, baseline_modes: dict, mode: str) -> list[str]:
    problems: list[str] = []
    baseline = baseline_modes.get(mode, {}).get("hot_paths", {})
    for name, row in results.items():
        base = baseline.get(name)
        if base and row["speedup"] < base["speedup"] / REGRESSION_FACTOR:
            problems.append(
                f"{name}: speedup {row['speedup']:.2f}x is >{REGRESSION_FACTOR:g}x "
                f"below the recorded baseline {base['speedup']:.2f}x"
            )
    if mode == "full":
        for name, floor in FULL_MODE_FLOORS.items():
            if name in results and results[name]["speedup"] < floor:
                problems.append(
                    f"{name}: speedup {results[name]['speedup']:.2f}x is below "
                    f"the promised floor {floor:g}x"
                )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small, seconds-fast variant")
    parser.add_argument("--check", action="store_true", help="exit 1 on regression vs baseline")
    parser.add_argument("--update", action="store_true", help="record results in the baseline JSON")
    parser.add_argument("--out", default=BASELINE_PATH, help="baseline JSON path")
    args = parser.parse_args(argv)
    mode = "smoke" if args.smoke else "full"

    results = run(args.smoke)

    print(f"hot-path benchmarks ({mode} mode):")
    for name, row in results.items():
        print(
            f"  {name:24s} ref {row['reference_s'] * 1e3:10.2f} ms   "
            f"opt {row['optimized_s'] * 1e3:10.2f} ms   "
            f"speedup {row['speedup']:8.2f}x   [{row['detail']}]"
        )

    modes: dict = {}
    if os.path.exists(args.out):
        with open(args.out, "r", encoding="utf-8") as fh:
            modes = json.load(fh).get("modes", {})

    problems = check(results, modes, mode)
    for problem in problems:
        print(f"REGRESSION: {problem}", file=sys.stderr)

    if args.update:
        modes[mode] = {"hot_paths": results}
        payload = {
            "schema": 1,
            "note": (
                "before/after hot-path timings from benchmarks/bench_hotpaths.py; "
                "'reference' is the kept pre-overhaul implementation, measured "
                "in the same process as 'optimized' on identical inputs"
            ),
            "modes": modes,
        }
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"[baseline written to {args.out}]")

    if problems and args.check:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
