"""Recursive-bisection volume partitioning (the sort-last first phase).

The volume is split in half ``log2 P`` times; rank bit ``log2(P)-1-j``
selects the half taken at split level ``j`` (level 0 = root split).  This
bit order is chosen so that binary-swap partners at compositing stage
``k`` — ranks differing in bit ``k`` — are exactly the two subtrees of a
level-``log2(P)-1-k`` split: a single axis-aligned plane separates their
subvolumes, which is what makes the pairwise *over* order well defined
(Ma et al. 1994).

:class:`PartitionPlan` records, per rank and per compositing stage, the
separating plane's axis and which side the rank is on, and answers the
question every compositing method asks each stage: *is my data in front
of my partner's for this view direction?*
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.topology import is_power_of_two, log2_int
from ..errors import PartitionError
from ..types import Extent3

__all__ = ["PartitionPlan", "recursive_bisect", "depth_order", "render_load_weights"]

_AXIS_NAMES = ("x", "y", "z")


@dataclass(frozen=True)
class PartitionPlan:
    """Result of recursively bisecting a volume over ``P`` ranks.

    Attributes
    ----------
    shape:
        The partitioned volume's voxel shape.
    extents:
        Per-rank subvolume extents (index ``r`` for rank ``r``).
    stage_axes:
        ``stage_axes[r][k]`` is the volume axis (0/1/2) of the plane
        separating rank ``r``'s group from its stage-``k`` partner's
        group.  Partners always agree on this value by construction.
    """

    shape: tuple[int, int, int]
    extents: tuple[Extent3, ...]
    stage_axes: tuple[tuple[int, ...], ...]

    @property
    def num_ranks(self) -> int:
        return len(self.extents)

    @property
    def num_stages(self) -> int:
        return log2_int(self.num_ranks)

    def extent(self, rank: int) -> Extent3:
        return self.extents[rank]

    def separating_axis(self, rank: int, stage: int) -> int:
        """Volume axis of the plane separating the stage-``k`` pair groups."""
        return self.stage_axes[rank][stage]

    def rank_is_low(self, rank: int, stage: int) -> bool:
        """True when ``rank``'s group is on the low-coordinate side."""
        return (rank >> stage) & 1 == 0

    def local_in_front(self, rank: int, stage: int, view_dir: np.ndarray) -> bool:
        """Whether ``rank``'s group occludes its partner's for ``view_dir``.

        ``view_dir`` points *away from the eye* into the scene.  The
        low-coordinate side is in front iff the ray travels toward
        +axis.  A perpendicular view (``view_dir[axis] == 0``) means the
        groups project side by side and cannot overlap; the low side is
        returned as "front" purely as a deterministic tie-break.
        """
        axis = self.separating_axis(rank, stage)
        low_in_front = float(view_dir[axis]) >= 0.0
        return self.rank_is_low(rank, stage) == low_in_front

    def describe(self) -> str:
        lines = [f"PartitionPlan P={self.num_ranks} over {self.shape}:"]
        for rank, ext in enumerate(self.extents):
            axes = "".join(_AXIS_NAMES[a] for a in self.stage_axes[rank])
            lines.append(f"  rank {rank:3d}: extent {ext.shape} at {ext.lo().astype(int)} stage-axes {axes}")
        return "\n".join(lines)


def recursive_bisect(
    shape: tuple[int, int, int],
    num_ranks: int,
    *,
    axis_policy: str = "longest",
    weights: np.ndarray | None = None,
) -> PartitionPlan:
    """Partition ``shape`` into ``num_ranks`` blocks by recursive bisection.

    ``axis_policy`` selects the split axis at each node: ``"longest"``
    (default, balances block aspect ratios) or ``"cycle"`` (x, y, z in
    turn — the classic k-d order).

    ``weights`` (optional, same shape as the volume) makes each split
    fall at the *weighted median* instead of the midpoint — the
    render-phase load-balancing scheme the paper lists as future work:
    pass e.g. the visible-voxel indicator and every rank receives about
    the same amount of renderable material.  Splits remain axis-aligned
    planes, so all compositing front/back machinery is unaffected.
    """
    if not is_power_of_two(num_ranks):
        raise PartitionError(
            f"binary-swap partitioning requires a power-of-two rank count, got {num_ranks}"
        )
    if len(shape) != 3 or any(s < 1 for s in shape):
        raise PartitionError(f"invalid volume shape {shape}")
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != tuple(shape):
            raise PartitionError(
                f"weights shape {weights.shape} does not match volume shape {shape}"
            )
        if (weights < 0).any():
            raise PartitionError("weights must be non-negative")
    levels = log2_int(num_ranks)

    extents: list[Extent3 | None] = [None] * num_ranks
    axes_per_rank: list[list[int]] = [[0] * levels for _ in range(num_ranks)]

    def _pick_axis(extent: Extent3, level: int) -> int:
        if axis_policy == "cycle":
            return level % 3
        if axis_policy == "longest":
            sx, sy, sz = extent.shape
            sizes = (sx, sy, sz)
            return int(np.argmax(sizes))
        raise PartitionError(f"unknown axis_policy {axis_policy!r}")

    def _split(extent: Extent3, axis: int) -> tuple[Extent3, Extent3]:
        if weights is None:
            return extent.split(axis)
        return _weighted_split(extent, axis, weights)

    def _descend(extent: Extent3, level: int, rank_lo: int, rank_hi: int) -> None:
        if level == levels:
            extents[rank_lo] = extent
            return
        axis = _pick_axis(extent, level)
        if extent.shape[axis] < 2:
            raise PartitionError(
                f"volume {shape} too small to bisect {num_ranks} ways "
                f"(extent {extent.shape} cannot split along axis {axis})"
            )
        low, high = _split(extent, axis)
        mid = (rank_lo + rank_hi) // 2
        # The stage corresponding to split level `level` is levels-1-level:
        # the root split is undone at the *last* compositing stage.
        stage = levels - 1 - level
        for r in range(rank_lo, rank_hi):
            axes_per_rank[r][stage] = axis
        _descend(low, level + 1, rank_lo, mid)
        _descend(high, level + 1, mid, rank_hi)

    _descend(Extent3.full(tuple(shape)), 0, 0, num_ranks)
    assert all(e is not None for e in extents)
    return PartitionPlan(
        shape=tuple(shape),
        extents=tuple(extents),  # type: ignore[arg-type]
        stage_axes=tuple(tuple(a) for a in axes_per_rank),
    )


def _weighted_split(extent: Extent3, axis: int, weights: np.ndarray) -> tuple[Extent3, Extent3]:
    """Split ``extent`` along ``axis`` at the weighted median plane.

    The plane index is chosen so the low half holds as close to half of
    the extent's total weight as possible, clamped so both halves keep
    at least one slab.  Zero-weight extents fall back to the midpoint.
    """
    sx, sy, sz = extent.slices()
    block = weights[sx, sy, sz]
    other_axes = tuple(a for a in range(3) if a != axis)
    per_slab = block.sum(axis=other_axes)
    total = float(per_slab.sum())
    lo = (extent.x0, extent.y0, extent.z0)[axis]
    hi = (extent.x1, extent.y1, extent.z1)[axis]
    if total <= 0.0:
        return extent.split(axis)
    cumulative = np.cumsum(per_slab)
    # Candidate split after slab j puts cumulative[j] weight on the low
    # side; pick the j closest to half, keeping both halves non-empty.
    candidates = np.arange(1, hi - lo)  # split offsets, 1..len-1
    balance = np.abs(cumulative[candidates - 1] - total / 2.0)
    offset = int(candidates[int(np.argmin(balance))])
    mid = lo + offset
    coords_lo = [extent.x0, extent.y0, extent.z0]
    coords_hi = [extent.x1, extent.y1, extent.z1]
    a_hi = list(coords_hi)
    a_hi[axis] = mid
    b_lo = list(coords_lo)
    b_lo[axis] = mid
    low = Extent3(coords_lo[0], coords_lo[1], coords_lo[2], a_hi[0], a_hi[1], a_hi[2])
    high = Extent3(b_lo[0], b_lo[1], b_lo[2], coords_hi[0], coords_hi[1], coords_hi[2])
    return low, high


def render_load_weights(volume_data: np.ndarray, transfer) -> np.ndarray:
    """Visible-voxel indicator used as render-load weights.

    A voxel contributes render work roughly when the transfer function
    gives it non-zero opacity; a small epsilon keeps fully-empty regions
    splittable at sensible places.
    """
    visible = (transfer.opacity(np.asarray(volume_data)) > 0.0).astype(np.float64)
    return visible + 1e-3


def depth_order(plan: PartitionPlan, view_dir: np.ndarray) -> list[int]:
    """Ranks sorted front-to-back along ``view_dir`` (eye-to-scene).

    The order is derived from the bisection tree itself: at every split
    level, the subtree the separating plane puts in front comes first.
    This is exactly the order the binary-swap pairwise *over* decisions
    induce, so sequential compositing in this order is bit-consistent
    with every swap-structured method even for synthetic images whose
    footprints overlap everywhere.  (Sorting block centers by projection
    gives another valid visibility order for real geometry, but can
    disagree with the tree on such synthetic inputs.)
    """
    view_dir = np.asarray(view_dir, dtype=np.float64)
    stages = plan.num_stages

    def key(rank: int) -> tuple[int, ...]:
        # Root level first (stage = stages-1), down to the leaf split.
        return tuple(
            0 if plan.local_in_front(rank, stages - 1 - level, view_dir) else 1
            for level in range(stages)
        )

    return sorted(range(plan.num_ranks), key=key)
