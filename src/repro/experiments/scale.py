"""At-scale crossover study: the paper's method ranking beyond P=64.

The paper's crossover analysis (BS vs BSBR vs BSLC vs BSBRC as sparsity
varies) stopped at the SP2's 64 processors.  The event-driven simulator
core removes that ceiling, but ray-casting 1024 subvolumes is wall-clock
prohibitive — and unnecessary: the methods differentiate on the *shape*
of the pixel workload (how sparse each rank's subimage is), not on the
renderer that produced it.  This module therefore drives the real
compositing stack with **synthetic sparse subimages**: each rank owns a
deterministic rectangle covering a chosen fill fraction of the screen,
so sparsity is a controlled variable and the same workload is
reproducible bit-for-bit on any machine.

:func:`run_scale_crossover` replays the study at P∈{64, 256, 1024} x
fill∈{5%, 20%, 60%} and reports the modelled method ranking per cell;
``python -m repro.experiments scale`` archives it under ``results/``.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from ..analysis.metrics import MethodMeasurement, measure
from ..cluster.model import SP2, MachineModel
from ..pipeline.system import run_compositing
from ..render.image import SubImage
from ..volume.partition import recursive_bisect

__all__ = [
    "synthetic_subimages",
    "run_scale_crossover",
    "format_scale",
    "DEFAULT_RANKS",
    "DEFAULT_FILLS",
    "DEFAULT_METHODS",
]

#: The paper's P=64 point plus the two at-scale extensions.
DEFAULT_RANKS = (64, 256, 1024)

#: Fill fractions spanning sparse -> dense (the crossover axis).
DEFAULT_FILLS = (0.05, 0.2, 0.6)

#: The four paper methods, in the paper's order.
DEFAULT_METHODS = ("bs", "bsbr", "bslc", "bsbrc")

#: Fixed oblique viewpoint (only the depth order matters here).
VIEW_DIR = np.array([0.40824829, 0.40824829, 0.81649658])

#: Volume shape handed to the bisection planner: 2^18 cells, so any
#: power-of-two P up to 262144 gets a valid plan.
_PLAN_SHAPE = (64, 64, 64)


def synthetic_subimages(
    num_ranks: int, image_size: int, fill: float, *, seed: int = 0
) -> list[SubImage]:
    """Deterministic sparse subimages: one filled rectangle per rank.

    Each rank's rectangle covers ``fill`` of the screen area, scattered
    by a fixed integer hash so footprints overlap the way projected
    subvolumes do.  Pure arithmetic — no RNG state, no renderer — so the
    workload is bit-identical across runs, machines and processes.
    """
    if not (0.0 < fill <= 1.0):
        raise ValueError(f"fill must be in (0, 1], got {fill}")
    side = max(1, int(round(image_size * math.sqrt(fill))))
    side = min(side, image_size)
    span = max(1, image_size - side + 1)
    images: list[SubImage] = []
    for rank in range(num_ranks):
        img = SubImage.blank(image_size, image_size)
        h = (rank * 2654435761 + seed * 40503 + 12345) & 0xFFFFFFFF
        y0 = (h >> 16) % span
        x0 = h % span
        intensity = 0.2 + 0.6 * (((h >> 8) & 0xFF) / 255.0)
        opacity = 0.25 + 0.5 * ((h & 0xFF) / 255.0)
        img.intensity[y0 : y0 + side, x0 : x0 + side] = intensity
        img.opacity[y0 : y0 + side, x0 : x0 + side] = opacity
        images.append(img)
    return images


def run_scale_crossover(
    rank_counts: Sequence[int] = DEFAULT_RANKS,
    fills: Sequence[float] = DEFAULT_FILLS,
    methods: Sequence[str] = DEFAULT_METHODS,
    *,
    image_size: int = 96,
    machine: MachineModel = SP2,
    network=None,
    engine: str = "event",
    verbose: bool = False,
) -> list[MethodMeasurement]:
    """The (P x fill x method) crossover grid on the modelled machine.

    Returns one :class:`MethodMeasurement` per cell; the ``dataset``
    field encodes the fill fraction (``"synthetic-fill0.05"``) so the
    standard row persistence applies unchanged.
    """
    rows: list[MethodMeasurement] = []
    for num_ranks in rank_counts:
        plan = recursive_bisect(_PLAN_SHAPE, num_ranks)
        for fill in fills:
            images = synthetic_subimages(num_ranks, image_size, fill)
            dataset = f"synthetic-fill{fill:g}"
            for method in methods:
                run = run_compositing(
                    images, method, plan, VIEW_DIR, machine,
                    network=network, engine=engine,
                )
                row = measure(
                    run.stats,
                    method=method,
                    dataset=dataset,
                    image_size=image_size,
                )
                rows.append(row)
                if verbose:
                    print(
                        f"  P={num_ranks:<5d} fill={fill:<5g} {method:6s} "
                        f"T_total={row.t_total * 1e3:9.3f} ms  "
                        f"M_max={row.mmax_bytes}"
                    )
            del images
    return rows


def format_scale(rows: Sequence[MethodMeasurement]) -> str:
    """Human-readable crossover table: per (P, fill) method ranking."""
    cells: dict[tuple[int, str], list[MethodMeasurement]] = {}
    for row in rows:
        cells.setdefault((row.num_ranks, row.dataset), []).append(row)
    lines = [
        "At-scale crossover study (synthetic sparse workloads, modelled time)",
        "",
        f"{'P':>6} {'fill':>8} | "
        + " | ".join(f"{'rank ' + str(i + 1):>14}" for i in range(4)),
        "-" * 78,
    ]
    for (num_ranks, dataset), cell in sorted(cells.items()):
        fill = dataset.replace("synthetic-fill", "")
        ranked = sorted(cell, key=lambda r: (r.t_total, r.method))
        entries = " | ".join(
            f"{r.method:>6} {r.t_total * 1e3:7.2f}" for r in ranked
        )
        lines.append(f"{num_ranks:>6} {fill:>8} | {entries}")
    lines += [
        "",
        "Each cell ranks the paper's four methods by modelled",
        "T_comp + T_comm (milliseconds shown after each method name).",
    ]
    return "\n".join(lines)
