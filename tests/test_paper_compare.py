"""Tests for the transcribed paper data and the fidelity comparison."""

import pytest

from repro.analysis.metrics import MethodMeasurement
from repro.experiments.compare import compare_to_paper, format_fidelity
from repro.experiments.paper_data import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    paper_cell,
)

RANKS = (2, 4, 8, 16, 32, 64)
DATASETS = ("engine_low", "engine_high", "head", "cube")


class TestPaperDataIntegrity:
    def test_table1_complete(self):
        assert len(PAPER_TABLE1) == 4 * 6 * 4
        for dataset in DATASETS:
            for p in RANKS:
                for method in ("bs", "bsbr", "bslc", "bsbrc"):
                    assert (dataset, p, method) in PAPER_TABLE1

    def test_table2_complete(self):
        assert len(PAPER_TABLE2) == 4 * 6 * 3
        for key in PAPER_TABLE2:
            assert key[2] in ("bsbr", "bslc", "bsbrc")

    def test_columns_additive_within_rounding(self):
        """The paper's T_total column equals T_comp + T_comm (ink noise
        aside) — a transcription self-check."""
        for cell in list(PAPER_TABLE1.values()) + list(PAPER_TABLE2.values()):
            assert cell.t_total == pytest.approx(
                cell.t_comp + cell.t_comm, abs=0.5
            ), cell

    def test_values_positive(self):
        for cell in list(PAPER_TABLE1.values()) + list(PAPER_TABLE2.values()):
            assert cell.t_comp > 0 and cell.t_comm > 0

    def test_headline_claims_hold_in_paper_data(self):
        """Sanity: the transcription reproduces the paper's own prose."""
        for dataset in DATASETS:
            for p in RANKS:
                cells = {
                    m: PAPER_TABLE1[(dataset, p, m)].t_total
                    for m in ("bs", "bsbr", "bslc", "bsbrc")
                }
                assert cells["bs"] == max(cells.values())  # BS worst
        # BSBRC best total at P=64 in Table 1, all datasets.
        for dataset in DATASETS:
            cells = {
                m: PAPER_TABLE1[(dataset, 64, m)].t_total
                for m in ("bsbr", "bslc", "bsbrc")
            }
            assert cells["bsbrc"] == min(cells.values())

    def test_lookup_helper(self):
        cell = paper_cell("cube", 64, "bsbrc")
        assert cell is not None and cell.t_total == 66.03
        assert paper_cell("cube", 64, "bs", image_size=768) is None
        cell2 = paper_cell("head", 2, "bslc", image_size=768)
        assert cell2 is not None and cell2.t_total == 386.68

    def test_bslc_comm_smallest_in_paper_table1(self):
        """'the BSLC method has the smallest communication time' — true
        in the published data for every P >= 4."""
        for dataset in DATASETS:
            for p in (4, 8, 16, 32, 64):
                comms = {
                    m: PAPER_TABLE1[(dataset, p, m)].t_comm
                    for m in ("bs", "bsbr", "bslc", "bsbrc")
                }
                assert comms["bslc"] == min(comms.values()), (dataset, p)


def rows_from_paper(table, image_size):
    """Turn the paper's own numbers into MethodMeasurement rows."""
    rows = []
    for (dataset, p, method), cell in table.items():
        rows.append(
            MethodMeasurement(
                method=method, dataset=dataset, image_size=image_size,
                num_ranks=p, t_comp=cell.t_comp / 1e3, t_comm=cell.t_comm / 1e3,
                mmax_bytes=0, makespan=0.0, bytes_total=0,
                pixels_composited=0, pixels_encoded=0,
            )
        )
    return rows


class TestCompare:
    def test_paper_vs_itself_is_perfect(self):
        rows = rows_from_paper(PAPER_TABLE1, 384)
        report = compare_to_paper(rows)
        assert report.winner_agreement == 1.0
        assert report.pairwise_agreement == 1.0
        assert report.spearman_total == pytest.approx(1.0, abs=1e-4)  # a repeated value ties
        assert report.mismatched_winners == []
        for q25, median, q75 in report.per_method_ratio.values():
            assert q25 == pytest.approx(1.0, abs=1e-3)
            assert median == pytest.approx(1.0, abs=1e-3)
            assert q75 == pytest.approx(1.0, abs=1e-3)

    def test_table2_vs_itself(self):
        rows = rows_from_paper(PAPER_TABLE2, 768)
        report = compare_to_paper(rows)
        assert report.winner_agreement == 1.0
        assert report.cells_compared == 72

    def test_scrambled_rows_score_poorly(self):
        rows = rows_from_paper(PAPER_TABLE1, 384)
        # Invert every timing: losers become winners.
        inverted = [
            MethodMeasurement(
                method=r.method, dataset=r.dataset, image_size=r.image_size,
                num_ranks=r.num_ranks, t_comp=1.0 / max(r.t_comp, 1e-9),
                t_comm=1.0 / max(r.t_comm, 1e-9), mmax_bytes=0, makespan=0.0,
                bytes_total=0, pixels_composited=0, pixels_encoded=0,
            )
            for r in rows
        ]
        report = compare_to_paper(inverted)
        assert report.winner_agreement < 0.3
        assert report.spearman_total < 0.0

    def test_empty_rows_rejected(self):
        with pytest.raises(ValueError):
            compare_to_paper([])

    def test_no_overlap_rejected(self):
        rows = rows_from_paper(PAPER_TABLE1, 384)
        for row in rows:
            object.__setattr__(row, "dataset", "not_in_paper")
        with pytest.raises(ValueError):
            compare_to_paper(rows)

    def test_format_mentions_metrics(self):
        rows = rows_from_paper(PAPER_TABLE1, 384)
        text = format_fidelity(compare_to_paper(rows))
        assert "winner agreement" in text
        assert "Spearman" in text
        assert "every cell" in text
