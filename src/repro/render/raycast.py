"""Vectorized orthographic ray caster (the sort-last rendering phase).

Each rank renders only its subvolume :class:`~repro.types.Extent3` into a
full-frame :class:`~repro.render.image.SubImage`.  Rays sample the scalar
field on a *global* ``t`` grid shared by every subvolume (see
:class:`~repro.render.camera.Camera`), restricted per pixel to the
ray/block intersection interval.  Because over is associative and sample
positions are identical, compositing the block renders front-to-back
reproduces the full-volume render bit-for-bit up to float rounding —
the invariant the whole test suite leans on.

Sampling uses trilinear interpolation of the *global* field
(``scipy.ndimage.map_coordinates``): samples stay inside the block's
slab, while interpolation near block faces may read neighbour voxels —
the ghost-cell data a real distributed renderer exchanges during the
partitioning phase.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from ..errors import RenderError
from ..types import Extent3
from ..volume.grid import VolumeGrid
from ..volume.transfer import TransferFunction
from .camera import Camera
from .image import SubImage

__all__ = ["render_subvolume", "render_full"]

_EPS = 1e-12


def render_subvolume(
    volume: VolumeGrid,
    transfer: TransferFunction,
    camera: Camera,
    extent: Extent3 | None = None,
) -> SubImage:
    """Ray-cast ``extent`` of ``volume`` into a full-frame subimage.

    ``extent`` defaults to the whole volume.  The returned image is blank
    outside the extent's screen footprint.
    """
    if tuple(camera.volume_shape) != volume.shape:
        raise RenderError(
            f"camera built for volume shape {camera.volume_shape}, got {volume.shape}"
        )
    if extent is None:
        extent = volume.full_extent()
    image = SubImage.blank(camera.height, camera.width)
    if extent.is_empty:
        return image

    footprint = camera.footprint_rect(extent.corners())
    if footprint.is_empty:
        return image

    origins = camera.pixel_origins(footprint).reshape(-1, 3)
    _, _, view_dir = camera.basis()
    tmin, tmax, valid = _slab_interval(origins, view_dir, extent)
    hit = valid & (tmax - tmin > _EPS)
    if not hit.any():
        return image

    origins = origins[hit]
    tmin = tmin[hit]
    tmax = tmax[hit]

    # Global sample grid indices covered by each pixel's interval:
    # t_k = -t_half + (k + 0.5) * step  with  t_k in [tmin, tmax).
    step = camera.step
    t_half = camera.t_half
    kmin = np.ceil((tmin + t_half) / step - 0.5).astype(np.int64)
    kmax = np.ceil((tmax + t_half) / step - 0.5).astype(np.int64) - 1
    np.clip(kmin, 0, camera.num_steps - 1, out=kmin)
    np.clip(kmax, -1, camera.num_steps - 1, out=kmax)

    acc_i = np.zeros(origins.shape[0], dtype=np.float64)
    acc_a = np.zeros(origins.shape[0], dtype=np.float64)
    sampled = kmax >= kmin
    if sampled.any():
        _march(
            volume.data,
            transfer,
            origins,
            view_dir,
            step,
            t_half,
            kmin,
            kmax,
            acc_i,
            acc_a,
        )

    # Scatter accumulated pixels back into the full frame.
    h, w = footprint.height, footprint.width
    frame_i = np.zeros(h * w, dtype=np.float64)
    frame_a = np.zeros(h * w, dtype=np.float64)
    flat_idx = np.flatnonzero(hit)
    frame_i[flat_idx] = acc_i
    frame_a[flat_idx] = acc_a
    rows, cols = footprint.slices()
    image.intensity[rows, cols] = frame_i.reshape(h, w)
    image.opacity[rows, cols] = frame_a.reshape(h, w)
    return image


def render_full(
    volume: VolumeGrid, transfer: TransferFunction, camera: Camera
) -> SubImage:
    """Render the entire volume (the sequential reference image)."""
    return render_subvolume(volume, transfer, camera, volume.full_extent())


# --------------------------------------------------------------------------
# internals
# --------------------------------------------------------------------------
def _slab_interval(
    origins: np.ndarray, view_dir: np.ndarray, extent: Extent3
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-pixel ray/box intersection ``[tmin, tmax]`` (slab method)."""
    n = origins.shape[0]
    tmin = np.full(n, -np.inf)
    tmax = np.full(n, np.inf)
    valid = np.ones(n, dtype=bool)
    lo = extent.lo()
    hi = extent.hi()
    for axis in range(3):
        o = origins[:, axis]
        d = float(view_dir[axis])
        if abs(d) > _EPS:
            t1 = (lo[axis] - o) / d
            t2 = (hi[axis] - o) / d
            near = np.minimum(t1, t2)
            far = np.maximum(t1, t2)
            np.maximum(tmin, near, out=tmin)
            np.minimum(tmax, far, out=tmax)
        else:
            valid &= (o >= lo[axis]) & (o < hi[axis])
    return tmin, tmax, valid


def _march(
    data: np.ndarray,
    transfer: TransferFunction,
    origins: np.ndarray,
    view_dir: np.ndarray,
    step: float,
    t_half: float,
    kmin: np.ndarray,
    kmax: np.ndarray,
    acc_i: np.ndarray,
    acc_a: np.ndarray,
) -> None:
    """Front-to-back accumulation over the shared global sample grid."""
    k_lo = int(kmin.min())
    k_hi = int(kmax.max())
    # Per-sample opacity correction for non-unit step lengths.
    unit_correction = step != 1.0
    for k in range(k_lo, k_hi + 1):
        active = (kmin <= k) & (k <= kmax)
        if not active.any():
            continue
        t_k = -t_half + (k + 0.5) * step
        points = origins[active] + t_k * view_dir
        coords = (points - 0.5).T  # field values live at voxel centers
        samples = ndimage.map_coordinates(
            data, coords, order=1, mode="nearest", prefilter=False
        ).astype(np.float64)
        emission, alpha = transfer.classify(samples)
        if unit_correction:
            alpha = 1.0 - np.power(1.0 - alpha, step)
        trans = 1.0 - acc_a[active]
        acc_i[active] += trans * emission * alpha
        acc_a[active] += trans * alpha
