"""Orthographic camera with Euler-angle viewpoint rotation.

The paper's §3.2 analysis studies how the number of *empty* receiving
bounding rectangles varies with the viewing point: a "normal orthogonal
projection" (axis-aligned view), rotation about one axis, or rotation
about two axes.  The camera therefore exposes exactly those knobs:
``rot_x``/``rot_y``/``rot_z`` in degrees applied to a default view down
the volume's z axis.

Conventions
-----------
* World space = voxel index space (unit spacing); the volume occupies
  ``[0, nx] x [0, ny] x [0, nz]``.
* ``view_dir`` points from the eye *into* the scene.
* Image rows grow downward: pixel ``(row v, col u)`` maps to the plane
  point ``center + (u - W/2 + 0.5)·s·right − (v - H/2 + 0.5)·s·up``.
* Rays are parameterized by arc length ``t`` around the volume center
  with a global sample grid ``t_k = -t_half + (k + 0.5)·step`` shared by
  every subvolume, so compositing block renders reproduces the
  full-volume render exactly (over is associative).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..errors import ConfigurationError
from ..types import Rect

__all__ = ["Camera", "rotation_matrix"]


def rotation_matrix(rot_x: float, rot_y: float, rot_z: float) -> np.ndarray:
    """Row-major rotation ``Rz @ Ry @ Rx`` from degrees about each axis."""
    ax, ay, az = np.deg2rad([rot_x, rot_y, rot_z])
    cx, sx = np.cos(ax), np.sin(ax)
    cy, sy = np.cos(ay), np.sin(ay)
    cz, sz = np.cos(az), np.sin(az)
    rx = np.array([[1, 0, 0], [0, cx, -sx], [0, sx, cx]])
    ry = np.array([[cy, 0, sy], [0, 1, 0], [-sy, 0, cy]])
    rz = np.array([[cz, -sz, 0], [sz, cz, 0], [0, 0, 1]])
    return rz @ ry @ rx


@dataclass(frozen=True)
class Camera:
    """Orthographic camera for a given volume shape and image size.

    ``scale`` is world units per pixel; when ``None`` it is chosen so the
    volume's bounding sphere fits the image with a small margin.
    ``step`` is the ray sampling distance in world units.
    """

    width: int
    height: int
    volume_shape: tuple[int, int, int]
    rot_x: float = 0.0
    rot_y: float = 0.0
    rot_z: float = 0.0
    scale: float | None = None
    step: float = 1.0

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise ConfigurationError(f"image size must be positive, got {self.width}x{self.height}")
        if len(self.volume_shape) != 3 or any(s < 1 for s in self.volume_shape):
            raise ConfigurationError(f"invalid volume shape {self.volume_shape}")
        if self.step <= 0:
            raise ConfigurationError(f"step must be > 0, got {self.step}")
        if self.scale is not None and self.scale <= 0:
            raise ConfigurationError(f"scale must be > 0, got {self.scale}")

    # ---- derived geometry -------------------------------------------------
    @property
    def center(self) -> np.ndarray:
        return np.asarray(self.volume_shape, dtype=np.float64) / 2.0

    @property
    def diagonal(self) -> float:
        return float(np.linalg.norm(self.volume_shape))

    @property
    def pixel_scale(self) -> float:
        if self.scale is not None:
            return self.scale
        margin = 1.04
        return self.diagonal * margin / min(self.width, self.height)

    def basis(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(right, up, view_dir)`` unit vectors in world space."""
        rot = rotation_matrix(self.rot_x, self.rot_y, self.rot_z)
        right = rot @ np.array([1.0, 0.0, 0.0])
        up = rot @ np.array([0.0, 1.0, 0.0])
        view_dir = rot @ np.array([0.0, 0.0, -1.0])
        return right, up, view_dir

    @property
    def view_dir(self) -> np.ndarray:
        return self.basis()[2]

    @property
    def t_half(self) -> float:
        """Half-length of the sampled ray segment around the center."""
        return self.diagonal / 2.0 + self.step

    @property
    def num_steps(self) -> int:
        """Number of global t samples along every ray."""
        return int(np.ceil(2.0 * self.t_half / self.step))

    def sample_ts(self) -> np.ndarray:
        """The global sample grid ``t_k`` shared by all subvolumes."""
        return -self.t_half + (np.arange(self.num_steps, dtype=np.float64) + 0.5) * self.step

    # ---- pixel <-> world mapping --------------------------------------------
    def pixel_origins(self, rect: Rect) -> np.ndarray:
        """World points at ``t = 0`` for each pixel of ``rect``.

        Returns shape ``(rect.height, rect.width, 3)``.
        """
        right, up, _ = self.basis()
        s = self.pixel_scale
        us = (np.arange(rect.x0, rect.x1, dtype=np.float64) - self.width / 2.0 + 0.5) * s
        vs = (np.arange(rect.y0, rect.y1, dtype=np.float64) - self.height / 2.0 + 0.5) * s
        origins = (
            self.center[None, None, :]
            + us[None, :, None] * right[None, None, :]
            - vs[:, None, None] * up[None, None, :]
        )
        return origins

    def project_points(self, points: np.ndarray) -> np.ndarray:
        """Project world points to continuous ``(row, col)`` pixel coords."""
        right, up, _ = self.basis()
        rel = np.asarray(points, dtype=np.float64) - self.center
        s = self.pixel_scale
        cols = rel @ right / s + self.width / 2.0 - 0.5
        rows = -(rel @ up) / s + self.height / 2.0 - 0.5
        return np.stack([rows, cols], axis=-1)

    def footprint_rect(self, corners: np.ndarray, *, pad: int = 1) -> Rect:
        """Clipped screen bounding rect of a set of world points."""
        rc = self.project_points(corners)
        y0 = int(np.floor(rc[:, 0].min())) - pad
        y1 = int(np.ceil(rc[:, 0].max())) + 1 + pad
        x0 = int(np.floor(rc[:, 1].min())) - pad
        x1 = int(np.ceil(rc[:, 1].max())) + 1 + pad
        return Rect(y0, x0, y1, x1).intersect(Rect.full(self.height, self.width))

    def rotated(self, *, rot_x: float | None = None, rot_y: float | None = None,
                rot_z: float | None = None) -> "Camera":
        """Copy with some rotation angles replaced."""
        return replace(
            self,
            rot_x=self.rot_x if rot_x is None else rot_x,
            rot_y=self.rot_y if rot_y is None else rot_y,
            rot_z=self.rot_z if rot_z is None else rot_z,
        )
