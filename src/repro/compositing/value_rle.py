"""Value-based run-length codec (Ahrens & Painter 1998 style).

The related-work compression scheme the paper argues *against* for
volume rendering (§3.3): runs merge consecutive pixels with **equal
values**, each run carrying the pixel value plus a count field.  For
integer-valued surface/polygon renderings long equal-value runs are
common and this compresses extremely well.  For floating-point volume
pixels, adjacent non-blank values almost never repeat, so every
non-blank pixel becomes its own run and the count field is pure
overhead: 18 bytes per non-blank pixel versus the paper's 16 + amortized
mask codes.  Implementing both codecs lets the benchmarks reproduce that
argument quantitatively (``bench_ablations.py``).

Wire layout of a run block (little-endian):
``uint32 nruns`` · ``uint16 counts[nruns]`` · ``float64 (i, a)[nruns]``.
Accounted bytes: ``18 * nruns`` (16 B value + 2 B count per run), the
cost model of Ahrens & Painter's pixel format.
"""

from __future__ import annotations

import numpy as np

from ..errors import WireFormatError
from .rle import MAX_RUN

__all__ = [
    "value_rle_encode",
    "value_rle_decode",
    "VALUE_RUN_BYTES",
    "pack_value_runs",
    "unpack_value_runs",
]

#: Wire bytes per value run: intensity + opacity (16) + count (2).
VALUE_RUN_BYTES = 18

_LEN_DTYPE = np.dtype("<u4")
_COUNT_DTYPE = np.dtype("<u2")
_PIXEL_DTYPE = np.dtype("<f8")


def value_rle_encode(
    intensity: np.ndarray, opacity: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Merge consecutive equal ``(intensity, opacity)`` pixels into runs.

    Returns ``(run_i, run_a, counts)`` — parallel arrays, counts capped
    at :data:`~repro.compositing.rle.MAX_RUN` (longer runs split).
    """
    intensity = np.asarray(intensity, dtype=np.float64).ravel()
    opacity = np.asarray(opacity, dtype=np.float64).ravel()
    if intensity.shape != opacity.shape:
        raise WireFormatError("intensity/opacity length mismatch")
    n = intensity.size
    if n == 0:
        empty = np.empty(0, dtype=np.float64)
        return empty, empty.copy(), np.empty(0, dtype=np.uint16)

    change = np.flatnonzero(
        (intensity[1:] != intensity[:-1]) | (opacity[1:] != opacity[:-1])
    ) + 1
    starts = np.concatenate(([0], change))
    lengths = np.diff(np.concatenate((starts, [n])))

    run_i: list[float] = []
    run_a: list[float] = []
    counts: list[int] = []
    for start, length in zip(starts, lengths):
        value_i = float(intensity[start])
        value_a = float(opacity[start])
        remaining = int(length)
        while remaining > MAX_RUN:
            run_i.append(value_i)
            run_a.append(value_a)
            counts.append(MAX_RUN)
            remaining -= MAX_RUN
        run_i.append(value_i)
        run_a.append(value_a)
        counts.append(remaining)
    return (
        np.asarray(run_i, dtype=np.float64),
        np.asarray(run_a, dtype=np.float64),
        np.asarray(counts, dtype=np.uint16),
    )


def value_rle_decode(
    run_i: np.ndarray, run_a: np.ndarray, counts: np.ndarray, n: int
) -> tuple[np.ndarray, np.ndarray]:
    """Expand runs back into per-pixel arrays of length ``n``."""
    counts = np.asarray(counts, dtype=np.uint16)
    total = int(counts.sum(dtype=np.int64))
    if total != n:
        raise WireFormatError(f"value runs cover {total} pixels, expected {n}")
    if counts.size != np.asarray(run_i).size or counts.size != np.asarray(run_a).size:
        raise WireFormatError("run arrays have mismatched lengths")
    reps = counts.astype(np.int64)
    return np.repeat(np.asarray(run_i, np.float64), reps), np.repeat(
        np.asarray(run_a, np.float64), reps
    )


def pack_value_runs(intensity: np.ndarray, opacity: np.ndarray) -> "WireBlock":
    """Serialize a pixel sequence with value RLE; see module docstring."""
    run_i, run_a, counts = value_rle_encode(intensity, opacity)
    header = np.asarray([counts.size], dtype=_LEN_DTYPE).tobytes()
    values = np.empty((counts.size, 2), dtype=_PIXEL_DTYPE)
    values[:, 0] = run_i
    values[:, 1] = run_a
    buffer = header + counts.astype(_COUNT_DTYPE).tobytes() + values.tobytes()
    from .wire import WireMessage

    return WireMessage(buffer=buffer, accounted_bytes=counts.size * VALUE_RUN_BYTES)


def unpack_value_runs(msg: bytes, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`pack_value_runs`: per-pixel ``(i, a)`` arrays."""
    if len(msg) < _LEN_DTYPE.itemsize:
        raise WireFormatError(f"value-RLE message too short: {len(msg)} bytes")
    nruns = int(np.frombuffer(msg[: _LEN_DTYPE.itemsize], dtype=_LEN_DTYPE)[0])
    off = _LEN_DTYPE.itemsize
    count_bytes = nruns * _COUNT_DTYPE.itemsize
    if len(msg) < off + count_bytes + nruns * 16:
        raise WireFormatError("value-RLE message truncated")
    counts = np.frombuffer(msg[off : off + count_bytes], dtype=_COUNT_DTYPE)
    off += count_bytes
    values = np.frombuffer(msg[off : off + nruns * 16], dtype=_PIXEL_DTYPE).reshape(
        nruns, 2
    )
    if len(msg) != off + nruns * 16:
        raise WireFormatError("value-RLE message has trailing bytes")
    return value_rle_decode(values[:, 0], values[:, 1], counts, n)
