"""Exchange schedules — the *who swaps what* plane of compositing.

The paper's four methods are points in a 2-D design space: an exchange
*schedule* (which ranks exchange which image parts at each stage, and
how ownership narrows) crossed with a pixel *codec* (how a part's pixels
are serialized — see :mod:`repro.compositing.codec`).  A
:class:`Schedule` captures the first axis: :meth:`Schedule.build`
produces one rank's :class:`RankProgram` — a sequence of
:class:`ScheduleStage`\\ s, each holding the kept part, the
:class:`ExchangeStep`\\ s (peer + part to send) and the depth order in
which received contributions fold into the kept part.

Implementations:

* :class:`BinarySwapSchedule` — the classic pairwise halving exchange
  shared by BS/BSBR/BSBRC (partner ``rank ^ 2^k``, centerline split);
* :class:`SectionedSchedule` — BSLC's statically load-balanced
  *interleaved section* distribution (§3.3, Figure 6): parts are index
  sets into the flattened frame, not contiguous rects;
* :class:`RadixKSchedule` — the radix-k generalization (Peterka et al.):
  processors are factored into rounds of group size ``k_j``; within a
  group each member keeps ``1/k`` of the region and runs ``k-1``
  pairwise exchanges.  ``k = [2, 2, ...]`` degenerates to binary swap
  *exactly* (same partners, same splits, same byte counts);
* :class:`DirectSendSchedule` — the single-stage ``k = P`` extreme:
  every rank sends every other rank its slice of that rank's region.

All rect schedules carve regions with the same recursive centerline
splits binary swap uses, so final ownership maps are identical across
radix choices and the gathered image is independent of the schedule.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from ..cluster.topology import keeps_low_half, log2_int
from ..errors import CompositingError, ConfigurationError
from ..types import Rect
from ..volume.partition import PartitionPlan
from .base import split_axis_for
from .interleave import DEFAULT_SECTION, initial_indices, split_interleaved

__all__ = [
    "RectPart",
    "IndexPart",
    "ExchangeStep",
    "ScheduleStage",
    "RankProgram",
    "Schedule",
    "BinarySwapSchedule",
    "SectionedSchedule",
    "DirectSendSchedule",
    "RadixKSchedule",
    "parse_radix",
]


# --------------------------------------------------------------------------
# image parts
# --------------------------------------------------------------------------
@dataclass(frozen=True, eq=False)
class RectPart:
    """A contiguous image region (rect-structured schedules)."""

    rect: Rect
    kind: ClassVar[str] = "rect"

    @property
    def num_pixels(self) -> int:
        return self.rect.area


@dataclass(frozen=True, eq=False)
class IndexPart:
    """An interleaved set of flat pixel indices (sectioned schedules)."""

    indices: np.ndarray
    kind: ClassVar[str] = "index"

    @property
    def num_pixels(self) -> int:
        return int(self.indices.shape[0])


# --------------------------------------------------------------------------
# per-stage structure
# --------------------------------------------------------------------------
@dataclass(frozen=True, eq=False)
class ExchangeStep:
    """One pairwise full-duplex exchange: ship ``send_part`` to ``peer``."""

    peer: int
    send_part: RectPart | IndexPart


@dataclass(frozen=True, eq=False)
class ScheduleStage:
    """One stage of a rank's program.

    ``steps`` run in listed order (every position in the list must be a
    perfect matching across the group, as an XOR round schedule
    guarantees).  ``composite_order`` lists ``(step_slot,
    local_in_front)`` pairs in the order received contributions must fold
    into the kept part: contributions behind the accumulated local image
    first (near to far, ``local_in_front=True``), then contributions in
    front (far to near, ``local_in_front=False``) — the sequential
    application then equals the depth-ordered *over* chain.
    """

    index: int
    keep_part: RectPart | IndexPart
    steps: tuple[ExchangeStep, ...]
    composite_order: tuple[tuple[int, bool], ...]


@dataclass(frozen=True, eq=False)
class RankProgram:
    """Everything one rank does: the stages plus its final owned part."""

    stages: tuple[ScheduleStage, ...]
    final_part: RectPart | IndexPart


# --------------------------------------------------------------------------
# schedule base
# --------------------------------------------------------------------------
class Schedule(abc.ABC):
    """Produces per-rank exchange programs; stateless and reusable."""

    #: Registry name, e.g. ``"binary-swap"``.
    name: str = "abstract"
    #: Part representation this schedule exchanges: ``"rect"`` | ``"index"``.
    part_kind: str = "rect"
    #: One-line description for the method catalog.
    description: str = ""

    @abc.abstractmethod
    def build(
        self,
        rank: int,
        size: int,
        frame: Rect,
        num_pixels: int,
        plan: PartitionPlan,
        view_dir: np.ndarray,
    ) -> RankProgram:
        """Build rank ``rank``'s program for a ``size``-rank exchange."""

    def refold_pairs(self, size: int) -> list[tuple[int, int]]:
        """First-exchange buddy pairs, keyed off this schedule.

        Graceful degradation re-folds a lost rank's block onto its
        first-exchange partner (see
        :func:`repro.volume.folded.refold_survivors`); the pairing comes
        from the schedule so a future schedule whose first round does
        not pair bisection buddies fails loudly instead of silently
        mis-folding.  Every built-in schedule opens with the stage-0
        binary-swap pairing ``(2i, 2i+1)``.
        """
        return [(2 * i, 2 * i + 1) for i in range(size // 2)]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r})"


def parse_radix(text: str) -> tuple[int, ...]:
    """Parse a CLI-style radix list, e.g. ``"4,4"`` → ``(4, 4)``."""
    try:
        factors = tuple(int(tok) for tok in text.replace(" ", "").split(",") if tok)
    except ValueError:
        raise ConfigurationError(
            f"bad radix list {text!r}: expected comma-separated integers"
        ) from None
    if not factors:
        raise ConfigurationError(f"bad radix list {text!r}: no factors")
    return factors


# --------------------------------------------------------------------------
# radix-k (and its binary-swap / direct-send degenerations)
# --------------------------------------------------------------------------
class RadixKSchedule(Schedule):
    """Grouped k-ary exchange over recursively bisected regions.

    Stage ``j`` covers ``g_j = log2(k_j)`` partner bits of the rank id:
    the ``k_j`` ranks differing only in those bits form a group, the
    current region splits ``g_j`` times by centerline (one split per
    bit, same axis policy as binary swap) into one subregion per member,
    and ``k_j - 1`` pairwise XOR rounds (round ``t`` pairs member ``m``
    with ``m ^ t`` — a perfect matching, deadlock-free with full-duplex
    ``sendrecv``) deliver to each member every peer's version of *its*
    subregion.  With ``radix=[2]*log2(P)`` every group is a binary-swap
    pair and the schedule reproduces BS bit for bit.

    ``radix`` factors must be powers of two ≥ 2.  The list adapts to the
    actual group size (degraded reruns fold onto fewer ranks): factors
    are consumed left to right, each clamped to the unfactored
    remainder, and the list's last factor (default 2) repeats if it runs
    out — e.g. ``(4, 4)`` resolves to ``4×4`` at P=16, ``4×2`` at P=8,
    ``4`` at P=4 and ``2`` at P=2.
    """

    name = "radix-k"
    part_kind = "rect"
    description = "grouped k-ary rounds generalizing binary swap (radix-k)"

    def __init__(
        self,
        *,
        radix: tuple[int, ...] | list[int] | None = None,
        split_policy: str = "longest",
    ):
        if radix is not None:
            radix = tuple(int(k) for k in radix)
            if not radix:
                raise ConfigurationError("radix list must not be empty")
            for k in radix:
                if k < 2 or k & (k - 1):
                    raise ConfigurationError(
                        f"radix factors must be powers of two >= 2, got {k}"
                    )
        self.radix = radix
        self.split_policy = split_policy

    def effective_radix(self, size: int) -> tuple[int, ...]:
        """Resolve the requested factors against an actual group size."""
        log2_int(size)  # validates power of two
        factors: list[int] = []
        remaining = size
        i = 0
        while remaining > 1:
            if self.radix is None:
                want = 2
            elif i < len(self.radix):
                want = self.radix[i]
            else:
                want = self.radix[-1]
            k = min(want, remaining)
            factors.append(k)
            remaining //= k
            i += 1
        return tuple(factors)

    def build(
        self,
        rank: int,
        size: int,
        frame: Rect,
        num_pixels: int,
        plan: PartitionPlan,
        view_dir: np.ndarray,
    ) -> RankProgram:
        factors = self.effective_radix(size)
        region = frame
        stages: list[ScheduleStage] = []
        bit = 0
        for stage_idx, k in enumerate(factors):
            group_bits = log2_int(k)
            me = (rank >> bit) & (k - 1)
            subregions = [
                self._member_region(region, bit, member, group_bits)
                for member in range(k)
            ]
            steps = tuple(
                ExchangeStep(
                    peer=self._member_rank(rank, bit, me ^ t, k),
                    send_part=RectPart(subregions[me ^ t]),
                )
                for t in range(1, k)
            )
            order = self._composite_order(
                rank, bit, group_bits, me, k, plan, view_dir
            )
            stages.append(
                ScheduleStage(
                    index=stage_idx,
                    keep_part=RectPart(subregions[me]),
                    steps=steps,
                    composite_order=order,
                )
            )
            region = subregions[me]
            bit += group_bits
        return RankProgram(stages=tuple(stages), final_part=RectPart(region))

    def _member_region(
        self, region: Rect, bit: int, member: int, group_bits: int
    ) -> Rect:
        """Member ``member``'s subregion: one centerline split per bit."""
        cur = region
        for i in range(group_bits):
            axis = split_axis_for(cur, bit + i, self.split_policy)
            first, second = cur.split(axis)
            if first.is_empty or second.is_empty:
                raise CompositingError(
                    f"image too small to halve at stage {bit + i} (region {cur})"
                )
            cur = second if (member >> i) & 1 else first
        return cur

    @staticmethod
    def _member_rank(rank: int, bit: int, member: int, k: int) -> int:
        """Rank id of group member ``member`` (replace the group bits)."""
        return (rank & ~((k - 1) << bit)) | (member << bit)

    def _composite_order(
        self,
        rank: int,
        bit: int,
        group_bits: int,
        me: int,
        k: int,
        plan: PartitionPlan,
        view_dir: np.ndarray,
    ) -> tuple[tuple[int, bool], ...]:
        """Depth-sort the group; emit fold order around the local image.

        Members of one group share all bits outside ``[bit, bit+g)``, so
        their relative depth is decided by the bisection planes of those
        stages alone (most significant bit = coarsest plane first) — the
        same rule :func:`repro.volume.partition.depth_order` applies
        globally.
        """

        def front_key(member: int) -> tuple[int, ...]:
            member_rank = self._member_rank(rank, bit, member, k)
            return tuple(
                0 if plan.local_in_front(member_rank, s, view_dir) else 1
                for s in range(bit + group_bits - 1, bit - 1, -1)
            )

        ordered = sorted(range(k), key=front_key)  # front to back
        mine = ordered.index(me)
        slot_of = {me ^ t: t - 1 for t in range(1, k)}
        behind = ordered[mine + 1 :]  # near to far
        in_front = ordered[:mine]  # front to back
        order = [(slot_of[m], True) for m in behind]
        order += [(slot_of[m], False) for m in reversed(in_front)]
        return tuple(order)


class BinarySwapSchedule(RadixKSchedule):
    """Classic binary swap: radix ``[2] * log2(P)``."""

    name = "binary-swap"
    description = "pairwise halving exchange (binary swap)"

    def __init__(self, *, split_policy: str = "longest"):
        super().__init__(radix=None, split_policy=split_policy)


class DirectSendSchedule(RadixKSchedule):
    """Single-stage direct send: one group of size P, ``P - 1`` rounds.

    Regions still come from the recursive centerline splits, so the
    final ownership map matches the swap-structured schedules (unlike
    the row-strip ``direct`` baseline, which is kept as-is).
    """

    name = "direct-send"
    description = "single-stage all-pairs exchange of bisected regions"

    def __init__(self, *, split_policy: str = "longest"):
        super().__init__(radix=None, split_policy=split_policy)

    def effective_radix(self, size: int) -> tuple[int, ...]:
        log2_int(size)
        return (size,) if size > 1 else ()


# --------------------------------------------------------------------------
# sectioned (BSLC's interleaved distribution)
# --------------------------------------------------------------------------
class SectionedSchedule(Schedule):
    """BSLC's load-balanced distribution: interleaved index sections.

    Parts are index sets into the flattened frame.  At stage ``k`` the
    pair ``rank ^ 2^k`` splits the owned sequence into interleaved
    sections of ``section`` pixels (Figure 6); both partners derive the
    identical index sets, so sent subsets travel positionally and the
    receiver addresses its kept array directly.
    """

    name = "sectioned"
    part_kind = "index"
    description = "interleaved-section distribution (BSLC load balancing)"

    def __init__(self, *, section: int = DEFAULT_SECTION):
        if section < 1:
            raise CompositingError(f"section must be >= 1, got {section}")
        self.section = int(section)

    def build(
        self,
        rank: int,
        size: int,
        frame: Rect,
        num_pixels: int,
        plan: PartitionPlan,
        view_dir: np.ndarray,
    ) -> RankProgram:
        num_stages = log2_int(size)
        indices = initial_indices(num_pixels)
        stages: list[ScheduleStage] = []
        for stage in range(num_stages):
            partner = rank ^ (1 << stage)
            kept, sent = split_interleaved(
                indices, self.section, keeps_low_half(rank, stage)
            )
            local_in_front = plan.local_in_front(rank, stage, view_dir)
            stages.append(
                ScheduleStage(
                    index=stage,
                    keep_part=IndexPart(kept),
                    steps=(ExchangeStep(peer=partner, send_part=IndexPart(sent)),),
                    composite_order=((0, local_in_front),),
                )
            )
            indices = kept
        return RankProgram(stages=tuple(stages), final_part=IndexPart(indices))
