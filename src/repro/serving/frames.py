"""Client-side progressive frame assembly from streamed serve events.

A consumer of a :class:`~repro.cluster.progress.ProgressFeed` (or of a
``repro.serve-event/1`` document stream) folds events into a
:class:`ProgressiveFrame`: the best currently-known approximation of
the final display image.  Tile events scatter their rect's *final*
pixels; stage events scatter the emitting rank's keep part (valid
partial composites that sharpen stage by stage); the ``final`` event
replaces the whole frame and carries the run's declared outcome.

The accumulator is intentionally dumb — it trusts the feed's ordering
and monotone ``coverage`` — which is what makes it suitable both for a
live progressive display and for the CI smoke test that replays a
recorded event log and asserts the end state is bit-identical to the
one-shot render.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..cluster.progress import ProgressEvent, serve_event_from_dict
from ..render.image import SubImage

__all__ = ["ProgressiveFrame"]


class ProgressiveFrame:
    """Fold progress events into a best-known partial display image."""

    @classmethod
    def replay(cls, docs, height: int, width: int) -> "ProgressiveFrame":
        """Fold a recorded ``repro.serve-event/1`` document stream.

        Pairs with :func:`repro.serving.spool.read_events`, which
        already drops a torn trailing record from an interrupted
        writer — so replaying a crashed server's partial event log
        yields the frame as of the last *complete* event, never a JSON
        crash.
        """
        frame = cls(height, width)
        for doc in docs:
            frame.apply(serve_event_from_dict(doc))
        return frame

    def __init__(self, height: int, width: int):
        self.image = SubImage.blank(height, width)
        #: Monotone coverage as reported by the last applied event.
        self.coverage = 0.0
        self.events_applied = 0
        #: Set once a ``final`` event lands.
        self.finalized = False
        self.degraded = False
        self.outcome: Optional[str] = None

    def apply(self, event: ProgressEvent) -> None:
        """Fold one event into the frame (events in feed order)."""
        if event.kind == "tile":
            rect = event.rect
            self.image.intensity[rect.y0 : rect.y1, rect.x0 : rect.x1] = event.intensity
            self.image.opacity[rect.y0 : rect.y1, rect.x0 : rect.x1] = event.opacity
        elif event.kind == "stage":
            if event.part_rect is not None:
                rect = event.part_rect
                rows = slice(rect.y0, rect.y1)
                cols = slice(rect.x0, rect.x1)
                self.image.intensity[rows, cols] = event.intensity[rows, cols]
                self.image.opacity[rows, cols] = event.opacity[rows, cols]
            elif event.part_indices is not None:
                flat = np.asarray(event.part_indices).ravel()
                self.image.intensity.ravel()[flat] = event.intensity.ravel()[flat]
                self.image.opacity.ravel()[flat] = event.opacity.ravel()[flat]
        elif event.kind == "final":
            self.image.intensity[...] = event.intensity
            self.image.opacity[...] = event.opacity
            self.finalized = True
            self.degraded = event.degraded
            self.outcome = event.outcome
        self.coverage = max(self.coverage, event.coverage)
        self.events_applied += 1
