"""Backend-agnostic pipeline phases: partition → render → composite → gather.

Each phase is a function parameterized by a
:class:`~repro.cluster.protocol.BaseRankContext`, so the *entire*
sort-last-sparse pipeline — not just compositing — runs unchanged on the
simulator, on multiprocessing, and on MPI.
:func:`pipeline_rank_program` chains the phases into the single
module-level (hence picklable) rank program that every backend executes.

Phase semantics:

* **partition** (:func:`build_scene`) — deterministic host/rank-local
  setup: dataset, camera, bisection (or folded) plan.  Runs identically
  on every rank; results are memoized in-process.
* **render** (:func:`render_phase`) — embarrassingly parallel, no
  communication; uses the chunked ray marcher (or splatter) and an
  optional ``REPRO_CACHE_DIR`` on-disk per-rank subimage cache.  No
  model time is charged: the paper measures compositing only.
* **composite** (:func:`composite_phase`) — the measured phase; runs the
  configured method (folding-wrapped on non-power-of-two plans).
* **fused render+composite** (:func:`fused_render_composite_phase`) —
  taken instead of the two separate phases when the method is
  tile-routed, the renderer is the ray caster, and the plan is not
  folded: the ray caster renders one tile at a time (``clip_rect``) and
  each finished tile enters the tile router while later tiles are still
  rendering.  Per-pixel ray independence makes the result bit-identical
  to render-then-composite.
* **gather** (:func:`gather_phase`) — owned tiles flow to rank 0 over
  the same substrate, bucketed under :data:`GATHER_STAGE` so the
  compositing-stage stats stay separable.
"""

from __future__ import annotations

import hashlib
import os
from typing import NamedTuple, Optional

import numpy as np

from .. import perf
from ..cache import enforce_cache_budget, touch
from ..cluster.collectives import gather
from ..cluster.protocol import BaseRankContext
from ..compositing.base import CompositeOutcome
from ..compositing.registry import TILE_ROUTED, make_compositor
from ..render.camera import Camera
from ..render.image import SubImage
from ..render.raycast import render_subvolume
from ..render.splat import splat_subvolume
from ..volume.datasets import make_dataset
from ..volume.folded import FoldedPartition, partition_folded
from ..volume.partition import PartitionPlan, recursive_bisect, render_load_weights
from .assemble import OwnedTile, assemble_tiles, tile_from_outcome
from .config import RunConfig

__all__ = [
    "GATHER_STAGE",
    "Scene",
    "build_scene",
    "render_phase",
    "composite_phase",
    "fused_render_composite_phase",
    "gather_phase",
    "pipeline_rank_program",
    "degraded_rank_program",
]

#: Stage bucket used for the final image gather (outside the paper's
#: measured compositing stages, which are ``PRE_STAGE`` and ``0..log2P-1``).
GATHER_STAGE = 1_000_000

#: Bump when the renderer's output changes intentionally (per-rank cache).
#: v2: the cache key carries the rendered extent, so degraded reruns
#: (survivors covering merged blocks) never collide with clean runs.
_RENDER_CACHE_VERSION = 2


class Scene(NamedTuple):
    """Deterministic per-run setup shared by every phase."""

    volume: object
    transfer: object
    camera: Camera
    plan: "PartitionPlan | FoldedPartition"


# In-process memo: the scene build is identical on every rank, and under
# the fork-based multiprocessing backend workers inherit the parent's
# populated memo, so each rank re-derives nothing.
_SCENE_MEMO: dict[tuple, Scene] = {}


def _scene_key(cfg: RunConfig) -> tuple:
    return (
        cfg.dataset,
        cfg.volume_shape,
        cfg.image_size,
        cfg.rot_x,
        cfg.rot_y,
        cfg.rot_z,
        cfg.step,
        cfg.num_ranks,
        cfg.balance_render_load,
    )


def build_scene(cfg: RunConfig) -> Scene:
    """Partition phase: dataset + camera + per-rank subvolume plan."""
    key = _scene_key(cfg)
    found = _SCENE_MEMO.get(key)
    if found is not None:
        return found
    volume, transfer = make_dataset(cfg.dataset, cfg.volume_shape)
    camera = Camera(
        width=cfg.image_size,
        height=cfg.image_size,
        volume_shape=volume.shape,
        rot_x=cfg.rot_x,
        rot_y=cfg.rot_y,
        rot_z=cfg.rot_z,
        step=cfg.step,
    )
    weights = (
        render_load_weights(volume.data, transfer) if cfg.balance_render_load else None
    )
    if cfg.num_ranks & (cfg.num_ranks - 1) == 0:
        plan: PartitionPlan | FoldedPartition = recursive_bisect(
            volume.shape, cfg.num_ranks, weights=weights
        )
    else:
        # Paper §5 future work: any rank count via folding.
        plan = partition_folded(volume.shape, cfg.num_ranks)
    scene = Scene(volume, transfer, camera, plan)
    if len(_SCENE_MEMO) >= 8:
        _SCENE_MEMO.clear()
    _SCENE_MEMO[key] = scene
    return scene


# ---- render phase -----------------------------------------------------------
def _render_cache_path(cfg: RunConfig, rank: int, extent) -> Optional[str]:
    cache_dir = os.environ.get("REPRO_CACHE_DIR", "").strip()
    if not cache_dir:
        return None
    key = (
        _RENDER_CACHE_VERSION,
        cfg.renderer,
        cfg.dataset,
        cfg.volume_shape,
        cfg.image_size,
        cfg.rot_x,
        cfg.rot_y,
        cfg.rot_z,
        cfg.step,
        cfg.num_ranks,
        cfg.balance_render_load,
        rank,
        (extent.x0, extent.y0, extent.z0, extent.x1, extent.y1, extent.z1),
    )
    digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()[:24]
    return os.path.join(cache_dir, f"subimage_{digest}.npz")


def _load_cached_subimage(path: str) -> Optional[SubImage]:
    if not os.path.exists(path):
        return None
    try:
        with np.load(path, allow_pickle=False) as archive:
            image = SubImage(
                intensity=archive["intensity"].copy(),
                opacity=archive["opacity"].copy(),
            )
    except Exception:
        return None
    touch(path)  # LRU recency: a hit protects the entry from eviction
    return image


def _store_cached_subimage(path: str, image: SubImage) -> None:
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    tmp = f"{path}.r{os.getpid()}.tmp.npz"
    try:
        np.savez_compressed(tmp, intensity=image.intensity, opacity=image.opacity)
        os.replace(tmp, path)
    except OSError:
        # Cache is best-effort; never fail the render over it.
        if os.path.exists(tmp):
            os.remove(tmp)
        return
    enforce_cache_budget(os.path.dirname(path) or ".", keep=path)


async def render_phase(ctx: BaseRankContext, cfg: RunConfig, scene: Scene) -> SubImage:
    """Render this rank's subvolume (no communication, no model time)."""
    extent = scene.plan.extent(ctx.rank)
    cache_path = _render_cache_path(cfg, ctx.rank, extent)
    if cache_path is not None:
        cached = _load_cached_subimage(cache_path)
        if cached is not None:
            perf.incr("pipeline.render_cache_hits")
            return cached
        perf.incr("pipeline.render_cache_misses")
    render = render_subvolume if cfg.renderer == "raycast" else splat_subvolume
    with perf.timer("pipeline.render"):
        image = render(scene.volume, scene.transfer, scene.camera, extent)
    if cache_path is not None:
        _store_cached_subimage(cache_path, image)
    return image


# ---- composite phase --------------------------------------------------------
async def composite_phase(
    ctx: BaseRankContext, cfg: RunConfig, image: SubImage, scene: Scene
) -> CompositeOutcome:
    """Run the configured compositing method on this rank."""
    compositor = make_compositor(cfg.method, **cfg.method_options)
    if isinstance(scene.plan, FoldedPartition):
        from ..compositing.folding import FoldedCompositor

        compositor = FoldedCompositor(compositor)
    with perf.timer("pipeline.composite"):
        outcome = await compositor.run(ctx, image, scene.plan, scene.camera.view_dir)
    if outcome.producer is None:
        # Legacy methods predate the producer field; stamp for diagnostics.
        outcome.producer = compositor.name
    return outcome


# ---- fused render + composite ----------------------------------------------
def _fusable(cfg: RunConfig, scene: Scene) -> bool:
    """True when render and composite can run as one overlapped phase.

    Requires the tile-routed method (the only engine with a per-tile
    entry point), the ray caster (per-pixel independent, so clipped
    renders are bit-identical), and an unfolded plan (the folding
    wrapper drives ``run``, not ``run_fused``).
    """
    return (
        cfg.method.lower().partition(":")[0] == TILE_ROUTED
        and cfg.renderer == "raycast"
        and not isinstance(scene.plan, FoldedPartition)
    )


async def fused_render_composite_phase(
    ctx: BaseRankContext, cfg: RunConfig, scene: Scene
) -> tuple[SubImage, CompositeOutcome]:
    """Render tile by tile, pushing each tile into the router as it
    finishes; returns ``(subimage, outcome)`` exactly like running
    :func:`render_phase` then :func:`composite_phase` (bit-identical —
    rays are per-pixel independent, and the tile engine's fold order
    does not depend on arrival order)."""
    compositor = make_compositor(cfg.method, **cfg.method_options)
    extent = scene.plan.extent(ctx.rank)
    camera = scene.camera

    def render_tile(rect):
        with perf.timer("pipeline.render"):
            return render_subvolume(
                scene.volume, scene.transfer, camera, extent, clip_rect=rect
            )

    with perf.timer("pipeline.composite"):
        subimage, outcome = await compositor.run_fused(
            ctx, camera.height, camera.width, scene.plan, camera.view_dir, render_tile
        )
    if outcome.producer is None:
        outcome.producer = compositor.name
    return subimage, outcome


# ---- gather phase -----------------------------------------------------------
async def gather_phase(
    ctx: BaseRankContext, tile: OwnedTile, height: int, width: int
) -> Optional[SubImage]:
    """Collect owned tiles to rank 0 over the substrate; rank 0 returns
    the assembled final image, everyone else ``None``."""
    ctx.begin_stage(GATHER_STAGE)
    payload = (
        tile.owned_rect,
        tile.owned_indices,
        tile.values_i.tobytes(),
        tile.values_a.tobytes(),
    )
    collected = await gather(ctx, payload, root=0)
    if ctx.rank != 0:
        return None
    assert collected is not None
    tiles = [
        OwnedTile(
            rect,
            indices,
            np.frombuffer(raw_i, dtype=np.float64),
            np.frombuffer(raw_a, dtype=np.float64),
        )
        for rect, indices, raw_i, raw_a in collected
    ]
    return assemble_tiles(tiles, height, width)


# ---- the full pipeline ------------------------------------------------------
async def pipeline_rank_program(
    ctx: BaseRankContext,
    cfg: RunConfig,
    gather_final: bool = True,
    fault_plan=None,
    recovery=None,
    progress=None,
):
    """One rank's full pipeline; module-level so every backend can ship it.

    Returns ``(subimage, outcome, final)`` where ``subimage`` is the
    pristine rendered image, ``outcome`` the compositing result, and
    ``final`` the assembled display image on rank 0 (``None`` elsewhere
    or when ``gather_final`` is off).

    ``fault_plan`` (a :class:`~repro.cluster.faults.FaultPlan`) installs
    this rank's seeded injector, sinking its event records into
    ``ctx.stats.events``; each phase boundary is a crash checkpoint.

    ``recovery`` (a :class:`~repro.cluster.recovery.RecoveryRuntime`)
    installs the stage checkpointer: the compositing engine snapshots
    into ``recovery.store`` after every exchange stage, and restores at
    ``recovery.resume`` before its stage loop (``None`` = fresh run).

    ``progress`` (a :class:`~repro.cluster.progress.ProgressFeed`,
    simulator only) installs the live partial-frame feed the engines
    emit into — copies only, no accounting impact.
    """
    if progress is not None:
        ctx.install_progress(progress)
    if fault_plan is not None:
        ctx.install_fault_injector(
            fault_plan.injector_for(ctx.rank, sink=ctx.stats.events)
        )
    if recovery is not None and recovery.store is not None:
        from ..cluster.recovery import StageCheckpointer

        ctx.install_checkpointer(
            StageCheckpointer(
                recovery.store,
                ctx.rank,
                resume=recovery.resume,
                sink=ctx.stats.events,
            )
        )
    scene = build_scene(cfg)
    if _fusable(cfg, scene):
        # One overlapped phase: tiles enter the router mid-render.  The
        # render checkpoint covers both (there is no boundary between
        # them any more); results are bit-identical to the split path.
        ctx.fault_checkpoint("render")
        subimage, outcome = await fused_render_composite_phase(ctx, cfg, scene)
    else:
        ctx.fault_checkpoint("render")
        subimage = await render_phase(ctx, cfg, scene)
        ctx.fault_checkpoint("composite")
        outcome = await composite_phase(ctx, cfg, subimage.copy(), scene)
    final = None
    if gather_final:
        ctx.fault_checkpoint("gather")
        final = await gather_phase(
            ctx, tile_from_outcome(outcome), scene.camera.height, scene.camera.width
        )
    return subimage, outcome, final


async def degraded_rank_program(
    ctx: BaseRankContext, cfg: RunConfig, plan, gather_final: bool = True,
    progress=None,
):
    """Survivor-side rerun after a rank loss: the refolded plan's pipeline.

    ``plan`` is the :class:`~repro.volume.folded.FoldedPartition` built
    by :func:`~repro.volume.folded.refold_survivors`; bereaved cores
    re-render their merged blocks (distinct render-cache entries — the
    cache key carries the extent).  No faults are injected: degradation
    is a clean pass on the surviving substrate.  ``progress`` re-installs
    the run's live feed so the degraded attempt keeps streaming.
    """
    if progress is not None:
        ctx.install_progress(progress)
    scene = build_scene(cfg)
    scene = Scene(scene.volume, scene.transfer, scene.camera, plan)
    subimage = await render_phase(ctx, cfg, scene)
    outcome = await composite_phase(ctx, cfg, subimage.copy(), scene)
    final = None
    if gather_final:
        final = await gather_phase(
            ctx, tile_from_outcome(outcome), scene.camera.height, scene.camera.width
        )
    return subimage, outcome, final
