"""mpi4py backend: run the rank programs on a real MPI cluster.

The faithful deployment path: the same rank-program coroutines that run
on the simulator and the multiprocessing backend execute over real MPI.
``mpi4py`` is not installable in the offline development environment, so
this backend is exercised indirectly — it is a line-for-line mirror of
:mod:`repro.cluster.mp_backend` (which *is* tested end to end) with the
queue verbs swapped for ``mpi4py`` calls.  Import is lazy and guarded;
everything else in the library works without MPI.

Messages use the same ``(tag, wire, nbytes, pickled, crc)`` framing as
the multiprocessing backend so per-stage byte counters agree with the
simulator's pricing, and accounting fills the same per-stage
:class:`~repro.cluster.stats.RankStats` (wall-clock ``comm_time``).
Receivers verify the CRC32 and raise
:class:`~repro.errors.WireFormatError` on mismatch; fault injection
hooks through the shared protocol layer exactly as on the other two
substrates.

Usage on a cluster::

    mpiexec -n 8 python -m repro.pipeline.mpi_main \
        --dataset engine_low --method bsbrc --image-size 384 --out out.pgm
"""

from __future__ import annotations

import time
import zlib
from typing import Any, Optional

from ..errors import ConfigurationError, WireFormatError
from .events import ANY_TAG
from .faults import frame_checksum
from .protocol import BaseRankContext, decode_payload, encode_payload
from .stats import RankStats, merge_counters

__all__ = ["MPIRankContext", "MPIRequest", "require_mpi"]


def require_mpi():
    """Import and return ``mpi4py.MPI`` with a helpful failure message."""
    try:
        from mpi4py import MPI  # type: ignore[import-not-found]
    except ImportError as exc:
        raise ConfigurationError(
            "the MPI backend needs mpi4py (pip install mpi4py) and an MPI "
            "runtime; use the simulator or the multiprocessing backend "
            "otherwise"
        ) from exc
    return MPI


class MPIRequest:
    """Handle for a nonblocking operation on the MPI backend."""

    __slots__ = ("kind", "peer", "tag", "mpi_request", "nbytes")

    def __init__(self, kind: str, peer: int, tag: int, mpi_request, nbytes: int = 0):
        self.kind = kind  # "isend" | "irecv"
        self.peer = peer
        self.tag = tag
        self.mpi_request = mpi_request
        self.nbytes = nbytes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MPIRequest({self.kind}, peer={self.peer}, tag={self.tag})"


class MPIRankContext(BaseRankContext):
    """Rank API over an ``mpi4py`` communicator.

    Mirrors :class:`~repro.cluster.mp_backend.MPRankContext`: the
    ``async`` verbs complete synchronously via blocking MPI calls, so
    rank-program coroutines run to completion without an event loop
    (drive them with :func:`~repro.cluster.protocol.drive`).
    """

    backend_name = "mpi"

    def __init__(self, comm=None):
        mpi = require_mpi()
        self._mpi = mpi
        self._comm = comm if comm is not None else mpi.COMM_WORLD
        self._stats = RankStats(rank=self._comm.Get_rank())
        self._current_stage = -1

    # ---- identity --------------------------------------------------------
    @property
    def rank(self) -> int:
        return self._comm.Get_rank()

    @property
    def size(self) -> int:
        return self._comm.Get_size()

    @property
    def comm(self):
        """The underlying ``mpi4py`` communicator (for host-side collectives)."""
        return self._comm

    @property
    def stats(self) -> RankStats:
        return self._stats

    # ---- staging ----------------------------------------------------------
    def _set_stage(self, stage: int) -> None:
        self._current_stage = int(stage)

    @property
    def current_stage(self) -> int:
        return self._current_stage

    @property
    def counters(self) -> dict[str, int]:
        """All named counters merged across stages (back-compat view)."""
        return merge_counters(self._stats.stages.values())

    def _bucket(self):
        return self._stats.stage(self._current_stage)

    # ---- computation (counts only; wall time measures itself) --------------
    async def compute(self, seconds: float, *, kind: str = "compute", count: int = 0) -> None:
        self._bucket().add_counter(kind, count)

    # ---- transport ---------------------------------------------------------
    def _account_sent(self, size: int) -> None:
        bucket = self._bucket()
        bucket.bytes_sent += size
        bucket.msgs_sent += 1

    def _account_recv(self, size: int, seconds: float) -> None:
        bucket = self._bucket()
        bucket.comm_time += seconds
        bucket.bytes_recv += size
        bucket.msgs_recv += 1

    def _frame(self, verb: str, dst: int, payload: Any, nbytes: Optional[int], tag: int):
        """Encode, checksum, and fault-inject one outgoing frame.

        Returns ``(frame, size)`` with ``frame is None`` for an injected
        drop (the caller skips the MPI call and its accounting).
        """
        faults = self._message_faults(verb, dst, tag)
        wire, size, pickled = encode_payload(payload, nbytes)
        crc = frame_checksum(wire)
        if faults is not None:
            if faults.delay > 0.0:
                time.sleep(faults.delay)
            if faults.drop:
                return None, size
            if faults.corrupt:
                raw = self._raw_bytes(wire)
                if raw is not None:
                    if crc is None:
                        crc = zlib.crc32(raw) & 0xFFFFFFFF
                    wire = self._fault_injector.damage_wire(raw)
        return (tag, wire, size, pickled, crc), size

    @staticmethod
    def _raw_bytes(wire: Any) -> Optional[bytes]:
        if wire is None:
            return b""
        if isinstance(wire, (bytes, bytearray)):
            return bytes(wire)
        try:
            return memoryview(wire).tobytes()
        except TypeError:
            return None

    def _checked_frame(self, frame, src: int):
        """CRC-verify one received frame; returns the decoded payload and size."""
        got_tag, wire, size, pickled, crc = frame
        if crc is not None:
            actual = frame_checksum(wire)
            if actual != crc:
                self._stats.events.append(
                    {
                        "event": "detected",
                        "fault": "corrupt",
                        "rank": self.rank,
                        "src": src,
                        "tag": got_tag,
                        "stage": self._current_stage,
                    }
                )
                raise WireFormatError(
                    f"rank {self.rank}: message from rank {src} (tag {got_tag}, "
                    f"{size}B) failed CRC32 check on the {self.backend_name} "
                    f"backend (expected {crc:#010x}, got "
                    f"{'unchecksummable' if actual is None else format(actual, '#010x')})"
                )
        return decode_payload(wire, pickled), size

    async def send(self, dst: int, payload: Any, *, nbytes: Optional[int] = None, tag: int = 0):
        self._check_peer(dst)
        frame, size = self._frame("send", dst, payload, nbytes, tag)
        if frame is None:
            return
        start = time.perf_counter()
        self._comm.send(frame, dest=dst, tag=tag)
        self._bucket().comm_time += time.perf_counter() - start
        self._account_sent(size)

    async def recv(self, src: int, *, tag: int = ANY_TAG) -> Any:
        self._check_peer(src)
        mpi_tag = self._mpi.ANY_TAG if tag == ANY_TAG else tag
        start = time.perf_counter()
        frame = self._comm.recv(source=src, tag=mpi_tag)
        payload, size = self._checked_frame(frame, src)
        self._account_recv(size, time.perf_counter() - start)
        return payload

    async def sendrecv(
        self, peer: int, payload: Any, *, nbytes: Optional[int] = None, tag: int = 0
    ) -> Any:
        if peer == self.rank:
            raise ConfigurationError("cannot sendrecv with self")
        self._check_peer(peer)
        frame, size = self._frame("sendrecv", peer, payload, nbytes, tag)
        if frame is None:
            # The faulty rank skips the whole exchange, matching the
            # other substrates; the partner blocks until its timeout.
            return None
        start = time.perf_counter()
        got_frame = self._comm.sendrecv(
            frame, dest=peer, sendtag=tag, source=peer, recvtag=tag
        )
        elapsed = time.perf_counter() - start
        got_payload, got_size = self._checked_frame(got_frame, peer)
        self._account_sent(size)
        self._account_recv(got_size, elapsed)
        return got_payload

    # ---- nonblocking -------------------------------------------------------
    async def isend(self, dst: int, payload: Any, *, nbytes: Optional[int] = None, tag: int = 0):
        self._check_peer(dst)
        frame, size = self._frame("isend", dst, payload, nbytes, tag)
        if frame is None:
            # Dropped on the wire: hand back an already-done request.
            return MPIRequest("isend", dst, tag, None, size)
        mpi_request = self._comm.isend(frame, dest=dst, tag=tag)
        self._account_sent(size)
        return MPIRequest("isend", dst, tag, mpi_request, size)

    async def irecv(self, src: int, *, tag: int = ANY_TAG):
        self._check_peer(src)
        mpi_tag = self._mpi.ANY_TAG if tag == ANY_TAG else tag
        mpi_request = self._comm.irecv(source=src, tag=mpi_tag)
        return MPIRequest("irecv", src, tag, mpi_request)

    async def wait(self, request) -> Any:
        if not isinstance(request, MPIRequest):
            raise ConfigurationError(
                f"wait takes an MPIRequest on this backend, got {type(request).__name__}"
            )
        if request.mpi_request is None:  # injected drop: nothing in flight
            return None
        start = time.perf_counter()
        frame = request.mpi_request.wait()
        elapsed = time.perf_counter() - start
        if request.kind == "isend":
            self._bucket().comm_time += elapsed
            return None
        payload, size = self._checked_frame(frame, request.peer)
        request.nbytes = size
        self._account_recv(size, elapsed)
        return payload

    # ---- collective --------------------------------------------------------
    async def barrier(self) -> None:
        start = time.perf_counter()
        self._comm.Barrier()
        self._bucket().comm_time += time.perf_counter() - start
