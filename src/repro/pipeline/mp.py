"""Compositing-phase cross-validation on the multiprocessing backend.

Thin entry point: runs the same compositor coroutine on real OS
processes (see :mod:`repro.cluster.mp_backend`) and assembles the final
image through the shared :mod:`~repro.pipeline.assemble` routine — a
second, transport-level check that the simulator's results are genuine
algorithm output, not an artifact of the simulation.  The full
partition→render→composite→gather pipeline on this backend is
``SortLastSystem(config).run(backend="mp")``.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ..cluster.backend import MPBackend
from ..compositing.registry import make_compositor
from ..errors import CompositingError
from ..render.image import SubImage
from ..volume.folded import FoldedPartition
from ..volume.partition import PartitionPlan
from .assemble import assemble_tiles, tile_from_outcome

__all__ = ["run_compositing_mp"]


async def _rank_program(ctx, images, method_name, method_options, plan, view_dir):
    """Per-rank compositing program (module-level: picklable)."""
    compositor = make_compositor(method_name, **method_options)
    if isinstance(plan, FoldedPartition):
        from ..compositing.folding import FoldedCompositor

        compositor = FoldedCompositor(compositor)
    image = images[ctx.rank].copy()
    outcome = await compositor.run(ctx, image, plan, view_dir)
    return tile_from_outcome(outcome)


def run_compositing_mp(
    images: Sequence[SubImage],
    method: str,
    plan: PartitionPlan | FoldedPartition,
    view_dir: np.ndarray,
    *,
    timeout: float = 60.0,
    **method_options: Any,
) -> SubImage:
    """Composite on real processes; returns the assembled final image.

    Methods requiring simulator-only primitives (``direct-async``) are
    rejected by the backend at run time.
    """
    num_ranks = len(images)
    if plan.num_ranks != num_ranks:
        raise CompositingError(
            f"{num_ranks} images supplied for a {plan.num_ranks}-rank plan"
        )
    view_dir = np.asarray(view_dir, dtype=np.float64)
    result = MPBackend().run(
        num_ranks,
        _rank_program,
        (list(images), method, dict(method_options), plan, view_dir),
        timeout=timeout,
    )
    height, width = images[0].shape
    return assemble_tiles(result.returns, height, width)
