"""Tests for the timeline/Gantt analysis tooling and machine presets."""

import json

import pytest

from conftest import rendered_workload
from repro.analysis.timeline import (
    ascii_gantt,
    intervals_from_stats,
    trace_to_json,
)
from repro.cluster.model import (
    ETHERNET_CLUSTER,
    MODERN_CLUSTER,
    PRESETS,
    SP2,
    T3E,
)
from repro.cluster.simulator import Simulator, TraceEvent
from repro.cluster.stats import RankStats, RunResult
from repro.pipeline.system import run_compositing


def fabricate_result():
    rs0 = RankStats(rank=0)
    stage = rs0.stage(0)
    stage.comp_time = 2.0
    stage.comm_time = 1.0
    rs1 = RankStats(rank=1)
    stage = rs1.stage(0)
    stage.comp_time = 0.5
    stage.wait_time = 1.5
    stage.comm_time = 1.0
    return RunResult(num_ranks=2, returns=[None, None], rank_stats=[rs0, rs1],
                     makespan=3.0)


class TestIntervals:
    def test_kinds_and_ordering(self):
        intervals = intervals_from_stats(fabricate_result())
        rank1 = [iv for iv in intervals if iv.rank == 1]
        assert [iv.kind for iv in rank1] == ["compute", "wait", "comm"]
        # back-to-back spans
        assert rank1[0].end == rank1[1].start
        assert rank1[1].end == rank1[2].start

    def test_durations_match_stats(self):
        intervals = intervals_from_stats(fabricate_result())
        total0 = sum(iv.duration for iv in intervals if iv.rank == 0)
        assert total0 == pytest.approx(3.0)

    def test_zero_durations_skipped(self):
        intervals = intervals_from_stats(fabricate_result())
        assert all(iv.duration > 0 for iv in intervals)


class TestGantt:
    def test_structure(self):
        chart = ascii_gantt(fabricate_result(), title="demo")
        lines = chart.splitlines()
        assert lines[0] == "demo"
        assert lines[2].startswith("r00 |")
        assert lines[3].startswith("r01 |")
        assert "legend" in lines[-1]
        assert "#" in chart and "=" in chart and "." in chart

    def test_empty_run(self):
        empty = RunResult(num_ranks=1, returns=[None],
                          rank_stats=[RankStats(rank=0)], makespan=0.0)
        assert "no recorded activity" in ascii_gantt(empty)

    def test_real_run_shows_wait_for_unbalanced_method(self):
        subimages, plan, camera = rendered_workload("engine_high", 8)
        run = run_compositing(list(subimages), "bsbr", plan, camera.view_dir, SP2)
        chart = ascii_gantt(run.stats)
        assert "." in chart  # unbalanced rect sizes → someone waits

    def test_width_respected(self):
        chart = ascii_gantt(fabricate_result(), width=40)
        for line in chart.splitlines():
            if line.startswith("r0"):
                assert len(line) == len("r00 ||") + 40


class TestTraceJson:
    def test_roundtrip(self):
        events = [TraceEvent(time=0.5, rank=1, kind="post", detail="x")]
        data = json.loads(trace_to_json(events))
        assert data == [{"time": 0.5, "rank": 1, "kind": "post", "detail": "x"}]

    def test_from_real_trace(self):
        async def program(ctx):
            await ctx.compute(1e-3)
            await ctx.sendrecv(ctx.rank ^ 1, b"x")

        sim = Simulator(2, SP2, trace=True)
        sim.run(program)
        data = json.loads(trace_to_json(sim.trace_events))
        assert len(data) > 0
        assert {e["kind"] for e in data} >= {"compute", "post"}


class TestMachinePresets:
    def test_all_presets_registered(self):
        for model in (T3E, ETHERNET_CLUSTER, MODERN_CLUSTER):
            assert PRESETS[model.name] is model

    def test_t3e_faster_everywhere(self):
        assert T3E.tc < SP2.tc and T3E.ts < SP2.ts and T3E.to < SP2.to

    def test_ethernet_network_much_slower(self):
        assert ETHERNET_CLUSTER.tc > SP2.tc
        assert ETHERNET_CLUSTER.ts > SP2.ts

    def test_modern_cluster_orders_of_magnitude(self):
        assert MODERN_CLUSTER.to < SP2.to / 100
        assert MODERN_CLUSTER.tc < SP2.tc / 10

    def test_runconfig_accepts_new_presets(self):
        from repro.pipeline.config import RunConfig

        for name in ("t3e", "ethernet-cluster", "modern-cluster"):
            assert RunConfig(machine=name).machine is PRESETS[name]

    def test_crossovers_shift_with_architecture(self):
        """On the Ethernet cluster (expensive bytes) BSLC's tiny messages
        close most of its gap to BSBRC; on the T3E (cheap bytes) the gap
        is dominated by BSLC's encode CPU and stays wide."""
        subimages, plan, camera = rendered_workload("engine_high", 8)
        gaps = {}
        for model in (T3E, ETHERNET_CLUSTER):
            bslc = run_compositing(list(subimages), "bslc", plan, camera.view_dir, model)
            bsbrc = run_compositing(list(subimages), "bsbrc", plan, camera.view_dir, model)
            gaps[model.name] = bslc.stats.t_total / bsbrc.stats.t_total
        assert gaps["ethernet-cluster"] < gaps["t3e"]
