"""Serving chaos: kill-restart crash survival and deterministic overload.

The contract under test (ISSUE: overload control & crash-survivable
serving):

* **Kill-restart.**  A serving process SIGKILLed — while jobs are
  queued, and while a checkpointing job is mid-render on the
  multiprocessing substrate — leaves orphaned claims in ``work/`` whose
  leases stop heartbeating.  A restarted server reclaims them
  (attempt-numbered atomic renames), every job still ends with exactly
  one ``repro.serve-result/1`` document, and the final images are
  bit-identical to an undisturbed run of the same configs.  The
  reclaimed ``lossless`` job resumes whole-run from its on-disk
  checkpoint store rather than discarding all progress.
* **Overload.**  Arrivals at several times pool capacity under each
  shedding policy (``block`` / ``reject`` / ``shed-lowest-qos``) never
  deadlock and never leave a client hanging: sheds and rejects are
  exact, typed, and logged as structured ``repro.serve-event/1``
  documents, and every *accepted* job's final image is bit-identical to
  a one-shot run.

The whole suite runs under the same SIGALRM hang watchdog as
``tests/test_chaos.py`` (pytest-timeout optional), and the killed
server runs in its own session/process group so orphaned mp workers die
with it.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.errors import JobRejectedError, JobShedError
from repro.pipeline.config import RunConfig
from repro.pipeline.system import SortLastSystem
from repro.serving import (
    RenderService,
    load_result,
    read_events,
    serve,
    submit_job,
    wait_for_result,
)

pytestmark = pytest.mark.serve_chaos

_WATCHDOG_SECONDS = 300
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


@pytest.fixture(autouse=True)
def _hang_watchdog():
    """Hard per-test hang guard, independent of pytest-timeout.

    POSIX interval timers are not inherited across fork, so the alarm
    cannot misfire inside mp worker processes.
    """

    def _fire(signum, frame):  # pragma: no cover - only on a real hang
        raise RuntimeError(
            f"serve-chaos test exceeded the {_WATCHDOG_SECONDS}s hang watchdog"
        )

    previous = signal.signal(signal.SIGALRM, _fire)
    signal.alarm(_WATCHDOG_SECONDS)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


def _cfg(**kw) -> RunConfig:
    base = dict(
        dataset="sphere",
        image_size=64,
        num_ranks=4,
        method="bsbrc",
        volume_shape=(32, 32, 16),
    )
    base.update(kw)
    return RunConfig(**base)


# A standalone server process the test can SIGKILL without mercy.  It
# runs in its own session (process group) so forked mp workers die with
# it, exactly like a machine-level crash.
_SERVER_SCRIPT = """\
import sys
from repro.pipeline.config import RunConfig
from repro.serving import serve

spool, backend = sys.argv[1], sys.argv[2]
cfg = RunConfig(
    dataset="sphere", image_size=64, num_ranks=4, method="bsbrc",
    volume_shape=(32, 32, 16), backend=backend,
)
serve(spool, cfg, max_workers=1, lease_s=1.0, heartbeat_s=0.25, poll=0.01)
"""


def _start_server(tmp_path, spool: str, backend: str) -> subprocess.Popen:
    script = tmp_path / "server.py"
    script.write_text(_SERVER_SCRIPT)
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, str(script), spool, backend],
        env=env,
        start_new_session=True,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _kill_server(proc: subprocess.Popen) -> None:
    """SIGKILL the server's whole process group (mp workers included)."""
    try:
        os.killpg(proc.pid, signal.SIGKILL)
    except ProcessLookupError:  # pragma: no cover - already gone
        pass
    proc.wait(timeout=30)


def _wait_for(predicate, timeout: float, what: str) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError(f"timed out waiting for {what}")


class TestKillRestart:
    def test_kill_while_queued_then_reclaim(self, tmp_path):
        """Kill the server with one job rendering and one queued; a
        restarted server reclaims the expired leases and finishes both,
        bit-identical to undisturbed runs, exactly one result each."""
        spool = str(tmp_path / "spool")
        # Claimed in name order: the big job renders first, the small
        # one sits queued behind the single worker.
        submit_job(spool, job_id="a-big", deltas={"image_size": 96, "rot_y": 30.0})
        submit_job(spool, job_id="b-small", deltas={"rot_y": 60.0})
        server = _start_server(tmp_path, spool, "sim")
        try:
            work = os.path.join(spool, "work")
            _wait_for(
                lambda: os.path.exists(os.path.join(work, "a-big.a1.json"))
                and os.path.exists(
                    os.path.join(spool, "out", "a-big.events.jsonl")
                ),
                60.0,
                "the server to claim and start the first job",
            )
        finally:
            _kill_server(server)
        assert load_result(spool, "a-big") is None, "kill should land mid-render"
        # Orphaned claims with dead leases are all that's left.
        orphans = [n for n in os.listdir(work) if n.endswith(".a1.json")]
        assert "a-big.a1.json" in orphans
        time.sleep(1.3)  # let the 1s leases expire

        served = serve(
            spool, _cfg(), max_workers=2, lease_s=1.0, idle_timeout=3.0, poll=0.01
        )
        assert served >= 1
        doc_a = wait_for_result(spool, "a-big", timeout=10.0)
        doc_b = wait_for_result(spool, "b-small", timeout=10.0)
        assert doc_a["ok"] and doc_b["ok"]
        assert doc_a["attempt"] == 2, "the mid-render orphan was reclaimed"
        # Exactly one result document per job, and work/ fully retired.
        out_names = os.listdir(os.path.join(spool, "out"))
        assert out_names.count("a-big.result.json") == 1
        assert out_names.count("b-small.result.json") == 1
        assert [n for n in os.listdir(work) if n.endswith(".json")] == []

        for job_id, deltas in (
            ("a-big", {"image_size": 96, "rot_y": 30.0}),
            ("b-small", {"rot_y": 60.0}),
        ):
            one_shot = SortLastSystem(_cfg(**deltas)).run(recovery="degrade")
            with np.load(os.path.join(spool, "out", f"{job_id}.final.npz")) as npz:
                assert np.array_equal(npz["intensity"], one_shot.final_image.intensity)
                assert np.array_equal(npz["opacity"], one_shot.final_image.opacity)
        # The orphan's torn event log (if any) replays without a crash.
        read_events(spool, "a-big")

    def test_kill_mid_render_on_mp_resumes_from_checkpoints(self, tmp_path):
        """SIGKILL a multiprocessing server mid-render of a lossless
        job; the restarted server reclaims the lease and resumes the
        whole run from the job's on-disk checkpoint store."""
        spool = str(tmp_path / "spool")
        submit_job(
            spool,
            job_id="ckpt-job",
            qos="lossless",
            deltas={"image_size": 96, "rot_y": 45.0},
        )
        ckpt_dir = os.path.join(spool, "work", "ckpt-job.ckpt")
        server = _start_server(tmp_path, spool, "mp")
        try:
            _wait_for(
                lambda: os.path.isdir(ckpt_dir)
                and any(n.endswith(".pkl") for n in os.listdir(ckpt_dir)),
                120.0,
                "the first on-disk checkpoint of the mp render",
            )
        finally:
            _kill_server(server)
        killed_mid_render = load_result(spool, "ckpt-job") is None
        time.sleep(1.3)

        serve(
            spool,
            _cfg(backend="mp"),
            max_workers=1,
            lease_s=1.0,
            idle_timeout=3.0,
            poll=0.01,
        )
        doc = wait_for_result(spool, "ckpt-job", timeout=10.0)
        assert doc["ok"]
        if killed_mid_render:
            assert doc["attempt"] == 2, "the expired lease was reclaimed"
        assert doc["backend"] == "mp"
        # Whole-run lockstep resume is bit-exact: identical to a clean
        # one-shot render of the same config (sim/mp parity is a repo
        # invariant, so the sim reference suffices and is faster).
        one_shot = SortLastSystem(_cfg(image_size=96, rot_y=45.0)).run()
        with np.load(doc["image"]) as npz:
            assert np.array_equal(npz["intensity"], one_shot.final_image.intensity)
            assert np.array_equal(npz["opacity"], one_shot.final_image.opacity)
        # Retired claim: no work files, no leases, checkpoints cleaned.
        leftovers = [
            n
            for n in os.listdir(os.path.join(spool, "work"))
            if n.endswith(".json") or n == "ckpt-job.ckpt"
        ]
        assert leftovers == []

    def test_lease_exhaustion_buries_the_job(self, tmp_path):
        """A claim whose lease keeps expiring is buried with a typed
        failure document after max_attempts, not retried forever."""
        spool = str(tmp_path / "spool")
        submit_job(spool, job_id="doomed", deltas={"rot_y": 5.0})
        os.makedirs(os.path.join(spool, "work"), exist_ok=True)
        # Forge an orphan already at the attempt ceiling with a long-
        # dead lease (no lease file; the work file's mtime is ancient).
        src = os.path.join(spool, "jobs", "doomed.json")
        dst = os.path.join(spool, "work", "doomed.a3.json")
        os.replace(src, dst)
        os.utime(dst, (time.time() - 3600, time.time() - 3600))
        serve(spool, _cfg(), max_workers=1, lease_s=1.0, max_attempts=3,
              idle_timeout=2.0, poll=0.01)
        doc = load_result(spool, "doomed")
        assert doc is not None and not doc["ok"]
        assert doc["error"] == "LeaseReclaimExhausted"
        assert doc["attempt"] == 3


class TestOverloadMatrix:
    """Arrivals at 4x pool capacity under every policy: no deadlock, no
    hung client, exact shedding, accepted finals bit-identical."""

    N_ARRIVALS = 8  # 4x the (max_workers=1, queue_limit=1) capacity of 2

    def _blocked_service(self, **kw):
        service = RenderService(_cfg(), max_workers=1, **kw)
        gate = threading.Event()
        started = threading.Event()

        def _block():
            started.set()
            gate.wait(120)

        service.pool.submit(_block)
        assert started.wait(10)
        return service, gate

    def _assert_bit_identical(self, ticket):
        result = ticket.result(timeout=1)
        one_shot = SortLastSystem(
            _cfg(rot_y=result.config.rot_y)
        ).run(recovery="degrade")
        assert np.array_equal(
            result.final_image.intensity, one_shot.final_image.intensity
        )

    def test_block_policy_completes_everything(self):
        service = RenderService(
            _cfg(), max_workers=1, queue_limit=1, shed_policy="block"
        )
        tickets = []
        with service:
            # Sequential submits back-pressure against the full queue;
            # finishing workers free slots, so this always terminates.
            for i in range(self.N_ARRIVALS):
                tickets.append(service.submit("s", rot_y=float(i * 10)))
            for ticket in tickets:
                ticket.result(timeout=240)
        assert service.shed_jobs == 0 and service.rejected_jobs == 0
        self._assert_bit_identical(tickets[0])
        self._assert_bit_identical(tickets[-1])

    def test_reject_policy_sheds_exactly_the_overflow(self):
        service, gate = self._blocked_service(queue_limit=2, shed_policy="reject")
        try:
            accepted, rejected = [], 0
            for i in range(self.N_ARRIVALS):
                try:
                    accepted.append(service.submit("s", rot_y=float(i * 10)))
                except JobRejectedError:
                    rejected += 1
            # Exact arithmetic: the queue holds 2, everything else is
            # turned away at the door while the worker is wedged.
            assert len(accepted) == 2 and rejected == self.N_ARRIVALS - 2
            assert service.rejected_jobs == rejected
            assert (
                sum(1 for e in service.events if e["kind"] == "rejected") == rejected
            )
            gate.set()
            for ticket in accepted:
                ticket.result(timeout=240)
                self._assert_bit_identical(ticket)
        finally:
            gate.set()
            service.close()

    def test_shed_lowest_qos_protects_the_vip(self):
        service, gate = self._blocked_service(
            queue_limit=2, shed_policy="shed-lowest-qos"
        )
        try:
            service.open_session("cheap", qos="degrade")
            service.open_session("vip", qos="lossless")
            cheap = [
                service.submit("cheap", rot_y=float(i * 10)) for i in range(2)
            ]
            vips, vip_rejected = [], 0
            for i in range(self.N_ARRIVALS - 2):
                try:
                    vips.append(service.submit("vip", rot_y=float(100 + i * 10)))
                except JobRejectedError:
                    vip_rejected += 1
            # Both cheap jobs were evicted for the first two VIPs; once
            # only VIPs queue, further VIP arrivals outrank nobody.
            assert len(vips) == 2 and vip_rejected == self.N_ARRIVALS - 4
            assert service.shed_jobs == 2
            for ticket in cheap:
                with pytest.raises(JobShedError):
                    ticket.result(timeout=10)  # typed, never a hang
            shed_events = [e for e in service.events if e["kind"] == "shed"]
            assert {e["job_id"] for e in shed_events} == {
                t.job_id for t in cheap
            }
            assert all(
                e["schema"] == "repro.serve-event/1" for e in service.events
            )
            gate.set()
            for ticket in vips:
                ticket.result(timeout=240)
                self._assert_bit_identical(ticket)
        finally:
            gate.set()
            service.close()

    def test_overloaded_spool_with_deadlines_settles_every_job(self, tmp_path):
        """End-to-end pressure valve: more spool jobs than capacity,
        tight deadlines, reject policy — every job still ends with
        exactly one typed result document; nobody waits forever."""
        spool = str(tmp_path / "spool")
        job_ids = [
            submit_job(
                spool,
                job_id=f"burst-{i}",
                deltas={"rot_y": float(i * 7)},
                deadline_s=None if i % 2 == 0 else 120.0,
            )
            for i in range(6)
        ]
        serve(
            spool,
            _cfg(),
            max_workers=2,
            queue_limit=4,
            shed_policy="reject",
            max_jobs=6,
            idle_timeout=15.0,
            poll=0.01,
        )
        statuses = {}
        for job_id in job_ids:
            doc = wait_for_result(spool, job_id, timeout=10.0)
            statuses[job_id] = doc["ok"] or doc["error"]
        # Every job settled: rendered, or typed-rejected; no pending.
        assert all(v is True or isinstance(v, str) for v in statuses.values())
        assert json.dumps(statuses)  # structured & serializable
