"""Benchmark R1 — §3.2 empty-bounding-rectangle vs viewpoint rotation.

The paper bounds the number of *non-empty* receiving bounding
rectangles a BSBR rank sees by log ∛P (axis-aligned view), log ∛(P²)
(one rotation axis) and log P (two axes).  This bench counts them on
the engine workload and checks the qualitative trend: more rotation
axes → no fewer non-empty rectangles, and plenty of empty ones exist at
the axis-aligned view (the effect BSBR exploits).
"""

from conftest import emit
from repro.experiments.rotation import format_rotation, run_rotation


def test_bench_rotation_empty_rects(benchmark):
    observations = benchmark.pedantic(
        lambda: run_rotation(dataset="engine_low", rank_counts=(8, 64), image_size=384),
        rounds=1,
        iterations=1,
    )
    emit("rotation", format_rotation(observations))

    by_key = {(o.viewpoint, o.num_ranks): o for o in observations}
    for num_ranks in (8, 64):
        normal = by_key[("normal", num_ranks)]
        one = by_key[("one-axis", num_ranks)]
        two = by_key[("two-axis", num_ranks)]
        # Trend: rotation never decreases the mean non-empty count much.
        assert one.mean_nonempty_recv >= normal.mean_nonempty_recv - 0.5
        assert two.mean_nonempty_recv >= normal.mean_nonempty_recv - 0.5
        # Empty receiving rectangles genuinely occur at scale — the whole
        # reason eq. (4) carries the [B(k)] indicator.
        if num_ranks == 64:
            assert normal.empty_recv_total > 0
