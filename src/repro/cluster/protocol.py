"""The rank-context protocol shared by every execution substrate.

:class:`BaseRankContext` is the abstract contract between compositing
algorithms and the machine they run on.  A rank program is an ``async
def`` coroutine taking a context; the context exposes MPI-flavoured
verbs (``send``/``recv``/``sendrecv``/``isend``/``irecv``/``wait``/
``barrier``), staging and accounting hooks, and modelled-computation
charging.  Three substrates implement it:

* :class:`~repro.cluster.context.RankContext` — the discrete-event
  simulator (modelled virtual time),
* :class:`~repro.cluster.mp_backend.MPRankContext` — real OS processes
  over multiprocessing queues (wall-clock time),
* :class:`~repro.cluster.mpi_backend.MPIRankContext` — real MPI via
  mpi4py (wall-clock time).

Because the surface is an ABC, a substrate that forgets a verb fails at
class-instantiation time instead of deep inside a compositing stage —
the API drift that used to be invisible until runtime is now a test
failure.

Payload sizing
--------------
:func:`encode_payload` sizes *and* serializes a payload in one pass:
buffer-like payloads (``bytes``/``memoryview``/numpy) pass through
untouched with their true buffer size, while arbitrary objects are
pickled exactly once — the resulting blob is both the priced size and
the bytes a real transport ships.  :func:`payload_nbytes` remains the
sizing-only convenience used by the simulator (which never serializes).
"""

from __future__ import annotations

import abc
import pickle
import time
from typing import Any, NamedTuple, Optional

from ..errors import ConfigurationError, SimulationError
from .events import ANY_TAG
from .stats import RankStats

__all__ = [
    "BaseRankContext",
    "EncodedPayload",
    "encode_payload",
    "decode_payload",
    "payload_nbytes",
    "drive",
]


class EncodedPayload(NamedTuple):
    """A payload sized and serialized in a single pass.

    ``wire`` is what a real transport ships: the original object for
    buffer-like payloads (which any transport moves without pickling),
    or the pickled blob for arbitrary objects.  ``nbytes`` is the priced
    wire size; ``pickled`` says whether :func:`decode_payload` must
    unpickle on the receiving side.
    """

    wire: Any
    nbytes: int
    pickled: bool


def encode_payload(payload: Any, nbytes: Optional[int] = None) -> EncodedPayload:
    """Size and (when necessary) serialize ``payload`` exactly once.

    ``bytes``/``bytearray``/``memoryview`` and numpy arrays report their
    true buffer size and pass through unserialized; ``None`` is a
    zero-byte control message.  Any other object is pickled once — the
    blob is both shipped and measured, so transports never pay a second
    serialization just to learn the size.  An explicit ``nbytes``
    overrides the priced size (never the wire representation).
    """
    if payload is None:
        return EncodedPayload(None, 0 if nbytes is None else int(nbytes), False)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return EncodedPayload(
            payload, len(payload) if nbytes is None else int(nbytes), False
        )
    size_attr = getattr(payload, "nbytes", None)
    if isinstance(size_attr, int):
        return EncodedPayload(
            payload, size_attr if nbytes is None else int(nbytes), False
        )
    try:
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:  # unpicklable: caller must size it
        raise ConfigurationError(
            f"cannot infer wire size of {type(payload).__name__}; pass nbytes= explicitly"
        ) from exc
    return EncodedPayload(blob, len(blob) if nbytes is None else int(nbytes), True)


def decode_payload(wire: Any, pickled: bool) -> Any:
    """Inverse of :func:`encode_payload` on the receiving side."""
    return pickle.loads(wire) if pickled else wire


def payload_nbytes(payload: Any) -> int:
    """Best-effort wire size of a payload (sizing only, no shipping)."""
    return encode_payload(payload).nbytes


def drive(coro) -> Any:
    """Run a rank coroutine to completion on a synchronous transport.

    Real-transport contexts implement every verb with blocking calls
    inside ``async`` methods that never suspend, so the coroutine runs
    to ``StopIteration`` without an event loop.  A yield means the
    program awaited a raw simulator op, which no real transport can
    honour.
    """
    try:
        while True:
            yielded = coro.send(None)
            raise SimulationError(
                f"operation {yielded!r} is not supported on a real transport "
                "(simulator-only primitive)"
            )
    except StopIteration as stop:
        return stop.value


class BaseRankContext(abc.ABC):
    """Abstract per-rank view of the machine, shared by all substrates.

    Concrete helpers (``note``, ``charge_*``, ``wait_all``,
    ``_check_peer``) are implemented here against the abstract surface
    so substrates cannot drift apart on the parts algorithms rely on.
    """

    #: Human-readable substrate name used in error messages.
    backend_name: str = "abstract"

    # ---- identity ----------------------------------------------------------
    @property
    @abc.abstractmethod
    def rank(self) -> int:
        """This rank's index in ``0..size-1``."""

    @property
    @abc.abstractmethod
    def size(self) -> int:
        """Number of ranks in the run."""

    @property
    def model(self):
        """The machine cost model; only the simulator has one."""
        raise ConfigurationError(
            f"the {self.backend_name} backend has no machine model"
        )

    @property
    @abc.abstractmethod
    def stats(self) -> RankStats:
        """Per-stage accounting for this rank."""

    # ---- staging -----------------------------------------------------------
    def begin_stage(self, stage: int) -> None:
        """Route subsequent accounting into stage bucket ``stage``.

        Concrete on the base: substrates implement only the storage
        (:meth:`_set_stage`), so the stage-entry fault hook fires
        identically on every substrate.
        """
        self._set_stage(int(stage))
        injector = self._fault_injector
        if injector is not None:
            injector.on_stage(int(stage))

    @abc.abstractmethod
    def _set_stage(self, stage: int) -> None:
        """Store the active stage bucket index (substrate storage only)."""

    @property
    @abc.abstractmethod
    def current_stage(self) -> int:
        """The active stage bucket index."""

    def note(self, kind: str, count: int = 1) -> None:
        """Record a zero-cost named counter in the current stage bucket."""
        self.stats.stage(self.current_stage).add_counter(kind, count)

    # ---- fault injection ---------------------------------------------------
    #: The installed :class:`~repro.cluster.faults.RankFaultInjector`
    #: (class-level default keeps plain contexts fault-free for free).
    _fault_injector = None

    def install_fault_injector(self, injector) -> None:
        """Attach a per-rank fault injector (see :mod:`repro.cluster.faults`).

        The context consults it at stage entries (``begin_stage``),
        before every outgoing message, and at explicit
        :meth:`fault_checkpoint` calls.  ``None`` uninstalls.
        """
        self._fault_injector = injector

    @property
    def fault_injector(self):
        """The installed injector, or ``None``."""
        return self._fault_injector

    def fault_checkpoint(self, phase: str) -> None:
        """Give an installed injector a chance to crash this rank at a
        named pipeline phase boundary; a no-op without an injector.

        Also records the phase so failure reports (and
        :class:`~repro.errors.DeadlockError` diagnostics) can name where
        the rank was, even without an injector installed.
        """
        self._current_phase = phase
        injector = self._fault_injector
        if injector is not None:
            injector.checkpoint(phase, stage=self.current_stage)

    #: Last pipeline phase this rank entered (set by ``fault_checkpoint``).
    _current_phase: Optional[str] = None

    @property
    def current_phase(self) -> Optional[str]:
        """The pipeline phase the rank last entered, or ``None``."""
        return self._current_phase

    # ---- stage checkpointing ----------------------------------------------
    #: The installed :class:`~repro.cluster.recovery.StageCheckpointer`
    #: (class-level default keeps plain contexts checkpoint-free for free).
    _checkpointer = None

    def install_checkpointer(self, checkpointer) -> None:
        """Attach a per-rank stage checkpointer (see
        :mod:`repro.cluster.recovery`).  The compositing engine consults
        it to restore a resume point before its stage loop and to
        snapshot after each completed exchange stage.  ``None``
        uninstalls.
        """
        self._checkpointer = checkpointer

    @property
    def checkpointer(self):
        """The installed stage checkpointer, or ``None``."""
        return self._checkpointer

    # ---- progress streaming ------------------------------------------------
    #: The installed :class:`~repro.cluster.progress.ProgressFeed`
    #: (class-level default keeps plain contexts feed-free for free).
    _progress = None

    def install_progress(self, feed) -> None:
        """Attach a live progress feed (see
        :mod:`repro.cluster.progress`).  The compositing engines emit a
        partial-frame event after each completed exchange stage /
        completed tile.  Emission copies pixels and charges nothing, so
        an installed feed never changes the run's accounting.  ``None``
        uninstalls.
        """
        self._progress = feed

    @property
    def progress(self):
        """The installed progress feed, or ``None``."""
        return self._progress

    def _message_faults(self, verb: str, dst: int, tag: int):
        """Injector verdict for one outgoing message (``None`` = clean)."""
        injector = self._fault_injector
        if injector is None:
            return None
        return injector.on_message(verb, dst, tag, stage=self.current_stage)

    # ---- computation -------------------------------------------------------
    @abc.abstractmethod
    async def compute(self, seconds: float, *, kind: str = "compute", count: int = 0) -> None:
        """Charge ``seconds`` of local computation (modelled substrates)
        and record ``count`` under the ``kind`` counter (all substrates)."""

    def _op_seconds(self, kind: str, count: int) -> float:
        """Modelled seconds for ``count`` operations of ``kind``.

        Real transports return 0.0 — wall clocks measure themselves; the
        simulator overrides this with machine-model pricing.
        """
        return 0.0

    async def charge_over(self, npixels: int) -> None:
        """Charge ``npixels`` over-operator composites (model ``To``)."""
        await self.compute(self._op_seconds("over", npixels), kind="over", count=npixels)

    async def charge_encode(self, npixels: int) -> None:
        """Charge an RLE scan of ``npixels`` pixels (model ``Tencode``)."""
        await self.compute(self._op_seconds("encode", npixels), kind="encode", count=npixels)

    async def charge_bound(self, npixels: int) -> None:
        """Charge a bounding-rect scan of ``npixels`` pixels (model ``Tbound``)."""
        await self.compute(self._op_seconds("bound", npixels), kind="bound", count=npixels)

    async def charge_pack(self, nbytes: int) -> None:
        """Charge packing ``nbytes`` into a message buffer (model ``tpack``)."""
        await self.compute(self._op_seconds("pack", nbytes), kind="pack", count=nbytes)

    # ---- point to point ----------------------------------------------------
    @abc.abstractmethod
    async def send(self, dst: int, payload: Any, *, nbytes: Optional[int] = None, tag: int = 0):
        """Blocking send (rendezvous semantics, like ``MPI_Ssend``)."""

    @abc.abstractmethod
    async def recv(self, src: int, *, tag: int = ANY_TAG) -> Any:
        """Blocking receive from ``src``; returns the payload."""

    @abc.abstractmethod
    async def sendrecv(
        self, peer: int, payload: Any, *, nbytes: Optional[int] = None, tag: int = 0
    ) -> Any:
        """Full-duplex pairwise exchange; returns the peer's payload."""

    # ---- nonblocking -------------------------------------------------------
    @abc.abstractmethod
    async def isend(self, dst: int, payload: Any, *, nbytes: Optional[int] = None, tag: int = 0):
        """Nonblocking send; returns a request completed by :meth:`wait`."""

    @abc.abstractmethod
    async def irecv(self, src: int, *, tag: int = ANY_TAG):
        """Nonblocking receive; returns a request whose payload is
        available after :meth:`wait`.

        Defaults to :data:`~repro.cluster.events.ANY_TAG`, matching
        :meth:`recv` — an untagged nonblocking receive accepts whatever
        ``src`` sends next."""

    @abc.abstractmethod
    async def wait(self, request) -> Any:
        """Block until ``request`` completes; returns its payload (irecv)
        or ``None`` (isend)."""

    async def wait_all(self, requests) -> list:
        """Block until every request completes; returns payloads in order.

        Substrates may override with a bulk primitive (the simulator
        uses a single ``WaitOp`` so overlapping arrivals are priced
        together); this sequential default is timing-equivalent.
        """
        return [await self.wait(request) for request in requests]

    # ---- collective --------------------------------------------------------
    @abc.abstractmethod
    async def barrier(self) -> None:
        """Block until every rank reaches the barrier."""

    # ---- misc --------------------------------------------------------------
    def now(self) -> float:
        """Monotonic substrate time in seconds.

        Wall-clock on real transports; the simulator overrides this
        with the rank's virtual clock.  Only *differences* are
        meaningful (the zero point is substrate-defined) — this is what
        per-tile completion events stamp their latencies with.
        """
        return time.perf_counter()

    def _check_peer(self, rank: int) -> None:
        if not (0 <= rank < self.size):
            raise ConfigurationError(
                f"peer rank {rank} out of range for a {self.size}-rank machine"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(rank={self.rank}, size={self.size})"
