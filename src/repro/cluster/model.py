"""Machine cost model for the simulated distributed-memory multicomputer.

The paper analyses every compositing method with a linear communication
model and per-pixel computation constants (its eqs. (1)-(8)):

* ``Ts``      — start-up (latency) time per message, seconds
* ``Tc``      — transmission time per byte, seconds
* ``To``      — time of one *over* operation per pixel, seconds
* ``Tencode`` — run-length-encoding time per scanned pixel, seconds
* ``Tbound``  — bounding-rectangle scan time per pixel (first stage), seconds

The :data:`SP2` preset is calibrated against Table 1 of the paper so that
the plain binary-swap numbers land in the right regime: at ``P=2`` on a
384x384 image, BS composites ``A/2 = 73728`` pixels (~298 ms measured →
``To ≈ 4.0 µs``) and ships ``16 * A/2`` bytes (~29 ms measured →
``Tc ≈ 25 ns/byte ≈ 40 MB/s``, consistent with the SP2 High Performance
Switch).  Absolute agreement with the 1999 testbed is *not* a goal; the
constants only need to preserve the computation/communication balance so
that the paper's crossovers reproduce.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from ..errors import ConfigurationError

__all__ = [
    "MachineModel",
    "SP2",
    "SP2_FAST_NET",
    "SP2_SLOW_NET",
    "IDEALIZED",
    "T3E",
    "ETHERNET_CLUSTER",
    "MODERN_CLUSTER",
    "PRESETS",
    "Network",
    "FlatNetwork",
    "ContentionNetwork",
    "FatTreeNetwork",
    "TorusNetwork",
    "DragonflyNetwork",
    "NETWORKS",
    "make_network",
]


@dataclass(frozen=True, slots=True)
class MachineModel:
    """Linear cost model of one node + interconnect of the multicomputer.

    All times are in **seconds**.  Instances are immutable; use
    :meth:`with_overrides` to derive variants for sensitivity sweeps.
    """

    name: str
    #: Message start-up latency (per message), seconds.
    ts: float
    #: Transmission time per byte, seconds.
    tc: float
    #: One *over* composite per pixel, seconds.
    to: float
    #: Run-length encode scan per pixel, seconds.
    tencode: float
    #: Bounding-rectangle scan per pixel (initial full-image scan), seconds.
    tbound: float
    #: Pack/copy cost per byte moved into a send buffer, seconds.  The paper
    #: folds buffer packing into computation time; a small per-byte constant
    #: models the ``memcpy`` traffic of steps 8-12 of the BSBRC algorithm.
    tpack: float = 0.0

    def __post_init__(self) -> None:
        for field in ("ts", "tc", "to", "tencode", "tbound", "tpack"):
            value = getattr(self, field)
            if not (value >= 0.0):  # also rejects NaN
                raise ConfigurationError(f"MachineModel.{field} must be >= 0, got {value!r}")

    # ---- cost helpers ----------------------------------------------------
    def message_time(self, nbytes: int) -> float:
        """Time to move one ``nbytes`` message across the network."""
        if nbytes < 0:
            raise ConfigurationError(f"nbytes must be >= 0, got {nbytes}")
        return self.ts + nbytes * self.tc

    def transfer_time(self, nbytes: int) -> float:
        """Per-byte portion only (no start-up)."""
        if nbytes < 0:
            raise ConfigurationError(f"nbytes must be >= 0, got {nbytes}")
        return nbytes * self.tc

    def over_time(self, npixels: int) -> float:
        """Time to composite ``npixels`` pixels with the over operator."""
        if npixels < 0:
            raise ConfigurationError(f"npixels must be >= 0, got {npixels}")
        return npixels * self.to

    def encode_time(self, npixels: int) -> float:
        """Time to RLE-scan ``npixels`` pixels."""
        if npixels < 0:
            raise ConfigurationError(f"npixels must be >= 0, got {npixels}")
        return npixels * self.tencode

    def bound_time(self, npixels: int) -> float:
        """Time to scan ``npixels`` pixels for the initial bounding rect."""
        if npixels < 0:
            raise ConfigurationError(f"npixels must be >= 0, got {npixels}")
        return npixels * self.tbound

    def pack_time(self, nbytes: int) -> float:
        """Time to pack ``nbytes`` into a send buffer."""
        if nbytes < 0:
            raise ConfigurationError(f"nbytes must be >= 0, got {nbytes}")
        return nbytes * self.tpack

    def with_overrides(self, **kwargs: float) -> "MachineModel":
        """Return a copy with some constants replaced (for sweeps)."""
        return replace(self, **kwargs)


#: Calibrated IBM SP2 (POWER2 66.7 MHz + High Performance Switch) preset.
SP2 = MachineModel(
    name="sp2",
    ts=50e-6,
    tc=25e-9,  # ~40 MB/s effective point-to-point bandwidth
    to=4.0e-6,
    tencode=0.80e-6,
    tbound=0.15e-6,
    tpack=1.0e-9,
)

#: SP2 node speed with a 4x faster network (sensitivity study).
SP2_FAST_NET = SP2.with_overrides(name="sp2-fast-net", tc=SP2.tc / 4.0)

#: SP2 node speed with a 4x slower network (sensitivity study).
SP2_SLOW_NET = SP2.with_overrides(name="sp2-slow-net", tc=SP2.tc * 4.0)

#: Zero-latency, zero-cost machine — useful in tests where only the data
#: flow (not the timing) is under test.
IDEALIZED = MachineModel(
    name="idealized", ts=0.0, tc=0.0, to=0.0, tencode=0.0, tbound=0.0, tpack=0.0
)

# --- other machine architectures (paper §5, future work #3) ----------------
#: Cray T3E-class node/network: ~2x the SP2's CPU speed, a much faster,
#: lower-latency torus (~300 MB/s, ~10 us) — compute/communication balance
#: tilts strongly toward computation, favouring the cheap-CPU methods.
T3E = MachineModel(
    name="t3e",
    ts=10e-6,
    tc=3.3e-9,
    to=2.0e-6,
    tencode=0.40e-6,
    tbound=0.075e-6,
    tpack=0.5e-9,
)

#: Commodity Ethernet cluster of SP2-era workstations: similar CPUs but a
#: shared 100 Mb/s network with high start-up cost — the regime where
#: message-size reduction (BSLC/BSBRC) matters most.
ETHERNET_CLUSTER = MachineModel(
    name="ethernet-cluster",
    ts=500e-6,
    tc=100e-9,
    to=4.0e-6,
    tencode=0.80e-6,
    tbound=0.15e-6,
    tpack=1.0e-9,
)

#: A modern many-core cluster node (~1000x the POWER2's per-pixel speed)
#: with 100 Gb/s-class fabric: both terms shrink, latency dominates tiny
#: messages — the regime where the paper's CPU/byte trade-offs compress.
MODERN_CLUSTER = MachineModel(
    name="modern-cluster",
    ts=2e-6,
    tc=0.1e-9,
    to=4.0e-9,
    tencode=0.8e-9,
    tbound=0.15e-9,
    tpack=0.01e-9,
)

PRESETS: dict[str, MachineModel] = {
    m.name: m
    for m in (
        SP2,
        SP2_FAST_NET,
        SP2_SLOW_NET,
        IDEALIZED,
        T3E,
        ETHERNET_CLUSTER,
        MODERN_CLUSTER,
    )
}


# ===========================================================================
# Network / Topology plane
# ===========================================================================
#
# The paper prices every message with the flat link ``Ts + nbytes*Tc`` —
# adequate for the SP2's P<=64 crossover study, but a contention-blind
# model cannot be trusted for at-scale (P=1024+) experiments where many
# messages share switch uplinks or torus links.  A :class:`Network`
# decides *when a message arrives* given who else is using the wires;
# the :class:`MachineModel` still prices the endpoint cost, so the flat
# default reproduces the legacy simulator bit-for-bit and every
# topology's arrival times are pointwise >= the flat ones (contention
# only ever delays).


class Network:
    """Pluggable interconnect topology: prices message *arrival* times.

    The simulator asks :meth:`deliver` when each matched transfer
    arrives; stateful subclasses keep per-link busy-until queues so that
    transfers sharing a link serialize.  :meth:`reset` is called once
    per simulation run with the rank count, and must clear any queues so
    a network instance can be reused across runs.
    """

    name = "abstract"

    #: The CLI spec string this instance was built from (stamped by
    #: :func:`make_network`); error messages quote it so users see the
    #: ``--topology`` value they typed, not just the class name.
    spec: "str | None" = None

    def __init__(self, model: MachineModel):
        self.model = model
        self.num_ranks = 0

    def reset(self, num_ranks: int) -> None:
        """Bind to a run's rank count and drop all contention state."""
        self.num_ranks = int(num_ranks)

    def deliver(self, src: int, dst: int, nbytes: int, start: float) -> float:
        """Arrival time of an ``nbytes`` message injected at ``start``."""
        raise NotImplementedError

    def describe(self) -> dict:
        """JSON-friendly summary for run timelines and benchmarks."""
        return {"topology": self.name}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.model.name})"


class FlatNetwork(Network):
    """The paper's flat link: every pair connected at full bandwidth.

    Stateless — ``arrival = start + Ts + nbytes*Tc`` — and therefore
    bit-identical to the pre-topology simulator on every workload.
    """

    name = "flat"

    def deliver(self, src: int, dst: int, nbytes: int, start: float) -> float:
        return start + self.model.message_time(nbytes)


class ContentionNetwork(Network):
    """Base of the switched topologies: per-link bandwidth sharing.

    A message first pays the flat endpoint cost ``Ts + nbytes*Tc`` (the
    topology never undercuts the paper's linear model), then crosses the
    *shared* links on its route in order.  Each crossing holds the link
    for ``hop_latency + nbytes*Tc/capacity`` and crossings of one link
    serialize in delivery order — ``capacity`` is the link's bandwidth
    as a multiple of the base per-byte rate.  An infinite-capacity,
    zero-latency link is free and keeps no state, which degrades every
    topology here to *exact* flat-link timings (property-tested).
    """

    name = "contention"

    def __init__(
        self,
        model: MachineModel,
        *,
        capacity: float = 4.0,
        hop_latency: float = 0.0,
    ):
        super().__init__(model)
        if not (capacity > 0.0):  # also rejects NaN
            raise ConfigurationError(f"link capacity must be > 0, got {capacity!r}")
        if not (hop_latency >= 0.0):
            raise ConfigurationError(f"hop_latency must be >= 0, got {hop_latency!r}")
        self.capacity = float(capacity)
        self.hop_latency = float(hop_latency)
        self._busy: dict = {}

    def reset(self, num_ranks: int) -> None:
        super().reset(num_ranks)
        self._busy = {}

    def route(self, src: int, dst: int) -> list:
        """Hashable keys of the shared links a message crosses, in order."""
        raise NotImplementedError

    def link_capacity(self, link) -> float:
        """Bandwidth multiple of one link (uniform unless overridden)."""
        return self.capacity

    def _cross(self, link, t: float, nbytes: int) -> float:
        capacity = self.link_capacity(link)
        if capacity == math.inf and self.hop_latency == 0.0:
            return t  # free link: no queue, no state
        begin = self._busy.get(link, 0.0)
        if begin < t:
            begin = t
        done = begin + self.hop_latency + nbytes * self.model.tc / capacity
        self._busy[link] = done
        return done

    def deliver(self, src: int, dst: int, nbytes: int, start: float) -> float:
        t = start + self.model.message_time(nbytes)
        for link in self.route(src, dst):
            t = self._cross(link, t, nbytes)
        return t

    def describe(self) -> dict:
        return {
            "topology": self.name,
            "capacity": self.capacity,
            "hop_latency": self.hop_latency,
        }


class FatTreeNetwork(ContentionNetwork):
    """Switched fat-tree: ``radix`` ranks per leaf switch, shared up/down
    links through the core.

    Intra-switch traffic sees the flat link; traffic between switches
    crosses the source switch's uplink and the destination switch's
    downlink, both shared by every rank of that switch.  A single-switch
    instance (``radix >= P``) never touches a shared link and is exactly
    flat regardless of capacity.
    """

    name = "fat-tree"

    def __init__(
        self,
        model: MachineModel,
        *,
        radix: int = 16,
        capacity: float = 4.0,
        hop_latency: float = 0.0,
    ):
        super().__init__(model, capacity=capacity, hop_latency=hop_latency)
        if int(radix) < 1:
            raise ConfigurationError(f"fat-tree radix must be >= 1, got {radix}")
        self.radix = int(radix)

    def route(self, src: int, dst: int) -> list:
        up, down = src // self.radix, dst // self.radix
        if up == down:
            return []
        return [("up", up), ("down", down)]

    def describe(self) -> dict:
        out = super().describe()
        out["radix"] = self.radix
        if self.num_ranks:
            out["switches"] = -(-self.num_ranks // self.radix)
        return out


def _grid_dims(count: int) -> tuple[int, int]:
    """Nearest-to-square factorization ``rows * cols == count``."""
    best = (1, count)
    for rows in range(1, int(math.isqrt(count)) + 1):
        if count % rows == 0:
            best = (rows, count // rows)
    return best


class TorusNetwork(ContentionNetwork):
    """2-D torus with dimension-ordered routing over directed links.

    Ranks map row-major onto a near-square ``rows x cols`` grid (or an
    explicit ``dims``); a message walks its column ring first, then its
    row ring, taking the shorter wrap direction, and every directed link
    it crosses is a shared contention queue.  Long-haul partners (the
    late binary-swap stages) therefore pay for every intermediate hop —
    the effect a flat link hides.
    """

    name = "torus"

    def __init__(
        self,
        model: MachineModel,
        *,
        capacity: float = 1.0,
        hop_latency: float = 0.0,
        dims: "tuple[int, int] | None" = None,
    ):
        super().__init__(model, capacity=capacity, hop_latency=hop_latency)
        if dims is not None:
            dims = (int(dims[0]), int(dims[1]))
            if dims[0] < 1 or dims[1] < 1:
                raise ConfigurationError(f"torus dims must be >= 1, got {dims}")
        self.dims = dims
        self.shape: tuple[int, int] = (1, 1)

    def reset(self, num_ranks: int) -> None:
        super().reset(num_ranks)
        if self.dims is not None:
            if self.dims[0] * self.dims[1] != num_ranks:
                raise ConfigurationError(
                    f"torus dims {self.dims} do not tile {num_ranks} ranks"
                )
            self.shape = self.dims
        else:
            self.shape = _grid_dims(num_ranks)

    @staticmethod
    def _ring_steps(pos: int, target: int, size: int) -> list[tuple[int, int]]:
        """(position, step) pairs along one ring, shortest wrap direction."""
        if pos == target or size < 2:
            return []
        forward = (target - pos) % size
        backward = (pos - target) % size
        step = 1 if forward <= backward else -1
        hops = []
        while pos != target:
            hops.append((pos, step))
            pos = (pos + step) % size
        return hops

    def route(self, src: int, dst: int) -> list:
        rows, cols = self.shape
        r0, c0 = divmod(src, cols)
        r1, c1 = divmod(dst, cols)
        links: list = []
        for col, step in self._ring_steps(c0, c1, cols):
            links.append(("x", r0, col, step))
        for row, step in self._ring_steps(r0, r1, rows):
            links.append(("y", c1, row, step))
        return links

    def describe(self) -> dict:
        out = super().describe()
        out["dims"] = list(self.shape)
        return out


class DragonflyNetwork(ContentionNetwork):
    """Dragonfly-style hierarchy: all-to-all groups over global links.

    Ranks split into groups of ``group_size`` (default ``~sqrt(P)``,
    the balanced dragonfly sizing).  Intra-group traffic is flat;
    inter-group traffic crosses the source group's exit link, one global
    link per ordered group pair (typically the narrow resource —
    ``global_capacity``), and the destination group's entry link.
    """

    name = "dragonfly"

    def __init__(
        self,
        model: MachineModel,
        *,
        group_size: "int | None" = None,
        capacity: float = 4.0,
        global_capacity: float = 1.0,
        hop_latency: float = 0.0,
    ):
        super().__init__(model, capacity=capacity, hop_latency=hop_latency)
        if group_size is not None and int(group_size) < 1:
            raise ConfigurationError(f"group_size must be >= 1, got {group_size}")
        if not (global_capacity > 0.0):
            raise ConfigurationError(
                f"global_capacity must be > 0, got {global_capacity!r}"
            )
        self._group_size = None if group_size is None else int(group_size)
        self.global_capacity = float(global_capacity)
        self.group_size = 1

    def reset(self, num_ranks: int) -> None:
        super().reset(num_ranks)
        if self._group_size is not None:
            self.group_size = self._group_size
        else:
            self.group_size = max(1, round(math.sqrt(num_ranks)))

    def route(self, src: int, dst: int) -> list:
        a, b = src // self.group_size, dst // self.group_size
        if a == b:
            return []
        return [("exit", a), ("global", a, b), ("entry", b)]

    def link_capacity(self, link) -> float:
        return self.global_capacity if link[0] == "global" else self.capacity

    def describe(self) -> dict:
        out = super().describe()
        out["group_size"] = self.group_size
        out["global_capacity"] = self.global_capacity
        return out


#: Registry of topology names to network classes (see :func:`make_network`).
NETWORKS: dict[str, type[Network]] = {
    FlatNetwork.name: FlatNetwork,
    FatTreeNetwork.name: FatTreeNetwork,
    TorusNetwork.name: TorusNetwork,
    DragonflyNetwork.name: DragonflyNetwork,
}


def _coerce_option(raw: str):
    """Parse one ``key=value`` right-hand side from a topology spec."""
    text = raw.strip()
    if text.lower() in ("inf", "infinite"):
        return math.inf
    if "x" in text:
        parts = text.split("x")
        if all(p.strip().isdigit() for p in parts) and len(parts) == 2:
            return (int(parts[0]), int(parts[1]))
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        raise ConfigurationError(f"cannot parse topology option value {raw!r}") from None


def make_network(
    spec: "str | Network | None",
    model: MachineModel,
    **overrides,
) -> Network:
    """Build a :class:`Network` from a CLI-style spec string.

    ``spec`` is ``None``/``"flat"`` for the legacy flat link, a bare
    topology name (``"fat-tree"``, ``"torus"``, ``"dragonfly"``), or a
    name with options: ``"fat-tree:radix=8,capacity=2"``,
    ``"torus:dims=32x32"``, ``"dragonfly:global_capacity=0.5"``.  Option
    values parse as int/float, ``inf``, or ``AxB`` dims tuples.
    ``overrides`` (e.g. ``capacity=`` from ``--links``) win over the
    spec; ``None`` overrides are ignored.  An already-built network
    passes through unchanged.
    """
    if isinstance(spec, Network):
        return spec
    name, _, params = ("flat" if spec is None else str(spec)).partition(":")
    name = name.strip() or "flat"
    cls = NETWORKS.get(name)
    if cls is None:
        raise ConfigurationError(
            f"unknown topology {name!r}; choose from {sorted(NETWORKS)}"
        )
    kwargs: dict = {}
    if params:
        for item in params.split(","):
            key, eq, raw = item.partition("=")
            if not eq:
                raise ConfigurationError(
                    f"malformed topology option {item!r} (expected key=value)"
                )
            kwargs[key.strip().replace("-", "_")] = _coerce_option(raw)
    kwargs.update({k: v for k, v in overrides.items() if v is not None})
    try:
        network = cls(model, **kwargs)
    except TypeError:
        raise ConfigurationError(
            f"topology {name!r} does not accept options {sorted(kwargs)}"
        ) from None
    network.spec = name if spec is None else str(spec)
    return network
