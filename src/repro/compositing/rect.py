"""Bounding-rectangle machinery for the BSBR / BSBRC methods.

A bounding rectangle is the smallest :class:`~repro.types.Rect` covering
every non-blank pixel of a (sub)image region.  The paper uses it two ways:

* initially, a full scan of the local subimage finds the *local bounding
  rectangle* (cost ``T_bound``, paper eq. (3)/(7));
* at each stage, the region's centerline splits the local rectangle into
  the *new local* and *sending* bounding rectangles (BSBRC algorithm,
  line 6), and after the exchange the local rectangle is refreshed as the
  union of the kept part and the *receiving* rectangle (line 21) — an
  O(1) update, no rescan.
"""

from __future__ import annotations

import numpy as np

from ..types import Rect
from .over import nonblank_mask

__all__ = ["find_bounding_rect", "split_rect_by_centerline", "clip_rect"]


def find_bounding_rect(
    intensity: np.ndarray,
    opacity: np.ndarray,
    region: Rect | None = None,
) -> Rect:
    """Smallest rect covering all non-blank pixels of ``region``.

    Coordinates are in full-image space.  Returns :meth:`Rect.empty` when
    the region contains no foreground pixel.
    """
    height, width = intensity.shape
    if region is None:
        region = Rect.full(height, width)
    region = region.intersect(Rect.full(height, width))
    if region.is_empty:
        return Rect.empty()
    rows, cols = region.slices()
    mask = nonblank_mask(intensity[rows, cols], opacity[rows, cols])
    row_any = mask.any(axis=1)
    if not row_any.any():
        return Rect.empty()
    col_any = mask.any(axis=0)
    y_idx = np.flatnonzero(row_any)
    x_idx = np.flatnonzero(col_any)
    return Rect(
        region.y0 + int(y_idx[0]),
        region.x0 + int(x_idx[0]),
        region.y0 + int(y_idx[-1]) + 1,
        region.x0 + int(x_idx[-1]) + 1,
    )


def split_rect_by_centerline(
    bound: Rect, region: Rect, axis: int
) -> tuple[Rect, Rect]:
    """Split ``bound`` by ``region``'s centerline along ``axis``.

    Returns ``(low_part, high_part)`` — the intersections of the bounding
    rectangle with the two halves of the region.  Either part may be
    empty; parts lie entirely inside their halves, so a rank that keeps
    the low half ships ``high_part`` and retains ``low_part``.
    """
    low_half, high_half = region.split(axis)
    return bound.intersect(low_half), bound.intersect(high_half)


def clip_rect(bound: Rect, region: Rect) -> Rect:
    """Clamp a bounding rectangle into a region (defensive helper)."""
    return bound.intersect(region)
