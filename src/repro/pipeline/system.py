"""The sort-last-sparse system: partition → render → composite → gather.

Two entry points:

* :func:`run_compositing` — the paper's measurement unit: given already
  rendered per-rank subimages, run just the compositing phase on the
  simulated cluster and return per-rank outcomes plus the timing stats
  that populate Tables 1-2.
* :class:`SortLastSystem` — the full pipeline driven by a
  :class:`~repro.pipeline.config.RunConfig`; renders per-rank subvolumes,
  composites, gathers tiles to the display rank and assembles (and
  optionally verifies) the final image.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from ..cluster.collectives import gather
from ..cluster.model import MachineModel
from ..cluster.simulator import Simulator
from ..cluster.stats import RunResult
from ..compositing.base import CompositeOutcome, Compositor
from ..compositing.registry import make_compositor
from ..errors import CompositingError
from ..render.camera import Camera
from ..render.image import SubImage
from ..render.raycast import render_subvolume
from ..render.splat import splat_subvolume
from ..render.reference import composite_sequential
from ..volume.datasets import make_dataset
from ..volume.folded import FoldedPartition, folded_depth_order, partition_folded
from ..volume.partition import (
    PartitionPlan,
    depth_order,
    recursive_bisect,
    render_load_weights,
)
from .config import RunConfig

__all__ = [
    "CompositingRun",
    "SystemResult",
    "SortLastSystem",
    "run_compositing",
    "assemble_final",
    "validate_ownership",
]

#: Stage bucket used for the final image gather (outside the paper's
#: measured compositing stages, which are ``PRE_STAGE`` and ``0..log2P-1``).
GATHER_STAGE = 1_000_000


@dataclass
class CompositingRun:
    """Outcome of one simulated compositing phase."""

    compositor: Compositor
    outcomes: list[CompositeOutcome]
    stats: RunResult

    @property
    def method(self) -> str:
        return self.compositor.name


def run_compositing(
    images: Sequence[SubImage],
    method: str | Compositor,
    plan: PartitionPlan | FoldedPartition,
    view_dir: np.ndarray,
    model: MachineModel,
    **method_options: Any,
) -> CompositingRun:
    """Composite pre-rendered subimages on the simulated cluster.

    ``images[r]`` is rank ``r``'s rendered subimage; inputs are copied,
    not mutated.  Returns outcomes plus the :class:`RunResult` whose
    totals are exactly the compositing-phase ``T_comp``/``T_comm``.

    Passing a :class:`~repro.volume.folded.FoldedPartition` (any rank
    count) automatically wraps swap-structured methods in a
    :class:`~repro.compositing.folding.FoldedCompositor`.
    """
    num_ranks = len(images)
    if plan.num_ranks != num_ranks:
        raise CompositingError(
            f"{num_ranks} images supplied for a {plan.num_ranks}-rank plan"
        )
    compositor = (
        make_compositor(method, **method_options) if isinstance(method, str) else method
    )
    if isinstance(plan, FoldedPartition):
        from ..compositing.folding import FoldedCompositor

        if not isinstance(compositor, FoldedCompositor):
            compositor = FoldedCompositor(compositor)
    view_dir = np.asarray(view_dir, dtype=np.float64)
    outcomes: list[CompositeOutcome | None] = [None] * num_ranks

    async def program(ctx):
        local = images[ctx.rank].copy()
        outcomes[ctx.rank] = await compositor.run(ctx, local, plan, view_dir)

    stats = Simulator(num_ranks, model).run(program)
    assert all(o is not None for o in outcomes)
    return CompositingRun(
        compositor=compositor,
        outcomes=outcomes,  # type: ignore[arg-type]
        stats=stats,
    )


def validate_ownership(
    outcomes: Sequence[CompositeOutcome], height: int, width: int
) -> None:
    """Check that rank ownerships partition the ``height x width`` image
    exactly once.

    Methods where one rank ends with the whole image (binary tree) only
    pass when a single outcome is supplied — empty ownerships contribute
    nothing.
    """
    seen = np.zeros(height * width, dtype=np.int32)
    for outcome in outcomes:
        if outcome.owned_rect is not None:
            rect = outcome.owned_rect
            if rect.is_empty:
                continue
            flat = (
                np.arange(rect.y0, rect.y1)[:, None] * width
                + np.arange(rect.x0, rect.x1)[None, :]
            ).ravel()
            seen[flat] += 1
        else:
            seen[outcome.owned_indices] += 1  # type: ignore[index]
    if not np.all(seen == 1):
        missing = int((seen == 0).sum())
        dup = int((seen > 1).sum())
        raise CompositingError(
            f"ownership is not a partition: {missing} unowned, {dup} multiply-owned pixels"
        )


def assemble_final(
    outcomes: Sequence[CompositeOutcome], height: int, width: int
) -> SubImage:
    """Merge every rank's owned pixels into the display image."""
    final = SubImage.blank(height, width)
    flat_i = final.intensity.ravel()
    flat_a = final.opacity.ravel()
    for outcome in outcomes:
        if outcome.owned_rect is not None:
            rect = outcome.owned_rect
            if rect.is_empty:
                continue
            rows, cols = rect.slices()
            final.intensity[rows, cols] = outcome.image.intensity[rows, cols]
            final.opacity[rows, cols] = outcome.image.opacity[rows, cols]
        else:
            idx = outcome.owned_indices
            flat_i[idx] = outcome.image.intensity.ravel()[idx]
            flat_a[idx] = outcome.image.opacity.ravel()[idx]
    return final


@dataclass
class SystemResult:
    """Everything the full pipeline produces."""

    config: RunConfig
    plan: PartitionPlan | FoldedPartition
    camera: Camera
    subimages: list[SubImage]
    compositing: CompositingRun
    final_image: SubImage

    def reference_image(self) -> SubImage:
        """Sequential depth-order composite of the rendered subimages."""
        if isinstance(self.plan, FoldedPartition):
            order = folded_depth_order(self.plan, self.camera.view_dir)
        else:
            order = depth_order(self.plan, self.camera.view_dir)
        return composite_sequential(self.subimages, order)


class SortLastSystem:
    """Full three-phase sort-last-sparse pipeline on the simulated cluster."""

    def __init__(self, config: RunConfig):
        self.config = config

    def run(self, *, gather_final: bool = True) -> SystemResult:
        """Execute partition → render → composite (→ gather & assemble)."""
        cfg = self.config
        volume, transfer = make_dataset(cfg.dataset, cfg.volume_shape)
        camera = Camera(
            width=cfg.image_size,
            height=cfg.image_size,
            volume_shape=volume.shape,
            rot_x=cfg.rot_x,
            rot_y=cfg.rot_y,
            rot_z=cfg.rot_z,
            step=cfg.step,
        )
        weights = (
            render_load_weights(volume.data, transfer)
            if cfg.balance_render_load
            else None
        )
        if cfg.num_ranks & (cfg.num_ranks - 1) == 0:
            plan: PartitionPlan | FoldedPartition = recursive_bisect(
                volume.shape, cfg.num_ranks, weights=weights
            )
        else:
            # Paper §5 future work: any rank count via folding.  (Folded
            # partitions always use midpoint splits; load balancing for
            # the extras comes from folding the largest blocks.)
            plan = partition_folded(volume.shape, cfg.num_ranks)

        # Rendering phase: embarrassingly parallel, no communication —
        # executed host-side once per rank (identical results to running
        # it inside each rank's coroutine, without charging model time
        # the paper does not measure).
        render = render_subvolume if cfg.renderer == "raycast" else splat_subvolume
        subimages = [
            render(volume, transfer, camera, plan.extent(rank))
            for rank in range(cfg.num_ranks)
        ]

        compositing = run_compositing(
            subimages,
            cfg.method,
            plan,
            camera.view_dir,
            cfg.machine,
            **cfg.method_options,
        )

        if gather_final:
            final = self._gather_and_assemble(compositing, camera)
        else:
            final = assemble_final(compositing.outcomes, camera.height, camera.width)
        return SystemResult(
            config=cfg,
            plan=plan,
            camera=camera,
            subimages=subimages,
            compositing=compositing,
            final_image=final,
        )

    def _gather_and_assemble(self, compositing: CompositingRun, camera: Camera) -> SubImage:
        """Collect owned tiles to rank 0 through the simulated network."""
        outcomes = compositing.outcomes
        num_ranks = len(outcomes)
        final_holder: list[SubImage | None] = [None]

        async def program(ctx):
            ctx.begin_stage(GATHER_STAGE)
            outcome = outcomes[ctx.rank]
            vals_i, vals_a = outcome.owned_values()
            payload = (
                outcome.owned_rect,
                outcome.owned_indices,
                vals_i.tobytes(),
                vals_a.tobytes(),
            )
            collected = await gather(ctx, payload, root=0)
            if ctx.rank == 0:
                assert collected is not None
                final = SubImage.blank(camera.height, camera.width)
                flat_i = final.intensity.ravel()
                flat_a = final.opacity.ravel()
                for rect, indices, raw_i, raw_a in collected:
                    vi = np.frombuffer(raw_i, dtype=np.float64)
                    va = np.frombuffer(raw_a, dtype=np.float64)
                    if rect is not None:
                        if rect.is_empty:
                            continue
                        rows, cols = rect.slices()
                        final.intensity[rows, cols] = vi.reshape(rect.height, rect.width)
                        final.opacity[rows, cols] = va.reshape(rect.height, rect.width)
                    else:
                        flat_i[indices] = vi
                        flat_a[indices] = va
                final_holder[0] = final

        # The gather runs on a fresh simulator: its traffic is not part
        # of the compositing-phase stats (the paper measures compositing
        # only), but it still flows through the simulated network.
        Simulator(num_ranks, self.config.machine).run(program)
        final = final_holder[0]
        assert final is not None
        return final
