"""Per-rank, per-stage accounting of the simulated execution.

The paper evaluates each compositing method by

* ``T_comp`` — accumulated local computation time,
* ``T_comm`` — accumulated pure communication time (start-up plus
  transfer, the paper's eqs. (2)/(4)/(6)/(8) terms); time spent waiting
  for a late partner is tracked separately as ``wait_time``, and
* ``M_max`` — the maximum over ranks of total received message bytes
  (paper §4: ``M_max = MAX_i Σ_k R_i^k``).

Stats are bucketed by *stage* so that per-stage quantities from the
analytic model (eqs. (1)-(8)) can be cross-checked against the simulated
execution.  Stage ``-1`` collects work done outside any declared stage
(e.g. the initial bounding-rectangle scan, which the paper charges as
``T_bound`` before the first compositing stage).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Iterable

__all__ = ["StageStats", "RankStats", "RunResult", "PRE_STAGE"]

#: Pseudo-stage index for work performed before the first compositing stage.
PRE_STAGE = -1


@dataclass
class StageStats:
    """Accumulated quantities for one rank during one compositing stage."""

    stage: int
    comp_time: float = 0.0
    comm_time: float = 0.0
    #: Time spent blocked waiting for a partner to arrive at a matching
    #: call (synchronization skew).  Kept separate from ``comm_time`` so
    #: tables report the paper's pure-transfer communication term
    #: (eqs. (2)/(4)/(6)/(8) have no wait component); the makespan still
    #: includes it.
    wait_time: float = 0.0
    bytes_sent: int = 0
    bytes_recv: int = 0
    msgs_sent: int = 0
    msgs_recv: int = 0
    #: Named operation counters, e.g. ``{"over": pixels, "encode": pixels}``.
    counters: dict[str, int] = field(default_factory=dict)

    def add_counter(self, kind: str, count: int) -> None:
        if count:
            self.counters[kind] = self.counters.get(kind, 0) + int(count)

    @property
    def total_time(self) -> float:
        return self.comp_time + self.comm_time

    @property
    def elapsed_time(self) -> float:
        """Busy plus blocked time (includes partner-wait skew)."""
        return self.comp_time + self.comm_time + self.wait_time


@dataclass
class RankStats:
    """All stage buckets of one rank plus rank-level reductions."""

    rank: int
    stages: dict[int, StageStats] = field(default_factory=dict)
    #: Structured fault events (injected/detected) recorded on this
    #: rank; the fault injector sinks here so events travel with the
    #: stats through every backend (pickled across processes on mp).
    events: list[dict[str, Any]] = field(default_factory=list)

    def stage(self, index: int) -> StageStats:
        """Return (creating if needed) the bucket for ``index``."""
        bucket = self.stages.get(index)
        if bucket is None:
            bucket = StageStats(stage=index)
            self.stages[index] = bucket
        return bucket

    # ---- reductions -------------------------------------------------------
    @property
    def comp_time(self) -> float:
        return sum(s.comp_time for s in self.stages.values())

    @property
    def comm_time(self) -> float:
        return sum(s.comm_time for s in self.stages.values())

    @property
    def wait_time(self) -> float:
        return sum(s.wait_time for s in self.stages.values())

    @property
    def total_time(self) -> float:
        return self.comp_time + self.comm_time

    @property
    def elapsed_time(self) -> float:
        return self.comp_time + self.comm_time + self.wait_time

    @property
    def bytes_sent(self) -> int:
        return sum(s.bytes_sent for s in self.stages.values())

    @property
    def bytes_recv(self) -> int:
        """Paper's ``m_i = Σ_k R_i^k`` for this rank."""
        return sum(s.bytes_recv for s in self.stages.values())

    @property
    def msgs_sent(self) -> int:
        return sum(s.msgs_sent for s in self.stages.values())

    @property
    def msgs_recv(self) -> int:
        return sum(s.msgs_recv for s in self.stages.values())

    def counter_total(self, kind: str) -> int:
        return sum(s.counters.get(kind, 0) for s in self.stages.values())

    def sorted_stages(self) -> list[StageStats]:
        return [self.stages[k] for k in sorted(self.stages)]


@dataclass
class RunResult:
    """Outcome of one simulated SPMD run.

    ``returns[r]`` is whatever rank ``r``'s coroutine returned;
    ``rank_stats[r]`` its accounting; ``makespan`` the largest final
    virtual clock (wall time of the parallel phase).
    """

    num_ranks: int
    returns: list[Any]
    rank_stats: list[RankStats]
    makespan: float

    # ---- paper-level reductions -------------------------------------------
    @property
    def mmax_bytes(self) -> int:
        """Paper §4: maximum over ranks of total received bytes."""
        return max((rs.bytes_recv for rs in self.rank_stats), default=0)

    @property
    def critical_rank(self) -> int:
        """Rank with the largest ``T_comp + T_comm`` (the reported row)."""
        return max(range(self.num_ranks), key=lambda r: self.rank_stats[r].total_time)

    @property
    def t_comp(self) -> float:
        """``T_comp`` of the critical rank (keeps table columns additive)."""
        return self.rank_stats[self.critical_rank].comp_time

    @property
    def t_comm(self) -> float:
        """``T_comm`` of the critical rank."""
        return self.rank_stats[self.critical_rank].comm_time

    @property
    def t_total(self) -> float:
        return self.rank_stats[self.critical_rank].total_time

    @property
    def t_comp_max(self) -> float:
        return max((rs.comp_time for rs in self.rank_stats), default=0.0)

    @property
    def t_comm_max(self) -> float:
        return max((rs.comm_time for rs in self.rank_stats), default=0.0)

    @property
    def t_comp_mean(self) -> float:
        if not self.rank_stats:
            return 0.0
        return sum(rs.comp_time for rs in self.rank_stats) / len(self.rank_stats)

    @property
    def t_comm_mean(self) -> float:
        if not self.rank_stats:
            return 0.0
        return sum(rs.comm_time for rs in self.rank_stats) / len(self.rank_stats)

    @property
    def t_wait(self) -> float:
        """Synchronization-skew time of the critical rank."""
        return self.rank_stats[self.critical_rank].wait_time

    @property
    def t_wait_max(self) -> float:
        return max((rs.wait_time for rs in self.rank_stats), default=0.0)

    def counter_total(self, kind: str) -> int:
        return sum(rs.counter_total(kind) for rs in self.rank_stats)

    def per_stage_totals(self) -> dict[int, dict[str, float]]:
        """Aggregate {stage: {metric: value}} across ranks (sum semantics)."""
        agg: dict[int, dict[str, float]] = defaultdict(
            lambda: {"comp_time": 0.0, "comm_time": 0.0, "bytes_sent": 0, "bytes_recv": 0}
        )
        for rs in self.rank_stats:
            for st in rs.stages.values():
                bucket = agg[st.stage]
                bucket["comp_time"] += st.comp_time
                bucket["comm_time"] += st.comm_time
                bucket["bytes_sent"] += st.bytes_sent
                bucket["bytes_recv"] += st.bytes_recv
        return dict(agg)


def merge_counters(stats: Iterable[StageStats]) -> dict[str, int]:
    """Union of named counters across stage buckets (sum per key)."""
    out: dict[str, int] = {}
    for st in stats:
        for key, val in st.counters.items():
            out[key] = out.get(key, 0) + val
    return out
