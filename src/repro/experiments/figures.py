"""Experiments F7-F11 — regenerate the paper's figures.

* Figure 7 — the four test-sample images (rendered to PGM files).
* Figures 8-11 — compositing time vs processor count for BSBR, BSLC
  and BSBRC on Engine_low, Head, Engine_high and Cube respectively
  (ASCII line plots + exact-value tables; see
  :mod:`repro.analysis.plots`).
"""

from __future__ import annotations

import os

from ..analysis.metrics import MethodMeasurement
from ..analysis.plots import ascii_line_plot, series_summary
from ..cluster.model import SP2, MachineModel
from ..render.raycast import render_full
from ..render.reference import luminance
from ..render.camera import Camera
from ..volume.datasets import PAPER_DATASETS, make_dataset
from ..volume.io import to_gray8, write_pgm
from .harness import DEFAULT_ROTATION, run_grid

__all__ = ["FIGURE_DATASETS", "run_figures", "format_figure", "render_figure7"]

#: Figure number → dataset, in the paper's order.
FIGURE_DATASETS = {
    8: "engine_low",
    9: "head",
    10: "engine_high",
    11: "cube",
}

_FIGURE_METHODS = ("bsbr", "bslc", "bsbrc")


def run_figures(
    *,
    machine: MachineModel = SP2,
    rank_counts=(2, 4, 8, 16, 32, 64),
    image_size: int = 384,
    volume_shape=None,
    verbose: bool = False,
) -> list[MethodMeasurement]:
    """Measurements behind Figures 8-11 (same grid as Table 1, 3 methods)."""
    return run_grid(
        PAPER_DATASETS,
        image_size,
        rank_counts,
        _FIGURE_METHODS,
        machine=machine,
        volume_shape=volume_shape,
        verbose=verbose,
    )


def format_figure(figure: int, rows: list[MethodMeasurement]) -> str:
    """Render one of Figures 8-11 from measurement rows."""
    dataset = FIGURE_DATASETS.get(figure)
    if dataset is None:
        raise KeyError(f"no figure {figure}; available: {sorted(FIGURE_DATASETS)}")
    subset = [r for r in rows if r.dataset == dataset]
    ranks = sorted({r.num_ranks for r in subset})
    series = {}
    for method in _FIGURE_METHODS:
        by_p = {r.num_ranks: r.t_total * 1e3 for r in subset if r.method == method}
        if len(by_p) == len(ranks) and ranks:
            series[method.upper()] = [by_p[p] for p in ranks]
    title = (
        f"Figure {figure} (reproduction): compositing time of the BSBR, BSLC and "
        f"BSBRC methods for {dataset}"
    )
    plot = ascii_line_plot(series, ranks, title=title, y_label="T_total ms")
    return plot + "\n\n" + series_summary(series, ranks)


def render_figure7(
    out_dir: str | os.PathLike,
    *,
    image_size: int = 384,
    volume_shape=None,
    rotation=DEFAULT_ROTATION,
    gain: float = 2.0,
) -> list[str]:
    """Figure 7: render each test sample to ``<out_dir>/fig7_<name>.pgm``."""
    os.makedirs(out_dir, exist_ok=True)
    paths: list[str] = []
    for dataset in PAPER_DATASETS:
        volume, transfer = make_dataset(dataset, volume_shape)
        camera = Camera(
            width=image_size,
            height=image_size,
            volume_shape=volume.shape,
            rot_x=rotation[0],
            rot_y=rotation[1],
            rot_z=rotation[2],
        )
        image = render_full(volume, transfer, camera)
        path = os.path.join(os.fspath(out_dir), f"fig7_{dataset}.pgm")
        write_pgm(path, to_gray8(luminance(image), gain=gain))
        paths.append(path)
    return paths
