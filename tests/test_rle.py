"""Tests for the blank/non-blank run-length codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compositing.rle import (
    MAX_RUN,
    _rle_decode_mask_loop,
    _rle_encode_mask_loop,
    count_nonblank,
    rle_decode_mask,
    rle_encode_mask,
)
from repro.errors import WireFormatError


class TestEncodeBasics:
    def test_empty_mask(self):
        codes = rle_encode_mask(np.zeros(0, dtype=bool))
        assert codes.size == 0
        assert rle_decode_mask(codes, 0).size == 0

    def test_all_blank(self):
        codes = rle_encode_mask(np.zeros(10, dtype=bool))
        assert codes.tolist() == [10]

    def test_all_nonblank(self):
        codes = rle_encode_mask(np.ones(10, dtype=bool))
        assert codes.tolist() == [0, 10]

    def test_alternating(self):
        mask = np.array([False, True, False, True])
        assert rle_encode_mask(mask).tolist() == [1, 1, 1, 1]

    def test_leading_nonblank_gets_zero_blank_run(self):
        mask = np.array([True, True, False])
        assert rle_encode_mask(mask).tolist() == [0, 2, 1]

    def test_paper_figure5_style(self):
        # A sparse scanline: blanks, a run of foreground, blanks.
        mask = np.array([False] * 5 + [True] * 3 + [False] * 4)
        assert rle_encode_mask(mask).tolist() == [5, 3, 4]

    def test_2d_mask_rejected(self):
        with pytest.raises(WireFormatError):
            rle_encode_mask(np.zeros((2, 2), dtype=bool))


class TestLongRuns:
    def test_long_blank_run_split(self):
        n = MAX_RUN + 100
        codes = rle_encode_mask(np.zeros(n, dtype=bool))
        assert codes.tolist() == [MAX_RUN, 0, 100]
        assert rle_decode_mask(codes, n).sum() == 0

    def test_long_nonblank_run_split(self):
        n = MAX_RUN + 7
        codes = rle_encode_mask(np.ones(n, dtype=bool))
        assert codes.tolist() == [0, MAX_RUN, 0, 7]
        assert rle_decode_mask(codes, n).sum() == n

    def test_double_length_run(self):
        n = 2 * MAX_RUN
        codes = rle_encode_mask(np.zeros(n, dtype=bool))
        assert rle_decode_mask(codes, n).sum() == 0

    def test_exact_max_run_not_split(self):
        codes = rle_encode_mask(np.zeros(MAX_RUN, dtype=bool))
        assert codes.tolist() == [MAX_RUN]


class TestDecodeValidation:
    def test_sum_mismatch_rejected(self):
        with pytest.raises(WireFormatError):
            rle_decode_mask(np.array([3], dtype=np.uint16), 5)

    def test_2d_codes_rejected(self):
        with pytest.raises(WireFormatError):
            rle_decode_mask(np.zeros((1, 1), dtype=np.uint16), 0)


class TestCountNonblank:
    def test_counts_odd_positions(self):
        codes = np.array([5, 3, 4, 2], dtype=np.uint16)
        assert count_nonblank(codes) == 5

    def test_empty(self):
        assert count_nonblank(np.empty(0, dtype=np.uint16)) == 0

    def test_matches_mask_sum(self):
        rng = np.random.default_rng(3)
        mask = rng.random(1000) < 0.2
        assert count_nonblank(rle_encode_mask(mask)) == int(mask.sum())


class TestRoundtripProperties:
    @given(st.lists(st.booleans(), max_size=300))
    @settings(max_examples=200)
    def test_roundtrip(self, bits):
        mask = np.asarray(bits, dtype=bool)
        codes = rle_encode_mask(mask)
        assert np.array_equal(rle_decode_mask(codes, mask.size), mask)

    @given(st.lists(st.booleans(), min_size=1, max_size=300))
    @settings(max_examples=200)
    def test_codes_alternate_with_no_internal_zeros(self, bits):
        """Apart from a possible leading zero and MAX_RUN splits, runs are
        positive — the encoding is canonical/minimal."""
        mask = np.asarray(bits, dtype=bool)
        codes = rle_encode_mask(mask).tolist()
        assert sum(codes) == mask.size
        # No zero after the first position for inputs shorter than MAX_RUN.
        assert all(c > 0 for c in codes[1:])

    @given(st.integers(1, 500), st.integers(0, 499))
    def test_single_foreground_block(self, n, start):
        start = start % n
        length = min(n - start, 17)
        mask = np.zeros(n, dtype=bool)
        mask[start : start + length] = True
        codes = rle_encode_mask(mask)
        assert count_nonblank(codes) == length
        assert np.array_equal(rle_decode_mask(codes, n), mask)

    @given(st.lists(st.booleans(), max_size=200))
    def test_wire_size_bound(self, bits):
        """Code count never exceeds pixel count + 1 (the worst alternating
        case the paper mentions: equal to explicit coordinates)."""
        mask = np.asarray(bits, dtype=bool)
        codes = rle_encode_mask(mask)
        assert codes.size <= mask.size + 1


def _run_lengths_to_mask(lengths):
    """Build a mask from alternating blank/non-blank run lengths."""
    total = int(sum(lengths))
    mask = np.zeros(total, dtype=bool)
    pos = 0
    for i, run in enumerate(lengths):
        if i % 2 == 1:
            mask[pos : pos + run] = True
        pos += run
    return mask


class TestLoopOracleEquivalence:
    """The vectorized codecs must emit *byte-identical* wire codes to the
    original loop implementations — the wire format is frozen."""

    CASES = [
        np.zeros(0, dtype=bool),
        np.zeros(1, dtype=bool),
        np.ones(1, dtype=bool),
        np.zeros(77777, dtype=bool),  # all-blank, > MAX_RUN, packbits path
        np.ones(77777, dtype=bool),  # all-nonblank, > MAX_RUN, packbits path
        np.ones(MAX_RUN, dtype=bool),
        np.zeros(MAX_RUN + 1, dtype=bool),
        _run_lengths_to_mask([MAX_RUN + 5, 2 * MAX_RUN, 3]),
        _run_lengths_to_mask([0, 3 * MAX_RUN + 1, MAX_RUN, 7]),
        _run_lengths_to_mask([1] * 9001),  # dense alternation, packbits path
    ]

    @pytest.mark.parametrize("mask", CASES, ids=lambda m: f"n{m.size}")
    def test_encode_byte_identical(self, mask):
        assert np.array_equal(rle_encode_mask(mask), _rle_encode_mask_loop(mask))

    @pytest.mark.parametrize("mask", CASES, ids=lambda m: f"n{m.size}")
    def test_decode_matches_loop(self, mask):
        codes = _rle_encode_mask_loop(mask)
        assert np.array_equal(
            rle_decode_mask(codes, mask.size), _rle_decode_mask_loop(codes, mask.size)
        )
        assert np.array_equal(rle_decode_mask(codes, mask.size), mask)

    @given(st.lists(st.booleans(), max_size=400))
    @settings(max_examples=200)
    def test_encode_byte_identical_fuzz(self, bits):
        mask = np.asarray(bits, dtype=bool)
        assert np.array_equal(rle_encode_mask(mask), _rle_encode_mask_loop(mask))

    @given(
        st.lists(st.integers(0, 3 * MAX_RUN), min_size=1, max_size=6),
        st.integers(0, 1),
    )
    @settings(max_examples=60)
    def test_long_run_fuzz(self, lengths, leading_blank):
        """Random alternating runs, many above the uint16 split point."""
        if not leading_blank:
            lengths = [0] + lengths
        mask = _run_lengths_to_mask(lengths)
        codes = rle_encode_mask(mask)
        assert np.array_equal(codes, _rle_encode_mask_loop(mask))
        assert np.array_equal(rle_decode_mask(codes, mask.size), mask)

    @given(st.integers(4097, 60000), st.floats(0.001, 0.999), st.integers(0, 2**31))
    @settings(max_examples=40)
    def test_large_mask_fuzz(self, n, density, seed):
        """Masks above the packbits-path threshold stay byte-identical."""
        rng = np.random.default_rng(seed)
        mask = rng.random(n) < density
        codes = rle_encode_mask(mask)
        assert np.array_equal(codes, _rle_encode_mask_loop(mask))
        assert np.array_equal(rle_decode_mask(codes, n), mask)
