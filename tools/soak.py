#!/usr/bin/env python
"""Nightly chaos soak: loop the randomized fault matrix on fresh seeds.

Each iteration runs the chaos + recovery suites with a distinct
``REPRO_CHAOS_SEED_OFFSET``, so the randomized matrix keeps exploring
new fault scenarios while every failure stays reproducible: on a failing
iteration the exact seed window is known, and the fault plans behind it
are regenerated (via :func:`repro.cluster.faults.random_plan`) and saved
as ``repro.fault-plan/1`` JSON artifacts for the bug report.

Each iteration also runs a small schedule-exploration sweep
(:class:`repro.cluster.explore.Explorer`): seeded random interleavings
of the canonical crash+delay scenario, seeds derived from the same
offset so the explored schedules keep moving night over night.  Failing
interleavings archive their replayable ``repro.sched-trace/1`` decision
traces under ``fail-<offset>/sched-traces/`` — right next to the
regenerated fault plans — and the per-iteration explorer counts feed an
``explorer`` flake-rate block in the archive totals.

Each iteration further runs a serve-mode burst through the real file
spool (:func:`run_serve_sweep`): a seed-derived job burst under a
bounded admission queue with one pre-forged expired orphan claim, so
overload shedding and lease reclamation both fire nightly; the
shed/reclaim rates land in a ``serve`` block of the archive totals.

Every run also writes a ``repro.soak-summary/1`` archive JSON
(``--archive``, default ``<artifacts>/soak-summary.json``) holding one
record per iteration — seed offset, wall seconds, pass/fail, explorer
classification counts — plus the aggregate flake rates, so nightly
trends (slowdowns, rising flake rates) are visible by diffing archives
across nights.  The archive is written atomically after *each*
iteration, so a killed soak still leaves a complete record of what ran.

Usage::

    python tools/soak.py [--minutes N] [--iterations K]
                         [--artifacts DIR] [--archive FILE]
                         [--offset-step K] [--explore-interleavings N]

Environment:

* ``SOAK_MINUTES`` — default time budget (CLI ``--minutes`` wins).
* ``REPRO_CHAOS_SEED_OFFSET`` — starting offset (default: derived from
  the clock so independent nightly runs diverge).

Exit status is non-zero when any iteration failed; the artifacts
directory then holds one ``fail-<offset>/`` folder per failing window
with the pytest tail and the regenerated fault plans.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Mirrors the chaos matrix geometry (tests/test_chaos.py).
MATRIX_SEEDS = 8
NUM_RANKS = 4
NUM_STAGES = 2

#: Archive schema identifier (bump on layout changes).
ARCHIVE_SCHEMA = "repro.soak-summary/1"

#: Per-iteration schedule-exploration sweep width (0 disables).
EXPLORE_INTERLEAVINGS = 4
EXPLORE_RANKS = 8

#: Per-iteration serve-mode burst size (0 disables).
SERVE_JOBS = 4


def _pytest_command(offset: int, timeout_flag: bool) -> list[str]:
    cmd = [
        sys.executable, "-m", "pytest",
        "tests/test_chaos.py", "tests/test_recovery.py", "-q",
    ]
    if timeout_flag:
        cmd += ["--timeout=120", "--timeout-method=signal"]
    return cmd


def _have_pytest_timeout() -> bool:
    try:
        import pytest_timeout  # noqa: F401
        return True
    except ImportError:
        return False


def _save_failure_artifacts(artifacts: str, offset: int, output: str) -> None:
    """Persist the failing window: pytest tail + regenerated fault plans."""
    folder = os.path.join(artifacts, f"fail-{offset}")
    os.makedirs(folder, exist_ok=True)
    with open(os.path.join(folder, "pytest-output.txt"), "w", encoding="utf-8") as fh:
        fh.write(output)
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    try:
        from repro.cluster.faults import random_plan

        for seed in range(offset, offset + MATRIX_SEEDS):
            plan = random_plan(seed, num_ranks=NUM_RANKS, num_stages=NUM_STAGES)
            plan.save(os.path.join(folder, f"fault-plan-seed{seed}.json"))
    except Exception as exc:  # artifact capture is best-effort
        with open(os.path.join(folder, "plan-dump-error.txt"), "w", encoding="utf-8") as fh:
            fh.write(repr(exc))
    finally:
        sys.path.pop(0)


def run_explorer_sweep(offset: int, interleavings: int, artifacts: str) -> dict:
    """Seeded random-walk schedule exploration for one soak iteration.

    Returns a record with the interleaving count, classification
    counts, failing-trace paths (archived under
    ``fail-<offset>/sched-traces/``), and ``ok``.  Runs in-process: the
    explorer is deterministic per seed, so a failing walk's trace
    replays the exact interleaving offline.
    """
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    try:
        from repro.cluster.explore import (
            Explorer,
            ExploreScenario,
            default_fault_plan,
        )

        scenario = ExploreScenario(
            method="binary-swap:raw",
            num_ranks=EXPLORE_RANKS,
            fault_plan=default_fault_plan(EXPLORE_RANKS),
        )
        explorer = Explorer(
            scenario,
            trace_dir=os.path.join(artifacts, f"fail-{offset}", "sched-traces"),
        )
        report = explorer.run_random(interleavings, seed=offset)
        return {
            "interleavings": len(report.results),
            "counts": report.counts(),
            "failures": len(report.failures),
            "failing_traces": [
                r.trace_path for r in report.failures if r.trace_path
            ],
            "ok": report.ok,
        }
    except Exception as exc:  # an explorer crash is itself a failure
        return {
            "interleavings": 0,
            "counts": {},
            "failures": 1,
            "failing_traces": [],
            "error": repr(exc),
            "ok": False,
        }
    finally:
        sys.path.pop(0)


def run_serve_sweep(offset: int, jobs: int, artifacts: str) -> dict:
    """One serve-mode soak burst: overload + lease-reclaim through the
    real file spool.

    Submits a seed-derived burst of jobs (one pre-forged as an expired
    orphaned claim, so reclamation fires every iteration) and serves
    them under a bounded queue with the ``reject`` policy.  Returns the
    shed/reclaim telemetry that feeds the archive's ``serve`` block:
    every job must *settle* — a rendered result or a typed
    rejection — for the sweep to count as ok.
    """
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    try:
        import tempfile

        from repro.pipeline.config import RunConfig
        from repro.serving import load_result, serve, submit_job

        with tempfile.TemporaryDirectory(prefix=f"soak-serve-{offset}-") as spool:
            cfg = RunConfig(
                dataset="sphere", image_size=48, num_ranks=4,
                method="bsbrc", volume_shape=(32, 32, 16),
            )
            job_ids = [
                submit_job(
                    spool,
                    job_id=f"soak-{offset}-{i}",
                    deltas={"rot_y": float((offset + i * 7) % 90)},
                )
                for i in range(jobs)
            ]
            # Forge one expired orphan (a crashed server's claim with a
            # long-dead lease) so reclamation runs on every sweep.
            orphan = os.path.join(spool, "work", f"{job_ids[0]}.a1.json")
            os.replace(os.path.join(spool, "jobs", f"{job_ids[0]}.json"), orphan)
            ancient = time.time() - 3600
            os.utime(orphan, (ancient, ancient))
            serve(
                spool, cfg, max_workers=2,
                queue_limit=max(2, jobs // 2), shed_policy="reject",
                lease_s=1.0, idle_timeout=2.0, poll=0.01,
            )
            docs = [load_result(spool, job_id) for job_id in job_ids]
            settled = sum(1 for d in docs if d is not None)
            rendered = sum(1 for d in docs if d and d.get("ok"))
            shed = sum(
                1 for d in docs
                if d and not d.get("ok")
                and d.get("error") in ("JobRejectedError", "JobShedError")
            )
            reclaimed = sum(1 for d in docs if d and d.get("attempt", 1) > 1)
            return {
                "jobs": jobs,
                "settled": settled,
                "rendered": rendered,
                "shed": shed,
                "reclaimed": reclaimed,
                "shed_rate": shed / jobs if jobs else 0.0,
                "reclaim_rate": reclaimed / jobs if jobs else 0.0,
                "ok": settled == jobs and rendered >= 1 and reclaimed >= 1,
            }
    except Exception as exc:  # a serve crash is itself a failure
        return {
            "jobs": jobs, "settled": 0, "rendered": 0,
            "shed": 0, "reclaimed": 0,
            "shed_rate": 0.0, "reclaim_rate": 0.0,
            "error": repr(exc), "ok": False,
        }
    finally:
        sys.path.pop(0)


def summarize(iterations: list[dict]) -> dict:
    """Aggregate per-iteration records into the archive's totals block."""
    count = len(iterations)
    failures = sum(1 for it in iterations if not it["ok"])
    seconds = [it["seconds"] for it in iterations]
    explored = sum(it.get("explorer", {}).get("interleavings", 0) for it in iterations)
    explorer_failures = sum(
        it.get("explorer", {}).get("failures", 0) for it in iterations
    )
    serve_jobs = sum(it.get("serve", {}).get("jobs", 0) for it in iterations)
    serve_shed = sum(it.get("serve", {}).get("shed", 0) for it in iterations)
    serve_reclaimed = sum(it.get("serve", {}).get("reclaimed", 0) for it in iterations)
    serve_failures = sum(
        1 for it in iterations if it.get("serve") and not it["serve"]["ok"]
    )
    return {
        "iterations": count,
        "failures": failures,
        "flake_rate": (failures / count) if count else 0.0,
        "total_seconds": sum(seconds),
        "mean_seconds": (sum(seconds) / count) if count else 0.0,
        "max_seconds": max(seconds) if seconds else 0.0,
        "explorer": {
            "interleavings": explored,
            "failures": explorer_failures,
            "flake_rate": (explorer_failures / explored) if explored else 0.0,
        },
        "serve": {
            "jobs": serve_jobs,
            "shed": serve_shed,
            "reclaimed": serve_reclaimed,
            "failures": serve_failures,
            "shed_rate": (serve_shed / serve_jobs) if serve_jobs else 0.0,
            "reclaim_rate": (serve_reclaimed / serve_jobs) if serve_jobs else 0.0,
        },
    }


def write_archive(path: str, iterations: list[dict], *, started_at: str) -> None:
    """Atomically persist the soak archive (schema ``repro.soak-summary/1``)."""
    doc = {
        "schema": ARCHIVE_SCHEMA,
        "started_at": started_at,
        "matrix_seeds": MATRIX_SEEDS,
        "totals": summarize(iterations),
        "iterations": iterations,
    }
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    tmp = f"{path}.{os.getpid()}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    os.replace(tmp, path)


def run_iteration(
    offset: int,
    env_base: dict,
    timeout_flag: bool,
    artifacts: str,
    *,
    explore_interleavings: int = EXPLORE_INTERLEAVINGS,
    serve_jobs: int = SERVE_JOBS,
) -> dict:
    """One soak iteration: run the suites at ``offset``, record telemetry."""
    env = dict(env_base, REPRO_CHAOS_SEED_OFFSET=str(offset))
    started = time.monotonic()
    proc = subprocess.run(
        _pytest_command(offset, timeout_flag),
        cwd=REPO_ROOT, env=env, text=True,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
    )
    suites_ok = proc.returncode == 0
    if not suites_ok:
        tail = "\n".join(proc.stdout.splitlines()[-200:])
        _save_failure_artifacts(artifacts, offset, tail)
    explorer = None
    if explore_interleavings > 0:
        explorer = run_explorer_sweep(offset, explore_interleavings, artifacts)
    serve_record = None
    if serve_jobs > 0:
        serve_record = run_serve_sweep(offset, serve_jobs, artifacts)
    elapsed = time.monotonic() - started
    record = {
        "offset": offset,
        "seconds": round(elapsed, 3),
        "ok": (
            suites_ok
            and (explorer is None or explorer["ok"])
            and (serve_record is None or serve_record["ok"])
        ),
        "returncode": proc.returncode,
    }
    if explorer is not None:
        record["explorer"] = explorer
    if serve_record is not None:
        record["serve"] = serve_record
    return record


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--minutes", type=float,
        default=float(os.environ.get("SOAK_MINUTES", "20")),
        help="soak time budget in minutes (default: $SOAK_MINUTES or 20)",
    )
    parser.add_argument(
        "--iterations", type=int, default=None,
        help="run exactly K iterations instead of a time budget",
    )
    parser.add_argument(
        "--artifacts", default=os.path.join(REPO_ROOT, "soak-artifacts"),
        help="where failing fault plans and logs are written",
    )
    parser.add_argument(
        "--archive", default=None,
        help="soak-summary JSON path (default: <artifacts>/soak-summary.json)",
    )
    parser.add_argument(
        "--offset-step", type=int, default=MATRIX_SEEDS,
        help="seed-offset stride between iterations (default: matrix width)",
    )
    parser.add_argument(
        "--explore-interleavings", type=int, default=EXPLORE_INTERLEAVINGS,
        help="random schedule interleavings explored per iteration "
             f"(default: {EXPLORE_INTERLEAVINGS}; 0 disables the sweep)",
    )
    parser.add_argument(
        "--serve-jobs", type=int, default=SERVE_JOBS,
        help="serve-mode burst size per iteration: spool jobs pushed "
             "through overload + lease reclamation, shed/reclaim rates "
             f"archived (default: {SERVE_JOBS}; 0 disables the sweep)",
    )
    args = parser.parse_args(argv)
    archive = args.archive or os.path.join(args.artifacts, "soak-summary.json")

    offset = int(
        os.environ.get("REPRO_CHAOS_SEED_OFFSET", str(int(time.time()) % 100_000))
    )
    deadline = time.monotonic() + args.minutes * 60.0
    timeout_flag = _have_pytest_timeout()
    env_base = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))
    started_at = time.strftime("%Y-%m-%dT%H:%M:%S%z")

    records: list[dict] = []
    while (
        len(records) < args.iterations
        if args.iterations is not None
        else time.monotonic() < deadline
    ):
        record = run_iteration(
            offset, env_base, timeout_flag, args.artifacts,
            explore_interleavings=args.explore_interleavings,
            serve_jobs=args.serve_jobs,
        )
        records.append(record)
        status = "ok" if record["ok"] else f"FAIL rc={record['returncode']}"
        explorer = record.get("explorer")
        if explorer is not None:
            status += (
                f" explore={explorer['interleavings'] - explorer['failures']}"
                f"/{explorer['interleavings']}"
            )
        serve_record = record.get("serve")
        if serve_record is not None:
            status += (
                f" serve={serve_record['settled']}/{serve_record['jobs']}"
                f" shed={serve_record['shed']}"
                f" reclaimed={serve_record['reclaimed']}"
            )
        print(
            f"[soak] iteration {len(records)} offset={offset} "
            f"{record['seconds']:.0f}s: {status}",
            flush=True,
        )
        # Archive after every iteration so a killed soak keeps its record.
        write_archive(archive, records, started_at=started_at)
        offset += args.offset_step

    totals = summarize(records)
    print(
        f"[soak] done: {totals['iterations']} iterations, "
        f"{totals['failures']} failing windows "
        f"(flake rate {totals['flake_rate']:.1%}, "
        f"mean {totals['mean_seconds']:.0f}s/iter)"
    )
    explorer_totals = totals["explorer"]
    if explorer_totals["interleavings"]:
        print(
            f"[soak] explorer: {explorer_totals['interleavings']} interleavings, "
            f"{explorer_totals['failures']} failing "
            f"(flake rate {explorer_totals['flake_rate']:.1%})"
        )
    serve_totals = totals["serve"]
    if serve_totals["jobs"]:
        print(
            f"[soak] serve: {serve_totals['jobs']} spool jobs, "
            f"shed rate {serve_totals['shed_rate']:.1%}, "
            f"reclaim rate {serve_totals['reclaim_rate']:.1%}, "
            f"{serve_totals['failures']} failing sweeps"
        )
    print(f"[soak] archive at {archive}")
    if totals["failures"]:
        print(f"[soak] artifacts in {args.artifacts}")
    return 1 if totals["failures"] else 0


if __name__ == "__main__":
    sys.exit(main())
