"""The render service: concurrent sessions, QoS, progressive delivery.

The acceptance demonstration for the serving layer: at least three
concurrent sessions multiplex over one bounded worker pool, each
streaming monotone progressive frames whose finals are bit-identical to
one-shot runs; per-session QoS maps onto the recovery lattice (a
``degrade``-QoS session's crashed job comes back fast as a *flagged*
partial frame, ``strict`` surfaces the error, ``lossless`` recovers
bit-identically); and the file-spool front end round-trips jobs,
events, and results through nothing but a directory.
"""

import json
import os
import threading
import time

import numpy as np
import pytest

from repro.cluster.faults import FaultPlan, FaultRule
from repro.cluster.progress import ProgressFeed
from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    JobCancelledError,
    JobRejectedError,
    JobShedError,
    RankFailedError,
)
from repro.pipeline.config import RunConfig
from repro.pipeline.session import RenderJob
from repro.pipeline.system import SortLastSystem
from repro.serving import (
    ProgressiveFrame,
    QOS_POLICIES,
    RenderService,
    SHED_POLICIES,
    WorkerPool,
    read_events,
    serve,
    submit_job,
    wait_for_result,
)


def _cfg(**kw):
    base = dict(
        dataset="sphere",
        image_size=64,
        num_ranks=4,
        method="bsbrc",
        volume_shape=(32, 32, 16),
    )
    base.update(kw)
    return RunConfig(**base)


def _crash_plan():
    return FaultPlan(rules=(FaultRule(kind="crash", rank=1, stage=1),), seed=3)


def _render_crash_plan():
    # The tile-routed engine has no stage boundaries, so crash it in the
    # render phase (fires for every method).
    return FaultPlan(rules=(FaultRule(kind="crash", rank=1, phase="render"),), seed=5)


def _assert_monotone(events):
    covs = [e.coverage for e in events]
    assert all(a <= b for a, b in zip(covs, covs[1:]))


class TestConcurrentSessions:
    def test_three_sessions_share_one_bounded_pool(self):
        """The flagship path: 3 sessions, mixed methods (tile-routed:rle
        included), one crash-fault job under degrade QoS — all
        multiplexed over one pool; every stream monotone; every final
        frame bit-identical to its one-shot run."""
        base = _cfg()
        with RenderService(base, max_workers=3) as service:
            service.open_session("alice", qos="lossless")
            service.open_session("bob", qos="degrade")
            service.open_session("carol", qos="strict")
            t_alice = service.submit("alice", method="binary-swap:rle")
            t_bob = service.submit(
                "bob", RenderJob(deltas={"method": "tile-routed:rle"},
                                 fault_plan=_render_crash_plan())
            )
            t_carol = service.submit("carol", rot_y=45.0)
            r_alice = t_alice.result(timeout=120)
            r_bob = t_bob.result(timeout=120)
            r_carol = t_carol.result(timeout=120)
            assert service.pool.jobs_submitted == 3
            assert service.pool.peak_active <= 3

        # Progressive streams: monotone coverage, flagged final.
        for ticket in (t_alice, t_bob, t_carol):
            assert ticket.feed is not None and ticket.feed.closed
            _assert_monotone(ticket.feed.events)
            assert ticket.feed.events[-1].kind == "final"
            assert ticket.feed.events[-1].coverage == 1.0

        # Degrade QoS: the crashed job came back flagged, not raised.
        assert r_bob.degraded
        assert t_bob.feed.events[-1].degraded
        assert t_bob.feed.events[-1].outcome == "degraded"

        # Finals bit-identical to one-shot runs of the same configs.
        one_alice = SortLastSystem(_cfg(method="binary-swap:rle")).run()
        one_carol = SortLastSystem(_cfg(rot_y=45.0)).run()
        one_bob = SortLastSystem(_cfg(method="tile-routed:rle")).run(
            fault_plan=_render_crash_plan(), recovery="degrade"
        )
        assert np.array_equal(
            r_alice.final_image.intensity, one_alice.final_image.intensity
        )
        assert np.array_equal(
            r_carol.final_image.intensity, one_carol.final_image.intensity
        )
        assert np.array_equal(
            r_bob.final_image.intensity, one_bob.final_image.intensity
        )

    def test_pool_bound_is_respected(self):
        with RenderService(_cfg(), max_workers=1) as service:
            tickets = [service.submit(f"s{i}") for i in range(3)]
            for ticket in tickets:
                ticket.result(timeout=120)
            assert service.pool.peak_active == 1
            assert service.pool.jobs_submitted == 3

    def test_jobs_within_a_session_run_in_order(self):
        with RenderService(_cfg(), max_workers=2) as service:
            first = service.submit("one", rot_y=10.0)
            second = service.submit("one", rot_y=20.0)
            r1 = first.result(timeout=120)
            r2 = second.result(timeout=120)
            assert r1.config.rot_y == 10.0
            assert r2.config.rot_y == 20.0

    def test_per_job_perf_scoping(self):
        """Concurrent jobs account into private registries — a job's
        report reflects its own run, not an interleaving."""
        with RenderService(_cfg(), max_workers=2) as service:
            small = service.submit("a", image_size=32)
            large = service.submit("b", image_size=96)
            small.result(timeout=120)
            large.result(timeout=120)
        c_small = small.perf_report["counters"]
        c_large = large.perf_report["counters"]
        assert c_small and c_large
        # The larger frame casts strictly more rays than the smaller;
        # interleaved global counters could never show that cleanly.
        assert c_large["raycast.rays"] > c_small["raycast.rays"]


class TestQoS:
    def test_qos_maps_onto_recovery_lattice(self):
        assert QOS_POLICIES["degrade"] == "degrade"
        assert QOS_POLICIES["strict"] == "abort"
        assert QOS_POLICIES["lossless"] == "checkpoint-resume"

    def test_strict_session_surfaces_the_error(self):
        with RenderService(_cfg(), max_workers=1) as service:
            service.open_session("s", qos="strict")
            ticket = service.submit("s", RenderJob(fault_plan=_crash_plan()))
            with pytest.raises(RankFailedError):
                ticket.result(timeout=120)

    def test_lossless_session_recovers_bit_identically(self):
        with RenderService(_cfg(), max_workers=1) as service:
            service.open_session("l", qos="lossless")
            hurt = service.submit("l", RenderJob(fault_plan=_crash_plan()))
            clean = service.submit("l")
            r_hurt = hurt.result(timeout=120)
            r_clean = clean.result(timeout=120)
        assert r_hurt.recovered and not r_hurt.degraded
        assert np.array_equal(
            r_hurt.final_image.intensity, r_clean.final_image.intensity
        )

    def test_job_recovery_overrides_session_qos(self):
        with RenderService(_cfg(), max_workers=1) as service:
            service.open_session("s", qos="strict")
            ticket = service.submit(
                "s", RenderJob(fault_plan=_crash_plan(), recovery="degrade")
            )
            result = ticket.result(timeout=120)
        assert result.degraded

    def test_unknown_qos_rejected(self):
        with RenderService(_cfg()) as service:
            with pytest.raises(ConfigurationError, match="QoS"):
                service.open_session("x", qos="platinum")

    def test_qos_conflict_on_reopen_rejected(self):
        with RenderService(_cfg()) as service:
            service.open_session("x", qos="strict")
            service.open_session("x", qos="strict")  # idempotent
            with pytest.raises(ConfigurationError, match="already open"):
                service.open_session("x", qos="degrade")


class TestProgressiveFrame:
    @pytest.mark.parametrize("method", ["binary-swap:rle", "tile-routed:rle"])
    def test_replay_converges_to_the_final_image(self, method):
        with RenderService(_cfg(method=method), max_workers=1) as service:
            ticket = service.submit("viewer")
            result = ticket.result(timeout=120)
        frame = ProgressiveFrame(64, 64)
        last_cov = 0.0
        for event in ticket.feed.events:
            frame.apply(event)
            assert frame.coverage >= last_cov
            last_cov = frame.coverage
        assert frame.finalized and not frame.degraded
        assert frame.outcome == "clean"
        assert np.array_equal(frame.image.intensity, result.final_image.intensity)
        assert np.array_equal(frame.image.opacity, result.final_image.opacity)

    def test_tile_frames_are_correct_before_the_final_event(self):
        """Mid-stream, every tile-covered pixel already holds its final
        value — the progressive display never shows wrong pixels."""
        with RenderService(_cfg(method="tile-routed:rle"), max_workers=1) as service:
            ticket = service.submit("viewer")
            result = ticket.result(timeout=120)
        frame = ProgressiveFrame(64, 64)
        for event in ticket.feed.events:
            if event.kind != "tile":
                continue
            frame.apply(event)
            rect = event.rect
            assert np.array_equal(
                frame.image.intensity[rect.y0 : rect.y1, rect.x0 : rect.x1],
                result.final_image.intensity[rect.y0 : rect.y1, rect.x0 : rect.x1],
            )


class TestSpool:
    def test_spool_round_trip(self, tmp_path):
        spool = str(tmp_path / "spool")
        base = _cfg()
        j_tile = submit_job(
            spool, session="u1", qos="degrade",
            deltas={"method": "tile-routed:rle"},
        )
        j_rot = submit_job(spool, session="u2", qos="lossless",
                           deltas={"rot_y": 10.0})
        j_crash = submit_job(
            spool, session="u1", qos="degrade",
            fault_plan=_crash_plan(),
        )
        served = serve(spool, base, max_workers=3, max_jobs=3, idle_timeout=10.0)
        assert served == 3

        doc_tile = wait_for_result(spool, j_tile, timeout=5.0)
        doc_rot = wait_for_result(spool, j_rot, timeout=5.0)
        doc_crash = wait_for_result(spool, j_crash, timeout=5.0)
        assert doc_tile["ok"] and doc_rot["ok"] and doc_crash["ok"]
        assert doc_tile["outcome"] == "clean"
        assert doc_crash["outcome"] == "degraded" and doc_crash["degraded"]

        # Streamed documents: monotone coverage, final persisted image
        # bit-identical to the one-shot run.
        events = read_events(spool, j_tile)
        covs = [e["coverage"] for e in events]
        assert events and all(a <= b for a, b in zip(covs, covs[1:]))
        assert events[-1]["kind"] == "final"
        with np.load(doc_tile["image"]) as npz:
            one_shot = SortLastSystem(_cfg(method="tile-routed:rle")).run()
            assert np.array_equal(npz["intensity"], one_shot.final_image.intensity)
            assert np.array_equal(npz["opacity"], one_shot.final_image.opacity)

    def test_spool_reports_failures(self, tmp_path):
        spool = str(tmp_path / "spool")
        job_id = submit_job(
            spool, session="s", qos="strict", fault_plan=_crash_plan()
        )
        serve(spool, _cfg(), max_workers=1, max_jobs=1, idle_timeout=10.0)
        doc = wait_for_result(spool, job_id, timeout=5.0)
        assert not doc["ok"]
        assert doc["error"] == "RankFailedError"

    def test_submit_rejects_unknown_qos(self, tmp_path):
        with pytest.raises(ConfigurationError, match="QoS"):
            submit_job(str(tmp_path), qos="platinum")


def _blocked_service(**service_kw):
    """A service whose single pool worker is parked on a gate, so every
    submitted job stays deterministically queued until the gate opens."""
    service = RenderService(_cfg(), max_workers=1, **service_kw)
    gate = threading.Event()
    started = threading.Event()

    def _block():
        started.set()
        gate.wait(60)

    service.pool.submit(_block)
    assert started.wait(10)
    return service, gate


class TestAdmission:
    def test_policies_are_a_lattice(self):
        assert SHED_POLICIES == ("block", "reject", "shed-lowest-qos")
        with pytest.raises(ConfigurationError, match="shed policy"):
            RenderService(_cfg(), shed_policy="lifo")
        with pytest.raises(ConfigurationError, match="queue_limit"):
            RenderService(_cfg(), queue_limit=0)

    def test_reject_turns_away_the_overflow_arrival(self):
        service, gate = _blocked_service(queue_limit=2, shed_policy="reject")
        try:
            kept = [service.submit("s", rot_y=float(i)) for i in range(2)]
            with pytest.raises(JobRejectedError) as exc:
                service.submit("s", rot_y=99.0)
            assert exc.value.queue_limit == 2
            assert service.rejected_jobs == 1
            kinds = [e["kind"] for e in service.events]
            assert kinds.count("rejected") == 1
            assert all(e["schema"] == "repro.serve-event/1" for e in service.events)
            gate.set()
            for ticket in kept:
                assert ticket.result(timeout=120).config is not None
        finally:
            gate.set()
            service.close()

    def test_shed_lowest_qos_evicts_a_lower_priority_job(self):
        service, gate = _blocked_service(
            queue_limit=2, shed_policy="shed-lowest-qos"
        )
        try:
            service.open_session("cheap", qos="degrade")
            service.open_session("vip", qos="lossless")
            victim_a = service.submit("cheap", rot_y=1.0)
            victim_b = service.submit("cheap", rot_y=2.0)
            vip = service.submit("vip", rot_y=3.0)
            # The newest of the lowest-QoS queued jobs was evicted, and
            # its client got a typed error instead of a hang.
            with pytest.raises(JobShedError):
                victim_b.result(timeout=10)
            assert victim_b.state == "shed"
            assert service.shed_jobs == 1
            shed_events = [e for e in service.events if e["kind"] == "shed"]
            assert len(shed_events) == 1
            assert shed_events[0]["job_id"] == victim_b.job_id
            assert shed_events[0]["shed_for"] == vip.job_id
            # An equal-priority arrival outranks nobody: rejected.
            with pytest.raises(JobRejectedError):
                service.submit("cheap", rot_y=4.0)
            gate.set()
            assert victim_a.result(timeout=120).config.rot_y == 1.0
            assert vip.result(timeout=120).config.rot_y == 3.0
        finally:
            gate.set()
            service.close()

    def test_block_backpressures_until_a_slot_frees(self):
        service, gate = _blocked_service(queue_limit=1, shed_policy="block")
        try:
            first = service.submit("s", rot_y=1.0)
            admitted = []

            def _submit_second():
                admitted.append(service.submit("s", rot_y=2.0))

            blocked = threading.Thread(target=_submit_second)
            blocked.start()
            blocked.join(timeout=0.3)
            assert blocked.is_alive(), "full queue should block the submitter"
            gate.set()  # worker frees the slot; the parked submit admits
            blocked.join(timeout=60)
            assert not blocked.is_alive()
            assert first.result(timeout=120).config.rot_y == 1.0
            assert admitted[0].result(timeout=120).config.rot_y == 2.0
            assert service.shed_jobs == service.rejected_jobs == 0
        finally:
            gate.set()
            service.close()


class TestDeadlines:
    def test_queued_past_deadline_is_dropped_before_execution(self):
        service, gate = _blocked_service()
        try:
            late = service.submit("s", deadline_s=0.05, rot_y=1.0)
            time.sleep(0.2)
            gate.set()
            with pytest.raises(DeadlineExceededError, match="in the queue"):
                late.result(timeout=30)
            assert service.deadline_jobs == 1
            assert [e["kind"] for e in service.events] == ["deadline"]
        finally:
            gate.set()
            service.close()

    def test_running_job_aborts_at_a_progress_boundary(self):
        """An already-expired feed deadline fires at the first tile or
        stage boundary the engines emit — mid-run, typed, no hang."""
        feed = ProgressFeed()
        feed.set_deadline(time.monotonic() - 1.0, 0.001)
        with RenderService(_cfg(), max_workers=1) as service:
            ticket = service.submit(
                "s", RenderJob(progress=feed, deltas={"method": "tile-routed:rle"})
            )
            with pytest.raises(DeadlineExceededError, match="boundary"):
                ticket.result(timeout=120)
            assert ticket.feed.closed

    def test_generous_deadline_does_not_interfere(self):
        with RenderService(_cfg(), max_workers=1) as service:
            ticket = service.submit("s", deadline_s=300.0)
            result = ticket.result(timeout=120)
        assert result.final_image is not None
        one_shot = SortLastSystem(_cfg()).run()
        assert np.array_equal(
            result.final_image.intensity, one_shot.final_image.intensity
        )


class TestDrain:
    def test_close_cancels_queued_jobs_and_returns_them(self):
        service, gate = _blocked_service()
        try:
            queued = [service.submit("s", rot_y=float(i)) for i in range(3)]
            gate.set()  # let the blocker finish so drain can complete
            cancelled = service.close(drain=True)
        finally:
            gate.set()
        # Every queued ticket resolved — a drained client never hangs.
        assert {t.job_id for t in cancelled} <= {t.job_id for t in queued}
        for ticket in queued:
            assert ticket.done()
            if ticket in cancelled:
                with pytest.raises(JobCancelledError):
                    ticket.result(timeout=1)
                assert ticket.state == "cancelled"
        assert any(e["kind"] == "drain" for e in service.events)

    def test_abandon_resolves_leftovers_with_a_bounded_join(self):
        service, gate = _blocked_service()
        try:
            queued = [service.submit("s", rot_y=float(i)) for i in range(2)]
            t0 = time.monotonic()
            service.close(drain=False, timeout=0.5)
            assert time.monotonic() - t0 < 30.0
            for ticket in queued:
                with pytest.raises(JobCancelledError):
                    ticket.result(timeout=1)
        finally:
            gate.set()

    def test_submit_after_close_is_refused(self):
        service = RenderService(_cfg(), max_workers=1)
        service.close()
        with pytest.raises(ConfigurationError, match="shut down"):
            service.submit("s")

    def test_blocked_submitter_wakes_on_close(self):
        service, gate = _blocked_service(queue_limit=1, shed_policy="block")
        try:
            service.submit("s", rot_y=1.0)
            outcome = []

            def _submit_blocked():
                try:
                    service.submit("s", rot_y=2.0)
                    outcome.append("admitted")
                except ConfigurationError:
                    outcome.append("refused")

            blocked = threading.Thread(target=_submit_blocked)
            blocked.start()
            time.sleep(0.2)
            gate.set()
            service.close(drain=True)
            blocked.join(timeout=30)
            assert not blocked.is_alive()
            assert outcome and outcome[0] in ("admitted", "refused")
        finally:
            gate.set()


class TestTornSpoolWrites:
    def _events_path(self, spool, job_id):
        return os.path.join(spool, "out", f"{job_id}.events.jsonl")

    def test_torn_trailing_record_is_dropped(self, tmp_path):
        spool = str(tmp_path / "spool")
        job_id = submit_job(spool, deltas={"method": "tile-routed:rle"})
        serve(spool, _cfg(), max_workers=1, max_jobs=1, idle_timeout=10.0)
        intact = read_events(spool, job_id)
        assert intact and intact[-1]["kind"] == "final"
        # A server killed mid-write leaves a truncated final line.
        with open(self._events_path(spool, job_id), "a", encoding="utf-8") as fh:
            fh.write('{"schema": "repro.serve-ev')
        assert read_events(spool, job_id) == intact

    def test_torn_log_still_replays_to_a_frame(self, tmp_path):
        spool = str(tmp_path / "spool")
        job_id = submit_job(spool, deltas={"method": "tile-routed:rle"})
        serve(spool, _cfg(), max_workers=1, max_jobs=1, idle_timeout=10.0)
        path = self._events_path(spool, job_id)
        with open(path, encoding="utf-8") as fh:
            lines = fh.readlines()
        # Truncate mid-record: drop the final event and tear the one
        # before it in half.
        with open(path, "w", encoding="utf-8") as fh:
            fh.writelines(lines[:-2])
            fh.write(lines[-2][: len(lines[-2]) // 2])
        events = read_events(spool, job_id)
        assert len(events) == len(lines) - 2
        frame = ProgressiveFrame.replay(events, 64, 64)
        assert not frame.finalized
        assert frame.events_applied == len(events)

    def test_mid_file_corruption_still_raises(self, tmp_path):
        spool = str(tmp_path / "spool")
        os.makedirs(os.path.join(spool, "out"))
        with open(self._events_path(spool, "job-x"), "w", encoding="utf-8") as fh:
            fh.write("not json\n")
            fh.write(json.dumps({"schema": "repro.serve-event/1"}) + "\n")
        with pytest.raises(json.JSONDecodeError):
            read_events(spool, "job-x")

    def test_wait_for_result_times_out_cleanly(self, tmp_path):
        t0 = time.monotonic()
        with pytest.raises(TimeoutError, match="job-none"):
            wait_for_result(str(tmp_path), "job-none", timeout=0.3, poll=0.01)
        assert time.monotonic() - t0 < 5.0


class TestWorkerPool:
    def test_grid_rides_the_shared_pool(self):
        from repro.experiments.harness import run_grid

        pool = WorkerPool(3)
        try:
            pooled = run_grid(
                ["sphere"], 48, [2, 4], ["bs", "bsbrc"],
                volume_shape=(32, 32, 16), pool=pool,
            )
            inline = run_grid(
                ["sphere"], 48, [2, 4], ["bs", "bsbrc"],
                volume_shape=(32, 32, 16),
            )
        finally:
            pool.shutdown()
        assert [r.as_dict() for r in pooled] == [r.as_dict() for r in inline]

    def test_pool_requires_a_worker(self):
        with pytest.raises(ConfigurationError):
            WorkerPool(0)
