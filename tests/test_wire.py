"""Tests for the byte-level message formats (pack/unpack + accounting)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compositing.wire import (
    pack_bs,
    pack_bsbr,
    pack_bsbrc,
    pack_bslc,
    pack_pixels_rect,
    unpack_bs,
    unpack_bsbr,
    unpack_bsbrc,
    unpack_bslc,
    unpack_pixels_rect,
)
from repro.errors import WireFormatError
from repro.types import PIXEL_BYTES, RECT_INFO_BYTES, RLE_CODE_BYTES, Rect


def sparse_planes(rng, h=12, w=10, density=0.3):
    mask = rng.random((h, w)) < density
    opacity = np.where(mask, rng.uniform(0.1, 0.9, (h, w)), 0.0)
    intensity = np.where(mask, rng.uniform(0.1, 1.0, (h, w)), 0.0)
    return intensity, opacity


@pytest.fixture
def planes():
    return sparse_planes(np.random.default_rng(7))


class TestPixelsRect:
    def test_roundtrip(self, planes):
        intensity, opacity = planes
        rect = Rect(2, 1, 7, 9)
        buf = pack_pixels_rect(intensity, opacity, rect)
        assert len(buf) == rect.area * PIXEL_BYTES
        out_i, out_a = unpack_pixels_rect(buf, rect)
        rows, cols = rect.slices()
        assert np.array_equal(out_i, intensity[rows, cols])
        assert np.array_equal(out_a, opacity[rows, cols])

    def test_wrong_length_rejected(self):
        with pytest.raises(WireFormatError):
            unpack_pixels_rect(b"\x00" * 8, Rect(0, 0, 1, 1))


class TestBS:
    def test_roundtrip(self, planes):
        intensity, opacity = planes
        half = Rect(0, 0, 6, 10)
        msg = pack_bs(intensity, opacity, half)
        assert msg.accounted_bytes == half.area * PIXEL_BYTES
        assert len(msg.buffer) == msg.accounted_bytes
        out_i, out_a = unpack_bs(msg.buffer, half)
        assert np.array_equal(out_i, intensity[:6])
        assert np.array_equal(out_a, opacity[:6])

    def test_bs_always_full_size_even_when_blank(self):
        intensity = np.zeros((8, 8))
        opacity = np.zeros((8, 8))
        msg = pack_bs(intensity, opacity, Rect(0, 0, 4, 8))
        assert msg.accounted_bytes == 32 * PIXEL_BYTES


class TestBSBR:
    def test_roundtrip_nonempty(self, planes):
        intensity, opacity = planes
        rect = Rect(3, 2, 8, 7)
        msg = pack_bsbr(intensity, opacity, rect)
        assert msg.accounted_bytes == RECT_INFO_BYTES + rect.area * PIXEL_BYTES
        got_rect, out_i, out_a = unpack_bsbr(msg.buffer)
        assert got_rect == rect
        rows, cols = rect.slices()
        assert np.array_equal(out_i, intensity[rows, cols])
        assert np.array_equal(out_a, opacity[rows, cols])

    def test_empty_rect_is_8_bytes(self, planes):
        intensity, opacity = planes
        msg = pack_bsbr(intensity, opacity, Rect.empty())
        assert msg.accounted_bytes == RECT_INFO_BYTES
        assert len(msg.buffer) == RECT_INFO_BYTES
        rect, out_i, out_a = unpack_bsbr(msg.buffer)
        assert rect.is_empty and out_i is None and out_a is None

    def test_truncated_rejected(self):
        with pytest.raises(WireFormatError):
            unpack_bsbr(b"\x00" * 4)

    def test_trailing_bytes_on_empty_rejected(self, planes):
        intensity, opacity = planes
        msg = pack_bsbr(intensity, opacity, Rect.empty())
        with pytest.raises(WireFormatError):
            unpack_bsbr(msg.buffer + b"\x00")


class TestBSLC:
    def test_roundtrip(self, planes):
        intensity, opacity = planes
        flat_i, flat_a = intensity.ravel(), opacity.ravel()
        indices = np.arange(0, flat_i.size, 2, dtype=np.int64)
        msg = pack_bslc(flat_i, flat_a, indices)
        positions, out_i, out_a = unpack_bslc(msg.buffer, indices.size)
        # Positions index the sent sequence; values must match the source.
        src = indices[positions]
        assert np.array_equal(out_i, flat_i[src])
        assert np.array_equal(out_a, flat_a[src])
        # Every non-blank sent pixel is present.
        mask = (flat_i[indices] != 0) | (flat_a[indices] != 0)
        assert positions.size == int(mask.sum())

    def test_accounting_formula(self, planes):
        intensity, opacity = planes
        flat_i, flat_a = intensity.ravel(), opacity.ravel()
        indices = np.arange(flat_i.size, dtype=np.int64)
        msg = pack_bslc(flat_i, flat_a, indices)
        ncodes = int.from_bytes(msg.buffer[:4], "little")
        nonblank = int(((flat_i != 0) | (flat_a != 0)).sum())
        assert msg.accounted_bytes == ncodes * RLE_CODE_BYTES + nonblank * PIXEL_BYTES

    def test_all_blank_message_is_just_codes(self):
        flat = np.zeros(50)
        msg = pack_bslc(flat, flat, np.arange(50, dtype=np.int64))
        positions, out_i, out_a = unpack_bslc(msg.buffer, 50)
        assert positions.size == 0
        assert msg.accounted_bytes == RLE_CODE_BYTES  # single blank run

    def test_wrong_seq_len_rejected(self, planes):
        intensity, opacity = planes
        msg = pack_bslc(intensity.ravel(), opacity.ravel(), np.arange(20, dtype=np.int64))
        with pytest.raises(WireFormatError):
            unpack_bslc(msg.buffer, 21)

    def test_truncated_rejected(self):
        with pytest.raises(WireFormatError):
            unpack_bslc(b"\x01", 0)


class TestBSBRC:
    def test_roundtrip(self, planes):
        intensity, opacity = planes
        rect = Rect(1, 1, 9, 8)
        msg = pack_bsbrc(intensity, opacity, rect)
        got_rect, positions, out_i, out_a = unpack_bsbrc(msg.buffer)
        assert got_rect == rect
        rows, cols = rect.slices()
        block_i = intensity[rows, cols].ravel()
        block_a = opacity[rows, cols].ravel()
        mask = (block_i != 0) | (block_a != 0)
        assert np.array_equal(positions, np.flatnonzero(mask))
        assert np.array_equal(out_i, block_i[mask])
        assert np.array_equal(out_a, block_a[mask])

    def test_accounting_formula(self, planes):
        intensity, opacity = planes
        rect = Rect(0, 0, 12, 10)
        msg = pack_bsbrc(intensity, opacity, rect)
        ncodes = int.from_bytes(msg.buffer[8:12], "little")
        rows, cols = rect.slices()
        nonblank = int(((intensity[rows, cols] != 0) | (opacity[rows, cols] != 0)).sum())
        assert msg.accounted_bytes == (
            RECT_INFO_BYTES + ncodes * RLE_CODE_BYTES + nonblank * PIXEL_BYTES
        )

    def test_empty_rect(self, planes):
        intensity, opacity = planes
        msg = pack_bsbrc(intensity, opacity, Rect.empty())
        assert msg.accounted_bytes == RECT_INFO_BYTES
        rect, positions, out_i, out_a = unpack_bsbrc(msg.buffer)
        assert rect.is_empty and positions is None

    def test_never_larger_than_bsbr_by_more_than_codes(self, planes):
        """BSBRC beats BSBR whenever the rect has blanks; worst case it
        adds only the code bytes (paper §3.4 discussion)."""
        intensity, opacity = planes
        rect = Rect(0, 0, 12, 10)
        brc = pack_bsbrc(intensity, opacity, rect)
        br = pack_bsbr(intensity, opacity, rect)
        ncodes = int.from_bytes(brc.buffer[8:12], "little")
        assert brc.accounted_bytes <= br.accounted_bytes + ncodes * RLE_CODE_BYTES

    def test_truncated_rejected(self):
        rect_bytes = Rect(0, 0, 2, 2).as_int16_array().astype("<i2").tobytes()
        with pytest.raises(WireFormatError):
            unpack_bsbrc(rect_bytes + b"\x01")


class TestWireProperties:
    @given(
        density=st.floats(0.0, 1.0),
        seed=st.integers(0, 2**16),
        h=st.integers(1, 16),
        w=st.integers(1, 16),
    )
    @settings(max_examples=80)
    def test_bsbrc_roundtrip_random(self, density, seed, h, w):
        rng = np.random.default_rng(seed)
        intensity, opacity = sparse_planes(rng, h, w, density)
        rect = Rect(0, 0, h, w)
        msg = pack_bsbrc(intensity, opacity, rect)
        got_rect, positions, out_i, out_a = unpack_bsbrc(msg.buffer)
        assert got_rect == rect
        mask = (intensity.ravel() != 0) | (opacity.ravel() != 0)
        if positions is None:
            assert mask.sum() in (0, mask.sum())
        else:
            assert np.array_equal(positions, np.flatnonzero(mask))

    @given(seed=st.integers(0, 2**16), density=st.floats(0.0, 1.0))
    @settings(max_examples=80)
    def test_sparse_formats_never_beat_dense_on_density_one(self, seed, density):
        """At full density the BSBRC message equals BSBR + code overhead;
        at low density it is strictly smaller."""
        rng = np.random.default_rng(seed)
        intensity, opacity = sparse_planes(rng, 10, 10, density)
        rect = Rect(0, 0, 10, 10)
        brc = pack_bsbrc(intensity, opacity, rect).accounted_bytes
        br = pack_bsbr(intensity, opacity, rect).accounted_bytes
        nonblank = int(((intensity != 0) | (opacity != 0)).sum())
        if nonblank < 40:  # sparse enough that pixel savings exceed codes
            assert brc <= br
