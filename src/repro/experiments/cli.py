"""Command-line entry point: ``python -m repro.experiments <name>``.

Subcommands regenerate each paper artifact::

    table1    Table 1   (384x384, 4 methods x 4 datasets x P=2..64)
    table2    Table 2   (768x768, BSBR/BSLC/BSBRC)
    figures   Figures 8-11 (ASCII plots)  [--figure N for just one]
    fig7      Figure 7  (render the test samples to PGM)
    mmax      Equation (9) M_max ordering check
    rotation  §3.2 empty-bounding-rectangle viewpoint analysis
    compare   fidelity metrics vs the paper's published Tables 1-2
    sparsity  dataset sparsity profiles (the structure behind §3)
    stages    per-stage breakdown of one run (the §3 per-stage view)
    methods   list every addressable compositing method with a one-line
              description (registry names plus schedule:codec combos)
    run       one full pipeline run on a chosen backend
              (``--backend {sim,mp,mpi}``, ``--trace-out timeline.json``;
              fault injection via ``--fault-plan plan.json`` with
              ``--comm-timeout``; recovery via ``--recovery
              {abort,degrade,respawn,checkpoint-resume}`` and
              ``--respawn-budget N``; ``--no-degrade`` is shorthand for
              ``--recovery abort``; interconnect topology via
              ``--topology fat-tree:radix=16`` and ``--links CAPACITY``)
    scale     at-scale crossover study: the paper's method ranking
              replayed at P=64 and extended to P=256/1024 on synthetic
              sparse workloads (event-driven simulator core)
    serve     file-spool render service: multi-session jobs over a
              bounded worker pool, per-session QoS on the recovery
              lattice, progressive ``repro.serve-event/1`` frames
    submit    drop one job (config deltas + optional fault plan) into
              a serve spool; ``--wait`` polls for the result

``stages`` and ``run`` take ``--method`` specs like ``bsbrc``,
``radix-k:rect-rle``, or ``tile-routed:rect`` plus the method options
``--radix 4,4``, ``--section N``, and ``--tile SIZE``.

``--quick`` shrinks the volumes, the image, and the processor sweep so
every command finishes in seconds (useful for smoke tests); results are
written to ``--out`` (default ``results/``).
"""

from __future__ import annotations

import argparse
import os
import sys

from ..compositing.registry import available_methods, method_catalog
from .compare import compare_to_paper, format_fidelity
from .figures import format_figure, render_figure7, run_figures
from .harness import save_rows
from .mmax import format_mmax, run_mmax
from .rotation import format_rotation, run_rotation
from .table1 import format_table1, run_table1
from .table2 import format_table2, run_table2

__all__ = ["main", "build_parser"]

_QUICK = {
    "rank_counts": (2, 4, 8),
    "volume_shape": (64, 64, 28),
    "image_size": 96,
}


def _method_help() -> str:
    """``--method`` help text, generated from the live registry."""
    return (
        "compositing method: a registry name or a schedule:codec combo; "
        "one of " + ", ".join(available_methods())
        + " (see the 'methods' subcommand for descriptions)"
    )


def _add_method_options(sub: argparse.ArgumentParser, default: str = "bsbrc") -> None:
    sub.add_argument("--method", default=default, help=_method_help())
    sub.add_argument(
        "--radix",
        default=None,
        help="radix-k round sizes as comma-separated powers of two, e.g. "
             "'4,4' (only meaningful with radix-k schedules; adapts to "
             "smaller P by clamping/repeating the last factor)",
    )
    sub.add_argument(
        "--section",
        type=int,
        default=None,
        help="BSLC section length in pixels (sectioned schedules only)",
    )
    sub.add_argument(
        "--tile",
        type=int,
        default=None,
        help="tile edge length in pixels (tile-routed methods only)",
    )


def _method_options_from(args) -> dict:
    """Collect compositor options from parsed CLI flags."""
    from ..compositing.schedule import parse_radix

    options: dict = {}
    if getattr(args, "radix", None):
        options["radix"] = parse_radix(args.radix)
    if getattr(args, "section", None) is not None:
        options["section"] = args.section
    if getattr(args, "tile", None) is not None:
        options["tile"] = args.tile
    return options


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures on the simulated SP2.",
    )
    parser.add_argument("--quick", action="store_true", help="small fast variant")
    parser.add_argument("--out", default="results", help="output directory")
    parser.add_argument("--verbose", action="store_true")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("table1")
    sub.add_parser("table2")
    figures = sub.add_parser("figures")
    figures.add_argument("--figure", type=int, choices=(8, 9, 10, 11), default=None)
    sub.add_parser("fig7")
    sub.add_parser("mmax")
    rotation = sub.add_parser("rotation")
    rotation.add_argument("--dataset", default="engine_low")
    sub.add_parser("compare")
    sub.add_parser("sparsity")
    stages = sub.add_parser("stages")
    stages.add_argument("--dataset", default="engine_high")
    _add_method_options(stages)
    stages.add_argument("--ranks", type=int, default=16)
    sub.add_parser(
        "methods", help="list every addressable compositing method"
    )
    run = sub.add_parser(
        "run", help="one full pipeline run on a chosen execution backend"
    )
    run.add_argument("--dataset", default="engine_low")
    _add_method_options(run)
    run.add_argument("--ranks", type=int, default=8)
    run.add_argument("--image-size", type=int, default=384)
    run.add_argument("--machine", default="sp2",
                     help="machine-model preset (simulator pricing)")
    run.add_argument("--backend", default="sim", choices=("sim", "mp", "mpi"),
                     help="execution substrate: simulator (modelled time), "
                          "multiprocessing or MPI (wall clock)")
    run.add_argument("--trace-out", default=None,
                     help="write the unified run-timeline JSON here")
    run.add_argument("--out-image", default=None,
                     help="write the final image as PGM here")
    run.add_argument("--fault-plan", default=None,
                     help="JSON fault plan (repro.fault-plan/1) to inject: "
                          "crashes, drops, delays, corruption, stragglers")
    run.add_argument("--comm-timeout", type=float, default=None,
                     help="per-receive deadlock timeout in seconds on real "
                          "transports (default: backend's 60s)")
    run.add_argument("--recovery", default=None,
                     choices=("abort", "degrade", "respawn", "checkpoint-resume"),
                     help="recovery policy when a rank is lost: abort "
                          "(re-raise), degrade (re-fold onto survivors), "
                          "respawn (mp: restart the dead worker in place), "
                          "checkpoint-resume (resume from the last completed "
                          "compositing stage); stronger policies fall back "
                          "down this lattice when inapplicable "
                          "(default: degrade)")
    run.add_argument("--respawn-budget", type=int, default=2,
                     help="total worker restarts the mp supervisor may "
                          "spend per run (respawn/checkpoint-resume only; "
                          "default: 2)")
    run.add_argument("--heartbeat-interval", type=float, default=None,
                     help="mp worker liveness heartbeat period in seconds; "
                          "0 disables heartbeats (default: 0.25)")
    run.add_argument("--no-degrade", action="store_true",
                     help="shorthand for --recovery abort: fail instead of "
                          "recovering when a rank is lost")
    _add_topology_options(run)
    explore = sub.add_parser(
        "explore",
        help="schedule exploration: run many interleavings of one "
             "scenario on the simulator, classify each against the "
             "deterministic baseline, save replayable failing traces",
    )
    _add_method_options(explore, default="binary-swap:raw")
    explore.add_argument("--ranks", type=int, default=8)
    explore.add_argument("--image-size", type=int, default=32,
                         help="scenario image side in pixels (default: 32 — "
                              "exploration runs the pipeline many times)")
    explore.add_argument("--dataset", default="engine_low")
    explore.add_argument("--interleavings", type=int, default=16,
                         help="how many interleavings to run (default: 16)")
    explore.add_argument("--policy", default="random",
                         help="exploration policy: deterministic | random[:SEED] "
                              "| adversarial[:MODE] | dfs "
                              "(modes: starve-low, starve-high, "
                              "delay-longest, lifo)")
    explore.add_argument("--seed", type=int, default=0,
                         help="base seed for random walks (walk i uses seed+i)")
    explore.add_argument("--fault-plan", default=None,
                         help="JSON fault plan (repro.fault-plan/1) to arm; "
                              "'default' injects the canonical crash+delay "
                              "plan; omit for a clean scenario")
    explore.add_argument("--trace-dir", default=None,
                         help="directory for repro.sched-trace/1 decision "
                              "traces (failing interleavings always save "
                              "one here; default: <out>/sched-traces)")
    explore.add_argument("--keep-all-traces", action="store_true",
                         help="save traces of passing interleavings too")
    explore.add_argument("--event-budget", type=int, default=None,
                         help="per-interleaving simulator-step cap before a "
                              "run is classified as livelock")
    explore.add_argument("--replay-trace", default=None, metavar="TRACE",
                         help="replay one saved decision trace bit-for-bit "
                              "instead of exploring (the trace embeds its "
                              "scenario; other scenario flags are ignored)")
    serve = sub.add_parser(
        "serve",
        help="run a file-spool render service: claims repro.serve-job/1 "
             "requests from <spool>/jobs/, multiplexes sessions over a "
             "bounded worker pool with per-session QoS, and streams "
             "repro.serve-event/1 progressive frames to <spool>/out/",
    )
    serve.add_argument("--spool", required=True,
                       help="spool directory (jobs/, work/, out/ created)")
    serve.add_argument("--dataset", default="engine_low",
                       help="base-config dataset jobs derive from")
    _add_method_options(serve)
    serve.add_argument("--ranks", type=int, default=8)
    serve.add_argument("--image-size", type=int, default=384)
    serve.add_argument("--machine", default="sp2",
                       help="machine-model preset (simulator pricing)")
    serve.add_argument("--max-workers", type=int, default=2,
                       help="bound on concurrently rendering jobs "
                            "(the shared worker pool size; default: 2)")
    serve.add_argument("--max-jobs", type=int, default=None,
                       help="exit after serving this many jobs")
    serve.add_argument("--idle-timeout", type=float, default=None,
                       help="exit after this many seconds with no pending "
                            "or in-flight work (default: serve forever; "
                            "SIGTERM drains gracefully either way)")
    serve.add_argument("--backend", default="sim",
                       help="execution substrate for the service's "
                            "sessions: sim | mp | mpi (default: sim)")
    serve.add_argument("--queue-limit", type=int, default=None,
                       help="bound on jobs admitted but not yet running "
                            "(default: unbounded)")
    serve.add_argument("--shed-policy", default="block",
                       help="full-queue policy: block | reject | "
                            "shed-lowest-qos (default: block)")
    serve.add_argument("--lease-s", type=float, default=15.0,
                       help="claim-lease lifetime; a work item whose "
                            "lease is older than this is reclaimed by "
                            "any server on the spool (default: 15)")
    serve.add_argument("--max-attempts", type=int, default=3,
                       help="expired-lease reclaims before a job is "
                            "buried with a failure result (default: 3)")
    submit = sub.add_parser(
        "submit",
        help="drop one render job into a serve spool (config deltas "
             "against the server's base config); --wait polls for the "
             "result document and prints a summary",
    )
    submit.add_argument("--spool", required=True, help="spool directory")
    submit.add_argument("--session", default="default",
                        help="logical client session name (one warm "
                             "backend + job ordering per session)")
    submit.add_argument("--qos", default=None,
                        help="session quality class on the recovery "
                             "lattice: strict | degrade | available | "
                             "lossless (default: degrade)")
    submit.add_argument("--method", default=None,
                        help="override the server's compositing method")
    submit.add_argument("--dataset", default=None,
                        help="override the server's dataset")
    submit.add_argument("--ranks", type=int, default=None,
                        help="override the server's rank count")
    submit.add_argument("--image-size", type=int, default=None,
                        help="override the server's image size")
    submit.add_argument("--rot-x", type=float, default=None,
                        help="camera rotation override (degrees)")
    submit.add_argument("--rot-y", type=float, default=None,
                        help="camera rotation override (degrees)")
    submit.add_argument("--fault-plan", default=None,
                        help="JSON fault plan (repro.fault-plan/1) to "
                             "inject into this job")
    submit.add_argument("--deadline-s", type=float, default=None,
                        help="wall-clock budget from server admission; "
                             "overrun jobs fail with DeadlineExceededError")
    submit.add_argument("--wait", action="store_true",
                        help="poll the spool until the result lands")
    submit.add_argument("--timeout", type=float, default=120.0,
                        help="--wait polling deadline in seconds")
    scale = sub.add_parser(
        "scale",
        help="at-scale crossover study (P=64/256/1024, synthetic workloads)",
    )
    scale.add_argument("--ranks", default=None,
                       help="comma-separated processor counts "
                            "(default: 64,256,1024; --quick: 16,64)")
    scale.add_argument("--image-size", type=int, default=96,
                       help="synthetic screen side in pixels (default: 96)")
    scale.add_argument("--machine", default="sp2",
                       help="machine-model preset (simulator pricing)")
    _add_topology_options(scale)
    sub.add_parser("all")
    return parser


def _add_topology_options(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--topology", default="flat",
                     help="simulated interconnect: 'flat' (the paper's "
                          "contention-free link), or a spec like "
                          "'fat-tree:radix=16', 'torus:dims=32x32', "
                          "'dragonfly:global_capacity=0.5'")
    sub.add_argument("--links", type=float, default=None, metavar="CAPACITY",
                     help="shared-link capacity override (bandwidth as a "
                          "multiple of the base per-byte rate; 'inf' via "
                          "the topology spec disables contention)")


def _quick_kwargs(args) -> dict:
    if not args.quick:
        return {}
    return dict(_QUICK)


def _emit(args, name: str, text: str, rows=None) -> None:
    os.makedirs(args.out, exist_ok=True)
    print(text)
    path = os.path.join(args.out, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text + "\n")
    if rows is not None:
        save_rows(rows, os.path.join(args.out, f"{name}.json"))
    print(f"\n[written to {path}]")


def _run_one(args, command: str) -> None:
    quick = _quick_kwargs(args)
    if command == "table1":
        rows = run_table1(verbose=args.verbose, **quick)
        _emit(args, "table1", format_table1(rows), rows)
    elif command == "table2":
        quick2 = dict(quick)
        if args.quick:
            quick2["image_size"] = 192
        rows = run_table2(verbose=args.verbose, **quick2)
        _emit(args, "table2", format_table2(rows), rows)
    elif command == "figures":
        rows = run_figures(verbose=args.verbose, **quick)
        wanted = [args.figure] if getattr(args, "figure", None) else [8, 9, 10, 11]
        text = "\n\n".join(format_figure(fig, rows) for fig in wanted)
        _emit(args, "figures", text, rows)
    elif command == "fig7":
        size = quick.get("image_size", 384)
        shape = quick.get("volume_shape")
        paths = render_figure7(args.out, image_size=size, volume_shape=shape)
        print("Figure 7 sample images written:")
        for path in paths:
            print(f"  {path}")
    elif command == "mmax":
        report = run_mmax(verbose=args.verbose, **quick)
        _emit(args, "mmax", format_mmax(report), report.rows)
    elif command == "compare":
        if args.quick:
            raise SystemExit(
                "compare needs the full-scale grids (the paper's numbers "
                "are at 384/768 px); run without --quick"
            )
        rows1 = run_table1(verbose=args.verbose)
        rows2 = run_table2(verbose=args.verbose)
        text = (
            format_fidelity(compare_to_paper(rows1))
            + "\n\n"
            + format_fidelity(compare_to_paper(rows2))
        )
        _emit(args, "compare", text)
    elif command == "sparsity":
        from ..analysis.sparsity import sparsity_table
        from ..render.camera import Camera
        from ..render.raycast import render_full
        from ..volume.datasets import PAPER_DATASETS, make_dataset

        size = quick.get("image_size", 384)
        shape = quick.get("volume_shape")
        labels, images = [], []
        for dataset in PAPER_DATASETS:
            volume, transfer = make_dataset(dataset, shape)
            camera = Camera(
                width=size, height=size, volume_shape=volume.shape,
                rot_x=20.0, rot_y=30.0,
            )
            labels.append(dataset)
            images.append(render_full(volume, transfer, camera))
        _emit(
            args,
            "sparsity",
            sparsity_table(
                labels, images,
                title=f"Dataset sparsity profiles ({size}x{size} full renders)",
            ),
        )
    elif command == "stages":
        from .stages import format_stage_breakdown, run_stage_breakdown

        kwargs = dict(
            dataset=getattr(args, "dataset", "engine_high"),
            method=getattr(args, "method", "bsbrc"),
            num_ranks=getattr(args, "ranks", 16),
        )
        method_options = _method_options_from(args)
        if method_options:
            kwargs["method_options"] = method_options
        if args.quick:
            kwargs.update(
                num_ranks=min(kwargs["num_ranks"], 8),
                image_size=_QUICK["image_size"],
                volume_shape=_QUICK["volume_shape"],
            )
        breakdown = run_stage_breakdown(**kwargs)
        _emit(
            args,
            "stages",
            format_stage_breakdown(
                breakdown,
                title=(
                    f"Per-stage breakdown: {kwargs['method']} on "
                    f"{kwargs['dataset']}, P={kwargs['num_ranks']}"
                ),
            ),
        )
    elif command == "run":
        from ..cluster.faults import FaultPlan
        from ..pipeline.config import RunConfig
        from ..pipeline.system import SortLastSystem

        from ..errors import ConfigurationError

        try:
            cfg = RunConfig(
                dataset=getattr(args, "dataset", "engine_low"),
                method=getattr(args, "method", "bsbrc"),
                method_options=_method_options_from(args),
                num_ranks=getattr(args, "ranks", 8),
                image_size=(
                    _QUICK["image_size"] if args.quick
                    else getattr(args, "image_size", 384)
                ),
                volume_shape=_QUICK["volume_shape"] if args.quick else None,
                machine=getattr(args, "machine", "sp2"),
                backend=getattr(args, "backend", "sim"),
                comm_timeout=getattr(args, "comm_timeout", None),
                recovery=(
                    getattr(args, "recovery", None)
                    or ("abort" if getattr(args, "no_degrade", False) else "degrade")
                ),
                respawn_budget=getattr(args, "respawn_budget", 2),
                heartbeat_interval=getattr(args, "heartbeat_interval", None),
                topology=getattr(args, "topology", "flat"),
                link_capacity=getattr(args, "links", None),
            )
        except ConfigurationError as exc:
            raise SystemExit(str(exc)) from exc
        fault_plan = None
        if getattr(args, "fault_plan", None):
            fault_plan = FaultPlan.load(args.fault_plan)
        result = SortLastSystem(cfg).run(
            trace=cfg.backend == "sim",
            fault_plan=fault_plan,
        )
        stats = result.compositing.stats
        clock = result.timeline.clock if result.timeline else "modelled"
        lines = [
            f"Pipeline run: {cfg.label()} on backend={result.backend_name}",
            f"  compositing T_comp  = {stats.t_comp * 1e3:9.3f} ms ({clock})",
            f"  compositing T_comm  = {stats.t_comm * 1e3:9.3f} ms ({clock})",
            f"  compositing M_max   = {stats.mmax_bytes} bytes",
            f"  makespan            = {stats.makespan * 1e3:9.3f} ms",
        ]
        if result.degraded:
            lines.append(
                f"  DEGRADED: lost rank(s) {result.failed_ranks}; re-folded "
                f"onto {result.plan.num_ranks} survivors"
            )
        if result.recovered:
            lines.append(
                "  RECOVERED: failure absorbed losslessly "
                "(checkpoint resume / worker respawn); full-fidelity image"
            )
        if result.timeline is not None and result.timeline.events:
            lines.append(f"  fault events        = {len(result.timeline.events)}")
            for ev in result.timeline.events[:8]:
                lines.append(f"    {ev}")
        text = "\n".join(lines)
        _emit(args, "run", text)
        if getattr(args, "trace_out", None):
            assert result.timeline is not None
            result.timeline.save(args.trace_out)
            print(f"[timeline written to {args.trace_out}]")
        if getattr(args, "out_image", None):
            from ..render.reference import luminance
            from ..volume.io import to_gray8, write_pgm

            write_pgm(args.out_image, to_gray8(luminance(result.final_image), gain=2.0))
            print(f"[image written to {args.out_image}]")
    elif command == "explore":
        from ..cluster.explore import (
            DEFAULT_EVENT_BUDGET,
            Explorer,
            ExploreScenario,
            default_fault_plan,
        )
        from ..cluster.faults import FaultPlan
        from ..errors import ConfigurationError

        budget = getattr(args, "event_budget", None) or DEFAULT_EVENT_BUDGET
        trace_dir = getattr(args, "trace_dir", None) or os.path.join(
            args.out, "sched-traces"
        )
        replay_path = getattr(args, "replay_trace", None)
        try:
            if replay_path:
                explorer = Explorer.from_trace(
                    replay_path,
                    trace_dir=trace_dir,
                    event_budget=budget,
                )
                outcome = explorer.replay(replay_path)
                lines = [
                    f"Replayed schedule trace {replay_path}",
                    f"  scenario       = {explorer.scenario.label()}",
                    f"  policy         = {outcome.policy}",
                    f"  classification = {outcome.classification}",
                    f"  decisions      = {outcome.decisions}",
                ]
                if outcome.detail:
                    lines.append(f"  detail         = {outcome.detail}")
                _emit(args, "explore_replay", "\n".join(lines))
                if outcome.classification == "replay-divergence":
                    raise SystemExit(1)
                return
            ranks = getattr(args, "ranks", 8)
            plan_arg = getattr(args, "fault_plan", None)
            if plan_arg == "default":
                fault_plan = default_fault_plan(ranks)
            elif plan_arg:
                fault_plan = FaultPlan.load(plan_arg)
            else:
                fault_plan = None
            scenario = ExploreScenario(
                method=getattr(args, "method", "binary-swap:raw"),
                num_ranks=ranks,
                fault_plan=fault_plan,
                dataset=getattr(args, "dataset", "engine_low"),
                image_size=(
                    _QUICK["image_size"] if args.quick
                    else getattr(args, "image_size", 32)
                ),
                method_options=_method_options_from(args),
            )
            explorer = Explorer(
                scenario,
                trace_dir=trace_dir,
                event_budget=budget,
                keep_all=getattr(args, "keep_all_traces", False),
            )
            report = explorer.run_policy_spec(
                getattr(args, "policy", "random"),
                getattr(args, "interleavings", 16),
                seed=getattr(args, "seed", 0),
            )
        except ConfigurationError as exc:
            raise SystemExit(str(exc)) from exc
        counts = report.counts()
        lines = [
            f"Schedule exploration: {scenario.label()} "
            f"({len(report.results)} interleavings, policy "
            f"{getattr(args, 'policy', 'random')})",
            "  " + ", ".join(f"{k}={v}" for k, v in sorted(counts.items())),
        ]
        for res in report.failures:
            lines.append(
                f"  FAIL #{res.index} [{res.policy}] {res.classification}: "
                f"{res.detail}"
            )
            if res.trace_path:
                lines.append(f"    replay with --replay-trace {res.trace_path}")
        lines.append("  result: " + ("OK" if report.ok else "FAILING"))
        _emit(args, "explore", "\n".join(lines))
        os.makedirs(args.out, exist_ok=True)
        report_path = os.path.join(args.out, "explore.json")
        report.save(report_path)
        print(f"[report written to {report_path}]")
        if not report.ok:
            raise SystemExit(1)
    elif command == "serve":
        from ..errors import ConfigurationError
        from ..pipeline.config import RunConfig
        from ..serving import serve as serve_spool

        try:
            cfg = RunConfig(
                dataset=getattr(args, "dataset", "engine_low"),
                method=getattr(args, "method", "bsbrc"),
                method_options=_method_options_from(args),
                num_ranks=getattr(args, "ranks", 8),
                image_size=(
                    _QUICK["image_size"] if args.quick
                    else getattr(args, "image_size", 384)
                ),
                volume_shape=_QUICK["volume_shape"] if args.quick else None,
                machine=getattr(args, "machine", "sp2"),
                backend=getattr(args, "backend", "sim"),
            )
        except ConfigurationError as exc:
            raise SystemExit(str(exc)) from exc
        print(
            f"Serving {cfg.label()} from spool {args.spool} "
            f"(workers={args.max_workers}, max_jobs={args.max_jobs}, "
            f"idle_timeout={args.idle_timeout}, "
            f"queue_limit={getattr(args, 'queue_limit', None)}, "
            f"shed_policy={getattr(args, 'shed_policy', 'block')})"
        )
        try:
            served = serve_spool(
                args.spool,
                cfg,
                max_workers=getattr(args, "max_workers", 2),
                max_jobs=getattr(args, "max_jobs", None),
                idle_timeout=getattr(args, "idle_timeout", None),
                queue_limit=getattr(args, "queue_limit", None),
                shed_policy=getattr(args, "shed_policy", "block"),
                lease_s=getattr(args, "lease_s", 15.0),
                max_attempts=getattr(args, "max_attempts", 3),
            )
        except ConfigurationError as exc:
            raise SystemExit(str(exc)) from exc
        print(f"[served {served} job(s)]")
    elif command == "submit":
        from ..cluster.faults import FaultPlan
        from ..errors import ConfigurationError
        from ..serving import DEFAULT_QOS, submit_job, wait_for_result

        deltas: dict = {}
        for key in ("method", "dataset", "rot_x", "rot_y"):
            value = getattr(args, key, None)
            if value is not None:
                deltas[key] = value
        if getattr(args, "ranks", None) is not None:
            deltas["num_ranks"] = args.ranks
        if getattr(args, "image_size", None) is not None:
            deltas["image_size"] = args.image_size
        fault_plan = None
        if getattr(args, "fault_plan", None):
            fault_plan = FaultPlan.load(args.fault_plan)
        try:
            job_id = submit_job(
                args.spool,
                session=getattr(args, "session", "default"),
                qos=getattr(args, "qos", None) or DEFAULT_QOS,
                deltas=deltas,
                fault_plan=fault_plan,
                deadline_s=getattr(args, "deadline_s", None),
            )
        except ConfigurationError as exc:
            raise SystemExit(str(exc)) from exc
        print(f"[submitted {job_id} to {args.spool}]")
        if getattr(args, "wait", False):
            timeout = getattr(args, "timeout", 120.0)
            try:
                doc = wait_for_result(args.spool, job_id, timeout=timeout)
            except TimeoutError:
                raise SystemExit(
                    f"{job_id}: no result within {timeout}s — the spool "
                    "may have no server attached, or the render is still "
                    "running (re-poll with a larger --timeout)"
                ) from None
            if doc.get("ok"):
                print(
                    f"{job_id}: outcome={doc.get('outcome')} "
                    f"degraded={doc.get('degraded')} "
                    f"coverage={doc.get('coverage')} "
                    f"events={doc.get('events')} image={doc.get('image')}"
                )
            else:
                raise SystemExit(
                    f"{job_id} failed: {doc.get('error')}: {doc.get('detail')}"
                )
    elif command == "scale":
        from ..cluster.model import PRESETS, make_network
        from .scale import format_scale, run_scale_crossover

        machine = PRESETS.get(getattr(args, "machine", "sp2"))
        if machine is None:
            raise SystemExit(f"unknown machine preset {args.machine!r}")
        if getattr(args, "ranks", None):
            rank_counts = tuple(int(p) for p in args.ranks.split(","))
        elif args.quick:
            rank_counts = (16, 64)
        else:
            rank_counts = (64, 256, 1024)
        topology = getattr(args, "topology", "flat")
        network = None
        if topology.partition(":")[0] != "flat":
            from ..errors import ConfigurationError

            try:
                network = make_network(
                    topology, machine, capacity=getattr(args, "links", None)
                )
            except ConfigurationError as exc:
                raise SystemExit(str(exc)) from exc
        rows = run_scale_crossover(
            rank_counts=rank_counts,
            image_size=getattr(args, "image_size", 96),
            machine=machine,
            network=network,
            verbose=args.verbose,
        )
        _emit(args, "crossover_scale", format_scale(rows), rows)
    elif command == "methods":
        catalog = method_catalog()
        width = max(len(name) for name in catalog)
        lines = ["Available compositing methods (name or schedule:codec):", ""]
        for name, desc in catalog.items():
            lines.append(f"  {name:<{width}}  {desc}" if desc else f"  {name}")
        print("\n".join(lines))
    elif command == "rotation":
        kwargs = {}
        if args.quick:
            kwargs = dict(
                rank_counts=(4, 8),
                volume_shape=_QUICK["volume_shape"],
                image_size=_QUICK["image_size"],
            )
        observations = run_rotation(dataset=getattr(args, "dataset", "engine_low"), **kwargs)
        _emit(args, "rotation", format_rotation(observations))
    else:
        raise SystemExit(f"unknown command {command!r}")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    commands = (
        ["table1", "table2", "figures", "fig7", "mmax", "rotation",
         "sparsity", "stages", "scale"]
        + ([] if args.quick else ["compare"])
        if args.command == "all"
        else [args.command]
    )
    for command in commands:
        if args.command == "all":
            print(f"\n========== {command} ==========")
        if command == "rotation" and not hasattr(args, "dataset"):
            args.dataset = "engine_low"
        if command == "figures" and not hasattr(args, "figure"):
            args.figure = None
        _run_one(args, command)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
