"""Soak-runner telemetry: per-iteration records and the archive JSON.

``tools/soak.py`` drives real pytest subprocesses in production; here
the subprocess boundary is monkeypatched so the runner's bookkeeping —
iteration records, flake-rate totals, incremental atomic archive writes,
failure artifact capture — is tested hermetically in milliseconds.
"""

import importlib.util
import json
import os
import sys
import types

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture()
def soak():
    spec = importlib.util.spec_from_file_location(
        "soak_under_test", os.path.join(REPO_ROOT, "tools", "soak.py")
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def fake_run(returncodes):
    """A subprocess.run stand-in yielding scripted exit codes."""
    calls = []

    def runner(cmd, **kwargs):
        calls.append({"cmd": cmd, "env": kwargs.get("env", {})})
        code = returncodes[min(len(calls) - 1, len(returncodes) - 1)]
        return types.SimpleNamespace(returncode=code, stdout="1 failed\n" if code else "ok\n")

    runner.calls = calls
    return runner


class TestIterationRecords:
    def test_all_green(self, soak, monkeypatch, tmp_path):
        monkeypatch.setattr(soak.subprocess, "run", fake_run([0]))
        monkeypatch.setenv("REPRO_CHAOS_SEED_OFFSET", "100")
        archive = tmp_path / "soak.json"
        rc = soak.main(
            [
                "--iterations", "3",
                "--serve-jobs", "0",
                "--artifacts", str(tmp_path / "artifacts"),
                "--archive", str(archive),
            ]
        )
        assert rc == 0
        doc = json.loads(archive.read_text())
        assert doc["schema"] == soak.ARCHIVE_SCHEMA
        assert doc["totals"]["iterations"] == 3
        assert doc["totals"]["failures"] == 0
        assert doc["totals"]["flake_rate"] == 0.0
        offsets = [it["offset"] for it in doc["iterations"]]
        assert offsets == [100, 100 + soak.MATRIX_SEEDS, 100 + 2 * soak.MATRIX_SEEDS]
        for it in doc["iterations"]:
            assert it["ok"] is True and it["returncode"] == 0
            assert isinstance(it["seconds"], float)

    def test_flake_rate_and_exit_code(self, soak, monkeypatch, tmp_path):
        monkeypatch.setattr(soak.subprocess, "run", fake_run([0, 1, 0, 1]))
        monkeypatch.setattr(soak, "_save_failure_artifacts", lambda *a, **k: None)
        monkeypatch.setenv("REPRO_CHAOS_SEED_OFFSET", "0")
        archive = tmp_path / "soak.json"
        rc = soak.main(
            [
                "--iterations", "4",
                "--serve-jobs", "0",
                "--artifacts", str(tmp_path / "artifacts"),
                "--archive", str(archive),
            ]
        )
        assert rc == 1
        doc = json.loads(archive.read_text())
        assert doc["totals"]["failures"] == 2
        assert doc["totals"]["flake_rate"] == 0.5
        assert [it["ok"] for it in doc["iterations"]] == [True, False, True, False]

    def test_offset_threaded_into_subprocess_env(self, soak, monkeypatch, tmp_path):
        runner = fake_run([0])
        monkeypatch.setattr(soak.subprocess, "run", runner)
        monkeypatch.setenv("REPRO_CHAOS_SEED_OFFSET", "42")
        soak.main(
            [
                "--iterations", "2",
                "--serve-jobs", "0",
                "--offset-step", "5",
                "--artifacts", str(tmp_path / "a"),
                "--archive", str(tmp_path / "s.json"),
            ]
        )
        offsets = [c["env"]["REPRO_CHAOS_SEED_OFFSET"] for c in runner.calls]
        assert offsets == ["42", "47"]

    def test_failure_artifacts_captured(self, soak, monkeypatch, tmp_path):
        monkeypatch.setattr(soak.subprocess, "run", fake_run([1]))
        monkeypatch.setenv("REPRO_CHAOS_SEED_OFFSET", "7")
        artifacts = tmp_path / "artifacts"
        rc = soak.main(
            [
                "--iterations", "1",
                "--serve-jobs", "0",
                "--artifacts", str(artifacts),
                "--archive", str(tmp_path / "s.json"),
            ]
        )
        assert rc == 1
        folder = artifacts / "fail-7"
        assert (folder / "pytest-output.txt").read_text() == "1 failed"
        plans = sorted(p.name for p in folder.glob("fault-plan-seed*.json"))
        assert len(plans) == soak.MATRIX_SEEDS


class TestArchiveWrites:
    def test_archive_written_incrementally(self, soak, monkeypatch, tmp_path):
        archive = tmp_path / "s.json"
        seen = []
        real_write = soak.write_archive

        def spy(path, iterations, **kwargs):
            real_write(path, iterations, **kwargs)
            seen.append(json.loads(archive.read_text())["totals"]["iterations"])

        monkeypatch.setattr(soak, "write_archive", spy)
        monkeypatch.setattr(soak.subprocess, "run", fake_run([0]))
        monkeypatch.setenv("REPRO_CHAOS_SEED_OFFSET", "0")
        soak.main(
            [
                "--iterations", "3",
                "--serve-jobs", "0",
                "--artifacts", str(tmp_path / "a"),
                "--archive", str(archive),
            ]
        )
        assert seen == [1, 2, 3]  # one complete archive after every iteration

    def test_no_leftover_temp_files(self, soak, tmp_path):
        archive = tmp_path / "nested" / "s.json"
        soak.write_archive(
            str(archive),
            [{"offset": 0, "seconds": 1.0, "ok": True, "returncode": 0}],
            started_at="2026-01-01T00:00:00+0000",
        )
        names = os.listdir(archive.parent)
        assert names == ["s.json"]

    def test_summarize_empty(self, soak):
        totals = soak.summarize([])
        assert totals["iterations"] == 0
        assert totals["flake_rate"] == 0.0
        assert totals["total_seconds"] == 0


class TestCommandLine:
    def test_iterations_beats_time_budget(self, soak, monkeypatch, tmp_path):
        # With --iterations, a zero-minute budget must not stop the loop.
        runner = fake_run([0])
        monkeypatch.setattr(soak.subprocess, "run", runner)
        monkeypatch.setenv("REPRO_CHAOS_SEED_OFFSET", "0")
        rc = soak.main(
            [
                "--minutes", "0",
                "--iterations", "2",
                "--serve-jobs", "0",
                "--artifacts", str(tmp_path / "a"),
                "--archive", str(tmp_path / "s.json"),
            ]
        )
        assert rc == 0
        assert len(runner.calls) == 2

    def test_default_archive_lives_in_artifacts_dir(self, soak, monkeypatch, tmp_path):
        monkeypatch.setattr(soak.subprocess, "run", fake_run([0]))
        monkeypatch.setenv("REPRO_CHAOS_SEED_OFFSET", "0")
        artifacts = tmp_path / "arts"
        soak.main(["--iterations", "1", "--serve-jobs", "0", "--artifacts", str(artifacts)])
        assert (artifacts / "soak-summary.json").exists()


class TestServeSweepTelemetry:
    def test_serve_block_feeds_archive_totals(self, soak, monkeypatch, tmp_path):
        monkeypatch.setattr(soak.subprocess, "run", fake_run([0]))
        monkeypatch.setenv("REPRO_CHAOS_SEED_OFFSET", "0")
        sweeps = []

        def fake_sweep(offset, jobs, artifacts):
            sweeps.append((offset, jobs))
            return {
                "jobs": jobs, "settled": jobs, "rendered": jobs - 1,
                "shed": 1, "reclaimed": 1,
                "shed_rate": 1 / jobs, "reclaim_rate": 1 / jobs,
                "ok": True,
            }

        monkeypatch.setattr(soak, "run_serve_sweep", fake_sweep)
        archive = tmp_path / "s.json"
        rc = soak.main(
            [
                "--iterations", "2",
                "--serve-jobs", "4",
                "--artifacts", str(tmp_path / "a"),
                "--archive", str(archive),
            ]
        )
        assert rc == 0
        assert sweeps == [(0, 4), (soak.MATRIX_SEEDS, 4)]
        doc = json.loads(archive.read_text())
        serve_totals = doc["totals"]["serve"]
        assert serve_totals["jobs"] == 8
        assert serve_totals["shed"] == 2 and serve_totals["reclaimed"] == 2
        assert serve_totals["shed_rate"] == 0.25
        assert serve_totals["reclaim_rate"] == 0.25
        assert serve_totals["failures"] == 0
        for it in doc["iterations"]:
            assert it["serve"]["ok"] is True

    def test_failing_serve_sweep_fails_the_iteration(self, soak, monkeypatch, tmp_path):
        monkeypatch.setattr(soak.subprocess, "run", fake_run([0]))
        monkeypatch.setenv("REPRO_CHAOS_SEED_OFFSET", "0")
        monkeypatch.setattr(
            soak, "run_serve_sweep",
            lambda *a: {
                "jobs": 4, "settled": 3, "rendered": 3, "shed": 0,
                "reclaimed": 0, "shed_rate": 0.0, "reclaim_rate": 0.0,
                "ok": False, "error": "one job never settled",
            },
        )
        rc = soak.main(
            [
                "--iterations", "1",
                "--serve-jobs", "4",
                "--artifacts", str(tmp_path / "a"),
                "--archive", str(tmp_path / "s.json"),
            ]
        )
        assert rc == 1

    def test_summarize_tolerates_records_without_serve(self, soak):
        totals = soak.summarize(
            [{"offset": 0, "seconds": 1.0, "ok": True, "returncode": 0}]
        )
        assert totals["serve"]["jobs"] == 0
        assert totals["serve"]["shed_rate"] == 0.0
