"""Deterministic discrete-event simulator of a distributed-memory machine.

``P`` rank programs (``async def`` coroutines) run under a single OS
thread.  Each rank owns a *virtual clock*; awaited operations advance it
according to the :class:`~repro.cluster.model.MachineModel`:

* ``ComputeOp(dt)``            — ``clock += dt`` (charged to ``T_comp``).
* ``SendOp`` / ``RecvOp``      — rendezvous: both sides complete at
  ``max(post times) + Ts + nbytes·Tc``.  The transfer portion
  (``Ts + nbytes·Tc``) is charged to the rank's ``T_comm`` and the time
  spent waiting for the partner to arrive (``max(posts) − own post``) to
  its ``wait_time`` — keeping ``T_comm`` aligned with the paper's pure
  communication terms while the makespan still reflects skew.
* ``SendRecvOp``               — full-duplex pairwise exchange: each side
  completes at ``max(post times) + Ts + incoming_bytes·Tc`` (its own
  outgoing transfer overlaps), which is exactly the per-stage
  communication term of the paper's eqs. (2), (4), (6), (8).
* ``BarrierOp``                — all ranks released at
  ``max(post times) + Ts·ceil(log2 P)`` (tree barrier).

The scheduler is deterministic: ranks are stepped in rank order and
matches are resolved in rank order, so a given program always yields
bit-identical results, timings, and traces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Coroutine, Optional

from collections import deque

from ..errors import (
    ConfigurationError,
    DeadlockError,
    RankFailedError,
    SimulationError,
    WireFormatError,
)
from .events import (
    ANY_TAG,
    BarrierOp,
    ComputeOp,
    IrecvOp,
    IsendOp,
    Op,
    RecvOp,
    Request,
    SendOp,
    SendRecvOp,
    WaitOp,
)
from .model import MachineModel
from .stats import RankStats, RunResult

__all__ = ["Simulator", "TraceEvent"]


class _State(Enum):
    READY = "ready"
    BLOCKED = "blocked"
    DONE = "done"


@dataclass
class TraceEvent:
    """One entry of the optional execution trace."""

    time: float
    rank: int
    kind: str
    detail: str


@dataclass
class _Proc:
    """Book-keeping for one simulated rank."""

    rank: int
    coro: Coroutine[Op, Any, Any]
    clock: float = 0.0
    state: _State = _State.READY
    pending: Optional[Op] = None
    post_time: float = 0.0
    resume_value: Any = None
    return_value: Any = None
    current_stage: int = -1
    stats: RankStats = field(default_factory=lambda: RankStats(rank=-1))

    def __post_init__(self) -> None:
        self.stats = RankStats(rank=self.rank)

    def bucket(self):
        return self.stats.stage(self.current_stage)


class Simulator:
    """Run ``num_ranks`` coroutine programs in lock-step virtual time.

    Parameters
    ----------
    num_ranks:
        Number of simulated processors (``P``); must be positive.
    model:
        The machine cost model used to price every operation.
    trace:
        When true, record a :class:`TraceEvent` per simulator action in
        :attr:`trace_events` (useful for debugging protocols; costs memory).
    max_steps:
        Safety valve against runaway programs: the total number of
        coroutine resumptions is capped.
    """

    def __init__(
        self,
        num_ranks: int,
        model: MachineModel,
        *,
        trace: bool = False,
        max_steps: int = 50_000_000,
    ):
        if num_ranks < 1:
            raise ConfigurationError(f"num_ranks must be >= 1, got {num_ranks}")
        self.num_ranks = int(num_ranks)
        self.model = model
        self.trace = bool(trace)
        self.trace_events: list[TraceEvent] = []
        self.max_steps = int(max_steps)
        self._procs: list[_Proc] = []
        # Nonblocking machinery: FIFO queues of unmatched requests keyed
        # by (src, dst, tag), and a per-rank incoming-link availability
        # time that serializes concurrent background transfers into one
        # receiver (a single NIC drains one message at a time).
        self._pending_isends: dict[tuple[int, int, int], deque] = {}
        self._pending_irecvs: dict[tuple[int, int, int], deque] = {}
        self._link_free: list[float] = []

    # ------------------------------------------------------------------ api
    def run(self, program_factory: Callable[["RankContext"], Coroutine]) -> RunResult:
        """Instantiate one program per rank and run to completion.

        ``program_factory(ctx)`` must return a coroutine; ``ctx`` exposes
        the rank's communication API (see :class:`RankContext`).
        """
        from .context import RankContext  # local import to avoid a cycle

        self._procs = []
        self._pending_isends.clear()
        self._pending_irecvs.clear()
        self._link_free = [0.0] * self.num_ranks
        for rank in range(self.num_ranks):
            proc = _Proc(rank=rank, coro=None)  # type: ignore[arg-type]
            ctx = RankContext(simulator=self, proc=proc)
            coro = program_factory(ctx)
            if not hasattr(coro, "send"):
                raise ConfigurationError(
                    "program_factory must return a coroutine (use 'async def'), "
                    f"got {type(coro).__name__}"
                )
            proc.coro = coro
            self._procs.append(proc)

        try:
            self._event_loop()
        except BaseException:
            self._close_all()
            raise

        makespan = max((p.clock for p in self._procs), default=0.0)
        return RunResult(
            num_ranks=self.num_ranks,
            returns=[p.return_value for p in self._procs],
            rank_stats=[p.stats for p in self._procs],
            makespan=makespan,
        )

    # ------------------------------------------------------------ event loop
    def _event_loop(self) -> None:
        steps = 0
        while True:
            stepped = False
            for proc in self._procs:
                while proc.state is _State.READY:
                    stepped = True
                    steps += 1
                    if steps > self.max_steps:
                        raise SimulationError(
                            f"exceeded max_steps={self.max_steps}; "
                            "likely an unbounded loop in a rank program"
                        )
                    self._step(proc)
            if all(p.state is _State.DONE for p in self._procs):
                return
            matched = self._resolve_matches()
            if not matched and not stepped:
                blocked = {
                    p.rank: f"{p.pending!r} (stage {p.current_stage})"
                    for p in self._procs
                    if p.state is _State.BLOCKED
                }
                raise DeadlockError(blocked)

    def _step(self, proc: _Proc) -> None:
        value, proc.resume_value = proc.resume_value, None
        try:
            op = proc.coro.send(value)
        except StopIteration as stop:
            proc.state = _State.DONE
            proc.return_value = stop.value
            self._trace(proc, "done", "")
            return
        except WireFormatError:
            # Detected corruption must surface as itself (the typed
            # contract of the CRC check), not wrapped as a rank failure.
            raise
        except Exception as exc:
            raise RankFailedError(
                proc.rank, exc, events=proc.stats.events
            ) from exc

        if isinstance(op, ComputeOp):
            proc.clock += op.seconds
            bucket = proc.bucket()
            bucket.comp_time += op.seconds
            bucket.add_counter(op.kind, op.count)
            self._trace(proc, "compute", f"{op.kind} dt={op.seconds:.3e} count={op.count}")
            # stays READY; the outer while-loop resumes it immediately.
        elif isinstance(op, IsendOp):
            request = Request(
                kind="isend", rank=proc.rank, peer=op.dst, tag=op.tag,
                nbytes=op.nbytes, post_time=proc.clock, payload=op.payload,
            )
            self._post_nonblocking(proc, request)
            proc.resume_value = request  # stays READY
        elif isinstance(op, IrecvOp):
            request = Request(
                kind="irecv", rank=proc.rank, peer=op.src, tag=op.tag,
                nbytes=0, post_time=proc.clock,
            )
            self._post_nonblocking(proc, request)
            proc.resume_value = request  # stays READY
        elif isinstance(op, (SendOp, RecvOp, SendRecvOp, BarrierOp, WaitOp)):
            proc.state = _State.BLOCKED
            proc.pending = op
            proc.post_time = proc.clock
            self._trace(proc, "post", repr(op))
        else:
            raise SimulationError(
                f"rank {proc.rank} awaited an unknown object {op!r}; "
                "only repro.cluster.events ops may be awaited"
            )

    # ------------------------------------------------ nonblocking machinery
    def _post_nonblocking(self, proc: _Proc, request: Request) -> None:
        """Register an isend/irecv and try to match it immediately."""
        if not (0 <= request.peer < self.num_ranks):
            raise SimulationError(
                f"rank {proc.rank} named peer {request.peer}, outside "
                f"0..{self.num_ranks - 1}"
            )
        if request.kind == "isend":
            key = (request.rank, request.peer, request.tag)  # (src, dst, tag)
            counterpart = self._pending_irecvs.get(key)
            if counterpart:
                self._complete_transfer(request, counterpart.popleft())
            else:
                self._pending_isends.setdefault(key, deque()).append(request)
        else:
            key = (request.peer, request.rank, request.tag)
            counterpart = self._pending_isends.get(key)
            if counterpart:
                self._complete_transfer(counterpart.popleft(), request)
            else:
                self._pending_irecvs.setdefault(key, deque()).append(request)
        self._trace(proc, "post", repr(request))

    def _complete_transfer(self, send_req: Request, recv_req: Request) -> None:
        """Price a matched background transfer on the receiver's link."""
        dst = recv_req.rank
        start = max(send_req.post_time, recv_req.post_time)
        begin = max(start, self._link_free[dst])
        arrival = begin + self.model.message_time(send_req.nbytes)
        self._link_free[dst] = arrival
        for request in (send_req, recv_req):
            request.matched = True
            request.arrival = arrival
        recv_req.payload = send_req.payload
        recv_req.nbytes = send_req.nbytes
        # Byte/message accounting lands in each rank's *current* stage.
        sender_bucket = self._procs[send_req.rank].bucket()
        sender_bucket.bytes_sent += send_req.nbytes
        sender_bucket.msgs_sent += 1
        recv_bucket = self._procs[dst].bucket()
        recv_bucket.bytes_recv += send_req.nbytes
        recv_bucket.msgs_recv += 1

    def _try_complete_wait(self, proc: _Proc, wop: WaitOp) -> bool:
        if not all(request.matched for request in wop.requests):
            return False
        arrival = max(
            (request.arrival for request in wop.requests), default=proc.post_time
        )
        completion = max(proc.post_time, arrival)
        bucket = proc.bucket()
        # Time visibly spent inside the wait is communication (the rank
        # sits in MPI_Wait); fully-overlapped transfers cost nothing.
        bucket.comm_time += max(0.0, completion - proc.post_time)
        proc.clock = max(proc.clock, completion)
        proc.resume_value = [
            request.payload if request.kind == "irecv" else None
            for request in wop.requests
        ]
        proc.state = _State.READY
        proc.pending = None
        self._trace(proc, "waitdone", f"{len(wop.requests)} reqs t={completion:.6f}")
        return True

    # ------------------------------------------------------------- matching
    def _resolve_matches(self) -> bool:
        matched = False
        for proc in self._procs:
            if proc.state is not _State.BLOCKED:
                continue
            op = proc.pending
            if isinstance(op, RecvOp):
                matched |= self._try_match_recv(proc, op)
            elif isinstance(op, SendRecvOp):
                matched |= self._try_match_exchange(proc, op)
            elif isinstance(op, WaitOp):
                matched |= self._try_complete_wait(proc, op)
            # SendOp is matched from the receiver's side; BarrierOp below.
        matched |= self._try_release_barrier()
        return matched

    def _partner(self, rank: int) -> _Proc:
        if not (0 <= rank < self.num_ranks):
            raise SimulationError(f"message names rank {rank}, outside 0..{self.num_ranks - 1}")
        return self._procs[rank]

    def _try_match_recv(self, receiver: _Proc, rop: RecvOp) -> bool:
        sender = self._partner(rop.src)
        if sender.state is not _State.BLOCKED or not isinstance(sender.pending, SendOp):
            return False
        sop = sender.pending
        if sop.dst != receiver.rank:
            return False
        if rop.tag != ANY_TAG and rop.tag != sop.tag:
            return False
        start = max(sender.post_time, receiver.post_time)
        completion = start + self.model.message_time(sop.nbytes)
        self._complete_comm(sender, start, completion, sent=sop.nbytes)
        self._complete_comm(receiver, start, completion, received=sop.nbytes)
        receiver.resume_value = sop.payload
        sender.resume_value = None
        self._trace(receiver, "recv", f"from {sender.rank} {sop.nbytes}B t={completion:.6f}")
        self._trace(sender, "send", f"to {receiver.rank} {sop.nbytes}B t={completion:.6f}")
        return True

    def _try_match_exchange(self, a: _Proc, aop: SendRecvOp) -> bool:
        b = self._partner(aop.peer)
        if b.rank == a.rank:
            raise SimulationError(f"rank {a.rank} attempted sendrecv with itself")
        if b.state is not _State.BLOCKED or not isinstance(b.pending, SendRecvOp):
            return False
        bop = b.pending
        if bop.peer != a.rank or bop.tag != aop.tag:
            return False
        start = max(a.post_time, b.post_time)
        # Full duplex: each side pays start-up plus its *incoming* bytes.
        completion_a = start + self.model.message_time(bop.nbytes)
        completion_b = start + self.model.message_time(aop.nbytes)
        self._complete_comm(a, start, completion_a, sent=aop.nbytes, received=bop.nbytes)
        self._complete_comm(b, start, completion_b, sent=bop.nbytes, received=aop.nbytes)
        a.resume_value = bop.payload
        b.resume_value = aop.payload
        self._trace(a, "exch", f"with {b.rank} out={aop.nbytes}B in={bop.nbytes}B")
        self._trace(b, "exch", f"with {a.rank} out={bop.nbytes}B in={aop.nbytes}B")
        return True

    def _try_release_barrier(self) -> bool:
        waiting = [p for p in self._procs if isinstance(p.pending, BarrierOp)]
        if not waiting:
            return False
        if len(waiting) < sum(1 for p in self._procs if p.state is not _State.DONE):
            return False  # someone has not arrived yet
        if len(waiting) < self.num_ranks:
            ranks = sorted(p.rank for p in waiting)
            raise SimulationError(
                f"barrier posted by ranks {ranks} but other ranks already exited; "
                "every rank must reach every barrier"
            )
        depth = math.ceil(math.log2(self.num_ranks)) if self.num_ranks > 1 else 0
        arrival = max(p.post_time for p in waiting)
        release = arrival + self.model.ts * depth
        for p in waiting:
            self._complete_comm(p, arrival, release)
            p.resume_value = None
            self._trace(p, "barrier", f"released t={release:.6f}")
        return True

    def _complete_comm(
        self,
        proc: _Proc,
        transfer_start: float,
        completion: float,
        *,
        sent: int = 0,
        received: int = 0,
    ) -> None:
        if completion < proc.post_time - 1e-15:
            raise SimulationError(
                f"non-monotonic clock on rank {proc.rank}: "
                f"completion {completion} < post {proc.post_time}"
            )
        bucket = proc.bucket()
        # Split partner-wait (skew) from the transfer itself.
        bucket.wait_time += max(0.0, transfer_start - proc.post_time)
        bucket.comm_time += max(0.0, completion - max(transfer_start, proc.post_time))
        if sent:
            bucket.bytes_sent += sent
        if received:
            bucket.bytes_recv += received
        if isinstance(proc.pending, (SendOp, SendRecvOp)):
            bucket.msgs_sent += 1
        if isinstance(proc.pending, (RecvOp, SendRecvOp)):
            bucket.msgs_recv += 1
        proc.clock = max(proc.clock, completion)
        proc.state = _State.READY
        proc.pending = None

    # --------------------------------------------------------------- helpers
    def _trace(self, proc: _Proc, kind: str, detail: str) -> None:
        if self.trace:
            self.trace_events.append(
                TraceEvent(time=proc.clock, rank=proc.rank, kind=kind, detail=detail)
            )

    def _close_all(self) -> None:
        for proc in self._procs:
            if proc.coro is not None and proc.state is not _State.DONE:
                proc.coro.close()
