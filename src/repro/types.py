"""Small shared value types used across the package.

These are deliberately dependency-light (numpy only) so that every
subpackage — substrate and core alike — can import them without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

__all__ = ["Rect", "Extent3", "Axis", "PIXEL_BYTES", "RECT_INFO_BYTES", "RLE_CODE_BYTES"]

#: Bytes per pixel on the wire: intensity + opacity as two float64 (paper §3.1).
PIXEL_BYTES = 16
#: Bytes of bounding-rectangle info: four int16 corner coordinates (paper §3.2).
RECT_INFO_BYTES = 8
#: Bytes per run-length code element: one uint16 (paper §3.3).
RLE_CODE_BYTES = 2


class Axis(Enum):
    """Axis of a 3D volume (index into ``(x, y, z)`` ordering)."""

    X = 0
    Y = 1
    Z = 2


@dataclass(frozen=True, slots=True)
class Rect:
    """Half-open axis-aligned rectangle in image coordinates.

    ``y0 <= y < y1`` rows and ``x0 <= x < x1`` columns.  The empty
    rectangle is canonically ``Rect(0, 0, 0, 0)`` but any rect with
    non-positive extent is treated as empty.
    """

    y0: int
    x0: int
    y1: int
    x1: int

    # ---- basic geometry -------------------------------------------------
    @property
    def height(self) -> int:
        return max(0, self.y1 - self.y0)

    @property
    def width(self) -> int:
        return max(0, self.x1 - self.x0)

    @property
    def area(self) -> int:
        return self.height * self.width

    @property
    def is_empty(self) -> bool:
        return self.y1 <= self.y0 or self.x1 <= self.x0

    @staticmethod
    def empty() -> "Rect":
        return Rect(0, 0, 0, 0)

    @staticmethod
    def full(height: int, width: int) -> "Rect":
        return Rect(0, 0, height, width)

    def normalized(self) -> "Rect":
        """Canonicalize: any empty rect becomes ``Rect.empty()``."""
        return Rect.empty() if self.is_empty else self

    # ---- set-like operations --------------------------------------------
    def intersect(self, other: "Rect") -> "Rect":
        r = Rect(
            max(self.y0, other.y0),
            max(self.x0, other.x0),
            min(self.y1, other.y1),
            min(self.x1, other.x1),
        )
        return r.normalized()

    def union(self, other: "Rect") -> "Rect":
        """Smallest rect covering both (empty rects are identity elements)."""
        if self.is_empty:
            return other.normalized()
        if other.is_empty:
            return self.normalized()
        return Rect(
            min(self.y0, other.y0),
            min(self.x0, other.x0),
            max(self.y1, other.y1),
            max(self.x1, other.x1),
        )

    def contains(self, other: "Rect") -> bool:
        if other.is_empty:
            return True
        if self.is_empty:
            return False
        return (
            self.y0 <= other.y0
            and self.x0 <= other.x0
            and self.y1 >= other.y1
            and self.x1 >= other.x1
        )

    def contains_point(self, y: int, x: int) -> bool:
        return self.y0 <= y < self.y1 and self.x0 <= x < self.x1

    # ---- slicing helpers --------------------------------------------------
    def slices(self) -> tuple[slice, slice]:
        """Return ``(row_slice, col_slice)`` for indexing image arrays."""
        return slice(self.y0, self.y1), slice(self.x0, self.x1)

    def shifted(self, dy: int, dx: int) -> "Rect":
        if self.is_empty:
            return Rect.empty()
        return Rect(self.y0 + dy, self.x0 + dx, self.y1 + dy, self.x1 + dx)

    def split(self, axis: int) -> tuple["Rect", "Rect"]:
        """Split along the centerline into two halves (paper alg. line 6).

        ``axis == 0`` splits rows (top/bottom), ``axis == 1`` splits columns
        (left/right).  The first half gets the smaller coordinates.
        """
        if axis == 0:
            mid = self.y0 + self.height // 2
            return (
                Rect(self.y0, self.x0, mid, self.x1).normalized(),
                Rect(mid, self.x0, self.y1, self.x1).normalized(),
            )
        if axis == 1:
            mid = self.x0 + self.width // 2
            return (
                Rect(self.y0, self.x0, self.y1, mid).normalized(),
                Rect(self.y0, mid, self.y1, self.x1).normalized(),
            )
        raise ValueError(f"axis must be 0 or 1, got {axis}")

    def as_int16_array(self) -> np.ndarray:
        """Pack the corner coordinates as four int16 (8 wire bytes)."""
        return np.array([self.y0, self.x0, self.y1, self.x1], dtype=np.int16)

    @staticmethod
    def from_int16_array(arr: np.ndarray) -> "Rect":
        if arr.shape != (4,):
            raise ValueError(f"expected 4 coordinates, got shape {arr.shape}")
        y0, x0, y1, x1 = (int(v) for v in arr)
        return Rect(y0, x0, y1, x1).normalized()


@dataclass(frozen=True, slots=True)
class Extent3:
    """Half-open axis-aligned box of voxel indices ``[lo, hi)`` per axis."""

    x0: int
    y0: int
    z0: int
    x1: int
    y1: int
    z1: int

    @staticmethod
    def full(shape: tuple[int, int, int]) -> "Extent3":
        nx, ny, nz = shape
        return Extent3(0, 0, 0, nx, ny, nz)

    @property
    def shape(self) -> tuple[int, int, int]:
        return (max(0, self.x1 - self.x0), max(0, self.y1 - self.y0), max(0, self.z1 - self.z0))

    @property
    def num_voxels(self) -> int:
        sx, sy, sz = self.shape
        return sx * sy * sz

    @property
    def is_empty(self) -> bool:
        return self.num_voxels == 0

    @property
    def center(self) -> np.ndarray:
        return np.array(
            [(self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0, (self.z0 + self.z1) / 2.0]
        )

    def lo(self) -> np.ndarray:
        return np.array([self.x0, self.y0, self.z0], dtype=np.float64)

    def hi(self) -> np.ndarray:
        return np.array([self.x1, self.y1, self.z1], dtype=np.float64)

    def corners(self) -> np.ndarray:
        """Return the eight corner points, shape ``(8, 3)``."""
        lo, hi = self.lo(), self.hi()
        out = np.empty((8, 3))
        for i in range(8):
            for ax in range(3):
                out[i, ax] = hi[ax] if (i >> ax) & 1 else lo[ax]
        return out

    def split(self, axis: int) -> tuple["Extent3", "Extent3"]:
        """Bisect along ``axis`` (0=x, 1=y, 2=z); first half is the low side."""
        lo = [self.x0, self.y0, self.z0]
        hi = [self.x1, self.y1, self.z1]
        if hi[axis] - lo[axis] < 2:
            raise ValueError(f"extent too thin to split along axis {axis}: {self}")
        mid = lo[axis] + (hi[axis] - lo[axis]) // 2
        a_hi = list(hi)
        a_hi[axis] = mid
        b_lo = list(lo)
        b_lo[axis] = mid
        a = Extent3(lo[0], lo[1], lo[2], a_hi[0], a_hi[1], a_hi[2])
        b = Extent3(b_lo[0], b_lo[1], b_lo[2], hi[0], hi[1], hi[2])
        return a, b

    def slices(self) -> tuple[slice, slice, slice]:
        return slice(self.x0, self.x1), slice(self.y0, self.y1), slice(self.z0, self.z1)
