"""Related-work baselines from the paper's §2 (extensions beyond BS).

These are not part of the paper's measured comparison but are the
methods its related-work section positions against; having them in the
same harness lets the benchmarks answer "how far is BSBRC from the
*other* families?":

* :class:`DirectSend` — the *buffered case* (Hsu 1993, Neumann 1993):
  each rank owns a fixed image strip and receives every other rank's
  contribution for that strip in one shot, then composites the buffer in
  depth order.  Messages use bounding-rectangle packing (sparse-aware).
* :class:`BinaryTreeCompression` — Ahrens & Painter 1998: binary-tree
  combining where the full subimage is RLE-compressed at each hop;
  senders drop out, rank 0 ends with the whole image.
* :class:`ParallelPipeline` — Lee et al. 1996 style ring pipeline over
  depth-sorted ranks.  Because *over* is order-sensitive, each traveling
  partial carries **two** accumulators (front-of-wrap and back-of-wrap
  runs of the depth order) that merge when the partial reaches its
  target strip — the standard trick for pipelining a non-commutative
  operator around a ring.
"""

from __future__ import annotations

import numpy as np

from ..cluster.context import RankContext
from ..cluster.stats import PRE_STAGE
from ..errors import CompositingError, WireFormatError
from ..render.image import SubImage
from ..types import PIXEL_BYTES, RECT_INFO_BYTES, Rect
from ..volume.partition import PartitionPlan, depth_order
from .base import CompositeOutcome, Compositor, composite_rect_pixels
from .rect import find_bounding_rect
from .wire import pack_bsbr, pack_bslc, unpack_bsbr, unpack_bslc
from .over import over

__all__ = ["DirectSend", "DirectSendAsync", "BinaryTreeCompression", "ParallelPipeline", "strip_rect"]


def strip_rect(height: int, width: int, rank: int, size: int) -> Rect:
    """Row strip of the final image owned by ``rank`` in buffered methods."""
    if not (0 <= rank < size):
        raise CompositingError(f"rank {rank} out of range for {size} strips")
    y0 = rank * height // size
    y1 = (rank + 1) * height // size
    return Rect(y0, 0, y1, width).normalized()


class DirectSend(Compositor):
    """Buffered-case direct send with bounding-rectangle packing."""

    name = "direct"

    def __init__(self, *, charge_pack: bool = True):
        self.charge_pack = charge_pack

    async def run(
        self,
        ctx: RankContext,
        image: SubImage,
        plan: PartitionPlan,
        view_dir: np.ndarray,
    ) -> CompositeOutcome:
        self.check_plan(ctx, plan)
        size, rank = ctx.size, ctx.rank
        height, width = image.shape
        my_strip = strip_rect(height, width, rank, size)

        ctx.begin_stage(PRE_STAGE)
        await ctx.charge_bound(image.num_pixels)  # one classification scan

        contributions: dict[int, tuple[Rect, np.ndarray, np.ndarray]] = {}
        own_rect = find_bounding_rect(image.intensity, image.opacity, my_strip)
        if not own_rect.is_empty:
            rows, cols = own_rect.slices()
            contributions[rank] = (
                own_rect,
                image.intensity[rows, cols].copy(),
                image.opacity[rows, cols].copy(),
            )

        # P-1 pairwise exchange rounds (XOR schedule = perfect matchings).
        for rnd in range(1, size):
            ctx.begin_stage(rnd - 1)
            partner = rank ^ rnd
            partner_strip = strip_rect(height, width, partner, size)
            send_rect = find_bounding_rect(image.intensity, image.opacity, partner_strip)
            msg = pack_bsbr(image.intensity, image.opacity, send_rect)
            if self.charge_pack:
                await ctx.charge_pack(len(msg.buffer))
            raw = await ctx.sendrecv(partner, msg.buffer, nbytes=msg.accounted_bytes, tag=rnd)
            recv_rect, recv_i, recv_a = unpack_bsbr(raw)
            if not my_strip.contains(recv_rect):
                raise CompositingError(
                    f"round {rnd}: contribution rect {recv_rect} outside strip {my_strip}"
                )
            if not recv_rect.is_empty:
                contributions[partner] = (recv_rect, recv_i, recv_a)  # type: ignore[arg-type]

        # Composite the buffered contributions back-to-front.
        ctx.begin_stage(size - 1)
        result = SubImage.blank(height, width)
        order = depth_order(plan, view_dir)  # front first
        composited = 0
        for src in reversed(order):
            entry = contributions.get(src)
            if entry is None:
                continue
            rect, block_i, block_a = entry
            # Folding back-to-front: every new contribution sits in front
            # of everything accumulated so far.
            composite_rect_pixels(result, rect, block_i, block_a, local_in_front=False)
            composited += rect.area
        await ctx.charge_over(composited)
        return CompositeOutcome(image=result, owned_rect=my_strip)


class DirectSendAsync(Compositor):
    """Direct send with nonblocking communication (latency hiding).

    Same buffered-case semantics as :class:`DirectSend`, but all ``P-1``
    contributions are posted as isends/irecvs up front so transfers
    overlap each other and the local bounding-rectangle scans, instead
    of paying ``P-1`` serialized rendezvous rounds.  Incoming messages
    still serialize on the receiver's link (the simulator models one NIC
    per node), so the win is start-up/skew hiding, not magic bandwidth.
    """

    name = "direct-async"

    def __init__(self, *, charge_pack: bool = True):
        self.charge_pack = charge_pack

    async def run(
        self,
        ctx: RankContext,
        image: SubImage,
        plan: PartitionPlan,
        view_dir: np.ndarray,
    ) -> CompositeOutcome:
        self.check_plan(ctx, plan)
        size, rank = ctx.size, ctx.rank
        height, width = image.shape
        my_strip = strip_rect(height, width, rank, size)

        ctx.begin_stage(PRE_STAGE)
        # Post every receive before doing any local work.
        recv_requests = {
            src: await ctx.irecv(src, tag=src) for src in range(size) if src != rank
        }

        await ctx.charge_bound(image.num_pixels)
        contributions: dict[int, tuple[Rect, np.ndarray, np.ndarray]] = {}
        own_rect = find_bounding_rect(image.intensity, image.opacity, my_strip)
        if not own_rect.is_empty:
            rows, cols = own_rect.slices()
            contributions[rank] = (
                own_rect,
                image.intensity[rows, cols].copy(),
                image.opacity[rows, cols].copy(),
            )

        ctx.begin_stage(0)
        send_requests = []
        for dst in range(size):
            if dst == rank:
                continue
            dst_strip = strip_rect(height, width, dst, size)
            send_rect = find_bounding_rect(image.intensity, image.opacity, dst_strip)
            msg = pack_bsbr(image.intensity, image.opacity, send_rect)
            if self.charge_pack:
                await ctx.charge_pack(len(msg.buffer))
            send_requests.append(
                await ctx.isend(dst, msg.buffer, nbytes=msg.accounted_bytes, tag=rank)
            )

        ctx.begin_stage(1)
        payloads = await ctx.wait_all(list(recv_requests.values()))
        await ctx.wait_all(send_requests)
        for src, raw in zip(recv_requests.keys(), payloads):
            recv_rect, recv_i, recv_a = unpack_bsbr(raw)
            if not my_strip.contains(recv_rect):
                raise CompositingError(
                    f"contribution rect {recv_rect} from {src} outside strip {my_strip}"
                )
            if not recv_rect.is_empty:
                contributions[src] = (recv_rect, recv_i, recv_a)  # type: ignore[arg-type]

        ctx.begin_stage(2)
        result = SubImage.blank(height, width)
        order = depth_order(plan, view_dir)
        composited = 0
        for src in reversed(order):
            entry = contributions.get(src)
            if entry is None:
                continue
            rect, block_i, block_a = entry
            composite_rect_pixels(result, rect, block_i, block_a, local_in_front=False)
            composited += rect.area
        await ctx.charge_over(composited)
        return CompositeOutcome(image=result, owned_rect=my_strip)


class BinaryTreeCompression(Compositor):
    """Ahrens & Painter binary-tree combining with mask-RLE messages."""

    name = "tree"

    def __init__(self, *, charge_pack: bool = True):
        self.charge_pack = charge_pack

    async def run(
        self,
        ctx: RankContext,
        image: SubImage,
        plan: PartitionPlan,
        view_dir: np.ndarray,
    ) -> CompositeOutcome:
        stages = self.check_plan(ctx, plan)
        rank = ctx.rank
        num_pixels = image.num_pixels
        all_indices = np.arange(num_pixels, dtype=np.int64)
        flat_i = image.intensity.ravel()
        flat_a = image.opacity.ravel()

        for stage in range(stages):
            ctx.begin_stage(stage)
            group = 1 << (stage + 1)
            span = 1 << stage
            if rank % group == span:
                # Sender: compress the whole current image and drop out.
                peer = rank - span
                msg = pack_bslc(flat_i, flat_a, all_indices)
                await ctx.charge_encode(num_pixels)
                if self.charge_pack:
                    await ctx.charge_pack(len(msg.buffer))
                await ctx.send(peer, msg.buffer, nbytes=msg.accounted_bytes, tag=stage)
                return CompositeOutcome(image=image, owned_rect=Rect.empty())
            if rank % group == 0:
                peer = rank + span
                raw = await ctx.recv(peer, tag=stage)
                positions, recv_i, recv_a = unpack_bslc(raw, num_pixels)
                if positions.size:
                    loc_i = flat_i[positions]
                    loc_a = flat_a[positions]
                    if plan.local_in_front(rank, stage, view_dir):
                        out_i, out_a = over(loc_i, loc_a, recv_i, recv_a)
                    else:
                        out_i, out_a = over(recv_i, recv_a, loc_i, loc_a)
                    flat_i[positions] = out_i
                    flat_a[positions] = out_a
                    await ctx.charge_over(positions.size)
        return CompositeOutcome(image=image, owned_rect=image.full_rect())


class ParallelPipeline(Compositor):
    """Ring pipeline over depth-sorted ranks with dual accumulators."""

    name = "pipeline"

    def __init__(self, *, charge_pack: bool = True):
        self.charge_pack = charge_pack

    async def run(
        self,
        ctx: RankContext,
        image: SubImage,
        plan: PartitionPlan,
        view_dir: np.ndarray,
    ) -> CompositeOutcome:
        self.check_plan(ctx, plan)
        size, rank = ctx.size, ctx.rank
        height, width = image.shape
        order = depth_order(plan, view_dir)  # order[0] = front-most rank
        pos = order.index(rank)
        deeper = order[(pos + 1) % size]  # ring successor (next deeper, wraps)
        shallower = order[(pos - 1) % size]

        ctx.begin_stage(PRE_STAGE)
        await ctx.charge_bound(image.num_pixels)

        if size == 1:
            return CompositeOutcome(image=image, owned_rect=image.full_rect())

        # Partial for strip s is created at position (s+1) % size and ends
        # at position s after size-1 transfers.  A partial carries two
        # accumulators: 'back' covers the depth-contiguous run of visited
        # positions before the ring wrap, 'front' the run after it.
        def new_partial(strip_pos: int) -> "_Partial":
            strip = strip_rect(height, width, strip_pos, size)
            partial = _Partial(strip)
            partial.fold_own(image, pos, creator=(strip_pos + 1) % size)
            return partial

        current = new_partial((pos - 1) % size)
        await ctx.charge_over(current.last_fold_area)

        result: _Partial | None = None
        for step in range(1, size):
            ctx.begin_stage(step - 1)
            send_buf = current.pack()
            if self.charge_pack:
                await ctx.charge_pack(len(send_buf.buffer))
            # Ring shift with blocking rendezvous: odd/even positions
            # alternate send-first / recv-first to avoid a send cycle.
            if pos % 2 == 0:
                await ctx.send(deeper, send_buf.buffer, nbytes=send_buf.accounted_bytes, tag=step)
                raw = await ctx.recv(shallower, tag=step)
            else:
                raw = await ctx.recv(shallower, tag=step)
                await ctx.send(deeper, send_buf.buffer, nbytes=send_buf.accounted_bytes, tag=step)

            strip_pos = (pos - 1 - step) % size
            current = _Partial.unpack(raw, strip_rect(height, width, strip_pos, size))
            current.fold_own(image, pos, creator=(strip_pos + 1) % size)
            await ctx.charge_over(current.last_fold_area)
            if strip_pos == pos:
                result = current
        assert result is not None

        final = SubImage.blank(height, width)
        merged_i, merged_a = result.merge()
        rows, cols = result.strip.slices()
        final.intensity[rows, cols] = merged_i
        final.opacity[rows, cols] = merged_a
        await ctx.charge_over(result.strip.area)
        return CompositeOutcome(image=final, owned_rect=result.strip)


class _Partial:
    """Traveling pipeline partial: front/back strip accumulators."""

    def __init__(self, strip: Rect):
        self.strip = strip
        h, w = strip.height, strip.width
        self.front_i = np.zeros((h, w), dtype=np.float64)
        self.front_a = np.zeros((h, w), dtype=np.float64)
        self.back_i = np.zeros((h, w), dtype=np.float64)
        self.back_a = np.zeros((h, w), dtype=np.float64)
        self.last_fold_area = 0

    def fold_own(self, image: SubImage, pos: int, creator: int) -> None:
        """Fold this rank's own strip pixels into the proper accumulator.

        Positions ``creator..P-1`` accumulate into ``back``; after the
        ring wraps, positions ``0..creator-1`` accumulate into ``front``.
        Within each run folds happen shallow-to-deep, so the new
        contribution always composites *under* the accumulator.
        """
        rect = find_bounding_rect(image.intensity, image.opacity, self.strip)
        self.last_fold_area = rect.area
        if rect.is_empty:
            return
        rows, cols = rect.slices()
        mine_i = image.intensity[rows, cols]
        mine_a = image.opacity[rows, cols]
        local = rect.shifted(-self.strip.y0, -self.strip.x0)
        lrows, lcols = local.slices()
        if pos >= creator:
            acc_i, acc_a = self.back_i, self.back_a
        else:
            acc_i, acc_a = self.front_i, self.front_a
        out_i, out_a = over(acc_i[lrows, lcols], acc_a[lrows, lcols], mine_i, mine_a)
        acc_i[lrows, lcols] = out_i
        acc_a[lrows, lcols] = out_a

    def merge(self) -> tuple[np.ndarray, np.ndarray]:
        """front over back — the finished strip."""
        return over(self.front_i, self.front_a, self.back_i, self.back_a)

    # ---- wire -------------------------------------------------------------
    def pack(self):
        from .wire import WireMessage

        front = pack_bsbr(self.front_i, self.front_a, self._rect_of(self.front_i, self.front_a))
        back = pack_bsbr(self.back_i, self.back_a, self._rect_of(self.back_i, self.back_a))
        return WireMessage(
            buffer=front.buffer + back.buffer,
            accounted_bytes=front.accounted_bytes + back.accounted_bytes,
        )

    def _rect_of(self, plane_i: np.ndarray, plane_a: np.ndarray) -> Rect:
        return find_bounding_rect(plane_i, plane_a, None)

    @staticmethod
    def unpack(raw: bytes, strip: Rect) -> "_Partial":
        partial = _Partial(strip)

        def _read(offset: int, into_i: np.ndarray, into_a: np.ndarray) -> int:
            if len(raw) < offset + RECT_INFO_BYTES:
                raise WireFormatError("pipeline partial truncated")
            head = raw[offset : offset + RECT_INFO_BYTES]
            rect = Rect.from_int16_array(np.frombuffer(head, dtype="<i2"))
            length = RECT_INFO_BYTES + (0 if rect.is_empty else rect.area * PIXEL_BYTES)
            rect_msg = raw[offset : offset + length]
            got_rect, block_i, block_a = unpack_bsbr(rect_msg)
            if not got_rect.is_empty:
                # Accumulator planes are strip-local, and so was the rect
                # computed by pack(): index directly.
                rows, cols = got_rect.slices()
                into_i[rows, cols] = block_i
                into_a[rows, cols] = block_a
            return offset + length

        offset = _read(0, partial.front_i, partial.front_a)
        offset = _read(offset, partial.back_i, partial.back_a)
        if offset != len(raw):
            raise WireFormatError("pipeline partial has trailing bytes")
        return partial
