"""Tests for the experiment harness (render cache, grids, persistence)."""

import numpy as np
import pytest

from repro import perf
from repro.analysis.metrics import MethodMeasurement
from repro.cluster.model import SP2
from repro.errors import ConfigurationError
from repro.experiments.harness import (
    CACHE_ENV,
    RenderedWorkload,
    clear_workload_cache,
    load_rows,
    render_cache_dir,
    rows_from_json,
    rows_to_json,
    run_grid,
    run_method,
    save_rows,
    workload,
)
from repro.render.raycast import render_subvolume
from repro.volume.datasets import make_dataset

SMALL = dict(volume_shape=(32, 32, 16), rotation=(20.0, 30.0, 0.0))


@pytest.fixture(scope="module")
def small_workload():
    return RenderedWorkload(
        dataset="engine_low", image_size=48, max_ranks=16, **SMALL
    )


class TestRenderedWorkload:
    def test_blocks_cropped(self, small_workload):
        for rect, block_i, block_a in small_workload.blocks:
            if rect.is_empty:
                continue
            assert block_i.shape == (rect.height, rect.width)
            assert block_a.shape == block_i.shape

    @pytest.mark.parametrize("num_ranks", [2, 4, 8, 16])
    def test_assembly_equals_direct_render(self, small_workload, num_ranks):
        """The cached-blocks fast path must reproduce direct rendering."""
        volume, transfer = make_dataset("engine_low", SMALL["volume_shape"])
        plan = small_workload.plan_for(num_ranks)
        assembled = small_workload.subimages_for(num_ranks)
        for rank in range(num_ranks):
            direct = render_subvolume(
                volume, transfer, small_workload.camera, plan.extent(rank)
            )
            assert assembled[rank].max_abs_diff(direct) < 1e-12

    def test_rejects_larger_p(self, small_workload):
        with pytest.raises(ConfigurationError):
            small_workload.subimages_for(32)

    def test_rejects_non_power_of_two(self, small_workload):
        with pytest.raises(ConfigurationError):
            small_workload.subimages_for(3)

    def test_rejects_bad_max_ranks(self):
        with pytest.raises(ConfigurationError):
            RenderedWorkload(dataset="sphere", image_size=32, max_ranks=6)

    def test_plan_cache_stable(self, small_workload):
        assert small_workload.plan_for(4) is small_workload.plan_for(4)


class TestWorkloadCache:
    def test_cache_returns_same_object(self):
        clear_workload_cache()
        a = workload("sphere", 32, max_ranks=4, volume_shape=(16, 16, 16))
        b = workload("sphere", 32, max_ranks=4, volume_shape=(16, 16, 16))
        assert a is b

    def test_cache_distinguishes_rotation(self):
        clear_workload_cache()
        a = workload("sphere", 32, max_ranks=4, volume_shape=(16, 16, 16))
        b = workload(
            "sphere", 32, max_ranks=4, volume_shape=(16, 16, 16),
            rotation=(10.0, 0.0, 0.0),
        )
        assert a is not b

    def test_clear(self):
        a = workload("sphere", 32, max_ranks=4, volume_shape=(16, 16, 16))
        clear_workload_cache()
        b = workload("sphere", 32, max_ranks=4, volume_shape=(16, 16, 16))
        assert a is not b


class TestDiskCache:
    KW = dict(dataset="engine_low", image_size=48, max_ranks=4, **SMALL)

    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv(CACHE_ENV, raising=False)
        assert render_cache_dir() is None
        monkeypatch.setenv(CACHE_ENV, "   ")
        assert render_cache_dir() is None

    def test_env_var_enables(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_ENV, str(tmp_path))
        assert render_cache_dir() == str(tmp_path)

    def _blocks_equal(self, a, b):
        assert len(a.blocks) == len(b.blocks)
        for (ra, ia, aa), (rb, ib, ab) in zip(a.blocks, b.blocks):
            assert ra == rb
            if not ra.is_empty:
                assert np.array_equal(ia, ib)
                assert np.array_equal(aa, ab)

    def test_hit_returns_identical_blocks(self, tmp_path):
        perf.reset()
        cold = RenderedWorkload(cache_dir=str(tmp_path), **self.KW)
        assert perf.counter("harness.disk_cache_misses") == 1
        assert perf.counter("harness.disk_cache_stores") == 1
        warm = RenderedWorkload(cache_dir=str(tmp_path), **self.KW)
        assert perf.counter("harness.disk_cache_hits") == 1
        self._blocks_equal(cold, warm)

    def test_warm_workload_composites_like_cold(self, tmp_path):
        cold = RenderedWorkload(cache_dir=str(tmp_path), **self.KW)
        warm = RenderedWorkload(cache_dir=str(tmp_path), **self.KW)
        for rank, (a, b) in enumerate(
            zip(cold.subimages_for(4), warm.subimages_for(4))
        ):
            assert a.max_abs_diff(b) == 0.0, f"rank {rank} differs"

    def test_key_distinguishes_parameters(self, tmp_path):
        RenderedWorkload(cache_dir=str(tmp_path), **self.KW)
        perf.reset()
        other = dict(self.KW, image_size=56)
        RenderedWorkload(cache_dir=str(tmp_path), **other)
        assert perf.counter("harness.disk_cache_hits") == 0
        assert perf.counter("harness.disk_cache_misses") == 1

    def test_corrupt_entry_is_a_graceful_miss(self, tmp_path):
        RenderedWorkload(cache_dir=str(tmp_path), **self.KW)
        entries = list(tmp_path.glob("workload_*.npz"))
        assert len(entries) == 1
        entries[0].write_bytes(b"not an npz archive")
        perf.reset()
        again = RenderedWorkload(cache_dir=str(tmp_path), **self.KW)
        assert perf.counter("harness.disk_cache_misses") == 1
        assert perf.counter("harness.disk_cache_stores") == 1
        fresh = RenderedWorkload(cache_dir=str(tmp_path), **self.KW)
        self._blocks_equal(again, fresh)

    def test_env_var_used_when_no_explicit_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_ENV, str(tmp_path))
        perf.reset()
        RenderedWorkload(**self.KW)
        assert perf.counter("harness.disk_cache_stores") == 1
        assert list(tmp_path.glob("workload_*.npz"))


class TestRunMethodAndGrid:
    def test_run_method_row(self, small_workload):
        row, run = run_method(small_workload, "bsbrc", 8, machine=SP2)
        assert row.method == "bsbrc"
        assert row.dataset == "engine_low"
        assert row.num_ranks == 8
        assert row.t_total > 0
        assert row.mmax_bytes == run.stats.mmax_bytes

    def test_grid_complete(self):
        rows = run_grid(
            ["engine_low", "cube"],
            48,
            [2, 4],
            ["bs", "bsbrc"],
            volume_shape=SMALL["volume_shape"],
            max_ranks=4,
        )
        assert len(rows) == 2 * 2 * 2
        keys = {(r.dataset, r.num_ranks, r.method) for r in rows}
        assert ("cube", 4, "bsbrc") in keys

    def test_grid_deterministic(self):
        kwargs = dict(volume_shape=SMALL["volume_shape"], max_ranks=4)
        rows_a = run_grid(["engine_low"], 48, [4], ["bsbrc"], **kwargs)
        rows_b = run_grid(["engine_low"], 48, [4], ["bsbrc"], **kwargs)
        assert rows_a == rows_b


class TestPersistence:
    def test_json_roundtrip(self):
        rows = [
            MethodMeasurement(
                method="bs", dataset="cube", image_size=384, num_ranks=8,
                t_comp=0.1, t_comm=0.02, mmax_bytes=1000, makespan=0.12,
                bytes_total=5000, pixels_composited=10, pixels_encoded=0,
            )
        ]
        assert rows_from_json(rows_to_json(rows)) == rows

    def test_file_roundtrip(self, tmp_path):
        rows = [
            MethodMeasurement(
                method="bslc", dataset="head", image_size=768, num_ranks=2,
                t_comp=0.3, t_comm=0.01, mmax_bytes=77, makespan=0.31,
                bytes_total=100, pixels_composited=5, pixels_encoded=9,
            )
        ]
        path = tmp_path / "rows.json"
        save_rows(rows, path)
        assert load_rows(path) == rows
