"""Tests for the perf counter/timer layer."""

import json
import time

import pytest

from repro import perf


@pytest.fixture(autouse=True)
def _clean_registry():
    perf.reset()
    yield
    perf.reset()


class TestCounters:
    def test_incr_defaults_to_one(self):
        perf.incr("a")
        perf.incr("a")
        assert perf.counter("a") == 2

    def test_incr_amount(self):
        perf.incr("bytes", 100)
        perf.incr("bytes", 23)
        assert perf.counter("bytes") == 123

    def test_unknown_counter_is_zero(self):
        assert perf.counter("never-bumped") == 0

    def test_reset_zeroes(self):
        perf.incr("a", 5)
        perf.reset()
        assert perf.counter("a") == 0
        assert perf.report() == {"counters": {}, "timers": {}}


class TestTimers:
    def test_timer_accumulates_wall_cpu_calls(self):
        for _ in range(3):
            with perf.timer("work"):
                time.sleep(0.002)
        row = perf.report()["timers"]["work"]
        assert row["calls"] == 3
        assert row["wall_s"] >= 3 * 0.002
        assert row["cpu_s"] >= 0.0

    def test_timer_records_on_exception(self):
        with pytest.raises(ValueError):
            with perf.timer("boom"):
                raise ValueError("x")
        assert perf.report()["timers"]["boom"]["calls"] == 1


class TestReport:
    def test_report_is_json_serializable(self):
        perf.incr("rays", 1024)
        with perf.timer("render"):
            pass
        payload = json.dumps(perf.report())
        assert "rays" in payload and "render" in payload

    def test_report_snapshot_is_detached(self):
        perf.incr("a")
        snap = perf.report()
        perf.incr("a")
        assert snap["counters"]["a"] == 1

    def test_format_report_empty(self):
        assert perf.format_report() == "perf counters: (empty)"

    def test_format_report_lists_entries(self):
        perf.incr("rle.codes", 42)
        with perf.timer("render"):
            pass
        text = perf.format_report()
        assert "rle.codes" in text
        assert "42" in text
        assert "render" in text
        assert "calls 1" in text


class TestScoping:
    def test_scope_makes_a_fresh_registry(self):
        perf.incr("outer", 5)
        with perf.scope() as inner:
            assert perf.counter("outer") == 0
            perf.incr("inner", 3)
            assert perf.counter("inner") == 3
        assert perf.counter("inner") == 0
        assert perf.counter("outer") == 5
        assert inner.counter("inner") == 3

    def test_scope_accepts_an_existing_registry(self):
        registry = perf.PerfRegistry()
        registry.incr("seeded", 1)
        with perf.scope(registry) as target:
            assert target is registry
            perf.incr("seeded", 1)
        assert registry.counter("seeded") == 2

    def test_scopes_nest(self):
        with perf.scope() as a:
            perf.incr("x")
            with perf.scope() as b:
                perf.incr("x", 10)
            perf.incr("x")
        assert a.counter("x") == 2
        assert b.counter("x") == 10

    def test_current_targets_the_default_without_a_scope(self):
        assert perf.current() is perf.current()
        perf.incr("d")
        assert perf.current().counter("d") == 1

    def test_scope_restores_after_exception(self):
        with pytest.raises(ValueError):
            with perf.scope():
                raise ValueError("x")
        perf.incr("after")
        assert perf.counter("after") == 1

    def test_threads_scope_independently(self):
        import threading

        results = {}

        def worker(name, amount):
            with perf.scope() as registry:
                for _ in range(amount):
                    perf.incr("ticks")
                results[name] = registry.counter("ticks")

        threads = [
            threading.Thread(target=worker, args=("a", 100)),
            threading.Thread(target=worker, args=("b", 7)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results == {"a": 100, "b": 7}
        assert perf.counter("ticks") == 0  # nothing leaked to the default

    def test_timer_and_report_respect_the_scope(self):
        with perf.scope() as inner:
            with perf.timer("scoped"):
                pass
        assert "scoped" in inner.report()["timers"]
        assert perf.report()["timers"] == {}


class TestInstrumentation:
    def test_rle_codecs_count(self):
        import numpy as np

        from repro.compositing.rle import rle_decode_mask, rle_encode_mask

        mask = np.zeros(64, dtype=bool)
        mask[10:20] = True
        codes = rle_encode_mask(mask)
        rle_decode_mask(codes, mask.size)
        counters = perf.report()["counters"]
        assert counters["rle.encode_calls"] == 1
        assert counters["rle.decode_calls"] == 1
        assert counters["rle.codes"] == codes.size

    def test_raycast_counts_samples(self):
        from repro.render.camera import Camera
        from repro.render.raycast import render_full
        from repro.volume.datasets import make_dataset

        volume, transfer = make_dataset("head", (24, 24, 12))
        camera = Camera(
            width=24, height=24, volume_shape=volume.shape, rot_x=20.0, rot_y=30.0
        )
        render_full(volume, transfer, camera)
        counters = perf.report()["counters"]
        assert counters.get("raycast.chunks", 0) > 0
        assert counters.get("raycast.samples", 0) > 0
