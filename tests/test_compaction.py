"""Checkpoint compaction: the disk store keeps one snapshot per rank.

Safety argument (documented on :class:`DiskCheckpointStore`): every
restore path reads the *latest* stage — mp respawns restore
``RESUME_LATEST`` per rank, and the simulator's common-stage resume uses
the in-memory store — so older snapshots are dead weight.  The delete
runs after the atomic ``os.replace``, so a crash mid-compaction can at
worst leave an extra older file, never lose the newest one.
"""

import os

import numpy as np
import pytest

from repro.cluster.recovery import CheckpointSnapshot, DiskCheckpointStore
from repro.cluster.stats import RankStats


def snapshot(rank: int, stage: int) -> CheckpointSnapshot:
    stats = RankStats(rank=rank)
    stats.stage(stage).bytes_sent = 100 + stage
    return CheckpointSnapshot(
        stage=stage,
        intensity=np.full((4, 4), float(stage)),
        opacity=np.full((4, 4), float(stage) / 2.0),
        codec_state=None,
        stats=stats,
        producer="bsbrc",
    )


def checkpoint_files(root: str) -> list[str]:
    return sorted(n for n in os.listdir(root) if n.endswith(".pkl"))


class TestCompaction:
    def test_p16_keeps_one_file_per_rank(self, tmp_path):
        """The ISSUE's acceptance shape: P=16, several stages, 16 files."""
        num_ranks, num_stages = 16, 4
        store = DiskCheckpointStore(str(tmp_path), run_id="p16")
        for stage in range(num_stages):
            for rank in range(num_ranks):
                store.save(rank, stage, snapshot(rank, stage))
        assert len(checkpoint_files(str(tmp_path))) == num_ranks
        for rank in range(num_ranks):
            assert store.latest_stage(rank) == num_stages - 1
            loaded = store.load(rank, num_stages - 1)
            assert loaded is not None
            assert loaded.stats.stages[num_stages - 1].bytes_sent == 100 + num_stages - 1

    def test_compaction_off_keeps_every_stage(self, tmp_path):
        num_ranks, num_stages = 16, 4
        store = DiskCheckpointStore(str(tmp_path), run_id="all", compact=False)
        for stage in range(num_stages):
            for rank in range(num_ranks):
                store.save(rank, stage, snapshot(rank, stage))
        assert len(checkpoint_files(str(tmp_path))) == num_ranks * num_stages
        assert store.load(3, 0) is not None  # history retained

    def test_older_stages_read_as_absent_after_compaction(self, tmp_path):
        store = DiskCheckpointStore(str(tmp_path), run_id="gone")
        store.save(0, 0, snapshot(0, 0))
        store.save(0, 1, snapshot(0, 1))
        assert store.load(0, 0) is None
        assert store.load(0, 1) is not None
        assert store.latest_stage(0) == 1

    def test_compaction_scoped_to_rank_and_run(self, tmp_path):
        mine = DiskCheckpointStore(str(tmp_path), run_id="mine")
        other = DiskCheckpointStore(str(tmp_path), run_id="other")
        other.save(0, 0, snapshot(0, 0))
        mine.save(0, 0, snapshot(0, 0))
        mine.save(1, 0, snapshot(1, 0))
        mine.save(0, 2, snapshot(0, 2))  # compacts rank 0 of run "mine" only
        assert mine.load(1, 0) is not None
        assert other.load(0, 0) is not None

    def test_out_of_order_save_never_deletes_newer(self, tmp_path):
        # A lagging writer landing an older stage must not clobber the
        # newer snapshot (delete only targets stages strictly below).
        store = DiskCheckpointStore(str(tmp_path), run_id="lag")
        store.save(0, 3, snapshot(0, 3))
        store.save(0, 1, snapshot(0, 1))
        assert store.load(0, 3) is not None
        assert store.latest_stage(0) == 3

    def test_stray_files_ignored(self, tmp_path):
        store = DiskCheckpointStore(str(tmp_path), run_id="x")
        (tmp_path / "ckpt-x-r0-snotanint.pkl").write_bytes(b"junk")
        (tmp_path / "unrelated.txt").write_text("hello")
        store.save(0, 5, snapshot(0, 5))
        assert store.latest_stage(0) == 5
        assert (tmp_path / "unrelated.txt").exists()

    @pytest.mark.parametrize("compact", [True, False])
    def test_default_and_explicit_flags(self, tmp_path, compact):
        store = DiskCheckpointStore(str(tmp_path), compact=compact)
        assert store.compact is compact
        assert DiskCheckpointStore(str(tmp_path)).compact is True
