"""Tests for the over operator (including hypothesis properties)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.compositing.over import is_blank, nonblank_mask, over, over_inplace, over_scalar

pixel = st.tuples(
    st.floats(0.0, 1.0, allow_nan=False),
    st.floats(0.0, 1.0, allow_nan=False),
)


def planes(shape=(4, 5)):
    return hnp.arrays(np.float64, shape, elements=st.floats(0.0, 1.0, width=64))


class TestOverBasics:
    def test_blank_front_is_identity(self):
        back_i = np.array([0.3, 0.5])
        back_a = np.array([0.2, 0.9])
        out_i, out_a = over(np.zeros(2), np.zeros(2), back_i, back_a)
        assert np.array_equal(out_i, back_i)
        assert np.array_equal(out_a, back_a)

    def test_blank_back_is_identity(self):
        front_i = np.array([0.3, 0.5])
        front_a = np.array([0.2, 0.9])
        out_i, out_a = over(front_i, front_a, np.zeros(2), np.zeros(2))
        assert np.array_equal(out_i, front_i)
        assert np.array_equal(out_a, front_a)

    def test_opaque_front_hides_back(self):
        out_i, out_a = over(
            np.array([0.7]), np.array([1.0]), np.array([0.9]), np.array([0.5])
        )
        assert out_i[0] == pytest.approx(0.7)
        assert out_a[0] == pytest.approx(1.0)

    def test_not_commutative(self):
        f = (np.array([0.8]), np.array([0.8]))
        b = (np.array([0.1]), np.array([0.3]))
        ab = over(*f, *b)
        ba = over(*b, *f)
        assert not np.allclose(ab[0], ba[0])

    def test_matches_scalar_reference(self):
        rng = np.random.default_rng(0)
        fi, fa, bi, ba = rng.uniform(0, 1, (4, 10))
        out_i, out_a = over(fi, fa, bi, ba)
        for k in range(10):
            si, sa = over_scalar((fi[k], fa[k]), (bi[k], ba[k]))
            assert out_i[k] == pytest.approx(si)
            assert out_a[k] == pytest.approx(sa)


class TestOverInplace:
    def test_matches_functional(self):
        rng = np.random.default_rng(1)
        fi, fa, bi, ba = rng.uniform(0, 1, (4, 8))
        expect_i, expect_a = over(fi, fa, bi, ba)
        acc_i, acc_a = bi.copy(), ba.copy()
        over_inplace(fi, fa, acc_i, acc_a)
        assert np.allclose(acc_i, expect_i)
        assert np.allclose(acc_a, expect_a)

    def test_front_not_mutated(self):
        fi = np.array([0.5])
        fa = np.array([0.5])
        over_inplace(fi, fa, np.array([0.1]), np.array([0.1]))
        assert fi[0] == 0.5 and fa[0] == 0.5


class TestOverProperties:
    @given(a=pixel, b=pixel, c=pixel)
    @settings(max_examples=200)
    def test_associative(self, a, b, c):
        left = over_scalar(over_scalar(a, b), c)
        right = over_scalar(a, over_scalar(b, c))
        assert left[0] == pytest.approx(right[0], abs=1e-12)
        assert left[1] == pytest.approx(right[1], abs=1e-12)

    @given(a=pixel, b=pixel)
    @settings(max_examples=200)
    def test_opacity_monotone_and_bounded(self, a, b):
        _, alpha = over_scalar(a, b)
        assert alpha >= max(a[1] - 1e-12, 0.0)
        assert alpha <= 1.0 + 1e-12

    @given(b=pixel)
    def test_blank_is_left_identity(self, b):
        assert over_scalar((0.0, 0.0), b) == pytest.approx(b)

    @given(a=pixel)
    def test_blank_is_right_identity(self, a):
        assert over_scalar(a, (0.0, 0.0)) == pytest.approx(a)

    @given(fi=planes(), fa=planes(), bi=planes(), ba=planes())
    @settings(max_examples=50)
    def test_vectorized_matches_scalar(self, fi, fa, bi, ba):
        out_i, out_a = over(fi, fa, bi, ba)
        idx = (1, 2)
        si, sa = over_scalar((fi[idx], fa[idx]), (bi[idx], ba[idx]))
        assert out_i[idx] == pytest.approx(si)
        assert out_a[idx] == pytest.approx(sa)


class TestMasks:
    def test_blank_requires_both_zero(self):
        intensity = np.array([0.0, 0.0, 0.5, 0.5])
        opacity = np.array([0.0, 0.5, 0.0, 0.5])
        assert is_blank(intensity, opacity).tolist() == [True, False, False, False]

    def test_masks_complementary(self):
        rng = np.random.default_rng(2)
        intensity = rng.choice([0.0, 0.4], size=20)
        opacity = rng.choice([0.0, 0.7], size=20)
        assert np.array_equal(
            nonblank_mask(intensity, opacity), ~is_blank(intensity, opacity)
        )
