#!/usr/bin/env python
"""Tile-routed compositing benchmarks: latency to first pixel.

The asynchronous tile engine's promise is not a better makespan — it is
*progressive* completion: tiles become final long before the frame
does, so a display can start drawing while compositing is still in
flight.  This benchmark records ``latency_to_first_pixel`` (time until
the first tile of the frame is final) and the total frame time for
``tile-routed:rect`` against the stage-synchronous ``binary-swap:raw``
and ``radix-k:rect-rle`` baselines at P ∈ {8, 64, 256} × fill ∈ {5, 20,
60}% on the simulator's event engine, over both the paper's flat link
and a modelled fat-tree.  For stage-synchronous methods the first final
pixel *is* the last one, so their latency equals their makespan.

Every tile-routed run is first asserted bit-identical to
``binary-swap:raw`` on the same workload — speed claims only count on
provably identical pixels.

Machine-readable results land in ``BENCH_tile.json``.

Usage::

    python benchmarks/bench_tile.py            # full sweep
    python benchmarks/bench_tile.py --smoke    # CI scale (seconds)
    python benchmarks/bench_tile.py --update   # write baseline JSON
    python benchmarks/bench_tile.py --check    # exit 1 on regression

``--check`` enforces the acceptance floor (tile-routed latency to first
pixel ≥ 2x better than binary-swap at P=64 on the flat network) and, in
any mode, fails when a workload's wall time exceeds
``REGRESSION_FACTOR`` x the committed baseline for the same mode.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

BASELINE_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_tile.json"
)

#: A workload "regresses" when its wall time doubles versus the baseline.
REGRESSION_FACTOR = 2.0
#: Acceptance floor: tile-routed first-pixel latency vs binary-swap at P=64.
LATENCY_ADVANTAGE_FLOOR_P64 = 2.0

IMAGE_SIZE = 96
TILE = 16
FILLS = (0.05, 0.20, 0.60)
TOPOLOGIES = ("flat", "fat-tree:radix=16")

METHODS = (
    ("binary-swap", "bs", {}),
    ("radix-k", "radix-k:rect-rle", {}),
    ("tile-routed", "tile-routed:rect", {"tile": TILE}),
)


def _final(run, image_size: int):
    from repro.pipeline.system import assemble_final

    return assemble_final(run.outcomes, image_size, image_size)


def bench_latency(smoke: bool) -> dict:
    from repro.cluster.model import SP2, make_network
    from repro.cluster.run_timeline import tile_latency_metrics
    from repro.experiments.scale import VIEW_DIR, synthetic_subimages
    from repro.pipeline.system import run_compositing
    from repro.volume.partition import recursive_bisect

    rank_counts = (8, 64) if smoke else (8, 64, 256)
    fills = (0.20,) if smoke else FILLS

    rows: dict[str, dict] = {}
    for topology in TOPOLOGIES:
        for num_ranks in rank_counts:
            plan = recursive_bisect((64, 64, 64), num_ranks)
            for fill in fills:
                images = synthetic_subimages(num_ranks, IMAGE_SIZE, fill)
                reference = None
                per_method: dict[str, dict] = {}
                for label, method, options in METHODS:
                    network = make_network(topology, SP2)
                    t0 = time.perf_counter()
                    run = run_compositing(
                        list(images), method, plan, VIEW_DIR, SP2,
                        network=network, engine="event", **options,
                    )
                    wall_s = time.perf_counter() - t0
                    final = _final(run, IMAGE_SIZE)
                    if label == "binary-swap":
                        reference = final
                    elif label == "tile-routed":
                        assert reference is not None
                        if not (
                            np.array_equal(final.intensity, reference.intensity)
                            and np.array_equal(final.opacity, reference.opacity)
                        ):
                            raise AssertionError(
                                f"tile-routed diverged from binary-swap:raw at "
                                f"P={num_ranks} fill={fill} {topology}"
                            )
                    events = [
                        ev for rs in run.stats.rank_stats for ev in rs.events
                    ]
                    metrics = tile_latency_metrics(events)
                    per_method[label] = {
                        "latency_to_first_pixel_s": metrics.get(
                            "latency_to_first_pixel", run.stats.makespan
                        ),
                        "latency_to_p50_pixels_s": metrics.get(
                            "latency_to_p50_pixels", run.stats.makespan
                        ),
                        "makespan_s": run.stats.makespan,
                        "wall_s": wall_s,
                    }
                tile_lat = per_method["tile-routed"]["latency_to_first_pixel_s"]
                bs_lat = per_method["binary-swap"]["latency_to_first_pixel_s"]
                key = f"{topology.partition(':')[0]}_p{num_ranks}_fill{int(fill * 100)}"
                rows[key] = {
                    "detail": (
                        f"P={num_ranks}, fill={fill:g}, {IMAGE_SIZE}px, "
                        f"tile={TILE}, topology={topology}; tile-routed final "
                        f"asserted bit-identical to binary-swap:raw"
                    ),
                    "first_pixel_advantage": bs_lat / tile_lat,
                    "methods": per_method,
                }
    return rows


def run(smoke: bool) -> dict:
    return {"latency": bench_latency(smoke)}


def check(results: dict, baseline_modes: dict, mode: str) -> list[str]:
    problems: list[str] = []
    baseline = baseline_modes.get(mode, {})

    # Wall-clock regression guard (the CI smoke job's teeth).
    base_rows = baseline.get("latency", {})
    for name, row in results.get("latency", {}).items():
        base = base_rows.get(name)
        if not base:
            continue
        for label, method_row in row["methods"].items():
            base_method = base.get("methods", {}).get(label)
            if base_method and "wall_s" in base_method:
                if method_row["wall_s"] > base_method["wall_s"] * REGRESSION_FACTOR:
                    problems.append(
                        f"latency/{name}/{label}: {method_row['wall_s']:.3f} s "
                        f"is >{REGRESSION_FACTOR:g}x the recorded baseline "
                        f"{base_method['wall_s']:.3f} s"
                    )

    # Acceptance floor: every P=64 flat-network point must show the
    # tile-routed engine reaching its first pixel >= 2x sooner than
    # binary-swap (both modes measure P=64, so the floor always applies).
    for name, row in results.get("latency", {}).items():
        if name.startswith("flat_p64_"):
            if row["first_pixel_advantage"] < LATENCY_ADVANTAGE_FLOOR_P64:
                problems.append(
                    f"latency/{name}: first-pixel advantage "
                    f"{row['first_pixel_advantage']:.2f}x is below the "
                    f"{LATENCY_ADVANTAGE_FLOOR_P64:g}x floor vs binary-swap"
                )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="reduced CI-scale variant")
    parser.add_argument("--check", action="store_true", help="exit 1 on regression vs baseline")
    parser.add_argument("--update", action="store_true", help="record results in the baseline JSON")
    parser.add_argument("--out", default=BASELINE_PATH, help="baseline JSON path")
    args = parser.parse_args(argv)
    mode = "smoke" if args.smoke else "full"

    results = run(args.smoke)

    print(f"tile-routed latency benchmarks ({mode} mode):")
    for name, row in results["latency"].items():
        tile = row["methods"]["tile-routed"]
        bs = row["methods"]["binary-swap"]
        print(
            f"  {name:22s} first pixel {tile['latency_to_first_pixel_s'] * 1e3:8.2f} ms"
            f"  (bs {bs['makespan_s'] * 1e3:8.2f} ms)"
            f"  advantage {row['first_pixel_advantage']:6.2f}x"
            f"  frame {tile['makespan_s'] * 1e3:8.2f} ms"
        )

    modes: dict = {}
    if os.path.exists(args.out):
        with open(args.out, "r", encoding="utf-8") as fh:
            modes = json.load(fh).get("modes", {})

    problems = check(results, modes, mode)
    for problem in problems:
        print(f"REGRESSION: {problem}", file=sys.stderr)

    if args.update:
        modes[mode] = results
        payload = {
            "schema": 1,
            "note": (
                "tile-routed compositing latencies from benchmarks/bench_tile.py; "
                "'latency' records latency-to-first-pixel / p50 / makespan for "
                "tile-routed:rect vs binary-swap:raw and radix-k:rect-rle on "
                "synthetic sparse workloads (sim backend, event engine, flat "
                "and fat-tree topologies), with the tile-routed final image "
                "asserted bit-identical to binary-swap:raw before timing counts"
            ),
            "modes": modes,
        }
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"[baseline written to {args.out}]")

    if problems and args.check:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
