"""Pluggable event-ordering policies for the discrete-event simulator.

The simulator's default order — pop the min-heap entry ``(clock, rank,
seq)``, draw an ANY_TAG wildcard from the oldest-posted channel, fire a
probabilistic fault rule per its seeded RNG — is *one* legal execution
of a distributed program, not the only one.  A :class:`SchedulePolicy`
makes the residual freedom explicit and pluggable, so the schedule
explorer (:mod:`repro.cluster.explore`) can search delivery orders
instead of trusting a single interleaving per seed.

The policy is consulted at exactly three decision kinds — the three
places the engine has genuine freedom:

``tie``
    Several ranks are READY at the same virtual clock.  Candidates are
    canonically sorted by ``(rank, seq)``; index 0 is the default heap
    order.
``wildcard``
    An ``ANY_TAG`` irecv could match the head of more than one pending
    ``(src, dst, tag)`` isend channel.  Candidates are the channel
    heads, canonically sorted by ``(post_time, tag)``; index 0 is the
    default oldest-post choice.  Only *which channel* is free — the
    head of each per-``(src, dst, tag)`` deque is always taken, so
    FIFO per channel can never be violated (MPI non-overtaking).
``fault``
    A fault rule with ``0 < probability < 1`` is deciding whether to
    fire.  The default seeded-RNG draw is computed first (so RNG state
    is identical whatever the policy answers), then the policy may
    override the boolean.

Everything else is pinned: exact-tag irecvs always take precedence over
wildcards, per-channel queues stay FIFO, rendezvous match timings are
pure functions of the two posts, and probability-1.0 / exhausted rules
are not freedom at all.

Every consulted decision is appended to :attr:`SchedulePolicy.decisions`
— a compact trace (schema ``repro.sched-trace/1``) that
:class:`ReplayPolicy` feeds back to reproduce the exact interleaving
bit-for-bit, with digest checks that catch divergence.  The log lives on
the *policy* object, not the simulator, so one policy instance
accumulates decisions across a whole :class:`~repro.pipeline.system.
SortLastSystem` run including recovery re-runs (degraded / resumed
replays construct fresh simulators but share the policy).
"""

from __future__ import annotations

import hashlib
import json
import random
from typing import Any, Optional

from ..errors import ConfigurationError

__all__ = [
    "SCHED_TRACE_SCHEMA",
    "SchedulePolicy",
    "DeterministicPolicy",
    "RandomPolicy",
    "AdversarialPolicy",
    "ForcedPrefixPolicy",
    "ReplayPolicy",
    "ADVERSARIAL_MODES",
    "POLICIES",
    "make_policy",
    "load_trace",
]

#: Schema identifier of the recorded decision trace.
SCHED_TRACE_SCHEMA = "repro.sched-trace/1"

#: Adversarial orderings (see :class:`AdversarialPolicy`).
ADVERSARIAL_MODES = ("starve-low", "starve-high", "delay-longest", "lifo")

#: Policy family names accepted by :func:`make_policy` / ``--policy``.
POLICIES = ("deterministic", "random", "adversarial", "dfs")


def state_digest(parts: Any) -> str:
    """Short stable digest of engine state at a decision point.

    Used both for replay divergence checks and for the DFS driver's
    visited-state deduplication.  ``parts`` must be a repr-stable
    structure (tuples of ints/floats/strings).
    """
    return hashlib.blake2b(repr(parts).encode(), digest_size=8).hexdigest()


class SchedulePolicy:
    """Base class: answers the engine's three decision kinds.

    Subclasses set the ``explores_*`` gates and override
    :meth:`choose_index` (and optionally :meth:`fault_override`).  A
    policy whose gates are all ``False`` is never consulted and the
    engine runs its default order with zero overhead.
    """

    #: Short name recorded in traces, errors, and the run-timeline meta.
    name = "base"
    #: Consult the policy on same-clock heap ties.
    explores_ties = False
    #: Consult the policy on multi-channel ANY_TAG wildcard matches.
    explores_wildcards = False
    #: Consult the policy on probabilistic fault-rule firing points.
    explores_faults = False

    def __init__(self) -> None:
        #: Recorded decisions, in consultation order.
        self.decisions: list[dict] = []
        #: Optional hard cap on simulator steps (livelock guard); the
        #: engine raises :class:`~repro.errors.LivelockError` past it.
        self.event_budget: Optional[int] = None
        #: Where a failing trace will be (or was) saved; embedded into
        #: :class:`~repro.errors.DeadlockError` for reproducibility.
        self.trace_path: Optional[str] = None

    @property
    def explores_any(self) -> bool:
        """True when the engine must consult this policy anywhere."""
        return self.explores_ties or self.explores_wildcards or self.explores_faults

    # ---- decision hooks (called by the engine) -----------------------------
    def decide(self, kind: str, candidates: list[dict], digest: str) -> int:
        """Pick one of ``candidates`` (canonical order; 0 = default).

        Validates the subclass's answer, records the decision, and
        returns the chosen index.
        """
        n = len(candidates)
        choice = self.choose_index(kind, candidates, digest)
        if not (0 <= choice < n):
            raise ConfigurationError(
                f"schedule policy {self.name!r} chose index {choice} "
                f"out of {n} candidates for a {kind!r} decision"
            )
        self.decisions.append(
            {"kind": kind, "n": n, "choice": choice, "state": digest}
        )
        return choice

    def fault_decision(
        self, rank: int, rule_index: int, kind: str, probability: float, default: bool
    ) -> bool:
        """Decide a probabilistic fault firing (records it either way)."""
        fires = self.fault_override(rank, rule_index, kind, probability, default)
        self.decisions.append(
            {
                "kind": "fault",
                "n": 2,
                "choice": int(bool(fires)),
                "rank": rank,
                "rule": rule_index,
                "fault": kind,
            }
        )
        return bool(fires)

    # ---- subclass surface --------------------------------------------------
    def choose_index(self, kind: str, candidates: list[dict], digest: str) -> int:
        return 0

    def fault_override(
        self, rank: int, rule_index: int, kind: str, probability: float, default: bool
    ) -> bool:
        return default

    # ---- trace serialization -----------------------------------------------
    def reset(self) -> None:
        """Clear the decision log (reuse across independent runs)."""
        self.decisions.clear()

    def compact(self) -> str:
        """One-line rendering of the decision list, e.g. ``tie:2,fault:1``."""
        return ",".join(
            f"{d['kind'][:4]}:{d['choice']}" for d in self.decisions
        )

    def trace_dict(self, meta: Optional[dict] = None) -> dict:
        return {
            "schema": SCHED_TRACE_SCHEMA,
            "policy": self.name,
            "decisions": [dict(d) for d in self.decisions],
            "meta": dict(meta or {}),
        }

    def save_trace(self, path: str, meta: Optional[dict] = None) -> str:
        """Write the ``repro.sched-trace/1`` JSON; returns ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.trace_dict(meta), fh, indent=2)
            fh.write("\n")
        self.trace_path = path
        return path

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r}, decisions={len(self.decisions)})"


class DeterministicPolicy(SchedulePolicy):
    """Today's order — the oracle.  Never consulted, identical to no policy."""

    name = "deterministic"


class RandomPolicy(SchedulePolicy):
    """Seeded uniform random walk over every decision point."""

    name = "random"
    explores_ties = True
    explores_wildcards = True
    explores_faults = True

    def __init__(self, seed: int = 0):
        super().__init__()
        self.seed = int(seed)
        self.name = f"random:{self.seed}"
        self._rng = random.Random(seed)

    def choose_index(self, kind: str, candidates: list[dict], digest: str) -> int:
        return self._rng.randrange(len(candidates))

    def fault_override(
        self, rank: int, rule_index: int, kind: str, probability: float, default: bool
    ) -> bool:
        # Independent draw from the policy's own stream (the rule's RNG
        # already consumed its default draw, so plan RNG state is intact).
        return self._rng.random() < probability


class AdversarialPolicy(SchedulePolicy):
    """Worst-case-shaped orders designed to break ordering assumptions.

    Modes (canonical candidate order is the default, index 0):

    ``starve-low``
        Always run the highest-ranked candidate first (lowest rank is
        scheduled last) and draw wildcards from the *newest* channel;
        forces probabilistic faults to fire.
    ``starve-high``
        Mirror image: lowest rank first, oldest channel but highest tag;
        suppresses probabilistic faults.
    ``delay-longest``
        Starve whichever candidate has been runnable the longest (max
        seq = most recently scheduled runs first; newest-posted wildcard
        channel); forces faults.
    ``lifo``
        Stack order: last scheduled runs first, last posted channel
        matches first; default fault draws.
    """

    name = "adversarial"
    explores_ties = True
    explores_wildcards = True
    explores_faults = True

    def __init__(self, mode: str = "starve-low"):
        super().__init__()
        if mode not in ADVERSARIAL_MODES:
            raise ConfigurationError(
                f"unknown adversarial mode {mode!r}; choose from {ADVERSARIAL_MODES}"
            )
        self.mode = mode
        self.name = f"adversarial:{mode}"

    def choose_index(self, kind: str, candidates: list[dict], digest: str) -> int:
        n = len(candidates)
        if kind == "tie":
            if self.mode == "starve-low":
                return max(range(n), key=lambda i: candidates[i]["rank"])
            if self.mode == "starve-high":
                return min(range(n), key=lambda i: candidates[i]["rank"])
            # delay-longest / lifo: most recently scheduled first.
            return max(range(n), key=lambda i: candidates[i]["seq"])
        # wildcard: candidates carry (post_time, tag) channel heads.
        if self.mode == "starve-high":
            return max(range(n), key=lambda i: candidates[i]["tag"])
        # newest-posted channel first (ties by tag, descending).
        return max(
            range(n),
            key=lambda i: (candidates[i]["post_time"], candidates[i]["tag"]),
        )

    def fault_override(
        self, rank: int, rule_index: int, kind: str, probability: float, default: bool
    ) -> bool:
        if self.mode == "starve-high":
            return False
        if self.mode == "lifo":
            return default
        return True


class ForcedPrefixPolicy(SchedulePolicy):
    """DFS worker: replay a forced choice prefix, then take the default.

    The systematic (``dfs``) driver in :mod:`repro.cluster.explore`
    re-runs the scenario with progressively longer forced prefixes; the
    decisions it records past the prefix enumerate the unexplored
    siblings of each visited decision node.
    """

    name = "dfs"
    explores_ties = True
    explores_wildcards = True
    explores_faults = True

    def __init__(self, prefix: "list[int] | tuple[int, ...]" = ()):
        super().__init__()
        self.prefix = tuple(int(c) for c in prefix)
        self.name = f"dfs:{len(self.prefix)}"

    def choose_index(self, kind: str, candidates: list[dict], digest: str) -> int:
        depth = len(self.decisions)
        if depth < len(self.prefix):
            forced = self.prefix[depth]
            if forced >= len(candidates):
                # The forced branch no longer exists at this state —
                # fall back to the default rather than crashing (the
                # driver's digest dedup makes this rare).
                return 0
            return forced
        return 0

    def fault_override(
        self, rank: int, rule_index: int, kind: str, probability: float, default: bool
    ) -> bool:
        depth = len(self.decisions)
        if depth < len(self.prefix):
            return bool(self.prefix[depth])
        return default


class ReplayPolicy(SchedulePolicy):
    """Feed a recorded ``repro.sched-trace/1`` back through the engine.

    Every decision point consumes the next recorded decision; kind and
    candidate-count mismatches (and, for tie/wildcard points, state
    digests) raise :class:`~repro.errors.ConfigurationError` naming the
    divergence depth instead of silently exploring a different order.
    A trace shorter than the run falls back to the default order — that
    happens only when the recorded run terminated (error or completion)
    before the current one, and the replayed prefix is exact.
    """

    name = "replay"
    explores_ties = True
    explores_wildcards = True
    explores_faults = True

    def __init__(self, trace: dict, *, strict: bool = True):
        super().__init__()
        schema = trace.get("schema")
        if schema != SCHED_TRACE_SCHEMA:
            raise ConfigurationError(
                f"unsupported schedule-trace schema {schema!r} "
                f"(expected {SCHED_TRACE_SCHEMA!r})"
            )
        self.recorded = [dict(d) for d in trace.get("decisions", [])]
        self.source_policy = str(trace.get("policy", "?"))
        self.meta = dict(trace.get("meta", {}))
        self.strict = bool(strict)
        self.name = f"replay:{self.source_policy}"

    def _next(self, kind: str, depth: int) -> Optional[dict]:
        if depth >= len(self.recorded):
            return None
        rec = self.recorded[depth]
        if rec.get("kind") != kind:
            raise ConfigurationError(
                f"schedule-trace replay diverged at decision {depth}: "
                f"engine asked for a {kind!r} decision but the trace "
                f"recorded {rec.get('kind')!r}"
            )
        return rec

    def choose_index(self, kind: str, candidates: list[dict], digest: str) -> int:
        depth = len(self.decisions)
        rec = self._next(kind, depth)
        if rec is None:
            return 0
        if rec.get("n") != len(candidates):
            raise ConfigurationError(
                f"schedule-trace replay diverged at decision {depth}: "
                f"{rec.get('n')} candidates recorded, {len(candidates)} live"
            )
        if self.strict and rec.get("state") and rec["state"] != digest:
            raise ConfigurationError(
                f"schedule-trace replay diverged at decision {depth}: "
                f"state digest {digest} != recorded {rec['state']}"
            )
        return int(rec["choice"])

    def fault_override(
        self, rank: int, rule_index: int, kind: str, probability: float, default: bool
    ) -> bool:
        rec = self._next("fault", len(self.decisions))
        if rec is None:
            return default
        return bool(rec["choice"])


def load_trace(path: str) -> dict:
    """Read a ``repro.sched-trace/1`` JSON document (validates schema)."""
    with open(path, "r", encoding="utf-8") as fh:
        trace = json.load(fh)
    schema = trace.get("schema")
    if schema != SCHED_TRACE_SCHEMA:
        raise ConfigurationError(
            f"unsupported schedule-trace schema {schema!r} "
            f"(expected {SCHED_TRACE_SCHEMA!r})"
        )
    return trace


def make_policy(spec: str, *, seed: int = 0) -> SchedulePolicy:
    """Build a policy from a CLI-style spec string.

    ``"deterministic"`` | ``"random"`` | ``"random:SEED"`` |
    ``"adversarial"`` | ``"adversarial:MODE"`` | ``"dfs"``.
    """
    head, _, arg = str(spec).partition(":")
    if head == "deterministic":
        return DeterministicPolicy()
    if head == "random":
        return RandomPolicy(int(arg) if arg else seed)
    if head == "adversarial":
        return AdversarialPolicy(arg or "starve-low")
    if head == "dfs":
        return ForcedPrefixPolicy()
    raise ConfigurationError(
        f"unknown schedule policy {spec!r}; choose from {POLICIES} "
        f"(adversarial modes: {ADVERSARIAL_MODES})"
    )
