"""Tests for RunConfig and the end-to-end SortLastSystem."""

import pytest

from repro.cluster.model import IDEALIZED, SP2
from repro.errors import ConfigurationError
from repro.pipeline.config import RunConfig
from repro.pipeline.system import SortLastSystem

SMALL = dict(volume_shape=(32, 32, 16), image_size=48, num_ranks=4)


class TestRunConfig:
    def test_defaults_valid(self):
        cfg = RunConfig()
        assert cfg.method == "bsbrc"
        assert cfg.machine is SP2

    def test_unknown_dataset(self):
        with pytest.raises(ConfigurationError):
            RunConfig(dataset="nope")

    def test_non_power_of_two_ranks_allowed(self):
        # Folding extension: any count >= 1 is valid configuration.
        assert RunConfig(num_ranks=6).num_ranks == 6

    def test_zero_ranks_rejected(self):
        with pytest.raises(ConfigurationError):
            RunConfig(num_ranks=0)

    def test_unknown_method(self):
        with pytest.raises(ConfigurationError):
            RunConfig(method="magic")

    def test_machine_preset_by_name(self):
        cfg = RunConfig(machine="idealized")
        assert cfg.machine is IDEALIZED

    def test_unknown_machine_preset(self):
        with pytest.raises(ConfigurationError):
            RunConfig(machine="cray")

    def test_bad_image_size(self):
        with pytest.raises(ConfigurationError):
            RunConfig(image_size=1)

    def test_bad_step(self):
        with pytest.raises(ConfigurationError):
            RunConfig(step=0)

    def test_with_derives(self):
        cfg = RunConfig(num_ranks=4)
        other = cfg.with_(num_ranks=8, method="bs")
        assert other.num_ranks == 8 and other.method == "bs"
        assert cfg.num_ranks == 4

    def test_label_mentions_everything(self):
        label = RunConfig(dataset="cube", num_ranks=16, method="bslc").label()
        assert "cube" in label and "P16" in label and "bslc" in label

    def test_num_pixels(self):
        assert RunConfig(image_size=100).num_pixels == 10000


class TestSortLastSystem:
    @pytest.mark.parametrize("method", ["bs", "bsbr", "bslc", "bsbrc"])
    def test_end_to_end_matches_reference(self, method):
        cfg = RunConfig(dataset="engine_low", method=method, **SMALL)
        result = SortLastSystem(cfg).run()
        assert result.final_image.max_abs_diff(result.reference_image()) < 1e-9

    def test_gather_path_equals_local_assembly(self):
        cfg = RunConfig(dataset="head", method="bsbrc", **SMALL)
        gathered = SortLastSystem(cfg).run(gather_final=True)
        local = SortLastSystem(cfg).run(gather_final=False)
        assert gathered.final_image.max_abs_diff(local.final_image) == 0.0

    def test_gather_path_for_index_ownership(self):
        cfg = RunConfig(dataset="head", method="bslc", **SMALL)
        gathered = SortLastSystem(cfg).run(gather_final=True)
        local = SortLastSystem(cfg).run(gather_final=False)
        assert gathered.final_image.max_abs_diff(local.final_image) == 0.0

    def test_result_carries_stats(self):
        cfg = RunConfig(dataset="engine_low", method="bsbrc", **SMALL)
        result = SortLastSystem(cfg).run()
        stats = result.compositing.stats
        assert stats.t_total > 0
        assert stats.mmax_bytes > 0
        assert result.compositing.method == "bsbrc"
        assert len(result.subimages) == cfg.num_ranks

    def test_method_options_forwarded(self):
        cfg = RunConfig(
            dataset="engine_low", method="bslc", method_options={"section": 16}, **SMALL
        )
        result = SortLastSystem(cfg).run()
        assert result.final_image.max_abs_diff(result.reference_image()) < 1e-9

    def test_viewpoint_changes_result(self):
        base = RunConfig(dataset="engine_low", method="bsbrc", **SMALL)
        img_a = SortLastSystem(base).run().final_image
        img_b = SortLastSystem(base.with_(rot_y=80.0)).run().final_image
        assert img_a.max_abs_diff(img_b) > 1e-6

    def test_machine_model_affects_time_not_pixels(self):
        base = RunConfig(dataset="engine_low", method="bsbrc", **SMALL)
        slow = base.with_(machine="sp2-slow-net")
        res_a = SortLastSystem(base).run()
        res_b = SortLastSystem(slow).run()
        assert res_a.final_image.max_abs_diff(res_b.final_image) == 0.0
        assert res_b.compositing.stats.t_comm > res_a.compositing.stats.t_comm

    def test_single_rank_degenerates_gracefully(self):
        cfg = RunConfig(
            dataset="sphere", method="bs", volume_shape=(16, 16, 16),
            image_size=32, num_ranks=1,
        )
        result = SortLastSystem(cfg).run()
        assert result.final_image.max_abs_diff(result.reference_image()) < 1e-12
        assert result.compositing.stats.t_comm == 0.0
