"""Tests for the interleaved-section distribution (BSLC load balancing)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compositing.interleave import initial_indices, split_interleaved
from repro.errors import CompositingError


class TestBasics:
    def test_initial_indices(self):
        idx = initial_indices(5)
        assert idx.tolist() == [0, 1, 2, 3, 4]
        assert idx.dtype == np.int64

    def test_initial_negative_rejected(self):
        with pytest.raises(CompositingError):
            initial_indices(-1)

    def test_section_one_alternates(self):
        idx = initial_indices(6)
        kept, sent = split_interleaved(idx, 1, keep_first=True)
        assert kept.tolist() == [0, 2, 4]
        assert sent.tolist() == [1, 3, 5]

    def test_section_two_groups(self):
        idx = initial_indices(8)
        kept, sent = split_interleaved(idx, 2, keep_first=True)
        assert kept.tolist() == [0, 1, 4, 5]
        assert sent.tolist() == [2, 3, 6, 7]

    def test_keep_first_false_swaps(self):
        idx = initial_indices(6)
        kept_a, sent_a = split_interleaved(idx, 1, keep_first=True)
        kept_b, sent_b = split_interleaved(idx, 1, keep_first=False)
        assert np.array_equal(kept_a, sent_b)
        assert np.array_equal(sent_a, kept_b)

    def test_bad_section(self):
        with pytest.raises(CompositingError):
            split_interleaved(initial_indices(4), 0, True)

    def test_2d_indices_rejected(self):
        with pytest.raises(CompositingError):
            split_interleaved(np.zeros((2, 2), dtype=np.int64), 1, True)

    def test_positions_not_values_drive_split(self):
        """Splitting is positional: a strided owned set still halves evenly."""
        idx = np.arange(0, 32, 2, dtype=np.int64)  # 16 owned pixels
        kept, sent = split_interleaved(idx, 4, keep_first=True)
        assert kept.size == 8 and sent.size == 8


class TestPartitionProperties:
    @given(n=st.integers(0, 500), section=st.integers(1, 64))
    @settings(max_examples=150)
    def test_exhaustive_disjoint(self, n, section):
        idx = initial_indices(n)
        kept, sent = split_interleaved(idx, section, keep_first=True)
        merged = np.sort(np.concatenate([kept, sent]))
        assert np.array_equal(merged, idx)
        assert len(np.intersect1d(kept, sent)) == 0

    @given(n=st.integers(2, 512), section=st.integers(1, 32))
    @settings(max_examples=150)
    def test_balanced_within_one_section(self, n, section):
        idx = initial_indices(n)
        kept, sent = split_interleaved(idx, section, keep_first=True)
        assert abs(kept.size - sent.size) <= section

    @given(levels=st.integers(1, 4), section=st.integers(1, 8))
    @settings(max_examples=60)
    def test_binary_swap_ownership_partitions(self, levels, section):
        """Simulating every rank's keep decisions yields a partition of the
        pixel set — the global invariant BSLC relies on."""
        num_ranks = 1 << levels
        num_pixels = 257  # deliberately not divisible by anything nice
        owned = []
        for rank in range(num_ranks):
            idx = initial_indices(num_pixels)
            for stage in range(levels):
                keep_first = ((rank >> stage) & 1) == 0
                idx, _ = split_interleaved(idx, section, keep_first)
            owned.append(idx)
        combined = np.sort(np.concatenate(owned))
        assert np.array_equal(combined, np.arange(num_pixels))

    @given(levels=st.integers(1, 4))
    @settings(max_examples=30)
    def test_partners_split_identical_sets(self, levels):
        """Partners at stage k own identical sets at stage entry (they share
        rank bits below k), so their splits are mutually consistent."""
        num_ranks = 1 << levels
        num_pixels = 128

        def owned_at_stage(rank, stage):
            idx = initial_indices(num_pixels)
            for s in range(stage):
                keep_first = ((rank >> s) & 1) == 0
                idx, _ = split_interleaved(idx, 4, keep_first)
            return idx

        for stage in range(levels):
            for rank in range(num_ranks):
                partner = rank ^ (1 << stage)
                assert np.array_equal(
                    owned_at_stage(rank, stage), owned_at_stage(partner, stage)
                )
