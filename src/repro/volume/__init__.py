"""Volume-data substrate: grids, phantoms, transfer functions, partitioning."""

from .datasets import (
    DATASETS,
    PAPER_DATASETS,
    DatasetSpec,
    make_cube,
    make_dataset,
    make_engine,
    make_head,
    make_sphere,
)
from .folded import FoldedPartition, core_count, folded_depth_order, partition_folded
from .grid import VolumeGrid
from .io import load_volume, read_pgm, save_volume, to_gray8, write_pgm
from .partition import PartitionPlan, depth_order, recursive_bisect, render_load_weights
from .transfer import TransferFunction

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "FoldedPartition",
    "PAPER_DATASETS",
    "PartitionPlan",
    "TransferFunction",
    "VolumeGrid",
    "core_count",
    "depth_order",
    "folded_depth_order",
    "load_volume",
    "make_cube",
    "make_dataset",
    "make_engine",
    "make_head",
    "make_sphere",
    "partition_folded",
    "read_pgm",
    "recursive_bisect",
    "render_load_weights",
    "save_volume",
    "to_gray8",
    "write_pgm",
]
