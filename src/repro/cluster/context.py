"""Simulator implementation of the rank-context protocol.

A rank program is an ``async def`` function taking a
:class:`~repro.cluster.protocol.BaseRankContext`.  This module provides
the discrete-event-simulator implementation: every verb awaits a
:mod:`repro.cluster.events` op that the
:class:`~repro.cluster.simulator.Simulator` prices in virtual time via
the machine model, and the charging helpers translate *operation
counts* into seconds so algorithm code never hard-codes cost constants.

Example
-------
>>> async def program(ctx):
...     peer = ctx.rank ^ 1
...     data = await ctx.sendrecv(peer, b"x" * ctx.rank, tag=0)
...     await ctx.charge_over(100)
...     return len(data)
"""

from __future__ import annotations

from typing import Any, Optional

from ..errors import ConfigurationError
from .events import (
    ANY_TAG,
    BarrierOp,
    ComputeOp,
    IrecvOp,
    IsendOp,
    RecvOp,
    SendOp,
    SendRecvOp,
    WaitOp,
)
from .model import MachineModel
from .protocol import BaseRankContext, payload_nbytes
from .stats import RankStats

__all__ = ["RankContext", "payload_nbytes"]


class RankContext(BaseRankContext):
    """The view a single simulated rank has of the machine."""

    backend_name = "simulator"

    def __init__(self, simulator, proc):
        self._simulator = simulator
        self._proc = proc

    # ---- identity ----------------------------------------------------------
    @property
    def rank(self) -> int:
        return self._proc.rank

    @property
    def size(self) -> int:
        return self._simulator.num_ranks

    @property
    def model(self) -> MachineModel:
        return self._simulator.model

    @property
    def stats(self) -> RankStats:
        return self._proc.stats

    # ---- staging ------------------------------------------------------------
    def begin_stage(self, stage: int) -> None:
        """Route subsequent accounting into stage bucket ``stage``."""
        self._proc.current_stage = int(stage)

    @property
    def current_stage(self) -> int:
        return self._proc.current_stage

    # ---- computation ---------------------------------------------------------
    async def compute(self, seconds: float, *, kind: str = "compute", count: int = 0) -> None:
        """Advance this rank's clock by ``seconds`` of local computation."""
        await ComputeOp(seconds, kind=kind, count=count)

    def _op_seconds(self, kind: str, count: int) -> float:
        """Machine-model pricing of ``count`` operations of ``kind``."""
        model = self.model
        pricer = {
            "over": model.over_time,
            "encode": model.encode_time,
            "bound": model.bound_time,
            "pack": model.pack_time,
        }[kind]
        return pricer(count)

    # ---- point to point --------------------------------------------------------
    async def send(self, dst: int, payload: Any, *, nbytes: Optional[int] = None, tag: int = 0):
        """Blocking send (rendezvous semantics, like ``MPI_Ssend``)."""
        self._check_peer(dst)
        size = payload_nbytes(payload) if nbytes is None else int(nbytes)
        await SendOp(dst, payload, size, tag=tag)

    async def recv(self, src: int, *, tag: int = ANY_TAG) -> Any:
        """Blocking receive from ``src``; returns the payload."""
        self._check_peer(src)
        return await RecvOp(src, tag=tag)

    async def sendrecv(
        self, peer: int, payload: Any, *, nbytes: Optional[int] = None, tag: int = 0
    ) -> Any:
        """Full-duplex pairwise exchange; returns the peer's payload.

        This is the binary-swap primitive: deadlock-free by construction,
        each side pays ``Ts + incoming_bytes·Tc``.
        """
        self._check_peer(peer)
        if peer == self.rank:
            raise ConfigurationError(f"rank {self.rank} cannot sendrecv with itself")
        size = payload_nbytes(payload) if nbytes is None else int(nbytes)
        return await SendRecvOp(peer, payload, size, tag=tag)

    # ---- nonblocking ---------------------------------------------------------------
    async def isend(
        self, dst: int, payload: Any, *, nbytes: Optional[int] = None, tag: int = 0
    ):
        """Nonblocking send; returns a :class:`~repro.cluster.events.Request`.

        The transfer runs in the background (serialized on the receiver's
        link); complete it with :meth:`wait`/:meth:`wait_all`.
        """
        self._check_peer(dst)
        size = payload_nbytes(payload) if nbytes is None else int(nbytes)
        return await IsendOp(dst, payload, size, tag=tag)

    async def irecv(self, src: int, *, tag: int = 0):
        """Nonblocking receive; returns a Request whose payload is
        available after :meth:`wait`."""
        self._check_peer(src)
        return await IrecvOp(src, tag=tag)

    async def wait(self, request) -> Any:
        """Block until ``request`` completes; returns its payload (irecv)
        or ``None`` (isend)."""
        results = await WaitOp([request])
        return results[0]

    async def wait_all(self, requests) -> list:
        """Block until every request completes; returns payloads in order."""
        return await WaitOp(list(requests))

    # ---- collective ----------------------------------------------------------------
    async def barrier(self) -> None:
        """Block until every rank reaches the barrier."""
        await BarrierOp()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RankContext(rank={self.rank}, size={self.size}, model={self.model.name})"
