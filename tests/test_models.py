"""Cross-check the paper's analytic eqs. (1)-(8) against the simulator.

The simulator charges the very same constants the equations use, so with
the observed per-stage sparsity quantities plugged in, the predicted
``T_comp``/``T_comm`` must match the simulated critical-rank times
exactly (up to float rounding).
"""

import pytest

from conftest import rendered_workload
from repro.analysis.models import (
    StageObservation,
    predict_bs,
    predict_bsbr,
    predict_bsbrc,
    predict_bslc,
)
from repro.cluster.model import SP2
from repro.cluster.topology import log2_int
from repro.pipeline.system import run_compositing

NUM_RANKS = 8
IMAGE_PIXELS = 48 * 48


def observations_for(rank_stats, stages):
    out = []
    for k in range(stages):
        bucket = rank_stats.stages.get(k)
        counters = bucket.counters if bucket else {}
        out.append(
            StageObservation(
                a_rec=counters.get("a_rec", 0),
                a_opaque=counters.get("a_opaque", 0),
                r_code=counters.get("r_code", 0),
                a_send=counters.get("a_send", 0),
            )
        )
    return out


@pytest.fixture(scope="module")
def workload():
    return rendered_workload("engine_low", NUM_RANKS)


def run_without_pack(subimages, method, plan, camera):
    """charge_pack=False isolates the equations' exact terms."""
    return run_compositing(
        list(subimages), method, plan, camera.view_dir, SP2, charge_pack=False
    )


class TestPredictBS:
    def test_comp_and_comm_exact(self, workload):
        subimages, plan, camera = workload
        run = run_without_pack(subimages, "bs", plan, camera)
        predicted = predict_bs(SP2, IMAGE_PIXELS, NUM_RANKS)
        stats = run.stats
        assert stats.t_comp == pytest.approx(predicted.t_comp, rel=1e-12)
        assert stats.t_comm == pytest.approx(predicted.t_comm, rel=1e-12)

    def test_scaling_in_p(self):
        small = predict_bs(SP2, IMAGE_PIXELS, 2)
        large = predict_bs(SP2, IMAGE_PIXELS, 64)
        # T_comp grows toward the To*A asymptote.
        assert small.t_comp < large.t_comp < SP2.over_time(IMAGE_PIXELS)

    def test_total_property(self):
        p = predict_bs(SP2, 1024, 4)
        assert p.t_total == pytest.approx(p.t_comp + p.t_comm)


class TestPredictBSBR:
    def test_matches_simulated_critical_rank(self, workload):
        subimages, plan, camera = workload
        run = run_without_pack(subimages, "bsbr", plan, camera)
        stats = run.stats
        rank_stats = stats.rank_stats[stats.critical_rank]
        obs = observations_for(rank_stats, log2_int(NUM_RANKS))
        predicted = predict_bsbr(SP2, IMAGE_PIXELS, obs)
        assert stats.t_comp == pytest.approx(predicted.t_comp, rel=1e-12)
        assert stats.t_comm == pytest.approx(predicted.t_comm, rel=1e-12)

    def test_matches_every_rank(self, workload):
        subimages, plan, camera = workload
        run = run_without_pack(subimages, "bsbr", plan, camera)
        for rank_stats in run.stats.rank_stats:
            obs = observations_for(rank_stats, log2_int(NUM_RANKS))
            predicted = predict_bsbr(SP2, IMAGE_PIXELS, obs)
            assert rank_stats.comp_time == pytest.approx(predicted.t_comp, rel=1e-12)
            assert rank_stats.comm_time == pytest.approx(predicted.t_comm, rel=1e-12)

    def test_empty_rects_zero_pixel_terms(self):
        obs = [StageObservation(a_rec=0)] * 3
        predicted = predict_bsbr(SP2, 1000, obs)
        assert predicted.t_comp == pytest.approx(SP2.bound_time(1000))
        assert predicted.t_comm == pytest.approx(3 * (SP2.ts + 8 * SP2.tc))


class TestPredictBSLC:
    def test_matches_simulated(self, workload):
        """BSLC halves are interleaved so per-stage sent counts can be off
        by a section; feed the *observed* encode counts into the formula
        instead of A/2^k and the match is exact."""
        subimages, plan, camera = workload
        run = run_without_pack(subimages, "bslc", plan, camera)
        for rank_stats in run.stats.rank_stats:
            obs = observations_for(rank_stats, log2_int(NUM_RANKS))
            predicted = predict_bslc(SP2, IMAGE_PIXELS, obs)
            # Encode term of the formula uses the ideal A/2^k; observed
            # counts deviate by at most one section per stage.
            encode_slack = SP2.encode_time(128) * log2_int(NUM_RANKS)
            assert abs(rank_stats.comp_time - predicted.t_comp) <= encode_slack + 1e-12
            assert rank_stats.comm_time == pytest.approx(predicted.t_comm, rel=1e-12)


class TestPredictBSBRC:
    def test_matches_simulated(self, workload):
        subimages, plan, camera = workload
        run = run_without_pack(subimages, "bsbrc", plan, camera)
        for rank_stats in run.stats.rank_stats:
            obs = observations_for(rank_stats, log2_int(NUM_RANKS))
            predicted = predict_bsbrc(SP2, IMAGE_PIXELS, obs)
            assert rank_stats.comp_time == pytest.approx(predicted.t_comp, rel=1e-12)
            assert rank_stats.comm_time == pytest.approx(predicted.t_comm, rel=1e-12)

    def test_paper_shape_bslc_comp_dominates(self, workload):
        """The paper's asymptotic claim: BSLC's encode-everything term
        makes its predicted T_comp the largest of the three methods."""
        subimages, plan, camera = workload
        preds = {}
        for method, predict in (
            ("bsbr", predict_bsbr),
            ("bslc", predict_bslc),
            ("bsbrc", predict_bsbrc),
        ):
            run = run_without_pack(subimages, method, plan, camera)
            stats = run.stats
            rank_stats = stats.rank_stats[stats.critical_rank]
            obs = observations_for(rank_stats, log2_int(NUM_RANKS))
            preds[method] = predict(SP2, IMAGE_PIXELS, obs)
        assert preds["bslc"].t_comp > preds["bsbr"].t_comp
        assert preds["bslc"].t_comp > preds["bsbrc"].t_comp
        # ... while its communication is the smallest (eq. 9's corollary).
        assert preds["bslc"].t_comm <= preds["bsbr"].t_comm
        assert preds["bslc"].t_comm <= preds["bsbrc"].t_comm
