"""Regular-grid scalar volume container.

The paper's test samples are 8-bit CT volumes around ``256 x 256 x 110``.
:class:`VolumeGrid` stores a normalized ``float32`` scalar field indexed
``data[x, y, z]`` with unit voxel spacing; continuous sampling treats the
value as living at the voxel *center*, i.e. the field value at world
point ``p`` is the trilinear interpolation of ``data`` at index
coordinates ``p - 0.5``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..types import Extent3

__all__ = ["VolumeGrid"]


@dataclass(frozen=True)
class VolumeGrid:
    """A 3-D scalar field on a unit-spaced regular grid.

    Attributes
    ----------
    data:
        ``float32`` array of shape ``(nx, ny, nz)`` with values in
        ``[0, 1]``.
    name:
        Human-readable dataset name (used in reports).
    """

    data: np.ndarray
    name: str = "volume"

    def __post_init__(self) -> None:
        arr = np.asarray(self.data)
        if arr.ndim != 3:
            raise ConfigurationError(f"volume data must be 3-D, got shape {arr.shape}")
        if arr.size == 0:
            raise ConfigurationError("volume data must be non-empty")
        if not np.issubdtype(arr.dtype, np.floating):
            raise ConfigurationError(f"volume data must be floating point, got {arr.dtype}")
        lo = float(arr.min())
        hi = float(arr.max())
        if not np.isfinite(lo) or not np.isfinite(hi):
            raise ConfigurationError("volume data contains non-finite values")
        if lo < -1e-6 or hi > 1.0 + 1e-6:
            raise ConfigurationError(
                f"volume data must lie in [0, 1], got range [{lo:.4g}, {hi:.4g}]"
            )
        if arr.dtype != np.float32:
            object.__setattr__(self, "data", arr.astype(np.float32))

    # ---- geometry -----------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int, int]:
        return tuple(self.data.shape)  # type: ignore[return-value]

    @property
    def num_voxels(self) -> int:
        return int(self.data.size)

    @property
    def center(self) -> np.ndarray:
        """World-space center of the volume's bounding box."""
        return np.asarray(self.shape, dtype=np.float64) / 2.0

    @property
    def diagonal(self) -> float:
        """Length of the bounding-box diagonal (sets the ray t-range)."""
        return float(np.linalg.norm(self.shape))

    def full_extent(self) -> Extent3:
        return Extent3.full(self.shape)

    # ---- acceleration structures ---------------------------------------------
    def occupancy_max(self, block: int = 8) -> np.ndarray:
        """Dilated block-maximum grid for empty-space skipping.

        ``occ[bx, by, bz]`` is an upper bound on every voxel a trilinear
        sample landing in block ``(bx, by, bz)`` can touch (the block
        plus one block of dilation in every direction).  A sample whose
        block bound is below the transfer function's zero-opacity
        threshold contributes exactly nothing, so the renderer skips
        interpolating it.  Cached per instance and block size — the
        harness renders 64 subvolumes of the same grid.
        """
        if block < 1:
            raise ConfigurationError(f"block must be >= 1, got {block}")
        cache: dict[int, np.ndarray] = self.__dict__.setdefault("_occupancy_cache", {})
        occ = cache.get(block)
        if occ is None:
            occ = _dilated_block_max(self.data, block)
            cache[block] = occ
        return occ

    # ---- construction helpers -------------------------------------------------
    @staticmethod
    def from_field(values: np.ndarray, name: str = "volume") -> "VolumeGrid":
        """Clamp-and-normalize arbitrary float data into a grid."""
        arr = np.asarray(values, dtype=np.float32)
        return VolumeGrid(data=np.clip(arr, 0.0, 1.0), name=name)

    def describe(self) -> str:
        nz_frac = float((self.data > 0).mean())
        return (
            f"VolumeGrid(name={self.name!r}, shape={self.shape}, "
            f"nonzero={nz_frac:.1%}, mean={float(self.data.mean()):.4f})"
        )


def _dilated_block_max(data: np.ndarray, block: int) -> np.ndarray:
    """Per-block maximum of ``data``, dilated by one block per axis.

    Edge-replication padding keeps partial boundary blocks conservative,
    and the 3x3x3 maximum filter guarantees the bound also covers the
    ``+1`` neighbor voxel a trilinear stencil reads across a block edge.
    """
    from scipy import ndimage

    pads = [(0, (-n) % block) for n in data.shape]
    padded = np.pad(data, pads, mode="edge") if any(p[1] for p in pads) else data
    bx, by, bz = (n // block for n in padded.shape)
    coarse = padded.reshape(bx, block, by, block, bz, block).max(axis=(1, 3, 5))
    return ndimage.maximum_filter(coarse, size=3, mode="nearest")
