"""Tests for nonblocking communication (isend/irecv/wait) and direct-async."""

import pytest

from conftest import rendered_workload, reference_image
from repro.cluster.events import Request, WaitOp
from repro.cluster.model import IDEALIZED, MachineModel, SP2
from repro.cluster.simulator import Simulator
from repro.errors import DeadlockError, RankFailedError
from repro.pipeline.system import assemble_final, run_compositing, validate_ownership

UNIT = MachineModel(name="unit", ts=1.0, tc=0.001, to=1.0, tencode=1.0, tbound=1.0)


def run(num_ranks, program, model=IDEALIZED):
    return Simulator(num_ranks, model).run(program)


class TestBasicSemantics:
    def test_payload_delivery(self):
        async def program(ctx):
            peer = ctx.rank ^ 1
            recv = await ctx.irecv(peer, tag=3)
            send = await ctx.isend(peer, f"from-{ctx.rank}", tag=3)
            data = await ctx.wait(recv)
            await ctx.wait(send)
            return data

        result = run(2, program)
        assert result.returns == ["from-1", "from-0"]

    def test_isend_returns_request_immediately(self):
        async def program(ctx):
            if ctx.rank == 0:
                request = await ctx.isend(1, b"x", tag=0)
                assert isinstance(request, Request)
                clock_before_wait = ctx.stats.comm_time
                assert clock_before_wait == 0.0  # posting is free
                await ctx.wait(request)
            else:
                await ctx.wait(await ctx.irecv(0, tag=0))

        run(2, program, model=UNIT)

    def test_full_overlap_costs_nothing(self):
        async def program(ctx):
            peer = ctx.rank ^ 1
            recv = await ctx.irecv(peer, tag=0)
            send = await ctx.isend(peer, b"x" * 2000, tag=0)
            await ctx.compute(10.0)  # transfer (1 + 2 = 3) hides under this
            await ctx.wait(recv)
            await ctx.wait(send)

        result = run(2, program, model=UNIT)
        assert result.makespan == pytest.approx(10.0)
        for rank_stats in result.rank_stats:
            assert rank_stats.comm_time == 0.0
            assert rank_stats.wait_time == 0.0

    def test_no_overlap_charges_wait_as_comm(self):
        async def program(ctx):
            peer = ctx.rank ^ 1
            recv = await ctx.irecv(peer, tag=0)
            send = await ctx.isend(peer, b"x" * 2000, tag=0)
            await ctx.wait(recv)  # waits the full Ts + 2000*Tc = 3
            await ctx.wait(send)

        result = run(2, program, model=UNIT)
        assert result.makespan == pytest.approx(3.0)
        assert result.rank_stats[0].comm_time == pytest.approx(3.0)

    def test_byte_accounting(self):
        async def program(ctx):
            ctx.begin_stage(0)
            peer = ctx.rank ^ 1
            recv = await ctx.irecv(peer, tag=0)
            await ctx.isend(peer, b"z" * 321, tag=0)
            await ctx.wait(recv)

        result = run(2, program)
        assert result.rank_stats[0].bytes_recv == 321
        assert result.rank_stats[0].bytes_sent == 321
        assert result.rank_stats[0].msgs_recv == 1


class TestLinkSerialization:
    def test_concurrent_receives_serialize(self):
        async def program(ctx):
            if ctx.rank == 0:
                reqs = [await ctx.irecv(src, tag=src) for src in (1, 2, 3)]
                await ctx.wait_all(reqs)
                return ctx.stats.comm_time
            await ctx.wait(await ctx.isend(0, b"y" * 1000, tag=ctx.rank))

        result = run(4, program, model=UNIT)
        # Three transfers of Ts + 1000*Tc = 2.0 each on one link.
        assert result.returns[0] == pytest.approx(6.0)

    def test_distinct_receivers_parallel(self):
        async def program(ctx):
            if ctx.rank < 2:
                await ctx.wait(await ctx.irecv(ctx.rank + 2, tag=0))
            else:
                await ctx.wait(await ctx.isend(ctx.rank - 2, b"y" * 1000, tag=0))

        result = run(4, program, model=UNIT)
        # Independent links: both transfers complete in one message time.
        assert result.makespan == pytest.approx(2.0)


class TestOrderingAndErrors:
    def test_fifo_matching_per_channel(self):
        async def program(ctx):
            if ctx.rank == 0:
                first = await ctx.irecv(1, tag=5)
                second = await ctx.irecv(1, tag=5)
                a = await ctx.wait(first)
                b = await ctx.wait(second)
                return (a, b)
            r1 = await ctx.isend(0, "one", tag=5)
            r2 = await ctx.isend(0, "two", tag=5)
            await ctx.wait_all([r1, r2])

        result = run(2, program)
        assert result.returns[0] == ("one", "two")

    def test_unmatched_wait_deadlocks(self):
        async def program(ctx):
            if ctx.rank == 0:
                await ctx.wait(await ctx.irecv(1, tag=7))

        with pytest.raises(DeadlockError):
            run(2, program)

    def test_mixed_blocking_nonblocking_never_match(self):
        async def program(ctx):
            if ctx.rank == 0:
                await ctx.send(1, b"x", tag=0)  # blocking
            else:
                await ctx.wait(await ctx.irecv(0, tag=0))  # nonblocking

        with pytest.raises(DeadlockError):
            run(2, program)

    def test_wait_requires_requests(self):
        with pytest.raises(ValueError):
            WaitOp(["not-a-request"])

    def test_peer_out_of_range(self):
        async def program(ctx):
            await ctx.isend(9, b"x")

        with pytest.raises(RankFailedError):
            run(2, program)

    def test_sender_may_exit_before_receiver_waits(self):
        """Eager buffered semantics: the message outlives the sender."""

        async def program(ctx):
            if ctx.rank == 0:
                await ctx.isend(1, b"parting-gift", tag=0)
                return "gone"
            await ctx.compute(5.0)
            return await ctx.wait(await ctx.irecv(0, tag=0))

        result = run(2, program, model=UNIT)
        assert result.returns == ["gone", b"parting-gift"]


class TestDirectSendAsync:
    def test_matches_reference(self):
        subimages, plan, camera = rendered_workload("engine_low", 8)
        reference = reference_image("engine_low", 8)
        run_async = run_compositing(
            list(subimages), "direct-async", plan, camera.view_dir, SP2
        )
        final = assemble_final(run_async.outcomes, *reference.shape)
        assert final.max_abs_diff(reference) < 1e-9
        validate_ownership(run_async.outcomes, *reference.shape)

    def test_same_bytes_as_blocking_direct(self):
        subimages, plan, camera = rendered_workload("engine_high", 8)
        blocking = run_compositing(list(subimages), "direct", plan, camera.view_dir, SP2)
        nonblocking = run_compositing(
            list(subimages), "direct-async", plan, camera.view_dir, SP2
        )
        for a, b in zip(blocking.stats.rank_stats, nonblocking.stats.rank_stats):
            assert a.bytes_recv == b.bytes_recv
            assert a.msgs_recv == b.msgs_recv

    def test_no_rendezvous_wait(self):
        """Posting all receives up front removes partner-alignment stalls."""
        subimages, plan, camera = rendered_workload("engine_high", 8)
        nonblocking = run_compositing(
            list(subimages), "direct-async", plan, camera.view_dir, SP2
        )
        assert nonblocking.stats.t_wait_max == 0.0

    def test_makespan_not_worse_than_blocking(self):
        subimages, plan, camera = rendered_workload("engine_high", 8)
        blocking = run_compositing(list(subimages), "direct", plan, camera.view_dir, SP2)
        nonblocking = run_compositing(
            list(subimages), "direct-async", plan, camera.view_dir, SP2
        )
        assert nonblocking.stats.makespan <= blocking.stats.makespan * 1.01
