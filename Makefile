# Convenience targets for the repro package.

PYTHON ?= python

.PHONY: install test bench bench-quick bench-scale bench-tile chaos explore explore-smoke grid serve-smoke serve-chaos soak verify lint results quick clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Seconds-fast hot-path speedup report (no baseline write).
bench-quick:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_hotpaths.py --smoke

# Simulator-scale smoke: reduced P=256 event-vs-lockstep + compositing
# runs, failing when any workload takes > 2x the committed baseline in
# BENCH_sim_scale.json (the CI wall-clock regression guard).
bench-scale:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_sim_scale.py --smoke --check

# Tile-routed latency smoke: small-P latency-to-first-pixel sweep with
# bit-identity asserted against binary-swap:raw, failing when any
# workload takes > 2x the committed baseline in BENCH_tile.json or the
# P=64 first-pixel advantage drops below its 2x floor.
bench-tile:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_tile.py --smoke --check

# Randomized fault-injection suite (seeded, so failures reproduce).
# Uses pytest-timeout's per-test kill switch when installed; the suite
# also carries its own SIGALRM watchdog so it never hangs without it.
chaos:
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_chaos.py -q \
		$(shell $(PYTHON) -c "import pytest_timeout" 2>/dev/null && echo --timeout=120 --timeout-method=signal)

# Schedule exploration: 200 seeded random interleavings of the canonical
# crash+delay scenario, each classified bit-identical-or-declared-outcome
# against the deterministic baseline; failing interleavings save
# replayable repro.sched-trace/1 files under results/sched-traces/.
explore:
	PYTHONPATH=src $(PYTHON) -m repro.experiments.cli --out results explore \
		--method binary-swap:raw --ranks 8 --fault-plan default \
		--policy random --interleavings 200

# Bounded CI variant: random walks + the adversarial rotation over both
# the stage-structured and the tile-routed planes (~64 interleavings
# total), plus the exploration unit suite.
explore-smoke:
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_explore.py -q \
		$(shell $(PYTHON) -c "import pytest_timeout" 2>/dev/null && echo --timeout=300 --timeout-method=signal)
	PYTHONPATH=src $(PYTHON) -m repro.experiments.cli --out results explore \
		--method binary-swap:raw --ranks 8 --fault-plan default \
		--policy random --interleavings 24
	PYTHONPATH=src $(PYTHON) -m repro.experiments.cli --out results explore \
		--method binary-swap:raw --ranks 8 --fault-plan default \
		--policy adversarial --interleavings 8
	PYTHONPATH=src $(PYTHON) -m repro.experiments.cli --out results explore \
		--method tile-routed:rle --ranks 8 --fault-plan default \
		--policy random --interleavings 24
	PYTHONPATH=src $(PYTHON) -m repro.experiments.cli --out results explore \
		--method tile-routed:rle --ranks 8 --fault-plan default \
		--policy adversarial --interleavings 8

# Render-service smoke: the serving/session/progress unit suites, then
# three concurrent jobs through the real CLI spool (mixed methods incl.
# tile-routed:rle, one crash-fault job under degrade QoS) — streamed
# frames monotone in coverage, finals bit-identical to one-shot runs.
serve-smoke:
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_progress.py tests/test_session.py tests/test_serving.py -q
	$(PYTHON) tools/serve_smoke.py

# Serving kill-restart matrix: SIGKILL a spool server while jobs are
# queued and mid-render (mp + checkpoints included), restart, and assert
# lease reclamation, exactly-one-result, and bit-identical finals; plus
# the deterministic 4x-capacity overload matrix per shedding policy.
# Uses pytest-timeout's per-test kill switch when installed; the suite
# also carries its own SIGALRM watchdog so it never hangs without it.
serve-chaos:
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_serve_chaos.py -q \
		$(shell $(PYTHON) -c "import pytest_timeout" 2>/dev/null && echo --timeout=300 --timeout-method=signal)

# Nightly soak: loop the chaos + recovery suites on fresh seed windows
# for SOAK_MINUTES (default 20), saving failing fault plans as JSON
# artifacts under soak-artifacts/ so every failure reproduces offline.
soak:
	$(PYTHON) tools/soak.py

# Schedule x codec equivalence grid: every combo vs the sequential
# oracle, plus bit-parity of the paper aliases against the recorded
# seed counters (tests/data/seed_counters.json).
grid:
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_grid_equivalence.py tests/test_schedule_codec.py -q

# What CI gates on: the tier-1 suite plus the hot-path regression check.
verify:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q
	PYTHONPATH=src $(PYTHON) benchmarks/bench_hotpaths.py --smoke --check

# Static checks (config in pyproject.toml [tool.ruff]); CI runs the same.
lint:
	$(PYTHON) -m ruff check src tests benchmarks examples

results:
	$(PYTHON) -m repro.experiments --out results all

quick:
	$(PYTHON) -m repro.experiments --quick --out results-quick all

clean:
	rm -rf results results-quick benchmarks/results .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
