"""Deterministic fault injection for every execution substrate.

A :class:`FaultPlan` is a seeded, declarative description of what goes
wrong during a run: message drops, delivery delays, payload corruption,
rank crashes (at a compositing stage or a pipeline phase), and slow-rank
stragglers.  The plan is JSON round-trippable (schema
``repro.fault-plan/1``) so chaos experiments are reproducible artifacts,
and it is injected through the shared
:class:`~repro.cluster.protocol.BaseRankContext` hooks — never through
substrate internals — so the *identical* plan replays the identical
per-rank fault sequence on the simulator and on the real
multiprocessing/MPI transports.

Determinism
-----------
Each ``(rank, rule)`` pair owns an independent ``random.Random`` seeded
from ``(plan.seed, rank, rule index)``.  Probabilistic rules consume one
draw per candidate event, and candidate events (sends, stage entries,
phase checkpoints) occur in the same order on every substrate because
rank programs execute the same operation sequence everywhere — so the
decisions, and therefore the injected fault sequence, are bit-identical
across backends.

Fault kinds
-----------
``crash``
    Raise :class:`InjectedCrash` when the rank enters compositing stage
    ``stage`` (via ``begin_stage``) or reaches pipeline phase ``phase``
    (via ``fault_checkpoint``).
``drop``
    Swallow a matching outgoing message: the receiver never sees it and
    the run surfaces a typed :class:`~repro.errors.DeadlockError` /
    :class:`~repro.errors.RankFailedError` instead of hanging.
``delay`` / ``slow``
    Stall the sender for ``seconds`` before a matching send — modelled
    compute time on the simulator, a real sleep on wall-clock
    transports.  ``delay`` defaults to a bounded number of applications;
    ``slow`` defaults to unlimited (a persistent straggler).
``corrupt``
    Damage the encoded payload bytes after the frame checksum is taken,
    so the receiver's CRC32 check raises
    :class:`~repro.errors.WireFormatError`.

Every injected (and detected) fault is recorded as a structured event
dict; the pipeline sinks these into
:class:`~repro.cluster.stats.RankStats` so they flow into the
``repro.run-timeline/1`` document on every backend.
"""

from __future__ import annotations

import json
import random
import zlib
from dataclasses import dataclass
from typing import Any, NamedTuple, Optional

from ..errors import ConfigurationError, SimulationError, WireFormatError

__all__ = [
    "FAULT_PLAN_SCHEMA",
    "FAULT_KINDS",
    "CRASH_PHASES",
    "FaultRule",
    "FaultPlan",
    "MessageFaults",
    "RankFaultInjector",
    "InjectedCrash",
    "CorruptFrame",
    "frame_checksum",
    "check_received",
    "corrupt_bytes",
    "crash_phase_of",
    "crash_stage_of",
    "random_plan",
]

FAULT_PLAN_SCHEMA = "repro.fault-plan/1"

#: Supported fault kinds (see module docstring).
FAULT_KINDS = ("crash", "drop", "delay", "corrupt", "slow")

#: Pipeline phases a crash rule may target via ``fault_checkpoint``.
CRASH_PHASES = ("render", "composite", "gather")


class InjectedCrash(SimulationError):
    """A planned rank crash fired (see :class:`FaultRule` kind ``crash``)."""

    def __init__(self, rank: int, *, stage: Optional[int] = None, phase: Optional[str] = None):
        self.rank = rank
        self.stage = stage
        self.phase = phase
        where = f"phase {phase!r}" if phase is not None else f"stage {stage}"
        super().__init__(f"injected crash on rank {rank} at {where}")


class CorruptFrame:
    """A payload whose bytes were damaged in flight (simulator wire).

    The simulator ships Python objects instead of byte frames, so
    corruption is modelled by wrapping the sender's encoded bytes
    together with the pre-corruption CRC32; the receiver-side
    :func:`check_received` then fails exactly like a real transport's
    frame check.  ``nbytes`` preserves the priced size.
    """

    __slots__ = ("data", "crc", "nbytes")

    def __init__(self, data: bytes, crc: int, nbytes: int):
        self.data = data
        self.crc = int(crc)
        self.nbytes = int(nbytes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CorruptFrame({len(self.data)}B, crc={self.crc:#010x})"


def frame_checksum(wire: Any) -> Optional[int]:
    """CRC32 of an encoded wire payload, or ``None`` if unchecksummable.

    Handles the three shapes :func:`~repro.cluster.protocol.encode_payload`
    produces: ``None`` (control message), bytes-like, and contiguous
    buffer objects (numpy arrays).  Non-contiguous exotica return
    ``None`` — the frame then travels unchecked rather than paying a
    copy.
    """
    if wire is None:
        return None
    if isinstance(wire, (bytes, bytearray)):
        return zlib.crc32(wire) & 0xFFFFFFFF
    try:
        view = memoryview(wire)
    except TypeError:
        return None
    if not view.contiguous:
        return None
    return zlib.crc32(view.cast("B")) & 0xFFFFFFFF


def check_received(payload: Any, *, rank: int, src: int, tag: int, backend: str) -> Any:
    """Receiver-side integrity check for simulator-delivered payloads.

    Real transports verify the frame CRC before decoding; the simulator
    delivers objects directly, so only :class:`CorruptFrame` wrappers
    (planted by a ``corrupt`` fault) need checking here.
    """
    if not isinstance(payload, CorruptFrame):
        return payload
    actual = zlib.crc32(payload.data) & 0xFFFFFFFF
    if actual == payload.crc:  # pragma: no cover - corruption always flips bits
        return payload.data
    raise WireFormatError(
        f"rank {rank}: message from rank {src} (tag {tag}, {payload.nbytes}B) "
        f"failed CRC32 check on the {backend} backend "
        f"(expected {payload.crc:#010x}, got {actual:#010x})"
    )


def corrupt_bytes(data: bytes, rng: random.Random) -> bytes:
    """Flip one deterministic byte of ``data`` (appends to empty input)."""
    if not data:
        return b"\xff"
    pos = rng.randrange(len(data))
    out = bytearray(data)
    out[pos] ^= 0xFF
    return bytes(out)


@dataclass(frozen=True)
class FaultRule:
    """One declarative fault.

    ``rank`` is the rank the fault lives on (for message faults: the
    *sender*).  ``stage``/``phase``/``dst``/``tag`` are optional match
    filters (``None`` = any).  ``probability`` gates each candidate
    event through the rule's seeded RNG; ``max_applications`` bounds how
    often the rule fires (0 = unlimited; defaults to 1, except ``slow``
    which defaults to unlimited).  ``seconds`` is the stall magnitude
    for ``delay``/``slow``.
    """

    kind: str
    rank: int
    stage: Optional[int] = None
    phase: Optional[str] = None
    dst: Optional[int] = None
    tag: Optional[int] = None
    probability: float = 1.0
    max_applications: Optional[int] = None
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )
        if self.rank < 0:
            raise ConfigurationError(f"fault rank must be >= 0, got {self.rank}")
        if not (0.0 <= self.probability <= 1.0):
            raise ConfigurationError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.max_applications is None:
            object.__setattr__(
                self, "max_applications", 0 if self.kind == "slow" else 1
            )
        elif self.max_applications < 0:
            raise ConfigurationError(
                f"max_applications must be >= 0, got {self.max_applications}"
            )
        if self.seconds < 0:
            raise ConfigurationError(f"seconds must be >= 0, got {self.seconds}")
        if self.kind == "crash":
            if self.phase is not None and self.phase not in CRASH_PHASES:
                raise ConfigurationError(
                    f"crash phase must be one of {CRASH_PHASES}, got {self.phase!r}"
                )
            if self.phase is None and self.stage is None:
                raise ConfigurationError("a crash rule needs stage= or phase=")
        if self.kind in ("delay", "slow") and self.seconds <= 0.0:
            raise ConfigurationError(f"a {self.kind} rule needs seconds > 0")

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"kind": self.kind, "rank": self.rank}
        for key in ("stage", "phase", "dst", "tag"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        if self.probability != 1.0:
            out["probability"] = self.probability
        out["max_applications"] = self.max_applications
        if self.seconds:
            out["seconds"] = self.seconds
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultRule":
        return cls(
            kind=str(data["kind"]),
            rank=int(data["rank"]),
            stage=None if data.get("stage") is None else int(data["stage"]),
            phase=None if data.get("phase") is None else str(data["phase"]),
            dst=None if data.get("dst") is None else int(data["dst"]),
            tag=None if data.get("tag") is None else int(data["tag"]),
            probability=float(data.get("probability", 1.0)),
            max_applications=(
                None
                if data.get("max_applications") is None
                else int(data["max_applications"])
            ),
            seconds=float(data.get("seconds", 0.0)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of :class:`FaultRule` — the whole chaos scenario."""

    rules: tuple[FaultRule, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        rules = tuple(self.rules)
        for rule in rules:
            if not isinstance(rule, FaultRule):
                raise ConfigurationError(
                    f"FaultPlan.rules must hold FaultRule, got {type(rule).__name__}"
                )
        object.__setattr__(self, "rules", rules)

    def rules_for(self, rank: int) -> list[tuple[int, FaultRule]]:
        """Rules (with their plan-wide index) owned by ``rank``."""
        return [(i, r) for i, r in enumerate(self.rules) if r.rank == rank]

    def injector_for(self, rank: int, sink: Optional[list] = None) -> Optional["RankFaultInjector"]:
        """Build this rank's injector; ``None`` when no rule targets it."""
        if not self.rules_for(rank):
            return None
        return RankFaultInjector(self, rank, sink=sink)

    # ---- serialization -----------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": FAULT_PLAN_SCHEMA,
            "seed": self.seed,
            "rules": [rule.to_dict() for rule in self.rules],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultPlan":
        schema = data.get("schema")
        if schema != FAULT_PLAN_SCHEMA:
            raise ConfigurationError(
                f"unsupported fault-plan schema {schema!r} (expected {FAULT_PLAN_SCHEMA!r})"
            )
        return cls(
            rules=tuple(FaultRule.from_dict(r) for r in data.get("rules", [])),
            seed=int(data.get("seed", 0)),
        )

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
            fh.write("\n")

    @classmethod
    def load(cls, path) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())


class MessageFaults(NamedTuple):
    """What the injector decided for one outgoing message."""

    drop: bool
    corrupt: bool
    delay: float


def _rule_seed(seed: int, rank: int, index: int) -> int:
    return (seed * 1_000_003 + rank * 101 + index * 7_919) & 0xFFFFFFFF


class _Slot:
    """Mutable per-rule firing state (count + seeded RNG)."""

    __slots__ = ("index", "rule", "rng", "applied")

    def __init__(self, index: int, rule: FaultRule, seed: int, rank: int):
        self.index = index
        self.rule = rule
        self.rng = random.Random(_rule_seed(seed, rank, index))
        self.applied = 0


class RankFaultInjector:
    """One rank's deterministic view of a :class:`FaultPlan`.

    Installed on a rank context via
    :meth:`~repro.cluster.protocol.BaseRankContext.install_fault_injector`;
    the context calls :meth:`on_stage` from ``begin_stage``,
    :meth:`on_message` before every send verb, and rank programs call
    :meth:`checkpoint` at phase boundaries.  Every fired rule appends a
    structured event dict to ``events`` (typically the rank's
    ``stats.events`` so the timeline collects them).
    """

    def __init__(self, plan: FaultPlan, rank: int, sink: Optional[list] = None):
        self.plan = plan
        self.rank = rank
        self.events: list = sink if sink is not None else []
        #: Optional schedule-exploration override for *probabilistic*
        #: firing points: ``decider(rank, rule_index, kind, probability,
        #: default) -> bool``.  Consulted only where the plan has genuine
        #: freedom (0 < probability < 1) and always *after* the rule's
        #: seeded RNG drew its default — so plan RNG state is identical
        #: whatever the decider answers, and deterministic rules stay
        #: deterministic.  Wired by the simulator's rank context when a
        #: :class:`~repro.cluster.schedule_policy.SchedulePolicy`
        #: explores faults.
        self.decider = None
        self._slots = [
            _Slot(index, rule, plan.seed, rank)
            for index, rule in plan.rules_for(rank)
        ]
        # Dedicated stream for corruption byte positions, independent of
        # the firing decisions so adding rules never shifts the damage.
        self._corrupt_rng = random.Random(_rule_seed(plan.seed, rank, -1))

    # ---- internals ---------------------------------------------------------
    def _fires(self, slot: _Slot) -> bool:
        rule = slot.rule
        if rule.max_applications and slot.applied >= rule.max_applications:
            return False
        if rule.probability < 1.0:
            fires = slot.rng.random() < rule.probability
            if self.decider is not None:
                fires = bool(
                    self.decider(
                        self.rank, slot.index, rule.kind, rule.probability, fires
                    )
                )
            if not fires:
                return False
        slot.applied += 1
        return True

    def _record(self, fault: str, slot: _Slot, **fields: Any) -> dict:
        event = {"event": "injected", "fault": fault, "rank": self.rank, "rule": slot.index}
        event.update({k: v for k, v in fields.items() if v is not None})
        self.events.append(event)
        return event

    # ---- hooks -------------------------------------------------------------
    def on_stage(self, stage: int) -> None:
        """Called when the rank enters compositing stage ``stage``."""
        for slot in self._slots:
            rule = slot.rule
            if rule.kind != "crash" or rule.phase is not None or rule.stage != stage:
                continue
            if self._fires(slot):
                self._record("crash", slot, stage=stage)
                raise InjectedCrash(self.rank, stage=stage)

    def checkpoint(self, phase: str, stage: Optional[int] = None) -> None:
        """Called by the pipeline at phase boundaries."""
        for slot in self._slots:
            rule = slot.rule
            if rule.kind != "crash" or rule.phase != phase:
                continue
            if self._fires(slot):
                self._record("crash", slot, phase=phase, stage=stage)
                raise InjectedCrash(self.rank, phase=phase)

    def on_message(self, verb: str, dst: int, tag: int, stage: int) -> Optional[MessageFaults]:
        """Faults for one outgoing message; ``None`` means clean."""
        drop = corrupt = False
        delay = 0.0
        for slot in self._slots:
            rule = slot.rule
            if rule.kind not in ("drop", "delay", "corrupt", "slow"):
                continue
            if rule.stage is not None and rule.stage != stage:
                continue
            if rule.dst is not None and rule.dst != dst:
                continue
            if rule.tag is not None and rule.tag != tag:
                continue
            if not self._fires(slot):
                continue
            if rule.kind == "drop":
                drop = True
                self._record("drop", slot, verb=verb, dst=dst, tag=tag, stage=stage)
            elif rule.kind == "corrupt":
                corrupt = True
                self._record("corrupt", slot, verb=verb, dst=dst, tag=tag, stage=stage)
            else:
                delay += rule.seconds
                self._record(
                    rule.kind, slot, verb=verb, dst=dst, tag=tag, stage=stage,
                    seconds=rule.seconds,
                )
        if not (drop or corrupt or delay):
            return None
        return MessageFaults(drop=drop, corrupt=corrupt, delay=delay)

    # ---- corruption payloads ----------------------------------------------
    def damage_wire(self, raw: bytes) -> bytes:
        """Corrupt already-checksummed raw frame bytes (real transports)."""
        return corrupt_bytes(raw, self._corrupt_rng)

    def wrap_for_sim(self, payload: Any, nbytes: int) -> CorruptFrame:
        """Model corruption of an in-simulator payload.

        Encodes the payload to bytes, checksums them, then damages the
        copy that travels — mirroring what :meth:`damage_wire` does to a
        real frame.
        """
        from .protocol import encode_payload

        wire, _, pickled = encode_payload(payload)
        if wire is None:
            raw = b""
        elif isinstance(wire, (bytes, bytearray)):
            raw = bytes(wire)
        else:
            raw = bytes(memoryview(wire).cast("B"))
        del pickled  # the receiver never decodes a corrupt frame
        crc = zlib.crc32(raw) & 0xFFFFFFFF
        return CorruptFrame(self.damage_wire(raw), crc, nbytes)


def crash_phase_of(err: BaseException) -> Optional[str]:
    """Pipeline phase of an injected crash behind ``err``, if any.

    Works across substrates: the simulator wraps the live
    :class:`InjectedCrash` in ``err.original``; the multiprocessing
    supervisor ships the phase as ``err.fault_phase``.
    """
    original = getattr(err, "original", None)
    if isinstance(original, InjectedCrash):
        return original.phase
    phase = getattr(err, "fault_phase", None)
    return phase if isinstance(phase, str) else None


def crash_stage_of(err: BaseException) -> Optional[int]:
    """Compositing stage of an injected crash behind ``err``, if any.

    The simulator wraps the live :class:`InjectedCrash` in
    ``err.original``; the multiprocessing supervisor ships the stage as
    ``err.fault_stage``.  Phase crashes (``render``/``gather``) have no
    stage and return ``None``.
    """
    original = getattr(err, "original", None)
    if isinstance(original, InjectedCrash):
        return original.stage
    stage = getattr(err, "fault_stage", None)
    return stage if isinstance(stage, int) else None


def random_plan(seed: int, *, num_ranks: int = 4, num_stages: int = 2) -> FaultPlan:
    """One seeded random chaos scenario: 1-3 rules over every fault kind.

    Shared by the chaos test matrix and the nightly soak loop so a
    failing soak seed is reproducible as a plan file artifact.
    """
    rng = random.Random(seed)
    rules: list[FaultRule] = []
    for _ in range(rng.randint(1, 3)):
        kind = rng.choice(FAULT_KINDS)
        rank = rng.randrange(num_ranks)
        if kind == "crash":
            if rng.random() < 0.5:
                rules.append(
                    FaultRule(kind="crash", rank=rank, stage=rng.randrange(num_stages))
                )
            else:
                rules.append(
                    FaultRule(kind="crash", rank=rank, phase=rng.choice(CRASH_PHASES))
                )
        elif kind in ("delay", "slow"):
            rules.append(
                FaultRule(
                    kind=kind,
                    rank=rank,
                    seconds=rng.choice((0.005, 0.02)),
                    max_applications=rng.choice((1, 2, 0)),
                )
            )
        else:
            rules.append(
                FaultRule(
                    kind=kind,
                    rank=rank,
                    stage=rng.randrange(num_stages),
                    probability=rng.choice((1.0, 0.5)),
                )
            )
    return FaultPlan(rules=tuple(rules), seed=rng.randrange(1 << 16))
