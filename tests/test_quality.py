"""Tests for the image-quality metrics."""

import math

import numpy as np
import pytest

from repro.analysis.quality import image_delta, mean_abs_error, psnr
from repro.render.image import SubImage


class TestScalarMetrics:
    def test_identical_images(self):
        a = np.random.default_rng(0).random((8, 8))
        assert mean_abs_error(a, a) == 0.0
        assert math.isinf(psnr(a, a))

    def test_known_mae(self):
        a = np.zeros((4, 4))
        b = np.full((4, 4), 0.25)
        assert mean_abs_error(a, b) == pytest.approx(0.25)

    def test_known_psnr(self):
        a = np.zeros((4, 4))
        b = np.full((4, 4), 0.1)  # mse = 0.01 → psnr = 20 dB
        assert psnr(a, b) == pytest.approx(20.0)

    def test_peak_scales_psnr(self):
        a = np.zeros((4, 4))
        b = np.full((4, 4), 0.1)
        assert psnr(a, b, peak=10.0) == pytest.approx(40.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mean_abs_error(np.zeros((2, 2)), np.zeros((3, 3)))
        with pytest.raises(ValueError):
            psnr(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_bad_peak(self):
        with pytest.raises(ValueError):
            psnr(np.zeros(4), np.zeros(4), peak=0.0)


class TestImageDelta:
    def test_identical(self):
        image = SubImage.blank(6, 6)
        image.intensity[2, 2] = 0.5
        delta = image_delta(image, image.copy())
        assert delta.max_abs == 0.0
        assert delta.differing_pixels == 0
        assert math.isinf(delta.psnr_db)
        assert "inf" in str(delta)

    def test_counts_differing_pixels(self):
        a = SubImage.blank(6, 6)
        b = a.copy()
        b.intensity[0, 0] = 0.5
        b.intensity[5, 5] = 0.1
        delta = image_delta(a, b)
        assert delta.differing_pixels == 2
        assert delta.differing_fraction == pytest.approx(2 / 36)
        assert delta.max_abs == pytest.approx(0.5)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            image_delta(SubImage.blank(2, 2), SubImage.blank(3, 3))

    def test_splat_seam_quantified(self):
        """The documented sort-last splatting seam: tiny mean error,
        high PSNR (> 30 dB) on the sphere workload."""
        from repro.render.camera import Camera
        from repro.render.reference import composite_sequential
        from repro.render.splat import splat_full, splat_subvolume
        from repro.volume.datasets import make_dataset
        from repro.volume.partition import depth_order, recursive_bisect

        volume, transfer = make_dataset("sphere", (32, 32, 16))
        camera = Camera(
            width=48, height=48, volume_shape=volume.shape, rot_x=20, rot_y=30
        )
        plan = recursive_bisect(volume.shape, 8)
        blocks = [
            splat_subvolume(volume, transfer, camera, plan.extent(r))
            for r in range(8)
        ]
        combined = composite_sequential(blocks, depth_order(plan, camera.view_dir))
        full = splat_full(volume, transfer, camera)
        delta = image_delta(combined, full)
        assert delta.mean_abs < 2e-3
        assert delta.psnr_db > 30.0

    def test_raycast_exactness_quantified(self):
        """Contrast: the ray caster's block composite is exact — PSNR inf."""
        from repro.render.camera import Camera
        from repro.render.raycast import render_full, render_subvolume
        from repro.render.reference import composite_sequential
        from repro.volume.datasets import make_dataset
        from repro.volume.partition import depth_order, recursive_bisect

        volume, transfer = make_dataset("sphere", (32, 32, 16))
        camera = Camera(
            width=48, height=48, volume_shape=volume.shape, rot_x=20, rot_y=30
        )
        plan = recursive_bisect(volume.shape, 4)
        blocks = [
            render_subvolume(volume, transfer, camera, plan.extent(r))
            for r in range(4)
        ]
        combined = composite_sequential(blocks, depth_order(plan, camera.view_dir))
        delta = image_delta(combined, render_full(volume, transfer, camera),
                            atol=1e-9)
        assert delta.differing_pixels == 0
