"""Benchmark T2 — regenerate the paper's Table 2 (768x768) and check shape.

The paper's second table drops plain BS and compares BSBR / BSLC /
BSBRC on the four datasets at the larger image.  Its stated findings:
"the results are similar to those of Table 1; in general, the BSBRC
method has the best overall performance".
"""

import pytest

from conftest import PAPER_RANKS, cell, emit
from repro.experiments.table2 import TABLE2_METHODS, format_table2, run_table2
from repro.volume.datasets import PAPER_DATASETS


def check_table2_shape(rows):
    for dataset in PAPER_DATASETS:
        for p in PAPER_RANKS:
            c = cell(rows, dataset, p)
            assert set(c) == set(TABLE2_METHODS), (dataset, p)
            # BSBRC ships no more than BSBR.
            assert c["bsbrc"].t_comm <= c["bsbr"].t_comm * 1.02, (dataset, p)
            # BSBRC best or near-best total.
            best = min(m.t_total for m in c.values())
            assert c["bsbrc"].t_total <= best * 1.15, (dataset, p)
        # BSLC's encode-everything T_comp dominates at scale — at the
        # larger image this is the paper's clearest effect (its Table 2
        # BSLC T_comp is 2-3x the others).
        for p in (8, 16, 32, 64):
            c = cell(rows, dataset, p)
            assert c["bslc"].t_comp > 1.4 * c["bsbrc"].t_comp, (dataset, p)
    # Sparse datasets: BSBRC strictly best.
    for dataset in ("engine_high", "cube"):
        for p in PAPER_RANKS:
            c = cell(rows, dataset, p)
            assert c["bsbrc"].t_total == min(m.t_total for m in c.values()), (
                dataset,
                p,
            )


@pytest.fixture(scope="module")
def table2_rows():
    return run_table2(rank_counts=PAPER_RANKS)


def test_bench_table2_grid(benchmark):
    from repro.experiments.harness import workload

    for dataset in PAPER_DATASETS:  # pre-render outside the timed region
        workload(dataset, 768, max_ranks=64)
    rows = benchmark.pedantic(
        lambda: run_table2(rank_counts=PAPER_RANKS), rounds=1, iterations=1
    )
    assert len(rows) == 4 * 6 * 3
    check_table2_shape(rows)
    emit("table2", format_table2(rows))


def test_table2_shape(table2_rows):
    check_table2_shape(table2_rows)


def test_table2_times_scale_with_image(table2_rows, table1_rows):
    """768^2 has 4x the pixels of 384^2: BSLC's full-scan T_comp must
    scale accordingly (the paper's Table 1 -> Table 2 jump)."""
    for dataset in PAPER_DATASETS:
        small = cell(table1_rows, dataset, 8)["bslc"].t_comp
        large = cell(table2_rows, dataset, 8)["bslc"].t_comp
        assert 2.0 < large / small < 8.0, dataset
