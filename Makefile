# Convenience targets for the repro package.

PYTHON ?= python

.PHONY: install test bench results quick clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

results:
	$(PYTHON) -m repro.experiments --out results all

quick:
	$(PYTHON) -m repro.experiments --quick --out results-quick all

clean:
	rm -rf results results-quick benchmarks/results .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
