"""Tests for the sparsity analytics module."""

import pytest

from repro.analysis.sparsity import (
    measure_sparsity,
    sparsity_table,
    wire_cost_estimates,
)
from repro.render.image import SubImage
from repro.types import PIXEL_BYTES, RECT_INFO_BYTES, Rect


def image_with_block(h=20, w=20, rect=None, alpha=0.5):
    if rect is None:
        rect = Rect(5, 5, 10, 10)
    image = SubImage.blank(h, w)
    rows, cols = rect.slices()
    image.opacity[rows, cols] = alpha
    image.intensity[rows, cols] = alpha
    return image


class TestMeasure:
    def test_blank_image(self):
        profile = measure_sparsity(SubImage.blank(10, 10))
        assert profile.nonblank == 0
        assert profile.rect.is_empty
        assert profile.nonblank_fraction == 0.0
        assert profile.rect_density == 0.0
        assert profile.runs == 1  # one all-blank run

    def test_solid_block(self):
        profile = measure_sparsity(image_with_block())
        assert profile.nonblank == 25
        assert profile.rect == Rect(5, 5, 10, 10)
        assert profile.rect_density == 1.0
        assert profile.nonblank_fraction == 25 / 400

    def test_full_frame(self):
        image = SubImage.blank(8, 8)
        image.opacity[:] = 0.3
        profile = measure_sparsity(image)
        assert profile.rect_fraction == 1.0
        assert profile.rect_density == 1.0
        assert profile.runs == 2  # zero-length blank lead-in + one run

    def test_checkerboard_has_short_runs(self):
        image = SubImage.blank(16, 16)
        image.opacity[::2, ::2] = 0.5
        image.opacity[1::2, 1::2] = 0.5
        profile = measure_sparsity(image)
        assert profile.mean_run_length <= 2.0

    def test_coherent_rows_have_long_runs(self):
        image = image_with_block(rect=Rect(0, 0, 10, 20))  # full-width band
        profile = measure_sparsity(image)
        assert profile.mean_run_length > 50


class TestWireCosts:
    def test_bs_is_frame_size(self):
        profile = measure_sparsity(image_with_block())
        costs = wire_cost_estimates(profile)
        assert costs["bs"] == 400 * PIXEL_BYTES

    def test_dense_rect_bsbr_wins_over_bslc(self):
        """A perfectly dense small rect: BSBR ships exactly the pixels +
        8 bytes, BSLC adds run codes."""
        profile = measure_sparsity(image_with_block())
        costs = wire_cost_estimates(profile)
        assert costs["bsbr"] == RECT_INFO_BYTES + 25 * PIXEL_BYTES
        assert costs["bsbr"] <= costs["bslc"] + RECT_INFO_BYTES

    def test_sparse_wide_rect_bslc_wins(self):
        """Diagonal dots: huge rect, few pixels — BSBR's worst case."""
        image = SubImage.blank(32, 32)
        for k in range(0, 32, 4):
            image.opacity[k, k] = 0.5
        profile = measure_sparsity(image)
        costs = wire_cost_estimates(profile)
        assert costs["bslc"] < costs["bsbr"]
        assert costs["bsbrc"] < costs["bsbr"]

    def test_ordering_bs_always_worst_for_nonfull_images(self):
        profile = measure_sparsity(image_with_block())
        costs = wire_cost_estimates(profile)
        assert costs["bs"] == max(costs.values())


class TestTable:
    def test_renders_all_rows(self):
        images = [image_with_block(), SubImage.blank(20, 20)]
        text = sparsity_table(["a", "b"], images, title="T")
        assert text.startswith("T\n")
        assert "a" in text and "b" in text
        assert "cheapest wire" in text

    def test_label_mismatch(self):
        with pytest.raises(ValueError):
            sparsity_table(["only-one"], [])

    def test_dataset_characterization(self):
        """The paper's qualitative dataset descriptions hold numerically."""
        from repro.render.camera import Camera
        from repro.render.raycast import render_full
        from repro.volume.datasets import make_dataset

        profiles = {}
        for dataset in ("engine_low", "engine_high", "cube"):
            volume, transfer = make_dataset(dataset, (48, 48, 24))
            camera = Camera(
                width=64, height=64, volume_shape=volume.shape, rot_x=20, rot_y=30
            )
            profiles[dataset] = measure_sparsity(render_full(volume, transfer, camera))

        # Engine_high is sparser than engine_low (same geometry, higher
        # threshold).
        assert (
            profiles["engine_high"].nonblank_fraction
            < profiles["engine_low"].nonblank_fraction
        )
        # Cube has the wide-but-sparse rectangle and the worst coherence.
        assert profiles["cube"].rect_density < profiles["engine_low"].rect_density
        assert (
            profiles["cube"].mean_run_length
            < profiles["engine_low"].mean_run_length
        )
