#!/usr/bin/env python
"""End-to-end smoke for the file-spool render service (CI: serve-smoke).

Drives the real CLI: three jobs land in one spool — mixed methods
including ``tile-routed:rle``, one carrying a crash fault plan under
``degrade`` QoS — and one ``serve`` invocation multiplexes their three
sessions over a single bounded worker pool.  Afterwards the script
asserts, against the on-disk artifacts:

* every streamed ``repro.serve-event/1`` sequence is monotone in
  coverage and ends with a ``final`` event at coverage 1.0;
* every persisted final frame is bit-identical to a one-shot
  ``SortLastSystem.run`` of the same configuration (the crash job
  compared against a one-shot degraded run);
* the crash-fault job came back *flagged* (``ok`` with
  ``outcome=degraded``), not failed.

Exit status is non-zero on any violation, so CI can gate on it.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import tempfile

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))

import numpy as np  # noqa: E402

from repro.cluster.faults import FaultPlan, FaultRule  # noqa: E402
from repro.pipeline.config import RunConfig  # noqa: E402
from repro.pipeline.system import SortLastSystem  # noqa: E402
from repro.serving import load_result, read_events  # noqa: E402

BASE = dict(dataset="sphere", method="bsbrc", num_ranks=4, image_size=64,
            machine="sp2")


def _cli(*argv: str) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(ROOT, "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.experiments.cli", *argv],
        cwd=ROOT, env=env, capture_output=True, text=True, timeout=600,
    )
    sys.stdout.write(proc.stdout)
    sys.stderr.write(proc.stderr)
    if proc.returncode != 0:
        raise SystemExit(f"CLI {' '.join(argv[:2])} exited {proc.returncode}")
    return proc.stdout


def _submit(spool: str, *extra: str) -> str:
    out = _cli("submit", "--spool", spool, *extra)
    match = re.search(r"\[submitted (\S+) to ", out)
    if match is None:
        raise SystemExit(f"could not parse job id from submit output: {out!r}")
    return match.group(1)


def _check(label: str, ok: bool, detail: str = "") -> None:
    print(f"  {'ok' if ok else 'FAIL'}  {label}" + (f" ({detail})" if detail else ""))
    if not ok:
        raise SystemExit(f"serve-smoke: {label} failed {detail}")


def _verify(spool: str, job_id: str, want, *, degraded: bool) -> None:
    doc = load_result(spool, job_id)
    _check(f"{job_id}: result present", doc is not None)
    _check(f"{job_id}: ok", bool(doc["ok"]), str(doc.get("error")))
    _check(f"{job_id}: degraded flag", doc["degraded"] == degraded,
           f"want {degraded}, got {doc['degraded']}")
    _check(f"{job_id}: outcome", doc["outcome"] == ("degraded" if degraded else "clean"),
           doc["outcome"])
    events = read_events(spool, job_id)
    covs = [e["coverage"] for e in events]
    _check(f"{job_id}: streamed events present", bool(events))
    _check(f"{job_id}: coverage monotone",
           all(a <= b for a, b in zip(covs, covs[1:])))
    _check(f"{job_id}: final event at 1.0",
           events[-1]["kind"] == "final" and events[-1]["coverage"] == 1.0)
    with np.load(doc["image"]) as npz:
        _check(f"{job_id}: final intensity bit-identical to one-shot",
               np.array_equal(npz["intensity"], want.final_image.intensity))
        _check(f"{job_id}: final opacity bit-identical to one-shot",
               np.array_equal(npz["opacity"], want.final_image.opacity))


def main() -> None:
    spool = tempfile.mkdtemp(prefix="serve-smoke-")
    plan = FaultPlan(
        rules=(FaultRule(kind="crash", rank=1, phase="render"),), seed=5
    )
    plan_path = os.path.join(spool, "crash-plan.json")
    plan.save(plan_path)

    print(f"serve-smoke: spool at {spool}")
    j_alice = _submit(spool, "--session", "alice", "--qos", "lossless",
                      "--method", "binary-swap:rle")
    j_bob = _submit(spool, "--session", "bob", "--qos", "degrade",
                    "--method", "tile-routed:rle", "--fault-plan", plan_path)
    j_carol = _submit(spool, "--session", "carol", "--qos", "strict",
                      "--rot-y", "45")
    _cli(
        "serve", "--spool", spool,
        "--dataset", BASE["dataset"], "--method", BASE["method"],
        "--ranks", str(BASE["num_ranks"]),
        "--image-size", str(BASE["image_size"]), "--machine", BASE["machine"],
        "--max-workers", "3", "--max-jobs", "3", "--idle-timeout", "60",
    )

    print("serve-smoke: checking artifacts")
    one_alice = SortLastSystem(
        RunConfig(**{**BASE, "method": "binary-swap:rle"})
    ).run()
    one_bob = SortLastSystem(
        RunConfig(**{**BASE, "method": "tile-routed:rle"})
    ).run(fault_plan=plan, recovery="degrade")
    one_carol = SortLastSystem(RunConfig(**BASE, rot_y=45.0)).run()
    _verify(spool, j_alice, one_alice, degraded=False)
    _verify(spool, j_bob, one_bob, degraded=True)
    _verify(spool, j_carol, one_carol, degraded=False)
    print("serve-smoke: PASS")


if __name__ == "__main__":
    main()
