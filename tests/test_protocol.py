"""The shared rank-context protocol and single-pass payload encoding."""

import pickle

import numpy as np
import pytest

from repro.cluster.backend import MPBackend, SimBackend
from repro.cluster.context import RankContext
from repro.cluster.model import SP2
from repro.cluster.mp_backend import MPRankContext
from repro.cluster.mpi_backend import MPIRankContext
from repro.cluster.protocol import (
    BaseRankContext,
    decode_payload,
    drive,
    encode_payload,
    payload_nbytes,
)
from repro.errors import ConfigurationError, SimulationError


class TestAbcCompleteness:
    """A substrate that forgets a verb must fail at class level, not at
    runtime deep inside a compositing stage."""

    @pytest.mark.parametrize(
        "cls", [RankContext, MPRankContext, MPIRankContext], ids=lambda c: c.__name__
    )
    def test_every_substrate_implements_the_full_surface(self, cls):
        assert issubclass(cls, BaseRankContext)
        assert not cls.__abstractmethods__, (
            f"{cls.__name__} leaves abstract: {sorted(cls.__abstractmethods__)}"
        )

    def test_incomplete_substrate_cannot_instantiate(self):
        class Forgetful(BaseRankContext):
            # Implements nothing: every abstract verb remains.
            pass

        with pytest.raises(TypeError):
            Forgetful()

    def test_backend_names_are_distinct(self):
        names = {
            RankContext.backend_name,
            MPRankContext.backend_name,
            MPIRankContext.backend_name,
        }
        assert len(names) == 3
        assert BaseRankContext.backend_name not in names


class TestEncodePayload:
    def test_none_is_zero_byte_control(self):
        wire, nbytes, pickled = encode_payload(None)
        assert wire is None and nbytes == 0 and not pickled

    def test_bytes_pass_through(self):
        blob = b"abcde"
        wire, nbytes, pickled = encode_payload(blob)
        assert wire is blob and nbytes == 5 and not pickled
        assert decode_payload(wire, pickled) is blob

    def test_ndarray_reports_buffer_size(self):
        arr = np.zeros((3, 4), dtype=np.float64)
        wire, nbytes, pickled = encode_payload(arr)
        assert wire is arr and nbytes == 96 and not pickled

    def test_object_is_pickled_once_and_roundtrips(self):
        payload = {"rect": (1, 2, 3), "vals": [0.5, 0.25]}
        wire, nbytes, pickled = encode_payload(payload)
        assert pickled and isinstance(wire, bytes) and nbytes == len(wire)
        assert decode_payload(wire, pickled) == payload

    def test_explicit_nbytes_overrides_price_not_wire(self):
        wire, nbytes, pickled = encode_payload(b"abcdef", nbytes=2)
        assert nbytes == 2 and wire == b"abcdef"

    def test_unpicklable_demands_explicit_size(self):
        with pytest.raises(ConfigurationError, match="nbytes"):
            encode_payload(lambda: None)

    def test_payload_nbytes_agrees_with_encode(self):
        for payload in (None, b"xyz", np.arange(7), {"k": 1}, (1, "two", 3.0)):
            assert payload_nbytes(payload) == encode_payload(payload).nbytes


class _PickleCounter:
    """Counts how many times pickle serializes an instance."""

    dumps = 0

    def __getstate__(self):
        type(self).dumps += 1
        return {"tag": "counted"}

    def __setstate__(self, state):
        self.tag = state["tag"]

    def __eq__(self, other):
        return isinstance(other, (_PickleCounter, type(self)))


class TestSerializeOnce:
    """The old path pickled once to *measure* and again to *ship*."""

    def test_encode_pickles_exactly_once(self):
        _PickleCounter.dumps = 0
        encoded = encode_payload(_PickleCounter())
        assert _PickleCounter.dumps == 1
        # The priced size IS the shipped blob; no second pass needed.
        assert encoded.nbytes == len(encoded.wire)
        assert isinstance(pickle.loads(encoded.wire), _PickleCounter)

    def test_mp_transport_ships_without_repickling_payload(self):
        # The frame wraps the already-pickled blob as bytes; shipping the
        # frame re-pickles the *blob* (cheap memcpy), never the payload.
        _PickleCounter.dumps = 0
        encoded = encode_payload(_PickleCounter())
        frame = pickle.dumps((0, encoded.wire, encoded.nbytes, encoded.pickled))
        assert _PickleCounter.dumps == 1
        tag, wire, nbytes, pickled = pickle.loads(frame)
        assert decode_payload(wire, pickled) == _PickleCounter()


async def _exchange_object(ctx):
    """Both ranks trade a non-buffer payload and report stage-0 bytes."""
    ctx.begin_stage(0)
    payload = {"rank": 7, "data": list(range(10))}  # same object on both ranks
    await ctx.sendrecv(ctx.rank ^ 1, payload, tag=3)
    bucket = ctx.stats.stage(0)
    return bucket.bytes_sent, bucket.bytes_recv


class TestPricingParity:
    def test_sim_and_mp_price_the_same_payload_identically(self):
        sim = SimBackend().run(2, _exchange_object, model=SP2)
        mp = MPBackend().run(2, _exchange_object)
        assert sim.returns == mp.returns
        assert sim.returns[0][0] > 0  # a pickled dict is not free


class TestDrive:
    def test_returns_coroutine_value(self):
        async def program():
            return 41 + 1

        assert drive(program()) == 42

    def test_rejects_simulator_only_primitives(self):
        from repro.cluster.events import ComputeOp

        async def program():
            await ComputeOp(1.0)

        with pytest.raises(SimulationError, match="real transport"):
            drive(program())
