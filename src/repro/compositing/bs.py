"""Plain binary-swap compositing (Ma, Painter, Hansen, Krogh 1994).

The baseline the paper improves on.  At each of the ``log2 P`` stages a
rank pair splits its current image region along the centerline, each
member keeps one half and ships the other *in full* — every pixel, blank
or not — then folds the received half into its kept half with *over*.

Per-stage costs reproduce the paper's eqs. (1)-(2): ``To · A/2^k``
composites and a ``16 · A/2^k``-byte message.
"""

from __future__ import annotations

import numpy as np

from ..cluster.context import RankContext
from ..cluster.topology import keeps_low_half
from ..errors import CompositingError
from ..render.image import SubImage
from ..volume.partition import PartitionPlan
from .base import CompositeOutcome, Compositor, composite_rect_pixels, split_axis_for
from .wire import pack_bs, unpack_bs

__all__ = ["BinarySwap"]


class BinarySwap(Compositor):
    """The BS method — full-frame halves, no sparsity exploitation."""

    name = "bs"

    def __init__(self, *, split_policy: str = "longest", charge_pack: bool = True):
        self.split_policy = split_policy
        self.charge_pack = charge_pack

    async def run(
        self,
        ctx: RankContext,
        image: SubImage,
        plan: PartitionPlan,
        view_dir: np.ndarray,
    ) -> CompositeOutcome:
        stages = self.check_plan(ctx, plan)
        region = image.full_rect()
        for stage in range(stages):
            ctx.begin_stage(stage)
            partner = ctx.rank ^ (1 << stage)
            axis = split_axis_for(region, stage, self.split_policy)
            first, second = region.split(axis)
            if keeps_low_half(ctx.rank, stage):
                keep, send = first, second
            else:
                keep, send = second, first
            if keep.is_empty or send.is_empty:
                raise CompositingError(
                    f"image too small to halve at stage {stage} (region {region})"
                )

            msg = pack_bs(image.intensity, image.opacity, send)
            if self.charge_pack:
                await ctx.charge_pack(len(msg.buffer))
            raw = await ctx.sendrecv(
                partner, msg.buffer, nbytes=msg.accounted_bytes, tag=stage
            )
            recv_i, recv_a = unpack_bs(raw, keep)
            composite_rect_pixels(
                image,
                keep,
                recv_i,
                recv_a,
                local_in_front=plan.local_in_front(ctx.rank, stage, view_dir),
            )
            await ctx.charge_over(keep.area)
            region = keep
        return CompositeOutcome(image=image, owned_rect=region)
