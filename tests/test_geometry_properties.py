"""Hypothesis property suites for camera geometry and the cost model."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster.model import SP2
from repro.render.camera import Camera, rotation_matrix
from repro.types import Axis, Rect

COMMON = dict(
    max_examples=100,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

angles = st.floats(-180.0, 180.0, allow_nan=False)


class TestRotationProperties:
    @given(ax=angles, ay=angles, az=angles)
    @settings(**COMMON)
    def test_always_special_orthogonal(self, ax, ay, az):
        rot = rotation_matrix(ax, ay, az)
        assert np.allclose(rot @ rot.T, np.eye(3), atol=1e-10)
        assert np.linalg.det(rot) == pytest.approx(1.0, abs=1e-10)

    @given(ax=angles, ay=angles, az=angles)
    @settings(**COMMON)
    def test_preserves_lengths(self, ax, ay, az):
        rot = rotation_matrix(ax, ay, az)
        vec = np.array([0.3, -1.7, 2.2])
        assert np.linalg.norm(rot @ vec) == pytest.approx(np.linalg.norm(vec))

    @given(ax=angles)
    @settings(**COMMON)
    def test_x_rotation_fixes_x_axis(self, ax):
        rot = rotation_matrix(ax, 0, 0)
        assert np.allclose(rot @ [1, 0, 0], [1, 0, 0], atol=1e-12)


class TestCameraProperties:
    @given(
        ax=angles, ay=angles, az=angles,
        y0=st.integers(0, 20), x0=st.integers(0, 20),
        h=st.integers(1, 12), w=st.integers(1, 12),
    )
    @settings(**COMMON)
    def test_pixel_origin_projection_roundtrip(self, ax, ay, az, y0, x0, h, w):
        """project_points inverts pixel_origins for every viewpoint."""
        camera = Camera(
            width=40, height=40, volume_shape=(16, 16, 16),
            rot_x=ax, rot_y=ay, rot_z=az,
        )
        rect = Rect(y0, x0, y0 + h, x0 + w)
        origins = camera.pixel_origins(rect).reshape(-1, 3)
        rows_cols = camera.project_points(origins)
        expect_rows = np.repeat(np.arange(rect.y0, rect.y1), rect.width)
        expect_cols = np.tile(np.arange(rect.x0, rect.x1), rect.height)
        assert np.allclose(rows_cols[:, 0], expect_rows, atol=1e-8)
        assert np.allclose(rows_cols[:, 1], expect_cols, atol=1e-8)

    @given(ax=angles, ay=angles, az=angles, t=st.floats(-50, 50))
    @settings(**COMMON)
    def test_projection_invariant_along_view_dir(self, ax, ay, az, t):
        """Orthographic: moving a point along the view direction does not
        change its screen position."""
        camera = Camera(
            width=32, height=32, volume_shape=(16, 16, 16),
            rot_x=ax, rot_y=ay, rot_z=az,
        )
        point = np.array([[4.0, 7.0, 2.0]])
        shifted = point + t * camera.view_dir
        assert np.allclose(
            camera.project_points(point), camera.project_points(shifted), atol=1e-8
        )

    @given(ax=angles, ay=angles)
    @settings(**COMMON)
    def test_footprint_never_exceeds_frame(self, ax, ay):
        camera = Camera(
            width=24, height=24, volume_shape=(16, 16, 16), rot_x=ax, rot_y=ay
        )
        corners = np.array(
            [[0, 0, 0], [16, 16, 16], [-100, 50, 3], [200, -7, 9]], dtype=float
        )
        rect = camera.footprint_rect(corners)
        assert Rect.full(24, 24).contains(rect)


class TestModelProperties:
    sizes = st.integers(0, 10**7)

    @given(a=sizes, b=sizes)
    @settings(**COMMON)
    def test_message_time_superadditive(self, a, b):
        """Two messages cost at least one combined message (start-up)."""
        combined = SP2.message_time(a + b)
        split = SP2.message_time(a) + SP2.message_time(b)
        assert split >= combined - 1e-12

    @given(a=sizes, b=sizes)
    @settings(**COMMON)
    def test_costs_monotone(self, a, b):
        lo, hi = min(a, b), max(a, b)
        assert SP2.message_time(lo) <= SP2.message_time(hi)
        assert SP2.over_time(lo) <= SP2.over_time(hi)
        assert SP2.encode_time(lo) <= SP2.encode_time(hi)

    @given(scale=st.floats(0.1, 10.0))
    @settings(**COMMON)
    def test_overrides_scale_linearly(self, scale):
        model = SP2.with_overrides(tc=SP2.tc * scale)
        assert model.transfer_time(1000) == pytest.approx(
            SP2.transfer_time(1000) * scale
        )


class TestAxisEnum:
    def test_values_are_indices(self):
        assert [axis.value for axis in Axis] == [0, 1, 2]
        assert Axis.X.value == 0 and Axis.Z.value == 2

    def test_usable_as_extent_index(self):
        from repro.types import Extent3

        extent = Extent3.full((8, 10, 12))
        assert extent.shape[Axis.Y.value] == 10
