"""Deterministic discrete-event simulator of a distributed-memory machine.

``P`` rank programs (``async def`` coroutines) run under a single OS
thread.  Each rank owns a *virtual clock*; awaited operations advance it
according to the :class:`~repro.cluster.model.MachineModel`:

* ``ComputeOp(dt)``            — ``clock += dt`` (charged to ``T_comp``).
* ``SendOp`` / ``RecvOp``      — rendezvous: both sides complete at
  ``max(post times) + Ts + nbytes·Tc``.  The transfer portion
  (``Ts + nbytes·Tc``) is charged to the rank's ``T_comm`` and the time
  spent waiting for the partner to arrive (``max(posts) − own post``) to
  its ``wait_time`` — keeping ``T_comm`` aligned with the paper's pure
  communication terms while the makespan still reflects skew.
* ``SendRecvOp``               — full-duplex pairwise exchange: each side
  completes at ``max(post times) + Ts + incoming_bytes·Tc`` (its own
  outgoing transfer overlaps), which is exactly the per-stage
  communication term of the paper's eqs. (2), (4), (6), (8).
* ``BarrierOp``                — all ranks released at
  ``max(post times) + Ts·ceil(log2 P)`` (tree barrier).

Arrival times optionally route through a pluggable
:class:`~repro.cluster.model.Network` (``network=``): the default flat
link prices exactly ``Ts + nbytes·Tc`` as above, while switched
topologies (fat-tree, torus, dragonfly) add per-link contention queues
on top of the same endpoint cost.

Two schedulers drive the coroutines:

* ``engine="event"`` (default) — a single min-heap of ready ranks keyed
  ``(virtual clock, rank, sequence)``.  Popping the earliest entry runs
  that rank until it blocks; a blocking operation attempts its match
  *immediately* against the partner's posted state, and a successful
  match re-schedules both sides at their completion clocks.  Idle ranks
  cost zero scheduler work, so a run is ``O(events · log P)`` instead of
  the lockstep engine's ``O(rounds · P)`` — serialized protocols such as
  a linear gather drop from ``O(P²)`` to ``O(P log P)``.
* ``engine="lockstep"`` — the original round-robin reference: step every
  ready rank in rank order, then resolve all possible matches, repeat.
  Kept as the oracle for engine-equivalence tests and benchmarks.

Both engines are deterministic and — on the flat network — produce
bit-identical results: the same images, statistics, per-stage counters
and per-rank trace sequences.  The match timings are order-independent
(every blocking completion is a pure function of the two posts), so the
only freedom between the engines is *when* a match is discovered, which
is unobservable in virtual time.

Schedule exploration: the engine's residual ordering freedom —
same-clock heap ties, the ANY_TAG wildcard's choice among pending
per-tag channels, and probabilistic fault firings — can be handed to a
:class:`~repro.cluster.schedule_policy.SchedulePolicy` (``policy=``).
With no policy (or the deterministic one) nothing changes; an exploring
policy reorders only within those freedoms and records every decision
for bit-exact replay.  Exact-tag-before-wildcard precedence and
per-``(src, dst, tag)`` FIFO are pinned invariants no policy can break.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Coroutine, Optional

from collections import deque

from ..errors import (
    ConfigurationError,
    DeadlineExceededError,
    DeadlockError,
    LivelockError,
    RankFailedError,
    SimulationError,
    WireFormatError,
)
from .events import (
    ANY_TAG,
    BarrierOp,
    ComputeOp,
    IrecvOp,
    IsendOp,
    Op,
    RecvOp,
    Request,
    SendOp,
    SendRecvOp,
    WaitOp,
)
from .model import MachineModel, Network
from .schedule_policy import SchedulePolicy, state_digest
from .stats import RankStats, RunResult

__all__ = ["Simulator", "TraceEvent", "ENGINES"]

#: Available scheduler engines (see module docstring).
ENGINES = ("event", "lockstep")


class _State(Enum):
    READY = "ready"
    BLOCKED = "blocked"
    DONE = "done"


@dataclass
class TraceEvent:
    """One entry of the optional execution trace."""

    time: float
    rank: int
    kind: str
    detail: str


@dataclass
class _Proc:
    """Book-keeping for one simulated rank."""

    rank: int
    coro: Coroutine[Op, Any, Any]
    clock: float = 0.0
    state: _State = _State.READY
    pending: Optional[Op] = None
    post_time: float = 0.0
    resume_value: Any = None
    return_value: Any = None
    current_stage: int = -1
    stats: RankStats = field(default_factory=lambda: RankStats(rank=-1))

    def __post_init__(self) -> None:
        self.stats = RankStats(rank=self.rank)

    def bucket(self):
        return self.stats.stage(self.current_stage)


class Simulator:
    """Run ``num_ranks`` coroutine programs in deterministic virtual time.

    Parameters
    ----------
    num_ranks:
        Number of simulated processors (``P``); must be positive.
    model:
        The machine cost model used to price every operation.
    trace:
        When true, record a :class:`TraceEvent` per simulator action in
        :attr:`trace_events` (useful for debugging protocols; costs memory).
    max_steps:
        Safety valve against runaway programs: the total number of
        coroutine resumptions is capped.
    network:
        Optional :class:`~repro.cluster.model.Network` topology pricing
        message arrivals.  ``None`` (default) is the paper's flat link,
        ``Ts + nbytes·Tc``, with no contention state.
    engine:
        ``"event"`` (min-heap scheduler, default) or ``"lockstep"``
        (round-robin reference).  Identical results on the flat network.
    policy:
        Optional :class:`~repro.cluster.schedule_policy.SchedulePolicy`
        consulted at the engine's genuine-freedom points (same-clock
        ties, multi-channel wildcard matches, probabilistic fault
        firings).  ``None`` and the deterministic policy run today's
        order bit-identically.  Exploring policies require the event
        engine (the lockstep reference has no policy hooks).
    """

    def __init__(
        self,
        num_ranks: int,
        model: MachineModel,
        *,
        trace: bool = False,
        max_steps: int = 50_000_000,
        network: Network | None = None,
        engine: str = "event",
        policy: SchedulePolicy | None = None,
    ):
        if num_ranks < 1:
            raise ConfigurationError(f"num_ranks must be >= 1, got {num_ranks}")
        if engine not in ENGINES:
            raise ConfigurationError(
                f"unknown simulator engine {engine!r}; choose from {ENGINES}"
            )
        if policy is not None and policy.explores_any and engine != "event":
            raise ConfigurationError(
                f"schedule policy {policy.name!r} explores orderings, which "
                f"only the event engine supports; rerun with engine='event'"
            )
        self.num_ranks = int(num_ranks)
        self.model = model
        self.trace = bool(trace)
        self.trace_events: list[TraceEvent] = []
        self.max_steps = int(max_steps)
        self.network = network
        self.engine = engine
        self.policy = policy
        self._procs: list[_Proc] = []
        # Nonblocking machinery: FIFO queues of unmatched requests keyed
        # by (src, dst, tag), and a per-rank incoming-link availability
        # time that serializes concurrent background transfers into one
        # receiver (a single NIC drains one message at a time).
        self._pending_isends: dict[tuple[int, int, int], deque] = {}
        self._pending_irecvs: dict[tuple[int, int, int], deque] = {}
        self._link_free: list[float] = []
        # Event-engine state: min-heap of (clock, rank, seq, proc) for
        # READY procs; None while the lockstep engine drives the run.
        self._heap: list | None = None
        self._seq = 0
        self._steps = 0
        self._done_count = 0

    # ------------------------------------------------------------------ api
    def run(self, program_factory: Callable[["RankContext"], Coroutine]) -> RunResult:
        """Instantiate one program per rank and run to completion.

        ``program_factory(ctx)`` must return a coroutine; ``ctx`` exposes
        the rank's communication API (see :class:`RankContext`).
        """
        from .context import RankContext  # local import to avoid a cycle

        self._procs = []
        self._pending_isends.clear()
        self._pending_irecvs.clear()
        self._link_free = [0.0] * self.num_ranks
        self._heap = None
        self._seq = 0
        self._steps = 0
        self._done_count = 0
        if self.network is not None:
            self.network.reset(self.num_ranks)
        for rank in range(self.num_ranks):
            proc = _Proc(rank=rank, coro=None)  # type: ignore[arg-type]
            ctx = RankContext(simulator=self, proc=proc)
            coro = program_factory(ctx)
            if not hasattr(coro, "send"):
                raise ConfigurationError(
                    "program_factory must return a coroutine (use 'async def'), "
                    f"got {type(coro).__name__}"
                )
            proc.coro = coro
            self._procs.append(proc)

        try:
            if self.engine == "event":
                self._event_engine()
            else:
                self._lockstep_engine()
        except BaseException:
            self._close_all()
            raise

        makespan = max((p.clock for p in self._procs), default=0.0)
        return RunResult(
            num_ranks=self.num_ranks,
            returns=[p.return_value for p in self._procs],
            rank_stats=[p.stats for p in self._procs],
            makespan=makespan,
        )

    # ------------------------------------------------------ min-heap engine
    def _event_engine(self) -> None:
        """Pop ready ranks in (clock, rank, seq) order; match on block."""
        self._heap = []
        for proc in self._procs:
            self._schedule(proc)
        explore_ties = self.policy is not None and self.policy.explores_ties
        while self._heap:
            if explore_ties:
                proc = self._pop_with_tie_choice()
                if proc is None:
                    continue
            else:
                _, _, _, proc = heapq.heappop(self._heap)
                if proc.state is not _State.READY:
                    continue  # defensively skip a stale entry
            self._advance(proc)
        if self._done_count < self.num_ranks:
            self._raise_deadlock()

    def _pop_with_tie_choice(self) -> "_Proc | None":
        """Heap pop that lets the schedule policy pick among clock ties.

        Gathers every READY entry sharing the minimum virtual clock —
        the set of legal next steps — and asks the policy for one;
        candidates are canonically sorted by ``(rank, seq)`` so index 0
        is exactly the default heap order.  Unchosen entries go back on
        the heap untouched.
        """
        heap = self._heap
        entry = heapq.heappop(heap)
        if entry[3].state is not _State.READY:
            return None
        ties = [entry]
        while heap and heap[0][0] == entry[0]:
            nxt = heapq.heappop(heap)
            if nxt[3].state is _State.READY:
                ties.append(nxt)
        if len(ties) == 1:
            return ties[0][3]
        ties.sort(key=lambda e: (e[1], e[2]))
        candidates = [{"rank": e[1], "seq": e[2]} for e in ties]
        index = self.policy.decide("tie", candidates, self._decision_digest())
        chosen = ties.pop(index)
        for e in ties:
            heapq.heappush(heap, e)
        return chosen[3]

    def _decision_digest(self) -> str:
        """Stable digest of the schedulable state at a decision point.

        Per-rank clocks/states plus the pending nonblocking queues
        (keys, depths, head post times) — enough to detect replay
        divergence and to deduplicate DFS states, cheap enough to
        compute per decision.
        """
        ranks = tuple(
            (p.rank, p.state.value, p.clock, type(p.pending).__name__)
            for p in self._procs
        )
        sends = tuple(
            (key, len(q), q[0].post_time)
            for key, q in sorted(self._pending_isends.items())
            if q
        )
        recvs = tuple(
            (key, len(q)) for key, q in sorted(self._pending_irecvs.items()) if q
        )
        return state_digest((ranks, sends, recvs))

    def _schedule(self, proc: _Proc) -> None:
        """Enqueue a READY proc at its current clock (event engine only)."""
        if self._heap is None or proc.state is not _State.READY:
            return
        self._seq += 1
        heapq.heappush(self._heap, (proc.clock, proc.rank, self._seq, proc))

    def _advance(self, proc: _Proc) -> None:
        """Run one rank until it blocks or finishes, then try its match."""
        while proc.state is _State.READY:
            self._count_step()
            self._step(proc)
        if proc.state is _State.DONE:
            self._done_count += 1
            # A rank exiting can complete (or poison) a pending barrier.
            self._try_release_barrier()
            return
        op = proc.pending
        if isinstance(op, RecvOp):
            self._try_match_recv(proc, op)
        elif isinstance(op, SendOp):
            # The receiver side owns recv-matching; poke it if it is
            # already blocked on us.  An out-of-range dst simply never
            # matches (surfacing as a deadlock, like the lockstep engine).
            if 0 <= op.dst < self.num_ranks:
                receiver = self._procs[op.dst]
                if receiver.state is _State.BLOCKED and isinstance(
                    receiver.pending, RecvOp
                ):
                    self._try_match_recv(receiver, receiver.pending)
        elif isinstance(op, SendRecvOp):
            self._try_match_exchange(proc, op)
        elif isinstance(op, WaitOp):
            if not self._try_complete_wait(proc, op):
                for request in op.requests:
                    if not request.matched:
                        request.waiter = proc
        elif isinstance(op, BarrierOp):
            self._try_release_barrier()

    def _count_step(self) -> None:
        self._steps += 1
        if self._steps > self.max_steps:
            raise SimulationError(
                f"exceeded max_steps={self.max_steps}; "
                "likely an unbounded loop in a rank program"
            )
        policy = self.policy
        if (
            policy is not None
            and policy.event_budget is not None
            and self._steps > policy.event_budget
        ):
            raise LivelockError(
                f"interleaving exceeded the event budget "
                f"({policy.event_budget} steps) under schedule policy "
                f"{policy.name!r} — classified as livelock"
            )

    def _raise_deadlock(self) -> None:
        blocked = {}
        last_progress = {}
        for p in self._procs:
            if p.state is _State.BLOCKED:
                blocked[p.rank] = f"{p.pending!r} (stage {p.current_stage})"
                last_progress[p.rank] = p.post_time
        sched: dict = {}
        if self.policy is not None and self.policy.explores_any:
            # Embed the explored schedule so the hang reproduces from
            # the error message alone (path when a trace file is
            # arranged, the inline decision list otherwise).
            sched = dict(
                sched_policy=self.policy.name,
                sched_trace=self.policy.trace_path,
                sched_decisions=list(self.policy.decisions),
            )
        raise DeadlockError(blocked, last_progress=last_progress, **sched)

    # ------------------------------------------------------ lockstep engine
    def _lockstep_engine(self) -> None:
        """Reference scheduler: step every rank, resolve matches, repeat."""
        while True:
            stepped = False
            for proc in self._procs:
                while proc.state is _State.READY:
                    stepped = True
                    self._count_step()
                    self._step(proc)
            if all(p.state is _State.DONE for p in self._procs):
                return
            matched = self._resolve_matches()
            if not matched and not stepped:
                self._raise_deadlock()

    def _step(self, proc: _Proc) -> None:
        value, proc.resume_value = proc.resume_value, None
        try:
            op = proc.coro.send(value)
        except StopIteration as stop:
            proc.state = _State.DONE
            proc.return_value = stop.value
            self._trace(proc, "done", "")
            return
        except WireFormatError:
            # Detected corruption must surface as itself (the typed
            # contract of the CRC check), not wrapped as a rank failure.
            raise
        except DeadlineExceededError:
            # A deadline abort is the serving layer's verdict on the
            # whole job, not one rank's failure — recovery must not
            # degrade/respawn its way past it.
            raise
        except Exception as exc:
            raise RankFailedError(
                proc.rank, exc, events=proc.stats.events
            ) from exc

        if isinstance(op, ComputeOp):
            proc.clock += op.seconds
            bucket = proc.bucket()
            bucket.comp_time += op.seconds
            bucket.add_counter(op.kind, op.count)
            self._trace(proc, "compute", f"{op.kind} dt={op.seconds:.3e} count={op.count}")
            # stays READY; the driving engine resumes it immediately.
        elif isinstance(op, IsendOp):
            request = Request(
                kind="isend", rank=proc.rank, peer=op.dst, tag=op.tag,
                nbytes=op.nbytes, post_time=proc.clock, payload=op.payload,
            )
            self._post_nonblocking(proc, request)
            proc.resume_value = request  # stays READY
        elif isinstance(op, IrecvOp):
            request = Request(
                kind="irecv", rank=proc.rank, peer=op.src, tag=op.tag,
                nbytes=0, post_time=proc.clock,
            )
            self._post_nonblocking(proc, request)
            proc.resume_value = request  # stays READY
        elif isinstance(op, (SendOp, RecvOp, SendRecvOp, BarrierOp, WaitOp)):
            proc.state = _State.BLOCKED
            proc.pending = op
            proc.post_time = proc.clock
            self._trace(proc, "post", repr(op))
        else:
            raise SimulationError(
                f"rank {proc.rank} awaited an unknown object {op!r}; "
                "only repro.cluster.events ops may be awaited"
            )

    # --------------------------------------------------------------- pricing
    def _deliver(self, src: int, dst: int, nbytes: int, start: float) -> float:
        """Arrival time of a message, through the topology when present."""
        if self.network is None:
            return start + self.model.message_time(nbytes)
        return self.network.deliver(src, dst, nbytes, start)

    # ------------------------------------------------ nonblocking machinery
    def _post_nonblocking(self, proc: _Proc, request: Request) -> None:
        """Register an isend/irecv and try to match it immediately."""
        if not (0 <= request.peer < self.num_ranks):
            raise SimulationError(
                f"rank {proc.rank} named peer {request.peer}, outside "
                f"0..{self.num_ranks - 1}"
            )
        if request.kind == "isend":
            key = (request.rank, request.peer, request.tag)  # (src, dst, tag)
            # Exact-tag irecvs take precedence over ANY_TAG wildcards.
            counterpart = self._pending_irecvs.get(key)
            if not counterpart:
                counterpart = self._pending_irecvs.get(
                    (request.rank, request.peer, ANY_TAG)
                )
            if counterpart:
                self._complete_transfer(request, counterpart.popleft())
            else:
                self._pending_isends.setdefault(key, deque()).append(request)
        elif request.tag == ANY_TAG:
            counterpart = self._oldest_pending_isend(request.peer, request.rank)
            if counterpart is not None:
                self._complete_transfer(counterpart, request)
            else:
                key = (request.peer, request.rank, ANY_TAG)
                self._pending_irecvs.setdefault(key, deque()).append(request)
        else:
            key = (request.peer, request.rank, request.tag)
            counterpart = self._pending_isends.get(key)
            if counterpart:
                self._complete_transfer(counterpart.popleft(), request)
            else:
                self._pending_irecvs.setdefault(key, deque()).append(request)
        self._trace(proc, "post", repr(request))

    def _oldest_pending_isend(self, src: int, dst: int) -> "Request | None":
        """Pop the head of one pending ``src → dst`` isend channel.

        The ANY_TAG wildcard match.  Two invariants are pinned — no
        schedule policy can relax them:

        * **Exact before wildcard.**  An arriving isend is offered to
          exact-tag irecvs first (see :meth:`_post_nonblocking`); this
          wildcard path only ever sees messages no exact receive wants.
        * **FIFO per (src, dst, tag).**  Only deque *heads* are
          candidates, so within a channel messages deliver in post
          order (MPI non-overtaking).

        What *is* free is which channel supplies the match when several
        are non-empty.  The default — the oracle order — takes the head
        with the smallest ``(post_time, tag)``: the oldest posted
        message, exact tag value breaking equal posts.  An exploring
        :class:`~repro.cluster.schedule_policy.SchedulePolicy` may pick
        any other candidate head (on a real network any of them could
        arrive first).
        """
        candidates: list[tuple[float, int, tuple[int, int, int]]] = []
        for key, pending in self._pending_isends.items():
            if not pending or key[0] != src or key[1] != dst:
                continue
            candidates.append((pending[0].post_time, key[2], key))
        if not candidates:
            return None
        candidates.sort(key=lambda c: (c[0], c[1]))
        index = 0
        policy = self.policy
        if policy is not None and policy.explores_wildcards and len(candidates) > 1:
            index = policy.decide(
                "wildcard",
                [
                    {"post_time": post, "tag": tag, "src": src, "dst": dst}
                    for post, tag, _ in candidates
                ],
                self._decision_digest(),
            )
        return self._pending_isends[candidates[index][2]].popleft()

    def _complete_transfer(self, send_req: Request, recv_req: Request) -> None:
        """Price a matched background transfer on the receiver's link."""
        dst = recv_req.rank
        start = max(send_req.post_time, recv_req.post_time)
        begin = max(start, self._link_free[dst])
        arrival = self._deliver(send_req.rank, dst, send_req.nbytes, begin)
        self._link_free[dst] = arrival
        for request in (send_req, recv_req):
            request.matched = True
            request.arrival = arrival
        recv_req.payload = send_req.payload
        recv_req.nbytes = send_req.nbytes
        # Byte/message accounting lands in each rank's *current* stage.
        sender_bucket = self._procs[send_req.rank].bucket()
        sender_bucket.bytes_sent += send_req.nbytes
        sender_bucket.msgs_sent += 1
        recv_bucket = self._procs[dst].bucket()
        recv_bucket.bytes_recv += send_req.nbytes
        recv_bucket.msgs_recv += 1
        if self._heap is not None:
            self._notify_waiters(send_req, recv_req)

    def _notify_waiters(self, *requests: Request) -> None:
        """Wake event-engine procs whose WaitOp just became completable."""
        for request in requests:
            waiter = request.waiter
            if waiter is None:
                continue
            request.waiter = None
            if waiter.state is _State.BLOCKED and isinstance(waiter.pending, WaitOp):
                self._try_complete_wait(waiter, waiter.pending)

    def _try_complete_wait(self, proc: _Proc, wop: WaitOp) -> bool:
        if not all(request.matched for request in wop.requests):
            return False
        arrival = max(
            (request.arrival for request in wop.requests), default=proc.post_time
        )
        completion = max(proc.post_time, arrival)
        bucket = proc.bucket()
        # Time visibly spent inside the wait is communication (the rank
        # sits in MPI_Wait); fully-overlapped transfers cost nothing.
        bucket.comm_time += max(0.0, completion - proc.post_time)
        proc.clock = max(proc.clock, completion)
        proc.resume_value = [
            request.payload if request.kind == "irecv" else None
            for request in wop.requests
        ]
        proc.state = _State.READY
        proc.pending = None
        self._trace(proc, "waitdone", f"{len(wop.requests)} reqs t={completion:.6f}")
        self._schedule(proc)
        return True

    # ------------------------------------------------------------- matching
    def _resolve_matches(self) -> bool:
        matched = False
        for proc in self._procs:
            if proc.state is not _State.BLOCKED:
                continue
            op = proc.pending
            if isinstance(op, RecvOp):
                matched |= self._try_match_recv(proc, op)
            elif isinstance(op, SendRecvOp):
                matched |= self._try_match_exchange(proc, op)
            elif isinstance(op, WaitOp):
                matched |= self._try_complete_wait(proc, op)
            # SendOp is matched from the receiver's side; BarrierOp below.
        matched |= self._try_release_barrier()
        return matched

    def _partner(self, rank: int) -> _Proc:
        if not (0 <= rank < self.num_ranks):
            raise SimulationError(f"message names rank {rank}, outside 0..{self.num_ranks - 1}")
        return self._procs[rank]

    def _try_match_recv(self, receiver: _Proc, rop: RecvOp) -> bool:
        sender = self._partner(rop.src)
        if sender.state is not _State.BLOCKED or not isinstance(sender.pending, SendOp):
            return False
        sop = sender.pending
        if sop.dst != receiver.rank:
            return False
        if rop.tag != ANY_TAG and rop.tag != sop.tag:
            return False
        start = max(sender.post_time, receiver.post_time)
        completion = self._deliver(sender.rank, receiver.rank, sop.nbytes, start)
        self._complete_comm(sender, start, completion, sent=sop.nbytes)
        self._complete_comm(receiver, start, completion, received=sop.nbytes)
        receiver.resume_value = sop.payload
        sender.resume_value = None
        self._trace(receiver, "recv", f"from {sender.rank} {sop.nbytes}B t={completion:.6f}")
        self._trace(sender, "send", f"to {receiver.rank} {sop.nbytes}B t={completion:.6f}")
        return True

    def _try_match_exchange(self, a: _Proc, aop: SendRecvOp) -> bool:
        b = self._partner(aop.peer)
        if b.rank == a.rank:
            raise SimulationError(f"rank {a.rank} attempted sendrecv with itself")
        if b.state is not _State.BLOCKED or not isinstance(b.pending, SendRecvOp):
            return False
        bop = b.pending
        if bop.peer != a.rank or bop.tag != aop.tag:
            return False
        start = max(a.post_time, b.post_time)
        # Full duplex: each side pays start-up plus its *incoming* bytes.
        completion_a = self._deliver(b.rank, a.rank, bop.nbytes, start)
        completion_b = self._deliver(a.rank, b.rank, aop.nbytes, start)
        self._complete_comm(a, start, completion_a, sent=aop.nbytes, received=bop.nbytes)
        self._complete_comm(b, start, completion_b, sent=bop.nbytes, received=aop.nbytes)
        a.resume_value = bop.payload
        b.resume_value = aop.payload
        self._trace(a, "exch", f"with {b.rank} out={aop.nbytes}B in={bop.nbytes}B")
        self._trace(b, "exch", f"with {a.rank} out={bop.nbytes}B in={aop.nbytes}B")
        return True

    def _try_release_barrier(self) -> bool:
        waiting = [p for p in self._procs if isinstance(p.pending, BarrierOp)]
        if not waiting:
            return False
        if len(waiting) < sum(1 for p in self._procs if p.state is not _State.DONE):
            return False  # someone has not arrived yet
        if len(waiting) < self.num_ranks:
            ranks = sorted(p.rank for p in waiting)
            raise SimulationError(
                f"barrier posted by ranks {ranks} but other ranks already exited; "
                "every rank must reach every barrier"
            )
        depth = math.ceil(math.log2(self.num_ranks)) if self.num_ranks > 1 else 0
        arrival = max(p.post_time for p in waiting)
        release = arrival + self.model.ts * depth
        for p in waiting:
            self._complete_comm(p, arrival, release)
            p.resume_value = None
            self._trace(p, "barrier", f"released t={release:.6f}")
        return True

    def _complete_comm(
        self,
        proc: _Proc,
        transfer_start: float,
        completion: float,
        *,
        sent: int = 0,
        received: int = 0,
    ) -> None:
        if completion < proc.post_time - 1e-15:
            raise SimulationError(
                f"non-monotonic clock on rank {proc.rank}: "
                f"completion {completion} < post {proc.post_time}"
            )
        bucket = proc.bucket()
        # Split partner-wait (skew) from the transfer itself.
        bucket.wait_time += max(0.0, transfer_start - proc.post_time)
        bucket.comm_time += max(0.0, completion - max(transfer_start, proc.post_time))
        if sent:
            bucket.bytes_sent += sent
        if received:
            bucket.bytes_recv += received
        if isinstance(proc.pending, (SendOp, SendRecvOp)):
            bucket.msgs_sent += 1
        if isinstance(proc.pending, (RecvOp, SendRecvOp)):
            bucket.msgs_recv += 1
        proc.clock = max(proc.clock, completion)
        proc.state = _State.READY
        proc.pending = None
        self._schedule(proc)

    # --------------------------------------------------------------- helpers
    def _trace(self, proc: _Proc, kind: str, detail: str) -> None:
        if self.trace:
            self.trace_events.append(
                TraceEvent(time=proc.clock, rank=proc.rank, kind=kind, detail=detail)
            )

    def _close_all(self) -> None:
        for proc in self._procs:
            if proc.coro is not None and proc.state is not _State.DONE:
                proc.coro.close()
