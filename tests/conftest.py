"""Shared fixtures: small rendered workloads reused across the suite.

Rendering is the slow part of any test, so rendered subimage sets are
cached per (dataset, P, image size, rotation) for the whole session.
All test workloads use shrunken volumes — the algorithms are scale-free.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
import pytest

from repro.render.camera import Camera
from repro.render.raycast import render_subvolume
from repro.render.reference import composite_sequential
from repro.volume.datasets import make_dataset
from repro.volume.partition import depth_order, recursive_bisect

#: Default small volume used across the suite.
SMALL_SHAPE = (32, 32, 16)
#: Default small image side.
SMALL_IMAGE = 48


@lru_cache(maxsize=64)
def rendered_workload(
    dataset: str = "engine_low",
    num_ranks: int = 8,
    image_size: int = SMALL_IMAGE,
    rotation: tuple[float, float, float] = (20.0, 30.0, 0.0),
    volume_shape: tuple[int, int, int] = SMALL_SHAPE,
):
    """Render a small per-rank subimage set (cached for the session).

    Returns ``(subimages, plan, camera)``; treat the subimages as
    read-only — copy before mutating.
    """
    volume, transfer = make_dataset(dataset, volume_shape)
    camera = Camera(
        width=image_size,
        height=image_size,
        volume_shape=volume.shape,
        rot_x=rotation[0],
        rot_y=rotation[1],
        rot_z=rotation[2],
    )
    plan = recursive_bisect(volume.shape, num_ranks)
    subimages = tuple(
        render_subvolume(volume, transfer, camera, plan.extent(rank))
        for rank in range(num_ranks)
    )
    return subimages, plan, camera


@lru_cache(maxsize=64)
def reference_image(
    dataset: str = "engine_low",
    num_ranks: int = 8,
    image_size: int = SMALL_IMAGE,
    rotation: tuple[float, float, float] = (20.0, 30.0, 0.0),
    volume_shape: tuple[int, int, int] = SMALL_SHAPE,
):
    """Sequential depth-order composite of the cached workload."""
    subimages, plan, camera = rendered_workload(
        dataset, num_ranks, image_size, rotation, volume_shape
    )
    order = depth_order(plan, camera.view_dir)
    return composite_sequential(list(subimages), order)


@pytest.fixture
def small_workload():
    """(subimages, plan, camera) for the default small engine workload."""
    return rendered_workload()


@pytest.fixture
def small_reference():
    return reference_image()


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


def random_subimages(rng: np.random.Generator, num_ranks: int, height: int, width: int,
                     density: float = 0.3):
    """Random sparse subimage set (no renderer involved) for protocol tests."""
    from repro.render.image import SubImage

    images = []
    for _ in range(num_ranks):
        mask = rng.random((height, width)) < density
        opacity = np.where(mask, rng.uniform(0.05, 0.9, (height, width)), 0.0)
        intensity = np.where(mask, rng.uniform(0.05, 1.0, (height, width)) * opacity, 0.0)
        images.append(SubImage(intensity=intensity, opacity=opacity))
    return images
