"""Backend.run() returns a uniform result on every substrate."""

import pytest

from repro.cluster.backend import (
    BACKENDS,
    BackendRunResult,
    MPBackend,
    MPIBackend,
    SimBackend,
    make_backend,
)
from repro.cluster.model import SP2
from repro.cluster.run_timeline import TIMELINE_SCHEMA
from repro.cluster.stats import RunResult
from repro.errors import ConfigurationError


async def _pair_program(ctx, base):
    """XOR-partner exchange; each rank reports its partner's payload size."""
    ctx.begin_stage(0)
    peer = ctx.rank ^ 1
    payload = bytes(base + ctx.rank)
    got = await ctx.sendrecv(peer, payload, tag=0) if ctx.size > 1 else payload
    await ctx.charge_over(50)
    await ctx.barrier()
    return len(got)


async def _nonblocking_program(ctx):
    """Overlapped isend/irecv with out-of-order waits (FIFO pairing)."""
    ctx.begin_stage(0)
    peer = ctx.rank ^ 1
    if ctx.rank == 0:
        first = await ctx.isend(peer, b"first", tag=5)
        second = await ctx.isend(peer, b"second!", tag=5)
        await ctx.wait_all([first, second])
        return None
    req_a = await ctx.irecv(peer, tag=5)
    req_b = await ctx.irecv(peer, tag=5)
    # Waiting the *second* request first must still pair payloads in
    # post order: req_a gets the first message, req_b the second.
    late = await ctx.wait(req_b)
    early = await ctx.wait(req_a)
    return early, late


class TestSimBackend:
    def test_uniform_result(self):
        result = SimBackend().run(4, _pair_program, (3,), model=SP2)
        assert isinstance(result, BackendRunResult)
        assert result.backend == "sim" and result.clock == "modelled"
        assert result.returns == [4, 3, 6, 5]
        assert result.makespan > 0
        assert result.wall_times == [0.0] * 4
        assert all(rs.stage(0).counters["over"] == 50 for rs in result.rank_stats)

    def test_model_is_required(self):
        with pytest.raises(ConfigurationError, match="MachineModel"):
            SimBackend().run(2, _pair_program, (0,))

    def test_trace_flag_fills_events(self):
        traced = SimBackend().run(2, _pair_program, (0,), model=SP2, trace=True)
        untraced = SimBackend().run(2, _pair_program, (0,), model=SP2)
        assert traced.trace_events and not untraced.trace_events

    def test_to_run_result_view(self):
        result = SimBackend().run(2, _pair_program, (0,), model=SP2)
        view = result.to_run_result()
        assert isinstance(view, RunResult)
        assert view.makespan == result.makespan
        assert view.mmax_bytes > 0


class TestMPBackend:
    def test_uniform_result(self):
        result = MPBackend().run(2, _pair_program, (3,))
        assert result.backend == "mp" and result.clock == "wall"
        assert result.returns == [4, 3]
        assert len(result.wall_times) == 2 and all(w > 0 for w in result.wall_times)
        assert result.makespan == max(result.wall_times)
        assert all(rs.stage(0).counters["over"] == 50 for rs in result.rank_stats)

    def test_perf_reports_per_rank(self):
        result = MPBackend().run(2, _pair_program, (0,))
        assert len(result.rank_perf) == 2
        for report in result.rank_perf:
            assert "backend.mp.rank_program" in report["timers"]

    def test_nonblocking_verbs_with_out_of_order_waits(self):
        result = MPBackend().run(2, _nonblocking_program)
        assert result.returns[1] == (b"first", b"second!")

    def test_byte_counters_match_simulator(self):
        sim = SimBackend().run(4, _pair_program, (3,), model=SP2)
        mp = MPBackend().run(4, _pair_program, (3,))
        for rs_sim, rs_mp in zip(sim.rank_stats, mp.rank_stats):
            assert rs_sim.bytes_sent == rs_mp.bytes_sent
            assert rs_sim.bytes_recv == rs_mp.bytes_recv
            assert rs_sim.msgs_sent == rs_mp.msgs_sent
            assert rs_sim.msgs_recv == rs_mp.msgs_recv


class TestRegistry:
    def test_all_three_backends_registered(self):
        assert set(BACKENDS) == {"sim", "mp", "mpi"}
        assert isinstance(make_backend("sim"), SimBackend)
        assert isinstance(make_backend("mp"), MPBackend)
        assert isinstance(make_backend("mpi"), MPIBackend)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            make_backend("threads")


class TestTimelineExport:
    def test_every_backend_exports_the_same_schema(self):
        sim_tl = SimBackend().run(2, _pair_program, (0,), model=SP2).timeline()
        mp_tl = MPBackend().run(2, _pair_program, (0,)).timeline()
        assert sim_tl.to_dict()["schema"] == TIMELINE_SCHEMA
        assert mp_tl.to_dict()["schema"] == TIMELINE_SCHEMA
        assert sim_tl.clock == "modelled" and mp_tl.clock == "wall"
