#!/usr/bin/env python
"""Visualize per-rank activity of a compositing run as an ASCII Gantt.

A debugging/teaching aid: shows when each simulated rank computes (#),
transfers (=) and waits for its partner (.).  Comparing BSBR with BSLC
makes the paper's load-balancing argument visible — BSBR's uneven
rectangles leave some ranks idling, BSLC's interleaving removes nearly
all the wait.

Usage:
    python examples/timeline_gantt.py [--dataset engine_high] [--ranks 8]
"""

import argparse
import sys

from repro.analysis.timeline import ascii_gantt
from repro.experiments.harness import run_method, workload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="engine_high")
    parser.add_argument("--ranks", type=int, default=8)
    parser.add_argument("--full", action="store_true")
    parser.add_argument("--methods", nargs="*", default=["bsbr", "bslc", "bsbrc"])
    args = parser.parse_args(argv)

    if args.full:
        image_size, volume_shape = 384, None
    else:
        image_size, volume_shape = 96, (64, 64, 28)

    work = workload(
        args.dataset, image_size, max_ranks=max(args.ranks, 8),
        volume_shape=volume_shape,
    )
    for method in args.methods:
        row, run = run_method(work, method, args.ranks)
        print(
            ascii_gantt(
                run.stats,
                title=(
                    f"\n{method.upper()} on {args.dataset}, P={args.ranks} "
                    f"(T_total {row.t_total * 1e3:.2f} ms, "
                    f"wait {run.stats.t_wait_max * 1e3:.2f} ms max)"
                ),
            )
        )
    print(
        "\nNote the '.' columns: BSBR ranks with small bounding rectangles"
        "\nfinish their over work early and stall at the next rendezvous;"
        "\nBSLC's interleaved distribution spreads the work and the waits"
        "\nnearly vanish — the static load balancing of the paper's §3.3."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
