"""The streaming progress plane: bit-exact partial frames, zero accounting.

Locks the ProgressFeed contracts the serving layer depends on:

* stage events are bit-identical to the recovery layer's
  ``CheckpointSnapshot`` images (same emission point, same pixels);
* tile events carry the tile's *final* pixels;
* an installed feed changes nothing — pixels, integer byte/message
  counters, and modelled times are identical with and without one;
* coverage is monotone, ends at 1.0, and survives degraded re-runs;
* live feeds are simulator-only, and the ``repro.serve-event/1``
  document round-trips losslessly.
"""

import threading

import numpy as np
import pytest

from repro.cluster.backend import SimBackend
from repro.cluster.faults import FaultPlan, FaultRule
from repro.cluster.progress import (
    SERVE_EVENT_SCHEMA,
    ProgressFeed,
    serve_event_from_dict,
)
from repro.cluster.recovery import MemoryCheckpointStore, StageCheckpointer
from repro.cluster.run_timeline import progress_meta
from repro.compositing.registry import make_compositor
from repro.errors import ConfigurationError
from repro.pipeline.config import RunConfig
from repro.pipeline.phases import build_scene
from repro.pipeline.system import SortLastSystem
from repro.render.raycast import render_subvolume


def _cfg(**kw):
    base = dict(
        dataset="sphere",
        image_size=64,
        num_ranks=4,
        method="binary-swap:rle",
        volume_shape=(32, 32, 16),
    )
    base.update(kw)
    return RunConfig(**base)


def _coverages(feed):
    return [event.coverage for event in feed.events]


class TestStageEvents:
    def test_stage_frames_bit_identical_to_checkpoints(self):
        """A streamed stage frame IS the checkpoint image, byte for byte."""
        cfg = _cfg()
        scene = build_scene(cfg)
        compositor = make_compositor(cfg.method)
        store = MemoryCheckpointStore()
        feed = ProgressFeed()
        view_dir = scene.camera.view_dir

        async def program(ctx):
            ctx.install_checkpointer(
                StageCheckpointer(store, ctx.rank, sink=ctx.stats.events)
            )
            ctx.install_progress(feed)
            extent = scene.plan.extent(ctx.rank)
            local = render_subvolume(
                scene.volume, scene.transfer, scene.camera, extent
            )
            await compositor.run(ctx, local, scene.plan, view_dir)

        SimBackend().run(cfg.num_ranks, program, model=cfg.machine)
        stage_events = [e for e in feed.events if e.kind == "stage"]
        assert stage_events, "scheduled engine emitted no stage events"
        for event in stage_events:
            snapshot = store.load(event.rank, event.stage)
            assert snapshot is not None
            assert np.array_equal(event.intensity, snapshot.intensity)
            assert np.array_equal(event.opacity, snapshot.opacity)

    def test_every_rank_and_stage_is_covered(self):
        cfg = _cfg()
        feed = ProgressFeed()
        SortLastSystem(cfg).run(progress=feed)
        stage_events = [e for e in feed.events if e.kind == "stage"]
        # binary swap over 4 ranks: log2(4) = 2 stages per rank.
        assert len(stage_events) == cfg.num_ranks * 2
        seen = {(e.rank, e.ordinal) for e in stage_events}
        assert seen == {(r, k) for r in range(4) for k in range(2)}
        assert all(e.num_stages == 2 for e in stage_events)

    def test_stage_event_part_matches_keep_region(self):
        feed = ProgressFeed()
        SortLastSystem(_cfg()).run(progress=feed)
        for event in feed.events:
            if event.kind == "stage":
                assert (event.part_rect is not None) or (
                    event.part_indices is not None
                )


class TestTileEvents:
    def test_tile_pixels_are_final(self):
        cfg = _cfg(method="tile-routed:rle")
        feed = ProgressFeed()
        result = SortLastSystem(cfg).run(progress=feed)
        tiles = [e for e in feed.events if e.kind == "tile"]
        assert len(tiles) == 4  # 64px frame / 32px tiles
        for event in tiles:
            rect = event.rect
            assert np.array_equal(
                event.intensity,
                result.final_image.intensity[rect.y0 : rect.y1, rect.x0 : rect.x1],
            )
            assert np.array_equal(
                event.opacity,
                result.final_image.opacity[rect.y0 : rect.y1, rect.x0 : rect.x1],
            )

    def test_tile_times_match_stats_events(self):
        cfg = _cfg(method="tile-routed:raw")
        feed = ProgressFeed()
        result = SortLastSystem(cfg).run(progress=feed)
        stats_events = sorted(
            (ev["rank"], ev["tile"], ev["t"])
            for ev in result.timeline.events
            if ev.get("event") == "tile_complete"
        )
        feed_events = sorted(
            (e.rank, e.tile, e.t) for e in feed.events if e.kind == "tile"
        )
        assert stats_events == feed_events


class TestNoAccountingImpact:
    @pytest.mark.parametrize("method", ["binary-swap:rle", "tile-routed:rle", "bsbrc"])
    def test_feed_changes_nothing(self, method):
        cfg = _cfg(method=method)
        with_feed = SortLastSystem(cfg).run(progress=ProgressFeed())
        without = SortLastSystem(cfg).run()
        assert np.array_equal(
            with_feed.final_image.intensity, without.final_image.intensity
        )
        assert np.array_equal(
            with_feed.final_image.opacity, without.final_image.opacity
        )
        # Full per-rank timeline: modelled times, byte/msg counters, all.
        assert (
            with_feed.timeline.to_dict()["ranks"]
            == without.timeline.to_dict()["ranks"]
        )
        assert with_feed.timeline.makespan == without.timeline.makespan


class TestCoverage:
    @pytest.mark.parametrize("method", ["binary-swap:rle", "tile-routed:rle"])
    def test_monotone_and_complete(self, method):
        feed = ProgressFeed()
        SortLastSystem(_cfg(method=method)).run(progress=feed)
        covs = _coverages(feed)
        assert all(a <= b for a, b in zip(covs, covs[1:]))
        assert feed.events[-1].kind == "final"
        assert feed.events[-1].coverage == 1.0
        assert feed.closed

    def test_final_event_is_the_display_image(self):
        feed = ProgressFeed()
        result = SortLastSystem(_cfg()).run(progress=feed)
        final = feed.events[-1]
        assert final.outcome == "clean"
        assert not final.degraded
        assert np.array_equal(final.intensity, result.final_image.intensity)
        assert np.array_equal(final.opacity, result.final_image.opacity)

    def test_degraded_rerun_keeps_coverage_monotone(self):
        plan = FaultPlan(rules=(FaultRule(kind="crash", rank=1, stage=1),), seed=3)
        feed = ProgressFeed()
        result = SortLastSystem(_cfg(recovery="degrade")).run(
            fault_plan=plan, progress=feed
        )
        assert result.degraded
        covs = _coverages(feed)
        assert all(a <= b for a, b in zip(covs, covs[1:]))
        final = feed.events[-1]
        assert final.kind == "final"
        assert final.degraded
        assert final.outcome == "degraded"
        assert np.array_equal(final.intensity, result.final_image.intensity)

    def test_resumed_rerun_streams_to_clean_final(self):
        plan = FaultPlan(rules=(FaultRule(kind="crash", rank=1, stage=1),), seed=3)
        feed = ProgressFeed()
        result = SortLastSystem(_cfg(recovery="checkpoint-resume")).run(
            fault_plan=plan, progress=feed
        )
        assert result.recovered and not result.degraded
        covs = _coverages(feed)
        assert all(a <= b for a, b in zip(covs, covs[1:]))
        assert feed.events[-1].outcome == "resumed"
        clean = SortLastSystem(_cfg()).run()
        assert np.array_equal(
            feed.events[-1].intensity, clean.final_image.intensity
        )


class TestFeedMechanics:
    def test_stream_delivers_live_from_another_thread(self):
        feed = ProgressFeed()
        got: list = []

        def consume():
            got.extend(feed.stream())

        consumer = threading.Thread(target=consume)
        consumer.start()
        SortLastSystem(_cfg()).run(progress=feed)
        consumer.join(timeout=30.0)
        assert not consumer.is_alive()
        assert [e.seq for e in got] == [e.seq for e in feed.events]

    def test_stream_timeout_ends_early(self):
        feed = ProgressFeed()
        assert list(feed.stream(timeout=0.01)) == []

    def test_live_feed_rejected_on_mp_backend(self):
        with pytest.raises(ConfigurationError, match="simulator"):
            SortLastSystem(_cfg(backend="mp")).run(progress=ProgressFeed())

    def test_progress_meta_lands_in_timeline(self):
        feed = ProgressFeed()
        result = SortLastSystem(_cfg()).run(progress=feed)
        meta = result.timeline.meta
        assert meta["progress_events"] == len(feed.events)
        assert meta["progress_coverage"] == 1.0
        assert meta["progress_kinds"]["final"] == 1
        assert progress_meta(None) == {}
        # No feed -> no progress keys at all.
        bare = SortLastSystem(_cfg()).run()
        assert "progress_events" not in bare.timeline.meta


class TestServeEventSchema:
    def test_round_trip(self):
        feed = ProgressFeed()
        SortLastSystem(_cfg(method="tile-routed:rle")).run(progress=feed)
        for event in feed.events:
            doc = event.to_dict(job_id="j-1", session="s-1")
            assert doc["schema"] == SERVE_EVENT_SCHEMA
            assert doc["job_id"] == "j-1"
            back = serve_event_from_dict(doc)
            assert back.seq == event.seq
            assert back.kind == event.kind
            assert back.coverage == event.coverage
            assert np.array_equal(back.intensity, event.intensity)
            assert np.array_equal(back.opacity, event.opacity)
            assert back.rect == event.rect

    def test_bad_schema_rejected(self):
        with pytest.raises(ConfigurationError, match="serve-event"):
            serve_event_from_dict({"schema": "repro.serve-event/999"})
