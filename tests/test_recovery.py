"""Recovery subsystem: checkpoints, respawn, and the policy lattice.

The acceptance contract (ISSUE: recovery subsystem):

* a seeded crash at *any* compositing stage under
  ``--recovery checkpoint-resume`` produces a final image and per-rank
  byte/message counters **bit-identical** to the fault-free run, on the
  simulator and on multiprocessing;
* ``--recovery degrade`` still yields a valid degraded image when
  resume is disabled;
* respawn-budget exhaustion (or a protocol-unsafe replay) falls back
  down the lattice instead of hanging;
* every recovery action lands as a structured event in the run
  timeline.

The small pieces — stores, policies, heartbeat staleness, enriched
``DeadlockError`` diagnostics, the retransmit-counter accounting fix —
are unit-tested alongside.
"""

from __future__ import annotations

import pickle
import queue as queue_mod
import signal
import time

import numpy as np
import pytest

from repro.cluster.faults import FaultPlan, FaultRule
from repro.cluster.mp_backend import (
    RETRANSMIT_BUDGET,
    MPRankContext,
    _stale_after,
    run_rank_programs_mp,
)
from repro.cluster.protocol import drive
from repro.cluster.recovery import (
    RECOVERY_POLICIES,
    CheckpointSnapshot,
    DiskCheckpointStore,
    MemoryCheckpointStore,
    RecoveryPolicy,
    RespawnPlan,
    StageCheckpointer,
)
from repro.cluster.stats import RankStats
from repro.errors import (
    ConfigurationError,
    DeadlockError,
    RankFailedError,
    SimulationError,
)
from repro.pipeline.config import RunConfig
from repro.pipeline.phases import GATHER_STAGE
from repro.pipeline.system import SortLastSystem

pytestmark = pytest.mark.recovery

_WATCHDOG_SECONDS = 120


@pytest.fixture(autouse=True)
def _hang_watchdog():
    """Hard per-test hang guard (see test_chaos for the rationale)."""

    def _fire(signum, frame):  # pragma: no cover - only on a real hang
        raise RuntimeError(
            f"recovery test exceeded the {_WATCHDOG_SECONDS}s hang watchdog"
        )

    previous = signal.signal(signal.SIGALRM, _fire)
    signal.alarm(_WATCHDOG_SECONDS)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


#: The crash matrix: paper methods plus engine combos, covering rect
#: and index parts, RLE and raw codecs, and a multi-round radix plan.
MATRIX_METHODS = (
    ("bs", {}),
    ("bsbrc", {}),
    ("radix-k:rect-rle", {"radix": [4, 4]}),
    ("sectioned:rle", {}),
)
BACKENDS = ("sim", "mp")
NUM_RANKS = 4


def _config(method: str, options: dict, recovery: str = "checkpoint-resume") -> RunConfig:
    return RunConfig(
        dataset="engine_low",
        image_size=32,
        num_ranks=NUM_RANKS,
        method=method,
        method_options=options,
        volume_shape=(32, 32, 16),
        comm_timeout=5.0,
        recovery=recovery,
    )


def _images_equal(a, b) -> bool:
    return np.array_equal(a.intensity, b.intensity) and np.array_equal(
        a.opacity, b.opacity
    )


def _comm_fingerprint(result) -> list[tuple]:
    """Deterministic per-rank, per-stage byte/message counts (no times)."""
    rows = []
    for rs in result.compositing.stats.rank_stats:
        for k in sorted(rs.stages):
            b = rs.stages[k]
            rows.append(
                (rs.rank, k, b.bytes_sent, b.bytes_recv, b.msgs_sent, b.msgs_recv)
            )
    return rows


_BASELINES: dict[tuple, object] = {}


def _baseline(method: str, options: dict, backend: str):
    key = (method, repr(sorted(options.items())), backend)
    found = _BASELINES.get(key)
    if found is None:
        found = SortLastSystem(_config(method, dict(options))).run(backend=backend)
        _BASELINES[key] = found
    return found


def _composite_stages(result) -> list[int]:
    """Exchange-stage indices of a run (pre-scan and gather excluded)."""
    return sorted(
        k
        for k in result.compositing.stats.rank_stats[0].stages
        if 0 <= k < GATHER_STAGE
    )


# ---------------------------------------------------------------------------
# The tentpole contract: crash at every stage, recover bit-identically
# ---------------------------------------------------------------------------
class TestCheckpointResumeMatrix:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize(
        "method,options", MATRIX_METHODS, ids=[m for m, _ in MATRIX_METHODS]
    )
    def test_stage_crash_resumes_bit_identically(self, method, options, backend):
        clean = _baseline(method, options, backend)
        stages = _composite_stages(clean)
        assert stages, "matrix method must have at least one exchange stage"
        for stage in stages:
            plan = FaultPlan(
                rules=(FaultRule(kind="crash", rank=1, stage=stage),), seed=3
            )
            result = SortLastSystem(_config(method, dict(options))).run(
                backend=backend, fault_plan=plan
            )
            assert result.recovered, f"stage {stage} was not recovered"
            assert not result.degraded
            assert _images_equal(result.final_image, clean.final_image)
            assert _comm_fingerprint(result) == _comm_fingerprint(clean)

    def test_resume_restores_a_real_checkpoint_at_p8(self):
        """At P=8 a late-stage crash leaves a common checkpoint, so the
        replay genuinely restores state instead of starting over."""
        cfg = RunConfig(
            dataset="engine_low",
            image_size=32,
            num_ranks=8,
            method="bsbrc",
            volume_shape=(32, 32, 16),
            recovery="checkpoint-resume",
        )
        clean = SortLastSystem(cfg).run()
        plan = FaultPlan(rules=(FaultRule(kind="crash", rank=1, stage=2),), seed=3)
        result = SortLastSystem(cfg).run(fault_plan=plan)
        assert result.recovered
        assert _images_equal(result.final_image, clean.final_image)
        assert _comm_fingerprint(result) == _comm_fingerprint(clean)
        recovery = [
            e for e in result.timeline.events if e.get("event") == "recovery"
        ]
        assert recovery and recovery[0]["action"] == "checkpoint-resume"
        assert recovery[0]["resume_stage"] is not None
        restores = [
            e
            for e in result.timeline.events
            if e.get("event") == "checkpoint" and e.get("action") == "restore"
        ]
        assert len(restores) == 8  # every rank restored the common stage

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_degrade_still_works_when_resume_disabled(self, backend):
        plan = FaultPlan(rules=(FaultRule(kind="crash", rank=1, stage=1),), seed=3)
        result = SortLastSystem(_config("bsbrc", {}, recovery="degrade")).run(
            backend=backend, fault_plan=plan
        )
        assert result.degraded and not result.recovered
        reference = result.reference_image()
        assert np.allclose(result.final_image.intensity, reference.intensity)
        assert np.allclose(result.final_image.opacity, reference.opacity)

    def test_timeline_carries_structured_recovery_events(self):
        plan = FaultPlan(rules=(FaultRule(kind="crash", rank=1, stage=1),), seed=3)
        result = SortLastSystem(_config("bsbrc", {})).run(
            backend="sim", fault_plan=plan
        )
        events = result.timeline.events
        kinds = {e["event"] for e in events}
        assert {"injected", "detected", "recovery", "checkpoint"} <= kinds
        saves = [
            e
            for e in events
            if e["event"] == "checkpoint" and e["action"] == "save"
        ]
        assert saves  # stage snapshots were actually taken
        assert result.timeline.to_dict()["meta"]["recovered"] is True


# ---------------------------------------------------------------------------
# Multiprocessing respawn: in-place worker restart
# ---------------------------------------------------------------------------
class TestWorkerRespawn:
    def test_render_crash_respawns_without_checkpoints(self):
        """A rank that dies before sending anything replays from scratch
        under plain ``respawn`` — no checkpoint store needed."""
        clean = _baseline("bsbrc", {}, "mp")
        plan = FaultPlan(
            rules=(FaultRule(kind="crash", rank=2, phase="render"),), seed=3
        )
        result = SortLastSystem(_config("bsbrc", {}, recovery="respawn")).run(
            backend="mp", fault_plan=plan
        )
        assert result.recovered and not result.degraded
        assert _images_equal(result.final_image, clean.final_image)
        restarts = [
            e
            for e in result.timeline.events
            if e.get("event") == "respawn" and e.get("action") == "restart"
        ]
        assert restarts and restarts[0]["rank"] == 2
        assert restarts[0]["resume_stage"] is None

    def test_mid_compositing_crash_respawns_from_checkpoint(self):
        clean = _baseline("bsbrc", {}, "mp")
        plan = FaultPlan(rules=(FaultRule(kind="crash", rank=1, stage=1),), seed=3)
        result = SortLastSystem(_config("bsbrc", {})).run(
            backend="mp", fault_plan=plan
        )
        assert result.recovered and not result.degraded
        assert _images_equal(result.final_image, clean.final_image)
        assert _comm_fingerprint(result) == _comm_fingerprint(clean)
        restarts = [
            e
            for e in result.timeline.events
            if e.get("event") == "respawn" and e.get("action") == "restart"
        ]
        assert restarts and restarts[0]["resume_stage"] == 0

    def test_unsafe_replay_falls_back_to_degrade(self):
        """Plain ``respawn`` (no checkpoints) cannot replay a rank that
        already sent messages — the lattice drops to degrade, fast."""
        plan = FaultPlan(rules=(FaultRule(kind="crash", rank=1, stage=1),), seed=3)
        start = time.monotonic()
        result = SortLastSystem(_config("bsbrc", {}, recovery="respawn")).run(
            backend="mp", fault_plan=plan
        )
        assert time.monotonic() - start < 30.0  # no hang, no timeout wait
        assert result.degraded and not result.recovered
        refusals = [
            e
            for e in result.timeline.events
            if e.get("event") == "respawn" and e.get("action") == "refused"
        ]
        assert refusals and refusals[0]["rank"] == 1

    def test_budget_exhaustion_raises_instead_of_looping(self):
        with pytest.raises(RankFailedError) as err:
            run_rank_programs_mp(
                2,
                _always_failing_program,
                timeout=5.0,
                respawn=RespawnPlan(budget=2, args=()),
            )
        events = getattr(err.value, "events", [])
        restarts = [
            e
            for e in events
            if e.get("event") == "respawn" and e.get("action") == "restart"
        ]
        exhausted = [
            e
            for e in events
            if e.get("event") == "respawn" and e.get("action") == "exhausted"
        ]
        assert len(restarts) == 2  # the full budget was spent
        assert exhausted and exhausted[0]["budget"] == 2


async def _always_failing_program(ctx):
    """Crashes before any communication: replay-safe, never succeeds."""
    raise RuntimeError("persistent failure for budget-exhaustion test")


# ---------------------------------------------------------------------------
# Policy lattice
# ---------------------------------------------------------------------------
class TestRecoveryPolicy:
    def test_lattice_ordering(self):
        levels = [RecoveryPolicy(name=n).level for n in RECOVERY_POLICIES]
        assert levels == sorted(levels) and len(set(levels)) == len(levels)

    def test_capabilities_accumulate(self):
        abort = RecoveryPolicy(name="abort")
        assert not (abort.allows_degrade or abort.allows_respawn or abort.allows_resume)
        degrade = RecoveryPolicy(name="degrade")
        assert degrade.allows_degrade and not degrade.allows_respawn
        respawn = RecoveryPolicy(name="respawn")
        assert respawn.allows_degrade and respawn.allows_respawn
        assert not respawn.allows_resume
        resume = RecoveryPolicy(name="checkpoint-resume")
        assert resume.allows_degrade and resume.allows_respawn and resume.allows_resume

    def test_resolve_and_validation(self):
        assert RecoveryPolicy.resolve(None).name == "degrade"
        assert RecoveryPolicy.resolve("respawn", respawn_budget=5).respawn_budget == 5
        already = RecoveryPolicy(name="abort")
        assert RecoveryPolicy.resolve(already) is already
        with pytest.raises(ConfigurationError):
            RecoveryPolicy(name="retry-forever")
        with pytest.raises(ConfigurationError):
            RecoveryPolicy(respawn_budget=-1)

    def test_run_config_validates_recovery_fields(self):
        with pytest.raises(ConfigurationError):
            RunConfig(recovery="nope")
        with pytest.raises(ConfigurationError):
            RunConfig(respawn_budget=-2)
        with pytest.raises(ConfigurationError):
            RunConfig(heartbeat_interval=-1.0)

    def test_abort_policy_reraises(self):
        plan = FaultPlan(rules=(FaultRule(kind="crash", rank=1, stage=0),), seed=3)
        with pytest.raises(RankFailedError):
            SortLastSystem(_config("bsbrc", {}, recovery="abort")).run(
                backend="sim", fault_plan=plan
            )


# ---------------------------------------------------------------------------
# Checkpoint stores
# ---------------------------------------------------------------------------
def _snapshot(stage: int, fill: float, producer: str = "bsbrc") -> CheckpointSnapshot:
    stats = RankStats(rank=0)
    stats.stage(stage).bytes_sent = 123
    return CheckpointSnapshot(
        stage=stage,
        intensity=np.full((4, 4), fill),
        opacity=np.full((4, 4), fill / 2.0),
        codec_state=None,
        stats=stats,
        producer=producer,
    )


class TestCheckpointStores:
    @pytest.mark.parametrize("kind", ("memory", "disk"))
    def test_save_load_latest_clear(self, kind, tmp_path):
        store = (
            MemoryCheckpointStore()
            if kind == "memory"
            else DiskCheckpointStore(str(tmp_path))
        )
        assert store.latest_stage(0) is None
        store.save(0, 0, _snapshot(0, 1.0))
        store.save(0, 1, _snapshot(1, 2.0))
        store.save(1, 0, _snapshot(0, 3.0))
        assert store.latest_stage(0) == 1
        assert store.latest_stage(1) == 0
        loaded = store.load(0, 1)
        assert loaded is not None and loaded.stage == 1
        assert np.array_equal(loaded.intensity, np.full((4, 4), 2.0))
        assert loaded.stats.stages[1].bytes_sent == 123
        assert store.load(2, 0) is None
        store.clear()
        assert store.latest_stage(0) is None and store.load(0, 1) is None

    def test_common_stage_requires_every_rank(self):
        store = MemoryCheckpointStore()
        assert store.common_stage(2) is None
        store.save(0, 0, _snapshot(0, 1.0))
        store.save(0, 1, _snapshot(1, 1.0))
        assert store.common_stage(2) is None  # rank 1 has nothing
        store.save(1, 0, _snapshot(0, 1.0))
        assert store.common_stage(2) == 0  # min over per-rank latests

    def test_disk_store_survives_torn_files_and_isolates_runs(self, tmp_path):
        store = DiskCheckpointStore(str(tmp_path), run_id="aaa")
        store.save(0, 0, _snapshot(0, 1.0))
        # A torn/corrupt checkpoint must read as "absent", not crash.
        path = store._path(0, 1)
        with open(path, "wb") as fh:
            fh.write(b"not a pickle")
        assert store.load(0, 1) is None
        # Unreadable-but-present files still count for latest_stage; a
        # second run id sees none of them.
        other = DiskCheckpointStore(str(tmp_path), run_id="bbb")
        assert other.latest_stage(0) is None
        other.clear()
        assert store.load(0, 0) is not None  # clear() scoped to run id

    def test_disk_store_is_picklable(self, tmp_path):
        store = DiskCheckpointStore(str(tmp_path), run_id="ccc")
        clone = pickle.loads(pickle.dumps(store))
        store.save(3, 2, _snapshot(2, 4.0))
        assert clone.latest_stage(3) == 2  # same root + run id

    def test_checkpointer_skips_stale_producer(self):
        store = MemoryCheckpointStore()
        events: list = []
        saver = StageCheckpointer(store, rank=0, sink=events)
        image = _snapshot(0, 7.0)
        saver.save(0, image, None, RankStats(rank=0), "bsbrc")
        restorer = StageCheckpointer(store, rank=0, resume="latest", sink=events)
        target = _snapshot(0, 0.0)
        assert restorer.restore(target, "radix-k:rect-rle") is None  # stale
        got = restorer.restore(target, "bsbrc")
        assert got is not None and np.array_equal(
            target.intensity, np.full((4, 4), 7.0)
        )
        actions = [(e["event"], e["action"]) for e in events]
        assert actions == [("checkpoint", "save"), ("checkpoint", "restore")]


# ---------------------------------------------------------------------------
# Liveness and diagnosability satellites
# ---------------------------------------------------------------------------
class _EmptyChannel:
    def get(self, timeout=None):
        raise queue_mod.Empty


class _FullChannel:
    def put(self, frame, timeout=None):
        raise queue_mod.Full


class TestLivenessAndDiagnostics:
    def test_stale_heartbeat_fails_long_before_timeout(self):
        queues = [[None, None], [_EmptyChannel(), None]]
        heartbeats = [0.0, time.monotonic() - 100.0]  # peer long dead
        ctx = MPRankContext(
            0, 2, queues, None, 60.0, heartbeats=heartbeats,
            heartbeat_interval=0.25,
        )
        ctx.fault_checkpoint("composite")
        ctx.begin_stage(1)
        start = time.monotonic()
        with pytest.raises(DeadlockError) as err:
            drive(ctx.recv(1))
        assert time.monotonic() - start < 10.0  # not the 60s timeout
        assert err.value.peer == 1
        assert err.value.phase == "composite"
        assert err.value.stage == 1
        assert "stopped heartbeating" in str(err.value)

    def test_never_stamped_heartbeat_is_not_stale(self):
        """Slot 0.0 means the peer has not started yet — the receiver
        must wait out its normal timeout, not declare death."""
        queues = [[None, None], [_EmptyChannel(), None]]
        ctx = MPRankContext(
            0, 2, queues, None, 0.3, heartbeats=[0.0, 0.0],
            heartbeat_interval=0.25,
        )
        with pytest.raises(DeadlockError) as err:
            drive(ctx.recv(1))
        assert "timed out" in str(err.value)  # the plain-timeout path

    def test_stale_after_floor(self):
        assert _stale_after(0.25) == 2.5
        assert _stale_after(1.0) == 10.0

    def test_retransmit_exhaustion_accounts_attempts_and_names_peer(self):
        queues = [[None, _FullChannel()], [None, None]]
        ctx = MPRankContext(0, 2, queues, None, 0.01)
        ctx.begin_stage(1)
        with pytest.raises(SimulationError) as err:
            drive(ctx.send(1, b"payload"))
        message = str(err.value)
        assert "to rank 1" in message and "stage 1" in message
        # The satellite fix: attempts are accounted even on the raise.
        assert ctx.counters.get("retransmits") == RETRANSMIT_BUDGET

    def test_deadlock_error_carries_location(self):
        err = DeadlockError(
            {0: "RecvOp(src=1)"}, phase="composite", stage=2, peer=1
        )
        assert err.phase == "composite" and err.stage == 2 and err.peer == 1
        assert "phase 'composite'" in str(err)
        assert "stage 2" in str(err)
        assert "waiting on rank 1" in str(err)

    def test_deadlock_error_back_compat(self):
        err = DeadlockError({0: "RecvOp(src=1)", 1: "RecvOp(src=0)"})
        assert err.blocked == {0: "RecvOp(src=1)", 1: "RecvOp(src=0)"}
        assert err.phase is None and err.stage is None and err.peer is None
        assert "[" not in str(err)

    def test_sim_deadlock_names_stages(self):
        from repro.cluster.backend import SimBackend
        from repro.cluster.model import SP2

        with pytest.raises(DeadlockError) as err:
            SimBackend().run(2, _deadlock_program, model=SP2)
        assert "(stage 3)" in str(err.value)
        assert set(err.value.blocked) == {0, 1}


async def _deadlock_program(ctx):
    """Both ranks receive, nobody sends: a structural deadlock."""
    ctx.begin_stage(3)
    await ctx.recv((ctx.rank + 1) % ctx.size)
