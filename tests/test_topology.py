"""Tests for communication schedules (binary swap, tree, ring)."""

import pytest

from repro.cluster.topology import (
    binary_swap_partner,
    binary_swap_schedule,
    binary_tree_schedule,
    is_power_of_two,
    keeps_low_half,
    log2_int,
    ring_next,
    ring_prev,
)
from repro.errors import ConfigurationError


class TestPowersOfTwo:
    def test_is_power_of_two(self):
        assert all(is_power_of_two(1 << k) for k in range(12))
        assert not any(is_power_of_two(n) for n in (0, -1, 3, 5, 6, 7, 12, 100))

    def test_log2_int(self):
        assert log2_int(1) == 0
        assert log2_int(64) == 6

    def test_log2_int_rejects(self):
        with pytest.raises(ConfigurationError):
            log2_int(12)


class TestBinarySwap:
    @pytest.mark.parametrize("size", [2, 4, 8, 16, 32, 64])
    def test_partner_is_involution(self, size):
        for stage in range(log2_int(size)):
            for rank in range(size):
                partner = binary_swap_partner(rank, stage, size)
                assert partner != rank
                assert binary_swap_partner(partner, stage, size) == rank

    @pytest.mark.parametrize("size", [2, 8, 64])
    def test_each_stage_is_perfect_matching(self, size):
        for stage in range(log2_int(size)):
            partners = {binary_swap_partner(r, stage, size) for r in range(size)}
            assert partners == set(range(size))

    def test_schedule_visits_distinct_partners(self):
        sched = binary_swap_schedule(5, 16)
        assert len(sched) == 4
        assert len(set(sched)) == 4
        assert sched == [4, 7, 1, 13]

    def test_stage_out_of_range(self):
        with pytest.raises(ConfigurationError):
            binary_swap_partner(0, 3, 8)

    def test_rank_out_of_range(self):
        with pytest.raises(ConfigurationError):
            binary_swap_partner(8, 0, 8)

    def test_keeps_low_half_complementary(self):
        for size in (2, 8, 32):
            for stage in range(log2_int(size)):
                for rank in range(size):
                    partner = binary_swap_partner(rank, stage, size)
                    assert keeps_low_half(rank, stage) != keeps_low_half(partner, stage)

    @pytest.mark.parametrize("size", [2, 4, 8, 16])
    def test_final_ownership_unique(self, size):
        """Following keep decisions through all stages assigns each rank a
        unique leaf of the halving tree (a distinct final image region)."""
        paths = set()
        for rank in range(size):
            path = tuple(keeps_low_half(rank, s) for s in range(log2_int(size)))
            paths.add(path)
        assert len(paths) == size


class TestBinaryTree:
    @pytest.mark.parametrize("size", [2, 4, 8, 16])
    def test_every_nonzero_rank_sends_once(self, size):
        senders = {}
        for rank in range(size):
            steps = binary_tree_schedule(rank, size)
            sends = [s for s in steps if s.role == "send"]
            if rank == 0:
                assert not sends
            else:
                assert len(sends) == 1
                senders[rank] = sends[0].peer

        # Every send goes to a rank that is still alive at that stage.
        for rank, peer in senders.items():
            assert 0 <= peer < rank

    @pytest.mark.parametrize("size", [2, 4, 8, 16])
    def test_recv_matches_send(self, size):
        """For each stage, receivers' peers are exactly that stage's senders."""
        by_stage_send = {}
        by_stage_recv = {}
        for rank in range(size):
            for step in binary_tree_schedule(rank, size):
                key = (step.stage, step.role)
                bucket = by_stage_send if step.role == "send" else by_stage_recv
                bucket.setdefault(step.stage, set()).add((rank, step.peer))
        for stage, sends in by_stage_send.items():
            recvs = by_stage_recv.get(stage, set())
            assert {(peer, rank) for rank, peer in sends} == recvs

    def test_rank0_receives_log_times(self):
        steps = binary_tree_schedule(0, 16)
        assert [s.role for s in steps] == ["recv"] * 4


class TestRing:
    def test_ring_next_prev_inverse(self):
        for size in (1, 2, 5, 8):
            for rank in range(size):
                assert ring_prev(ring_next(rank, size), size) == rank

    def test_ring_wraps(self):
        assert ring_next(7, 8) == 0
        assert ring_prev(0, 8) == 7

    def test_ring_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ring_next(0, 0)
