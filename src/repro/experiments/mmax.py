"""Experiment E9 — the paper's eq. (9) maximum-received-message ordering.

``M_max(BS) ≥ M_max(BSBR) ≥ M_max(BSBRC) ≥ M_max(BSLC)`` must hold for
every dataset and processor count; the harness measures ``M_max`` from
the real serialized message sizes and reports any violation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.metrics import MethodMeasurement, check_mmax_ordering
from ..analysis.tables import format_mmax_table
from ..cluster.model import SP2, MachineModel
from ..compositing.registry import PAPER_METHODS
from ..volume.datasets import PAPER_DATASETS
from .harness import run_grid

__all__ = ["MmaxReport", "run_mmax", "format_mmax"]


@dataclass
class MmaxReport:
    rows: list[MethodMeasurement]
    violations: list[str]

    @property
    def ordering_holds(self) -> bool:
        return not self.violations


def run_mmax(
    *,
    machine: MachineModel = SP2,
    rank_counts=(2, 4, 8, 16, 32, 64),
    image_size: int = 384,
    datasets=PAPER_DATASETS,
    volume_shape=None,
    rel_tolerance: float = 0.05,
    verbose: bool = False,
) -> MmaxReport:
    rows = run_grid(
        datasets,
        image_size,
        rank_counts,
        PAPER_METHODS,
        machine=machine,
        volume_shape=volume_shape,
        verbose=verbose,
    )
    violations: list[str] = []
    for dataset in datasets:
        for num_ranks in rank_counts:
            mmax = {
                r.method: r.mmax_bytes
                for r in rows
                if r.dataset == dataset and r.num_ranks == num_ranks
            }
            for violation in check_mmax_ordering(mmax, rel_tolerance=rel_tolerance):
                violations.append(f"{dataset} P={num_ranks}: {violation}")
    return MmaxReport(rows=rows, violations=violations)


def format_mmax(report: MmaxReport) -> str:
    datasets = list(dict.fromkeys(row.dataset for row in report.rows))
    table = format_mmax_table(
        report.rows,
        methods=list(PAPER_METHODS),
        datasets=datasets,
        title="Equation (9) check: maximum received message size M_max (bytes)",
    )
    if report.ordering_holds:
        verdict = (
            "\nOrdering M_max(BS) >= M_max(BSBR) >= M_max(BSBRC) >= M_max(BSLC): "
            "HOLDS (5% run-code tolerance on the BSBRC/BSLC leg)"
        )
    else:
        verdict = "\nVIOLATIONS:\n  " + "\n  ".join(report.violations)
    return table + verdict
