"""Tests for the ray-casting renderer and the block-composite invariant."""

import numpy as np
import pytest

from repro.errors import RenderError
from repro.render.camera import Camera
from repro.render.raycast import render_full, render_subvolume
from repro.render.reference import composite_sequential
from repro.types import Extent3
from repro.volume.datasets import make_dataset
from repro.volume.partition import depth_order, recursive_bisect


def camera_for(volume, size=48, **kwargs):
    return Camera(width=size, height=size, volume_shape=volume.shape, **kwargs)


class TestRenderBasics:
    def test_sphere_renders_centered_disc(self):
        volume, transfer = make_dataset("sphere", (24, 24, 24))
        cam = camera_for(volume)
        image = render_full(volume, transfer, cam)
        assert image.nonblank_count() > 0
        rect = image.bounding_rect()
        # Centered object: bounding rect roughly centered in the image.
        assert abs((rect.y0 + rect.y1) / 2 - cam.height / 2) < 3
        assert abs((rect.x0 + rect.x1) / 2 - cam.width / 2) < 3

    def test_opacity_in_unit_range(self):
        volume, transfer = make_dataset("engine_low", (24, 24, 12))
        image = render_full(volume, transfer, camera_for(volume))
        assert float(image.opacity.min()) >= 0.0
        assert float(image.opacity.max()) <= 1.0
        assert float(image.intensity.min()) >= 0.0

    def test_empty_extent_gives_blank(self):
        volume, transfer = make_dataset("sphere", (16, 16, 16))
        image = render_subvolume(
            volume, transfer, camera_for(volume), Extent3(0, 0, 0, 0, 16, 16)
        )
        assert image.nonblank_count() == 0

    def test_blank_outside_footprint(self):
        volume, transfer = make_dataset("sphere", (32, 32, 32))
        cam = camera_for(volume, rot_x=15, rot_y=25)
        extent = Extent3(0, 0, 0, 8, 8, 8)  # one corner block
        image = render_subvolume(volume, transfer, cam, extent)
        footprint = cam.footprint_rect(extent.corners())
        mask = image.nonblank_mask()
        outside = mask.copy()
        rows, cols = footprint.slices()
        outside[rows, cols] = False
        assert not outside.any()

    def test_camera_volume_mismatch_rejected(self):
        volume, transfer = make_dataset("sphere", (16, 16, 16))
        cam = Camera(width=32, height=32, volume_shape=(8, 8, 8))
        with pytest.raises(RenderError):
            render_subvolume(volume, transfer, cam, volume.full_extent())

    def test_transparent_transfer_gives_blank(self):
        volume, transfer = make_dataset("sphere", (16, 16, 16))
        opaque_free = transfer.with_window(0.99, 1.0)
        image = render_full(volume, opaque_free, camera_for(volume))
        assert image.nonblank_count() == 0

    def test_deterministic(self):
        volume, transfer = make_dataset("head", (24, 24, 12))
        cam = camera_for(volume, rot_x=30)
        a = render_full(volume, transfer, cam)
        b = render_full(volume, transfer, cam)
        assert np.array_equal(a.intensity, b.intensity)
        assert np.array_equal(a.opacity, b.opacity)


class TestBlockCompositeInvariant:
    """Compositing block renders front-to-back == rendering the union."""

    @pytest.mark.parametrize("dataset", ["sphere", "engine_low", "cube"])
    @pytest.mark.parametrize("num_ranks", [2, 8])
    def test_blocks_equal_full(self, dataset, num_ranks):
        volume, transfer = make_dataset(dataset, (32, 32, 16))
        cam = camera_for(volume, rot_x=20, rot_y=30)
        plan = recursive_bisect(volume.shape, num_ranks)
        subimages = [
            render_subvolume(volume, transfer, cam, plan.extent(r))
            for r in range(num_ranks)
        ]
        combined = composite_sequential(subimages, depth_order(plan, cam.view_dir))
        full = render_full(volume, transfer, cam)
        assert combined.max_abs_diff(full) < 1e-12

    @pytest.mark.parametrize(
        "rotation", [(0, 0, 0), (90, 0, 0), (0, 90, 0), (45, 0, 0), (33, -48, 15)]
    )
    def test_blocks_equal_full_across_viewpoints(self, rotation):
        volume, transfer = make_dataset("engine_high", (32, 32, 16))
        cam = camera_for(
            volume, rot_x=rotation[0], rot_y=rotation[1], rot_z=rotation[2]
        )
        plan = recursive_bisect(volume.shape, 4)
        subimages = [
            render_subvolume(volume, transfer, cam, plan.extent(r)) for r in range(4)
        ]
        combined = composite_sequential(subimages, depth_order(plan, cam.view_dir))
        full = render_full(volume, transfer, cam)
        assert combined.max_abs_diff(full) < 1e-12

    def test_non_unit_step(self):
        volume, transfer = make_dataset("sphere", (32, 32, 32))
        cam = camera_for(volume, rot_x=20, rot_y=30, step=0.5)
        plan = recursive_bisect(volume.shape, 4)
        subimages = [
            render_subvolume(volume, transfer, cam, plan.extent(r)) for r in range(4)
        ]
        combined = composite_sequential(subimages, depth_order(plan, cam.view_dir))
        full = render_full(volume, transfer, cam)
        assert combined.max_abs_diff(full) < 1e-12


class TestSparsityCharacter:
    """The phantoms must reproduce the sparsity regimes the paper relies on."""

    def test_engine_high_subimages_sparser(self):
        shape = (48, 48, 24)
        vol_low, tf_low = make_dataset("engine_low", shape)
        _, tf_high = make_dataset("engine_high", shape)
        cam = camera_for(vol_low, size=64, rot_x=20, rot_y=30)
        low = render_full(vol_low, tf_low, cam)
        high = render_full(vol_low, tf_high, cam)
        assert high.nonblank_count() < low.nonblank_count()

    def test_cube_rect_sparse(self):
        """Cube: large bounding rectangle, low density inside it."""
        volume, transfer = make_dataset("cube", (48, 48, 24))
        cam = camera_for(volume, size=64, rot_x=20, rot_y=30)
        image = render_full(volume, transfer, cam)
        rect = image.bounding_rect()
        density = image.nonblank_count() / rect.area
        assert rect.area > 0.3 * image.num_pixels  # wide footprint
        assert density < 0.7  # but sparse inside

    def test_head_rect_dense(self):
        volume, transfer = make_dataset("head", (48, 48, 24))
        cam = camera_for(volume, size=64, rot_x=20, rot_y=30)
        image = render_full(volume, transfer, cam)
        rect = image.bounding_rect()
        density = image.nonblank_count() / rect.area
        assert density > 0.6
