"""The 2-D subimage produced by the rendering phase.

A :class:`SubImage` is a pair of full-frame ``float64`` planes —
``intensity`` (premultiplied emission) and ``opacity`` — exactly the two
values the paper ships per pixel (16 wire bytes).  A freshly rendered
subimage has non-blank pixels only inside the screen footprint of its
rank's subvolume; the compositing methods exploit that sparsity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import RenderError
from ..types import Rect

__all__ = ["SubImage"]


@dataclass
class SubImage:
    """Full-frame intensity/opacity planes for one rank.

    Planes always have identical ``(height, width)`` shape and float64
    dtype.  Instances are mutable on purpose: compositing stages fold
    received pixels into the local planes in place.
    """

    intensity: np.ndarray
    opacity: np.ndarray

    def __post_init__(self) -> None:
        self.intensity = np.ascontiguousarray(self.intensity, dtype=np.float64)
        self.opacity = np.ascontiguousarray(self.opacity, dtype=np.float64)
        if self.intensity.ndim != 2 or self.intensity.shape != self.opacity.shape:
            raise RenderError(
                f"plane shape mismatch: intensity {self.intensity.shape}, "
                f"opacity {self.opacity.shape}"
            )

    # ---- constructors ------------------------------------------------------
    @staticmethod
    def blank(height: int, width: int) -> "SubImage":
        """All-background image of the given size."""
        if height < 1 or width < 1:
            raise RenderError(f"image size must be positive, got {height}x{width}")
        return SubImage(
            intensity=np.zeros((height, width), dtype=np.float64),
            opacity=np.zeros((height, width), dtype=np.float64),
        )

    def copy(self) -> "SubImage":
        return SubImage(intensity=self.intensity.copy(), opacity=self.opacity.copy())

    # ---- geometry / sparsity --------------------------------------------------
    @property
    def height(self) -> int:
        return self.intensity.shape[0]

    @property
    def width(self) -> int:
        return self.intensity.shape[1]

    @property
    def shape(self) -> tuple[int, int]:
        return self.intensity.shape  # type: ignore[return-value]

    @property
    def num_pixels(self) -> int:
        return self.intensity.size

    def full_rect(self) -> Rect:
        return Rect.full(self.height, self.width)

    def nonblank_mask(self) -> np.ndarray:
        from ..compositing.over import nonblank_mask  # local: avoids cycle

        return nonblank_mask(self.intensity, self.opacity)

    def blank_mask(self) -> np.ndarray:
        from ..compositing.over import is_blank  # local: avoids cycle

        return is_blank(self.intensity, self.opacity)

    def nonblank_count(self) -> int:
        return int(self.nonblank_mask().sum())

    def sparsity(self) -> float:
        """Fraction of blank pixels (1.0 = entirely background)."""
        return 1.0 - self.nonblank_count() / self.num_pixels

    def bounding_rect(self, region: Rect | None = None) -> Rect:
        """Bounding rectangle of non-blank pixels (optionally clipped)."""
        from ..compositing.rect import find_bounding_rect  # local: avoids cycle

        return find_bounding_rect(self.intensity, self.opacity, region)

    # ---- compositing ------------------------------------------------------------
    def composite_under(self, front: "SubImage") -> None:
        """Fold ``front`` over this image, in place (this image is behind)."""
        if front.shape != self.shape:
            raise RenderError(f"cannot composite {front.shape} over {self.shape}")
        from ..compositing.over import over_inplace  # local: avoids cycle

        over_inplace(front.intensity, front.opacity, self.intensity, self.opacity)

    # ---- comparison helpers ---------------------------------------------------
    def allclose(self, other: "SubImage", *, atol: float = 1e-9, rtol: float = 1e-7) -> bool:
        return (
            self.shape == other.shape
            and np.allclose(self.intensity, other.intensity, atol=atol, rtol=rtol)
            and np.allclose(self.opacity, other.opacity, atol=atol, rtol=rtol)
        )

    def max_abs_diff(self, other: "SubImage") -> float:
        if self.shape != other.shape:
            raise RenderError(f"shape mismatch: {self.shape} vs {other.shape}")
        return float(
            max(
                np.abs(self.intensity - other.intensity).max(initial=0.0),
                np.abs(self.opacity - other.opacity).max(initial=0.0),
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SubImage({self.height}x{self.width}, "
            f"nonblank={self.nonblank_count()}/{self.num_pixels})"
        )
