"""The asynchronous tile-routed compositing plane.

Covers the tile grid (:mod:`repro.compositing.tiles`), the barrier-free
engine (:mod:`repro.compositing.tile_engine`), the tag-routed message
pump (:class:`repro.cluster.collectives.TileRouter`), the fused
render+composite pipeline phase, and the acceptance invariant: the
tile-routed result is **bit-identical** to ``binary-swap:raw`` on every
paper dataset, rank count, and substrate.
"""

import numpy as np
import pytest

from conftest import rendered_workload
from repro.cluster.collectives import TileRouter, route_tiles
from repro.cluster.model import IDEALIZED, SP2, make_network
from repro.cluster.run_timeline import tile_latency_metrics
from repro.cluster.simulator import Simulator
from repro.compositing.registry import (
    CODECS,
    SCHEDULES,
    available_methods,
    make_compositor,
    method_catalog,
    validate_method,
)
from repro.compositing.schedule import IndexPart
from repro.compositing.tiles import (
    build_tile_map,
    densify_contribution,
    fold_tile_planes,
    tile_flat_indices,
)
from repro.errors import CompositingError, ConfigurationError
from repro.pipeline.config import RunConfig
from repro.pipeline.system import (
    SortLastSystem,
    assemble_final,
    run_compositing,
    validate_ownership,
)
from repro.render.image import SubImage
from repro.types import Rect
from repro.volume.datasets import PAPER_DATASETS
from repro.volume.folded import refold_survivors
from repro.volume.partition import recursive_bisect

TILE_METHODS = tuple(m for m in available_methods() if m.startswith("tile-routed:"))

SMALL = dict(dataset="engine_low", volume_shape=(24, 24, 12), image_size=32)


def _pipeline(method: str, num_ranks: int, backend: str, **overrides):
    cfg_kwargs = dict(SMALL)
    if backend == "mp":
        # The P=16 matrix oversubscribes CI cores; a generous heartbeat
        # keeps peer-liveness checks from false-positiving under load.
        cfg_kwargs["heartbeat_interval"] = 2.0
    cfg_kwargs.update(overrides)
    cfg = RunConfig(method=method, num_ranks=num_ranks, backend=backend, **cfg_kwargs)
    return SortLastSystem(cfg).run()


# ---- tile grid --------------------------------------------------------------
class TestTileMap:
    @pytest.mark.parametrize("tile", [1, 5, 16, 100])
    @pytest.mark.parametrize("shape", [(32, 32), (33, 17), (7, 48)])
    def test_rects_partition_the_frame(self, tile, shape):
        frame = Rect.full(*shape)
        tile_map = build_tile_map(frame, tile, 4)
        covered = np.zeros(shape, dtype=int)
        for tid in range(tile_map.num_tiles):
            rect = tile_map.rect(tid)
            assert frame.contains(rect) and not rect.is_empty
            rows, cols = rect.slices()
            covered[rows, cols] += 1
        assert (covered == 1).all()  # disjoint and exhaustive

    def test_round_robin_ownership(self):
        tile_map = build_tile_map(Rect.full(64, 64), 16, 3)
        assert tile_map.owners == tuple(t % 3 for t in range(tile_map.num_tiles))
        for rank in range(3):
            owned = tile_map.owned(rank)
            assert owned == sorted(owned)
            assert all(tile_map.owner(t) == rank for t in owned)
        all_owned = sorted(t for r in range(3) for t in tile_map.owned(r))
        assert all_owned == list(range(tile_map.num_tiles))

    def test_owned_flat_indices_partition_the_pixels(self):
        tile_map = build_tile_map(Rect.full(33, 19), 8, 4)
        seen = np.concatenate(
            [tile_map.owned_flat_indices(r) for r in range(4)]
        )
        assert sorted(seen.tolist()) == list(range(33 * 19))

    def test_flat_indices_match_slices(self):
        rect = Rect(2, 3, 5, 9)
        idx = tile_flat_indices(rect, 16)
        grid = np.arange(8 * 16).reshape(8, 16)
        rows, cols = rect.slices()
        assert (grid.ravel()[idx] == grid[rows, cols].ravel()).all()

    def test_bad_tile_size_rejected(self):
        with pytest.raises(ConfigurationError):
            build_tile_map(Rect.full(8, 8), 0, 2)


class TestDensify:
    def _contrib(self, **kwargs):
        from repro.compositing.codec import Contribution

        return Contribution(**kwargs)

    def test_full_tile_passthrough(self):
        tile = Rect(0, 0, 4, 4)
        vi = np.arange(16, dtype=np.float64)
        va = np.ones(16)
        contrib = self._contrib(rect=tile, positions=None, values_i=vi, values_a=va)
        out_i, out_a = densify_contribution(contrib, tile)
        assert out_i.shape == (4, 4) and (out_i.ravel() == vi).all()

    def test_sub_rect_block_placement(self):
        tile = Rect(4, 4, 12, 12)
        inner = Rect(6, 8, 8, 10)
        vi = np.full(inner.area, 3.0)
        va = np.full(inner.area, 0.5)
        contrib = self._contrib(rect=inner, positions=None, values_i=vi, values_a=va)
        out_i, out_a = densify_contribution(contrib, tile)
        assert out_i.shape == (8, 8)
        assert out_i.sum() == 3.0 * inner.area
        assert (out_i[2:4, 4:6] == 3.0).all()  # offset by tile origin
        assert out_a[2, 4] == 0.5 and out_a[0, 0] == 0.0

    def test_position_scatter(self):
        tile = Rect(0, 0, 4, 4)
        inner = Rect(1, 1, 3, 3)  # 2x2 window
        contrib = self._contrib(
            rect=inner,
            positions=np.array([0, 3]),  # corners of the window
            values_i=np.array([1.0, 2.0]),
            values_a=np.array([0.25, 0.75]),
        )
        out_i, out_a = densify_contribution(contrib, tile)
        assert out_i[1, 1] == 1.0 and out_i[2, 2] == 2.0
        assert out_a[1, 1] == 0.25 and out_a[2, 2] == 0.75
        assert out_i.sum() == 3.0

    def test_rect_outside_tile_rejected(self):
        contrib = self._contrib(
            rect=Rect(0, 0, 2, 2),
            positions=None,
            values_i=np.zeros(4),
            values_a=np.zeros(4),
        )
        with pytest.raises(CompositingError):
            densify_contribution(contrib, Rect(1, 1, 3, 3))


class TestFoldTilePlanes:
    def test_matches_sequential_reference(self, rng):
        """The balanced fold equals binary-swap's association — checked
        end to end by the bit-identity tests; here only shape/counting."""
        plan = recursive_bisect((8, 8, 4), 4)
        view = np.array([0.0, 0.0, 1.0])
        planes = [
            (rng.random((3, 3)), rng.random((3, 3)) * 0.5) for _ in range(4)
        ]
        out_i, out_a, folded = fold_tile_planes(planes, plan, view)
        assert out_i.shape == (3, 3)
        assert folded == 3 * 9  # P-1 over ops x tile pixels

    def test_requires_power_of_two(self, rng):
        plan = recursive_bisect((8, 8, 4), 4)
        planes = [(np.zeros((2, 2)), np.zeros((2, 2)))] * 3
        with pytest.raises(CompositingError):
            fold_tile_planes(planes, plan, np.array([0.0, 0.0, 1.0]))


# ---- the engine against binary-swap:raw -------------------------------------
class TestBitIdentity:
    @pytest.mark.parametrize("dataset", PAPER_DATASETS)
    @pytest.mark.parametrize("num_ranks", [4, 8, 16])
    def test_sim_matches_binary_swap_raw(self, dataset, num_ranks):
        subimages, plan, camera = rendered_workload(dataset, num_ranks)
        ref = run_compositing(
            list(subimages), "binary-swap:raw", plan, camera.view_dir, SP2
        )
        ref_img = assemble_final(ref.outcomes, *subimages[0].shape)
        run = run_compositing(
            list(subimages), "tile-routed:rect-rle", plan, camera.view_dir, SP2,
            tile=16,
        )
        validate_ownership(run.outcomes, *subimages[0].shape)
        img = assemble_final(run.outcomes, *subimages[0].shape)
        assert img.max_abs_diff(ref_img) == 0.0

    @pytest.mark.parametrize("method", TILE_METHODS)
    def test_every_codec_is_exact(self, method, rng):
        subimages, plan, camera = rendered_workload("engine_high", 8)
        ref = run_compositing(
            list(subimages), "binary-swap:raw", plan, camera.view_dir, SP2
        )
        ref_img = assemble_final(ref.outcomes, *subimages[0].shape)
        run = run_compositing(list(subimages), method, plan, camera.view_dir, SP2)
        img = assemble_final(run.outcomes, *subimages[0].shape)
        assert img.max_abs_diff(ref_img) == 0.0

    @pytest.mark.parametrize("dataset", PAPER_DATASETS)
    @pytest.mark.parametrize("num_ranks", [4, 8, 16])
    def test_mp_matches_binary_swap_raw(self, dataset, num_ranks):
        ref = _pipeline("binary-swap:raw", num_ranks, "sim", dataset=dataset)
        got = _pipeline(
            "tile-routed:rect-rle", num_ranks, "mp", dataset=dataset,
            method_options={"tile": 8},
        )
        assert got.final_image.max_abs_diff(ref.final_image) == 0.0

    def test_non_power_of_two_via_folding(self):
        ref = _pipeline("binary-swap:raw", 6, "sim")
        got = _pipeline("tile-routed:raw", 6, "sim")
        assert got.final_image.max_abs_diff(ref.final_image) == 0.0


class TestCountersAndLatency:
    @pytest.mark.parametrize("backend", ["sim", "mp"])
    def test_timeline_carries_traffic_and_latency(self, backend):
        result = _pipeline(
            "tile-routed:rect", 4, backend, method_options={"tile": 8}
        )
        doc = result.timeline.to_dict()
        # Per-rank byte/message counters land in stage 0 on every substrate.
        tile_map = build_tile_map(Rect.full(32, 32), 8, 4)
        total_sent = total_recv = 0
        for entry in doc["ranks"]:
            stage0 = next(st for st in entry["stages"] if st["stage"] == 0)
            rank = entry["rank"]
            remote_tiles = tile_map.num_tiles - len(tile_map.owned(rank))
            assert stage0["msgs_sent"] == remote_tiles
            assert stage0["msgs_recv"] == 3 * len(tile_map.owned(rank))
            total_sent += stage0["bytes_sent"]
            total_recv += stage0["bytes_recv"]
        assert total_sent == total_recv > 0
        # Latency metrics ride in the free-form meta.
        assert 0 < doc["meta"]["latency_to_first_pixel"]
        assert (
            doc["meta"]["latency_to_first_pixel"]
            <= doc["meta"]["latency_to_p50_pixels"]
        )
        events = [ev for ev in doc["events"] if ev["event"] == "tile_complete"]
        assert len(events) == tile_map.num_tiles
        assert sum(ev["pixels"] for ev in events) == 32 * 32

    def test_first_pixel_beats_makespan_on_sim(self):
        result = _pipeline("tile-routed:rect", 8, "sim", image_size=64)
        meta = result.timeline.meta
        assert meta["latency_to_first_pixel"] < result.timeline.makespan

    def test_scheduled_methods_have_no_latency_meta(self):
        result = _pipeline("bsbrc", 4, "sim")
        assert "latency_to_first_pixel" not in result.timeline.meta

    def test_metric_helper_edge_cases(self):
        assert tile_latency_metrics([]) == {}
        assert tile_latency_metrics([{"event": "injected"}]) == {}
        got = tile_latency_metrics(
            [
                {"event": "tile_complete", "t": 3.0, "pixels": 10},
                {"event": "tile_complete", "t": 1.0, "pixels": 10},
                {"event": "tile_complete", "t": 2.0, "pixels": 10},
            ]
        )
        assert got["latency_to_first_pixel"] == 1.0
        assert got["latency_to_p50_pixels"] == 2.0


# ---- fused render+composite -------------------------------------------------
class TestFusedPhase:
    def test_fused_matches_split_pipeline(self):
        fused = _pipeline("tile-routed:rect-rle", 4, "sim")
        split = _pipeline("binary-swap:raw", 4, "sim")
        assert fused.final_image.max_abs_diff(split.final_image) == 0.0
        # The pristine per-rank renders are bit-identical to unfused ones.
        for fused_sub, split_sub in zip(fused.subimages, split.subimages):
            assert fused_sub.max_abs_diff(split_sub) == 0.0

    def test_clip_rect_render_is_bit_identical_inside_window(self):
        from repro.pipeline.phases import build_scene
        from repro.render.raycast import render_subvolume

        cfg = RunConfig(method="bs", num_ranks=4, **SMALL)
        scene = build_scene(cfg)
        extent = scene.plan.extent(1)
        full = render_subvolume(scene.volume, scene.transfer, scene.camera, extent)
        window = Rect(4, 4, 20, 28)
        clipped = render_subvolume(
            scene.volume, scene.transfer, scene.camera, extent, clip_rect=window
        )
        rows, cols = window.slices()
        assert (clipped.intensity[rows, cols] == full.intensity[rows, cols]).all()
        assert (clipped.opacity[rows, cols] == full.opacity[rows, cols]).all()
        outside = clipped.intensity.copy()
        outside[rows, cols] = 0.0
        assert not outside.any()

    def test_folded_plan_takes_the_unfused_path(self):
        # Folded plans cannot fuse; they still produce the right image.
        result = _pipeline("tile-routed:rect", 5, "sim")
        ref = _pipeline("bsbrc", 5, "sim")
        assert result.final_image.max_abs_diff(ref.final_image) == 0.0


# ---- the message pump -------------------------------------------------------
class TestTileRouter:
    def test_route_tiles_round_trip(self):
        owners = (0, 1, 0, 1)

        async def program(ctx):
            outgoing = {
                tid: (f"r{ctx.rank}-t{tid}".encode(), 8)
                for tid in range(4)
                if owners[tid] != ctx.rank
            }
            return await route_tiles(ctx, owners, outgoing)

        result = Simulator(2, IDEALIZED).run(program)
        assert result.returns[0] == {0: [b"r1-t0"], 2: [b"r1-t2"]}
        assert result.returns[1] == {1: [b"r0-t1"], 3: [b"r0-t3"]}

    def test_push_to_own_tile_rejected(self):
        async def program(ctx):
            router = TileRouter(ctx, (0, 1))
            await router.push(ctx.rank, b"x", 1)

        from repro.errors import RankFailedError

        with pytest.raises(RankFailedError):
            Simulator(2, IDEALIZED).run(program)

    def test_contributions_ordered_by_source_rank(self):
        owners = (2,)

        async def program(ctx):
            router = TileRouter(ctx, owners)
            if ctx.rank == 2:
                await router.post_receives([0])
                raws = await router.collect(0)
                return [bytes(raw) for raw in raws]
            # Rank 1 pushes "before" rank 0 in program order; the owner
            # still sees contributions in ascending source-rank order.
            if ctx.rank == 1:
                await router.push(0, b"from-1", 6)
            else:
                await ctx.compute(5.0)
                await router.push(0, b"from-0", 6)
            await router.flush()

        result = Simulator(3, SP2).run(program)
        assert result.returns[2] == [b"from-0", b"from-1"]


# ---- satellite (a): irecv tag default unification ---------------------------
class TestIrecvAnyTagDefault:
    def test_defaults_agree_across_substrates(self):
        import inspect

        from repro.cluster.context import RankContext
        from repro.cluster.events import ANY_TAG
        from repro.cluster.mp_backend import MPRankContext
        from repro.cluster.mpi_backend import MPIRankContext
        from repro.cluster.protocol import BaseRankContext

        for cls in (BaseRankContext, RankContext, MPRankContext, MPIRankContext):
            sig = inspect.signature(cls.irecv)
            assert sig.parameters["tag"].default == ANY_TAG, cls
            recv_sig = inspect.signature(cls.recv)
            assert (
                sig.parameters["tag"].default == recv_sig.parameters["tag"].default
            ), f"{cls}: irecv and recv disagree on the default tag"

    def test_sim_wildcard_takes_oldest_isend(self):
        async def program(ctx):
            if ctx.rank == 0:
                await ctx.wait(await ctx.isend(1, b"first", tag=7))
                await ctx.wait(await ctx.isend(1, b"second", tag=3))
            else:
                a = await ctx.wait(await ctx.irecv(0))  # default: ANY_TAG
                b = await ctx.wait(await ctx.irecv(0))
                return a, b

        result = Simulator(2, IDEALIZED).run(program)
        assert result.returns[1] == (b"first", b"second")

    def test_exact_tag_still_filters(self):
        async def program(ctx):
            if ctx.rank == 0:
                recv = await ctx.irecv(1, tag=9)
                return await ctx.wait(recv)
            await ctx.wait(await ctx.isend(0, b"tagged", tag=9))

        result = Simulator(2, IDEALIZED).run(program)
        assert result.returns[0] == b"tagged"

    def test_negative_tag_rejected(self):
        from repro.cluster.events import IrecvOp

        with pytest.raises(ValueError):
            IrecvOp(0, tag=-2)


# ---- satellite (b): topology rejection on real transports -------------------
class TestFlatNetworkRejection:
    def test_mp_rejects_modelled_topology_with_spec(self):
        network = make_network("fat-tree:radix=8", SP2)
        assert network.spec == "fat-tree:radix=8"
        cfg = RunConfig(
            method="bs", num_ranks=2, backend="mp",
            topology="fat-tree:radix=8", **SMALL,
        )
        with pytest.raises(ConfigurationError) as err:
            SortLastSystem(cfg).run()
        message = str(err.value)
        assert "fat-tree:radix=8" in message  # names the offending spec
        assert "'sim'" in message  # lists topology-capable backends
        assert "--topology" in message

    def test_flat_spec_still_allowed_on_mp(self):
        result = _pipeline("bs", 2, "mp", topology="flat")
        assert result.final_image is not None

    def test_spec_stamped_for_bare_names(self):
        assert make_network("torus", SP2).spec == "torus"
        assert make_network(None, SP2).spec == "flat"


# ---- satellite (c): refold pairing across every schedule --------------------
class TestRefoldPairs:
    @pytest.mark.parametrize("schedule_name", sorted(SCHEDULES))
    @pytest.mark.parametrize("size", [3, 6, 12])
    def test_every_schedule_reports_bisection_buddies(self, schedule_name, size):
        schedule = SCHEDULES[schedule_name]()
        pairs = schedule.refold_pairs(size)
        assert pairs == [(2 * i, 2 * i + 1) for i in range(size // 2)]
        flat = [r for pair in pairs for r in pair]
        assert len(set(flat)) == len(flat)  # disjoint
        assert all(0 <= r < size for r in flat)

    @pytest.mark.parametrize("schedule_name", sorted(SCHEDULES))
    @pytest.mark.parametrize("size", [4, 8, 16])
    def test_pairs_accepted_by_refold_survivors(self, schedule_name, size):
        plan = recursive_bisect((16, 16, 8), size)
        pairs = SCHEDULES[schedule_name]().refold_pairs(size)
        folded, rank_map = refold_survivors(plan, [size - 1], pairs=pairs)
        assert folded.core_ranks == size // 2
        assert len(rank_map) == size - 1

    @pytest.mark.parametrize("size", [3, 6, 12])
    def test_tile_engine_reports_the_same_pairing(self, size):
        compositor = make_compositor("tile-routed:raw")
        assert compositor.refold_pairs(size) == [
            (2 * i, 2 * i + 1) for i in range(size // 2)
        ]


# ---- registry ---------------------------------------------------------------
class TestRegistry:
    def test_all_rect_codecs_addressable(self):
        expected = {
            f"tile-routed:{c}"
            for c, cls in CODECS.items()
            if "rect" in cls.supports
        }
        assert expected == set(TILE_METHODS)
        for method in expected:
            validate_method(method)

    def test_catalog_describes_tile_methods(self):
        catalog = method_catalog()
        for method in TILE_METHODS:
            assert "no stage barriers" in catalog[method]

    def test_unknown_codec_and_options_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown codec"):
            validate_method("tile-routed:nope")
        with pytest.raises(ConfigurationError, match="option"):
            make_compositor("tile-routed:raw", radix=[4])
        with pytest.raises(ConfigurationError):
            make_compositor("tile-routed:raw", tile=0)

    def test_tile_option_accepted(self):
        compositor = make_compositor("tile-routed:rect", tile=48)
        assert compositor.tile == 48
        assert compositor.name == "tile-routed:rect"

    def test_unknown_schedule_suggests_tile_routed(self):
        with pytest.raises(ConfigurationError, match="tile-routed"):
            validate_method("tile-route:rect")


# ---- CLI --------------------------------------------------------------------
class TestCli:
    def test_tile_flag_reaches_method_options(self):
        from repro.experiments.cli import _method_options_from, build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["run", "--method", "tile-routed:rect", "--tile", "24"]
        )
        assert _method_options_from(args) == {"tile": 24}

    def test_tile_flag_defaults_off(self):
        from repro.experiments.cli import _method_options_from, build_parser

        args = build_parser().parse_args(["run", "--method", "bsbrc"])
        assert "tile" not in _method_options_from(args)
