"""Reproduction-fidelity analysis: measured numbers vs the paper's.

Joins regenerated :class:`~repro.analysis.metrics.MethodMeasurement`
rows with the transcribed published tables and computes the metrics that
matter for a *shape* reproduction:

* **winner agreement** — in what fraction of (dataset, P) cells does the
  same method have the lowest ``T_total``?
* **pairwise-order agreement** — across all method pairs per cell, how
  often does "A beats B" match the paper?
* **rank correlation** — Spearman correlation between measured and
  published ``T_total`` over all cells (and per method).
* **ratio spread** — median and quartiles of measured/published time per
  method (absolute calibration quality; informational only).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np
from scipy import stats as scipy_stats

from ..analysis.metrics import MethodMeasurement
from ..analysis.tables import format_generic
from .paper_data import PAPER_TABLE1, PAPER_TABLE2, PaperCell

__all__ = ["FidelityReport", "compare_to_paper", "format_fidelity"]


@dataclass
class FidelityReport:
    """Aggregate fidelity metrics for one table."""

    table: str
    cells_compared: int
    winner_agreement: float
    pairwise_agreement: float
    spearman_total: float
    per_method_ratio: dict[str, tuple[float, float, float]]  # q25, median, q75
    per_method_spearman: dict[str, float]
    mismatched_winners: list[str]


def _paper_table(image_size: int) -> dict[tuple[str, int, str], PaperCell]:
    return PAPER_TABLE1 if image_size == 384 else PAPER_TABLE2


def compare_to_paper(
    rows: list[MethodMeasurement], *, image_size: int | None = None
) -> FidelityReport:
    """Compute fidelity metrics for measured ``rows`` vs the paper."""
    if not rows:
        raise ValueError("no measurements supplied")
    size = image_size if image_size is not None else rows[0].image_size
    paper = _paper_table(size)

    measured: dict[tuple[str, int, str], MethodMeasurement] = {
        (r.dataset, r.num_ranks, r.method): r
        for r in rows
        if r.image_size == size and (r.dataset, r.num_ranks, r.method) in paper
    }
    if not measured:
        raise ValueError(
            f"no overlap between measurements and the paper's {size}x{size} table"
        )

    # Group cells by (dataset, P).
    groups: dict[tuple[str, int], list[str]] = {}
    for dataset, num_ranks, method in measured:
        groups.setdefault((dataset, num_ranks), []).append(method)

    winner_hits = 0
    winner_total = 0
    pair_hits = 0
    pair_total = 0
    mismatches: list[str] = []
    measured_series: list[float] = []
    paper_series: list[float] = []
    per_method_pairs: dict[str, list[tuple[float, float]]] = {}

    for (dataset, num_ranks), methods in sorted(groups.items()):
        if len(methods) < 2:
            continue
        m_tot = {m: measured[(dataset, num_ranks, m)].t_total * 1e3 for m in methods}
        p_tot = {m: paper[(dataset, num_ranks, m)].t_total for m in methods}
        for method in methods:
            measured_series.append(m_tot[method])
            paper_series.append(p_tot[method])
            per_method_pairs.setdefault(method, []).append(
                (m_tot[method], p_tot[method])
            )
        measured_winner = min(m_tot, key=m_tot.get)  # type: ignore[arg-type]
        paper_winner = min(p_tot, key=p_tot.get)  # type: ignore[arg-type]
        winner_total += 1
        if measured_winner == paper_winner:
            winner_hits += 1
        else:
            mismatches.append(
                f"{dataset} P={num_ranks}: paper={paper_winner} "
                f"({p_tot[paper_winner]:.1f} ms) vs measured={measured_winner} "
                f"({m_tot[measured_winner]:.1f} ms)"
            )
        for a, b in combinations(sorted(methods), 2):
            pair_total += 1
            if (m_tot[a] < m_tot[b]) == (p_tot[a] < p_tot[b]):
                pair_hits += 1

    spearman = float(
        scipy_stats.spearmanr(measured_series, paper_series).statistic
    )
    per_method_ratio: dict[str, tuple[float, float, float]] = {}
    per_method_spearman: dict[str, float] = {}
    for method, pairs in sorted(per_method_pairs.items()):
        arr = np.asarray(pairs)
        ratios = arr[:, 0] / arr[:, 1]
        per_method_ratio[method] = (
            float(np.quantile(ratios, 0.25)),
            float(np.median(ratios)),
            float(np.quantile(ratios, 0.75)),
        )
        if len(pairs) >= 3:
            per_method_spearman[method] = float(
                scipy_stats.spearmanr(arr[:, 0], arr[:, 1]).statistic
            )

    return FidelityReport(
        table=f"Table {'1' if size == 384 else '2'} ({size}x{size})",
        cells_compared=len(measured),
        winner_agreement=winner_hits / max(1, winner_total),
        pairwise_agreement=pair_hits / max(1, pair_total),
        spearman_total=spearman,
        per_method_ratio=per_method_ratio,
        per_method_spearman=per_method_spearman,
        mismatched_winners=mismatches,
    )


def format_fidelity(report: FidelityReport) -> str:
    out = [
        f"Reproduction fidelity vs the paper — {report.table}",
        f"  cells compared:          {report.cells_compared}",
        f"  winner agreement:        {report.winner_agreement:.0%} of (dataset, P) cells",
        f"  pairwise-order agreement: {report.pairwise_agreement:.0%} of method pairs",
        f"  Spearman rho (T_total):  {report.spearman_total:.3f}",
        "",
        format_generic(
            ["method", "ratio q25", "median", "q75", "Spearman rho"],
            [
                (
                    method,
                    f"{q25:.2f}",
                    f"{median:.2f}",
                    f"{q75:.2f}",
                    f"{report.per_method_spearman.get(method, float('nan')):.3f}",
                )
                for method, (q25, median, q75) in report.per_method_ratio.items()
            ],
        ),
    ]
    if report.mismatched_winners:
        out.append("")
        out.append("cells where the winner differs:")
        out.extend(f"  {line}" for line in report.mismatched_winners)
    else:
        out.append("")
        out.append("the same method wins every cell.")
    return "\n".join(out)
