"""Pluggable execution backends: one rank program, three substrates.

A *rank program* is a picklable module-level ``async def program(ctx,
*args)`` written against :class:`~repro.cluster.protocol.BaseRankContext`.
A :class:`Backend` runs ``num_ranks`` copies of it and returns a uniform
:class:`BackendRunResult`:

* :class:`SimBackend` — the discrete-event simulator; needs a
  :class:`~repro.cluster.model.MachineModel` and reports *modelled*
  virtual time (deterministic, bit-identical traces).
* :class:`MPBackend` — real OS processes over multiprocessing queues;
  reports *wall-clock* time and :mod:`repro.perf` reports per rank.
* :class:`MPIBackend` — real MPI via mpi4py (SPMD: call it from inside
  an ``mpiexec`` job); wall-clock like MPBackend.

All three fill the same per-stage byte/message counters, so a program's
communication volume can be cross-checked across substrates.  Pick a
backend by name with :func:`make_backend`.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from ..errors import ConfigurationError
from .model import MachineModel
from .run_timeline import RunTimeline
from .simulator import Simulator, TraceEvent
from .stats import RankStats, RunResult

__all__ = [
    "Backend",
    "BackendRunResult",
    "SimBackend",
    "MPBackend",
    "MPIBackend",
    "BACKENDS",
    "make_backend",
]


@dataclass
class BackendRunResult:
    """Uniform outcome of running a rank program on any backend."""

    #: Backend short name: "sim" | "mp" | "mpi".
    backend: str
    #: What ``makespan`` measures: "modelled" virtual seconds or "wall".
    clock: str
    num_ranks: int
    returns: list[Any]
    rank_stats: list[RankStats]
    #: Modelled makespan (sim) or the largest per-rank wall time (real).
    makespan: float
    #: Simulator trace (empty unless ``trace=True`` on SimBackend).
    trace_events: list[TraceEvent] = field(default_factory=list)
    #: Per-rank wall seconds (zeros on the simulator).
    wall_times: list[float] = field(default_factory=list)
    #: Per-rank :func:`repro.perf.report` snapshots (empty on the simulator).
    rank_perf: list[dict] = field(default_factory=list)
    #: On SPMD backends (MPI) the rank this process ran as; ``None`` when
    #: the calling process orchestrated all ranks (sim, mp).
    local_rank: Optional[int] = None
    #: Supervisor-level recovery events (worker respawns on mp); empty
    #: elsewhere.  Merged into :meth:`timeline` output automatically.
    events: list[dict] = field(default_factory=list)

    def to_run_result(self) -> RunResult:
        """View as the classic stats container used by the tables."""
        return RunResult(
            num_ranks=self.num_ranks,
            returns=self.returns,
            rank_stats=self.rank_stats,
            makespan=self.makespan,
        )

    def timeline(
        self,
        meta: Optional[dict[str, Any]] = None,
        *,
        events: Optional[list[dict[str, Any]]] = None,
    ) -> RunTimeline:
        """Export as the unified run-timeline document.

        Per-rank fault events are harvested from the stats automatically;
        the backend's own supervisor events (``self.events``) come next,
        and ``events`` appends orchestrator-level entries (failure
        detection, degradation) on top.
        """
        merged = list(self.events) + list(events or [])
        return RunTimeline.from_parts(
            backend=self.backend,
            clock=self.clock,
            rank_stats=self.rank_stats,
            makespan=self.makespan,
            wall_times=self.wall_times,
            rank_perf=self.rank_perf,
            trace_events=self.trace_events,
            meta=meta,
            events=merged or None,
        )


class Backend(abc.ABC):
    """An execution substrate for rank programs."""

    #: Short name used by ``--backend`` and the timeline schema.
    name: str = "abstract"
    #: What this backend's makespan measures.
    clock: str = "wall"
    #: Whether this backend can apply a modelled ``--topology`` (only
    #: simulated interconnects can; real transports use real wires).
    supports_topology: bool = False

    @abc.abstractmethod
    def run(
        self,
        num_ranks: int,
        program,
        args: Sequence[Any] = (),
        *,
        model: Optional[MachineModel] = None,
        trace: bool = False,
        timeout: Optional[float] = None,
        respawn=None,
        heartbeat: Optional[float] = None,
        network=None,
        engine: Optional[str] = None,
        schedule_policy=None,
    ) -> BackendRunResult:
        """Run ``program(ctx, *args)`` on ``num_ranks`` ranks.

        ``model`` is required by the simulator and ignored by real
        transports; ``trace`` enables the simulator's event trace;
        ``timeout`` bounds per-receive blocking on real transports.
        ``respawn`` (a :class:`~repro.cluster.recovery.RespawnPlan`) and
        ``heartbeat`` (liveness-stamp interval in seconds) configure the
        multiprocessing supervisor's recovery machinery; other
        substrates ignore them (the simulator recovers by lockstep
        re-run, MPI cannot respawn ranks mid-job).  ``network`` (a
        :class:`~repro.cluster.model.Network` topology) and ``engine``
        (``"event"``/``"lockstep"`` scheduler choice) are
        simulator-only; real transports reject a non-flat network since
        they cannot model one.  ``schedule_policy`` (a
        :class:`~repro.cluster.schedule_policy.SchedulePolicy`) hands
        the simulator's residual event-ordering freedom to the schedule
        explorer; real transports reject exploring policies — their
        delivery order comes from real hardware, not a pluggable hook.
        """

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}()"


class SimBackend(Backend):
    """Discrete-event simulation with modelled virtual time."""

    name = "sim"
    clock = "modelled"
    supports_topology = True

    def run(
        self,
        num_ranks: int,
        program,
        args: Sequence[Any] = (),
        *,
        model: Optional[MachineModel] = None,
        trace: bool = False,
        timeout: Optional[float] = None,
        respawn=None,
        heartbeat: Optional[float] = None,
        network=None,
        engine: Optional[str] = None,
        schedule_policy=None,
    ) -> BackendRunResult:
        if model is None:
            raise ConfigurationError(
                "the sim backend needs a MachineModel (pass model=...)"
            )
        simulator = Simulator(
            num_ranks,
            model,
            trace=trace,
            network=network,
            engine="event" if engine is None else engine,
            policy=schedule_policy,
        )
        result = simulator.run(lambda ctx: program(ctx, *args))
        return BackendRunResult(
            backend=self.name,
            clock=self.clock,
            num_ranks=num_ranks,
            returns=result.returns,
            rank_stats=result.rank_stats,
            makespan=result.makespan,
            trace_events=list(simulator.trace_events),
            wall_times=[0.0] * num_ranks,
            rank_perf=[{} for _ in range(num_ranks)],
        )


class MPBackend(Backend):
    """Real OS processes over multiprocessing queues (wall clock)."""

    name = "mp"
    clock = "wall"

    def run(
        self,
        num_ranks: int,
        program,
        args: Sequence[Any] = (),
        *,
        model: Optional[MachineModel] = None,
        trace: bool = False,
        timeout: Optional[float] = None,
        respawn=None,
        heartbeat: Optional[float] = None,
        network=None,
        engine: Optional[str] = None,
        schedule_policy=None,
    ) -> BackendRunResult:
        from .mp_backend import DEFAULT_TIMEOUT, HEARTBEAT_INTERVAL, run_rank_programs_mp

        _require_flat_network(self.name, network)
        _require_deterministic_schedule(self.name, schedule_policy)

        result = run_rank_programs_mp(
            num_ranks,
            program,
            args,
            timeout=DEFAULT_TIMEOUT if timeout is None else timeout,
            respawn=respawn,
            heartbeat_interval=HEARTBEAT_INTERVAL if heartbeat is None else heartbeat,
        )
        return BackendRunResult(
            backend=self.name,
            clock=self.clock,
            num_ranks=num_ranks,
            returns=result.returns,
            rank_stats=result.rank_stats,
            makespan=max(result.wall_times, default=0.0),
            wall_times=result.wall_times,
            rank_perf=result.perf_reports,
            events=list(result.events),
        )


class MPIBackend(Backend):
    """Real MPI via mpi4py.  SPMD: every process of an ``mpiexec`` job
    calls :meth:`run`; results are allgathered so each process returns
    the same uniform :class:`BackendRunResult` (``local_rank`` tells a
    process which rank it ran as)."""

    name = "mpi"
    clock = "wall"

    def run(
        self,
        num_ranks: int,
        program,
        args: Sequence[Any] = (),
        *,
        model: Optional[MachineModel] = None,
        trace: bool = False,
        timeout: Optional[float] = None,
        respawn=None,
        heartbeat: Optional[float] = None,
        network=None,
        engine: Optional[str] = None,
        schedule_policy=None,
    ) -> BackendRunResult:
        from .. import perf
        from .mpi_backend import MPIRankContext, require_mpi
        from .protocol import drive

        _require_flat_network(self.name, network)
        _require_deterministic_schedule(self.name, schedule_policy)
        require_mpi()
        ctx = MPIRankContext()
        if ctx.size != num_ranks:
            raise ConfigurationError(
                f"MPI job has {ctx.size} ranks but the run asked for {num_ranks}; "
                "launch with mpiexec -n matching num_ranks"
            )
        perf.reset()
        start = time.perf_counter()
        with perf.timer("backend.mpi.rank_program"):
            value = drive(program(ctx, *args))
        wall = time.perf_counter() - start
        gathered = ctx.comm.allgather((value, ctx.stats, wall, perf.report()))
        return BackendRunResult(
            backend=self.name,
            clock=self.clock,
            num_ranks=num_ranks,
            returns=[g[0] for g in gathered],
            rank_stats=[g[1] for g in gathered],
            makespan=max((g[2] for g in gathered), default=0.0),
            wall_times=[g[2] for g in gathered],
            rank_perf=[g[3] for g in gathered],
            local_rank=ctx.rank,
        )


def _require_flat_network(backend_name: str, network) -> None:
    """Real transports cannot model a switched topology: reject early."""
    if network is not None and getattr(network, "name", "flat") != "flat":
        spec = getattr(network, "spec", None) or network.name
        supported = sorted(
            name for name, cls in BACKENDS.items() if cls.supports_topology
        )
        raise ConfigurationError(
            f"backend {backend_name!r} runs on real hardware and cannot apply "
            f"the modelled topology --topology {spec!r}; modelled topologies "
            f"need a simulated interconnect — rerun with --backend "
            f"{' or '.join(repr(n) for n in supported)}, or drop --topology "
            f"to use the real network"
        )


def _require_deterministic_schedule(backend_name: str, policy) -> None:
    """Real transports cannot explore orderings: reject early.

    Their delivery order is decided by real hardware; only the
    simulator exposes pluggable ordering freedom.  ``None`` and
    non-exploring (deterministic) policies pass through — they change
    nothing anywhere.
    """
    if policy is not None and getattr(policy, "explores_any", False):
        supported = sorted(
            name for name, cls in BACKENDS.items() if cls.name == "sim"
        )
        raise ConfigurationError(
            f"backend {backend_name!r} runs on real hardware and cannot "
            f"apply the exploring schedule policy {policy.name!r}; schedule "
            f"exploration needs the simulated engine — rerun with --backend "
            f"{' or '.join(repr(n) for n in supported)}, or use the "
            f"'deterministic' policy"
        )


#: Registry of backend short names to classes.
BACKENDS: dict[str, type[Backend]] = {
    SimBackend.name: SimBackend,
    MPBackend.name: MPBackend,
    MPIBackend.name: MPIBackend,
}


def make_backend(name: str) -> Backend:
    """Instantiate a backend by short name ("sim", "mp", "mpi")."""
    try:
        cls = BACKENDS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown backend {name!r}; choose from {sorted(BACKENDS)}"
        ) from None
    return cls()
