"""Bit-identity of the chunked marcher against the per-step reference.

The whole compositing test pyramid rests on renders being exactly
reproducible, so the production marcher (chunked sampling + active-ray
compaction + occupancy-based empty-space skipping + exact early
termination) is pinned to the original per-step loop bit for bit — not
approximately — across every paper dataset, viewpoint, subvolume shape
and chunk size.
"""

import numpy as np
import pytest

from repro import perf
from repro.errors import RenderError
from repro.render.camera import Camera
from repro.render.raycast import DEFAULT_CHUNK_STEPS, render_full, render_subvolume
from repro.types import Extent3
from repro.volume.datasets import PAPER_DATASETS, make_dataset
from repro.volume.grid import VolumeGrid
from repro.volume.transfer import TransferFunction

SHAPE = (32, 32, 16)


def _identical(a, b):
    return np.array_equal(a.intensity, b.intensity) and np.array_equal(
        a.opacity, b.opacity
    )


def _camera(volume, size=40, rot_x=20.0, rot_y=30.0):
    return Camera(
        width=size, height=size, volume_shape=volume.shape, rot_x=rot_x, rot_y=rot_y
    )


class TestChunkedMatchesReference:
    @pytest.mark.parametrize("dataset", PAPER_DATASETS)
    @pytest.mark.parametrize("chunk_steps", [1, 3, DEFAULT_CHUNK_STEPS, 64])
    def test_full_volume(self, dataset, chunk_steps):
        volume, transfer = make_dataset(dataset, SHAPE)
        camera = _camera(volume)
        ref = render_full(volume, transfer, camera, march="reference")
        opt = render_full(volume, transfer, camera, chunk_steps=chunk_steps)
        assert _identical(ref, opt)

    @pytest.mark.parametrize("dataset", PAPER_DATASETS)
    def test_subvolume_extents(self, dataset):
        volume, transfer = make_dataset(dataset, SHAPE)
        camera = _camera(volume)
        nx, ny, nz = volume.shape
        extents = [
            Extent3(0, nx // 2, 0, ny, 0, nz),
            Extent3(nx // 2, nx, 0, ny // 2, nz // 3, nz),
            Extent3(1, 2, 1, 2, 1, 2),
            volume.full_extent(),
        ]
        for extent in extents:
            ref = render_subvolume(volume, transfer, camera, extent, march="reference")
            opt = render_subvolume(volume, transfer, camera, extent)
            assert _identical(ref, opt), f"extent {extent} diverged"

    @pytest.mark.parametrize("rotation", [(0.0, 0.0), (-35.0, 110.0), (90.0, 45.0)])
    def test_viewpoints(self, rotation):
        volume, transfer = make_dataset("engine_high", SHAPE)
        camera = _camera(volume, rot_x=rotation[0], rot_y=rotation[1])
        ref = render_full(volume, transfer, camera, march="reference")
        opt = render_full(volume, transfer, camera)
        assert _identical(ref, opt)

    def test_duck_typed_transfer_without_zero_threshold(self):
        """A classify-only transfer object disables empty-space skipping
        but must still match the reference exactly."""

        class Plain:
            def classify(self, s):
                s = np.asarray(s, dtype=np.float64)
                return s, np.clip(s - 0.1, 0.0, 1.0) * 0.5

        volume = make_dataset("head", SHAPE)[0]
        transfer = Plain()
        camera = _camera(volume)
        ref = render_full(volume, transfer, camera, march="reference")
        opt = render_full(volume, transfer, camera)
        assert _identical(ref, opt)

    def test_default_settings_are_exact(self):
        """The documented contract: no knob needs touching for
        bit-identical output."""
        volume, transfer = make_dataset("cube", SHAPE)
        camera = _camera(volume)
        ref = render_full(volume, transfer, camera, march="reference")
        opt = render_full(volume, transfer, camera)
        assert _identical(ref, opt)


class TestEarlyTermination:
    def _opaque_scene(self):
        volume = VolumeGrid(data=np.full(SHAPE, 0.9, dtype=np.float32), name="wall")
        transfer = TransferFunction(lo=0.1, hi=0.3, max_alpha=1.0)
        return volume, transfer

    def test_exact_termination_is_bit_identical(self):
        volume, transfer = self._opaque_scene()
        camera = _camera(volume)
        ref = render_full(volume, transfer, camera, march="reference")
        opt = render_full(volume, transfer, camera)  # default: exact
        assert _identical(ref, opt)

    def test_exact_termination_retires_rays(self):
        volume, transfer = self._opaque_scene()
        camera = _camera(volume)
        perf.reset()
        render_full(volume, transfer, camera, chunk_steps=4)
        assert perf.counter("raycast.terminated_rays") > 0

    def test_aggressive_threshold_error_is_bounded(self):
        volume, transfer = make_dataset("head", SHAPE)
        camera = _camera(volume)
        exact = render_full(volume, transfer, camera)
        threshold = 0.95
        lossy = render_full(volume, transfer, camera, early_termination=threshold)
        # Stopping at accumulated opacity >= T leaves at most the
        # remaining transmittance 1 - T unaccumulated per pixel.
        assert float(np.abs(exact.opacity - lossy.opacity).max()) <= 1.0 - threshold
        assert float(np.abs(exact.intensity - lossy.intensity).max()) <= 1.0 - threshold

    def test_threshold_one_equals_default(self):
        volume, transfer = self._opaque_scene()
        camera = _camera(volume)
        a = render_full(volume, transfer, camera)
        b = render_full(volume, transfer, camera, early_termination=1.0)
        assert _identical(a, b)


class TestValidation:
    def test_unknown_marcher_rejected(self):
        volume, transfer = make_dataset("cube", SHAPE)
        with pytest.raises(RenderError):
            render_full(volume, transfer, _camera(volume), march="nope")

    def test_bad_chunk_steps_rejected(self):
        volume, transfer = make_dataset("cube", SHAPE)
        with pytest.raises(RenderError):
            render_full(volume, transfer, _camera(volume), chunk_steps=0)

    @pytest.mark.parametrize("threshold", [0.0, -0.5, 1.5])
    def test_bad_early_termination_rejected(self, threshold):
        volume, transfer = make_dataset("cube", SHAPE)
        with pytest.raises(RenderError):
            render_full(volume, transfer, _camera(volume), early_termination=threshold)


class TestOccupancyGrid:
    def test_bound_is_conservative(self):
        """occ at a voxel's block bounds every voxel of the block and its
        full one-block neighbourhood — the empty-space-skip soundness
        invariant."""
        rng = np.random.default_rng(11)
        data = rng.random((21, 13, 9)).astype(np.float32)
        volume = VolumeGrid(data=data, name="rand")
        block = 4
        occ = volume.occupancy_max(block)
        for _ in range(300):
            x, y, z = (int(rng.integers(0, n)) for n in data.shape)
            lo = [max(0, (v // block) * block - block) for v in (x, y, z)]
            hi = [
                min(n, (v // block) * block + 2 * block)
                for v, n in zip((x, y, z), data.shape)
            ]
            neighbourhood_max = data[lo[0] : hi[0], lo[1] : hi[1], lo[2] : hi[2]].max()
            assert occ[x // block, y // block, z // block] >= neighbourhood_max

    def test_cached_per_block_size(self):
        volume = make_dataset("cube", SHAPE)[0]
        assert volume.occupancy_max(8) is volume.occupancy_max(8)
        assert volume.occupancy_max(4) is not volume.occupancy_max(8)

    def test_bad_block_rejected(self):
        from repro.errors import ConfigurationError

        volume = make_dataset("cube", SHAPE)[0]
        with pytest.raises(ConfigurationError):
            volume.occupancy_max(0)

    def test_sparse_volume_skips_samples(self):
        volume, transfer = make_dataset("engine_high", SHAPE)
        camera = _camera(volume)
        perf.reset()
        render_full(volume, transfer, camera)
        report = perf.report()["counters"]
        assert report.get("raycast.samples_skipped", 0) > 0

    def test_isolated_blob_drops_empty_rays(self):
        """Rays that only cross empty space are retired before sampling,
        and the result still matches the reference exactly."""
        data = np.zeros(SHAPE, dtype=np.float32)
        data[2:6, 2:6, 2:6] = 0.8  # small blob far from most rays
        volume = VolumeGrid(data=data, name="blob")
        transfer = TransferFunction(lo=0.3, hi=0.6)
        camera = _camera(volume)
        perf.reset()
        opt = render_full(volume, transfer, camera)
        assert perf.counter("raycast.empty_rays") > 0
        ref = render_full(volume, transfer, camera, march="reference")
        assert _identical(ref, opt)
