"""Real-transport backend: the rank programs on OS processes and queues.

The simulator gives deterministic *timing*; this backend gives a second,
*real* execution substrate for correctness: every rank is an actual
``multiprocessing`` process and every message crosses a real IPC queue.
The same rank-program coroutines run unchanged — :class:`MPRankContext`
implements the full :class:`~repro.cluster.protocol.BaseRankContext`
surface (including ``isend``/``irecv``/``wait``) with synchronous
transport calls inside ``async`` methods that never yield, so each rank
drives its coroutine to completion locally (no event loop needed).

Accounting is the same per-stage :class:`~repro.cluster.stats.RankStats`
schema the simulator fills, with two differences dictated by physics:

* times are **wall-clock** seconds (blocked receive time lands in
  ``comm_time``; skew cannot be split out on a real transport), and
* ``charge_*`` record operation *counts* only — modelled seconds make no
  sense off the simulator.

Byte counters use the exact sizing the simulator prices
(:func:`~repro.cluster.protocol.encode_payload`), so per-stage
``bytes_sent``/``bytes_recv`` match the simulated run bit for bit.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from .. import perf
from ..errors import ConfigurationError, SimulationError
from .events import ANY_TAG
from .protocol import BaseRankContext, decode_payload, drive, encode_payload
from .stats import RankStats, merge_counters

__all__ = ["MPRankContext", "MPRequest", "run_rank_programs_mp", "DEFAULT_TIMEOUT"]

#: Per-receive timeout (seconds) after which a rank assumes deadlock.
DEFAULT_TIMEOUT = 60.0


class MPRequest:
    """Handle for a nonblocking operation on the multiprocessing backend.

    Queues are buffered, so ``isend`` completes eagerly at post time;
    ``irecv`` defers the blocking queue read to :meth:`MPRankContext.wait`,
    with per-``(src, tag)`` FIFO delivery matching the simulator's
    post-order pairing even when waits complete out of order.
    """

    __slots__ = ("kind", "peer", "tag", "payload", "nbytes", "done")

    def __init__(self, kind: str, peer: int, tag: int):
        self.kind = kind  # "isend" | "irecv"
        self.peer = peer
        self.tag = tag
        self.payload: Any = None
        self.nbytes = 0
        self.done = kind == "isend"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.done else "pending"
        return f"MPRequest({self.kind}, peer={self.peer}, tag={self.tag}, {state})"


class MPRankContext(BaseRankContext):
    """Rank API over multiprocessing queues (one queue per directed pair).

    Implements the full :class:`~repro.cluster.protocol.BaseRankContext`
    surface; the ``async`` methods complete synchronously, so awaiting
    them never suspends.
    """

    backend_name = "multiprocessing"

    def __init__(self, rank: int, size: int, queues, barrier, timeout: float):
        self._rank = rank
        self._size = size
        self._queues = queues  # queues[src][dst]
        self._barrier = barrier
        self._timeout = timeout
        self._stats = RankStats(rank=rank)
        self._current_stage = -1
        # Unwaited irecv requests, FIFO per (src, tag).
        self._pending_irecvs: dict[tuple[int, int], deque] = {}

    # ---- identity --------------------------------------------------------
    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._size

    @property
    def stats(self) -> RankStats:
        return self._stats

    # ---- staging ----------------------------------------------------------
    def begin_stage(self, stage: int) -> None:
        self._current_stage = int(stage)

    @property
    def current_stage(self) -> int:
        return self._current_stage

    @property
    def counters(self) -> dict[str, int]:
        """All named counters merged across stages (back-compat view)."""
        return merge_counters(self._stats.stages.values())

    def _bucket(self):
        return self._stats.stage(self._current_stage)

    # ---- computation (counts only; wall time measures itself) --------------
    async def compute(self, seconds: float, *, kind: str = "compute", count: int = 0) -> None:
        self._bucket().add_counter(kind, count)

    # ---- transport ---------------------------------------------------------
    def _put(self, dst: int, payload: Any, nbytes: Optional[int], tag: int) -> int:
        """Frame, size, and enqueue one message; returns the priced size."""
        wire, size, pickled = encode_payload(payload, nbytes)
        self._queues[self._rank][dst].put((tag, wire, size, pickled))
        bucket = self._bucket()
        bucket.bytes_sent += size
        bucket.msgs_sent += 1
        return size

    def _get(self, src: int, tag: int) -> tuple[Any, int]:
        """Blocking dequeue of one message from ``src``; returns
        ``(payload, priced_size)`` and accounts bytes/time received."""
        start = time.perf_counter()
        try:
            got_tag, wire, size, pickled = self._queues[src][self._rank].get(
                timeout=self._timeout
            )
        except Exception as exc:
            raise SimulationError(
                f"rank {self._rank} timed out receiving from {src} (tag {tag})"
            ) from exc
        if tag != ANY_TAG and got_tag != tag:
            raise SimulationError(
                f"rank {self._rank} expected tag {tag} from {src}, got {got_tag} "
                "(out-of-order traffic is not supported on this backend)"
            )
        bucket = self._bucket()
        bucket.comm_time += time.perf_counter() - start
        bucket.bytes_recv += size
        bucket.msgs_recv += 1
        return decode_payload(wire, pickled), size

    async def send(self, dst: int, payload: Any, *, nbytes=None, tag: int = 0):
        self._check_peer(dst)
        self._put(dst, payload, nbytes, tag)

    async def recv(self, src: int, *, tag: int = ANY_TAG) -> Any:
        self._check_peer(src)
        payload, _ = self._get(src, tag)
        return payload

    async def sendrecv(self, peer: int, payload: Any, *, nbytes=None, tag: int = 0) -> Any:
        if peer == self._rank:
            raise ConfigurationError("cannot sendrecv with self")
        self._check_peer(peer)
        # Queues are buffered, so send-then-receive cannot deadlock.
        self._put(peer, payload, nbytes, tag)
        received, _ = self._get(peer, tag)
        return received

    # ---- nonblocking -------------------------------------------------------
    async def isend(self, dst: int, payload: Any, *, nbytes=None, tag: int = 0):
        self._check_peer(dst)
        request = MPRequest("isend", dst, tag)
        request.nbytes = self._put(dst, payload, nbytes, tag)
        return request

    async def irecv(self, src: int, *, tag: int = 0):
        self._check_peer(src)
        request = MPRequest("irecv", src, tag)
        self._pending_irecvs.setdefault((src, tag), deque()).append(request)
        return request

    async def wait(self, request) -> Any:
        if not isinstance(request, MPRequest):
            raise ConfigurationError(
                f"wait takes an MPRequest on this backend, got {type(request).__name__}"
            )
        # Drain the (src, tag) channel head-first so payloads pair with
        # requests in post order regardless of the order waits are issued.
        while not request.done:
            pending = self._pending_irecvs[(request.peer, request.tag)]
            head = pending.popleft()
            head.payload, head.nbytes = self._get(head.peer, head.tag)
            head.done = True
        return request.payload if request.kind == "irecv" else None

    # ---- collective --------------------------------------------------------
    async def barrier(self) -> None:
        start = time.perf_counter()
        self._barrier.wait(timeout=self._timeout)
        self._bucket().comm_time += time.perf_counter() - start


def _worker(rank, size, program, args, queues, barrier, timeout, result_queue):
    """Subprocess entry: drive the rank coroutine to completion."""
    try:
        perf.reset()  # the fork inherits the parent's counters; start clean
        ctx = MPRankContext(rank, size, queues, barrier, timeout)
        start = time.perf_counter()
        with perf.timer("backend.mp.rank_program"):
            value = drive(program(ctx, *args))
        wall = time.perf_counter() - start
        result_queue.put((rank, "ok", value, ctx.stats, wall, perf.report()))
    except BaseException as exc:  # report, don't hang the parent
        result_queue.put((rank, "error", repr(exc), None, 0.0, {}))


@dataclass
class MPRunResult:
    """Results of one multiprocessing run."""

    returns: list[Any]
    rank_stats: list[RankStats]
    wall_times: list[float] = field(default_factory=list)
    perf_reports: list[dict] = field(default_factory=list)

    @property
    def counters(self) -> list[dict[str, int]]:
        """Per-rank named counters merged across stages (back-compat)."""
        return [merge_counters(rs.stages.values()) for rs in self.rank_stats]


def run_rank_programs_mp(
    num_ranks: int,
    program,
    args: Sequence[Any] = (),
    *,
    timeout: float = DEFAULT_TIMEOUT,
) -> MPRunResult:
    """Run ``program(ctx, *args)`` on ``num_ranks`` real processes.

    ``program`` must be a picklable (module-level) ``async def``; its
    return values are collected per rank.  Raises
    :class:`SimulationError` if any rank fails or times out.
    """
    if num_ranks < 1:
        raise ConfigurationError(f"num_ranks must be >= 1, got {num_ranks}")
    mp_ctx = mp.get_context("fork")  # workers inherit numpy state cheaply
    queues = [
        [mp_ctx.Queue() if src != dst else None for dst in range(num_ranks)]
        for src in range(num_ranks)
    ]
    barrier = mp_ctx.Barrier(num_ranks)
    result_queue = mp_ctx.Queue()

    workers = [
        mp_ctx.Process(
            target=_worker,
            args=(rank, num_ranks, program, tuple(args), queues, barrier,
                  timeout, result_queue),
        )
        for rank in range(num_ranks)
    ]
    for worker in workers:
        worker.start()

    returns: list[Any] = [None] * num_ranks
    rank_stats = [RankStats(rank=r) for r in range(num_ranks)]
    wall_times = [0.0] * num_ranks
    perf_reports: list[dict] = [{} for _ in range(num_ranks)]
    failures: list[str] = []
    try:
        for _ in range(num_ranks):
            rank, status, value, stats, wall, report = result_queue.get(timeout=timeout)
            if status == "ok":
                returns[rank] = value
                rank_stats[rank] = stats
                wall_times[rank] = wall
                perf_reports[rank] = report
            else:
                failures.append(f"rank {rank}: {value}")
    except Exception as exc:
        failures.append(f"collection timed out: {exc!r}")
    finally:
        for worker in workers:
            worker.join(timeout=5.0)
            if worker.is_alive():
                worker.terminate()
                worker.join()
    if failures:
        raise SimulationError("multiprocessing run failed: " + "; ".join(failures))
    return MPRunResult(
        returns=returns,
        rank_stats=rank_stats,
        wall_times=wall_times,
        perf_reports=perf_reports,
    )
