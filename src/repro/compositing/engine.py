"""The generic exchange engine: run any schedule × codec pair.

:class:`ScheduledCompositor` is the single run loop behind every
composed method.  The schedule decides *who swaps what* (partners, kept
parts, depth order of the folds); the codec decides *what crosses the
wire* (serialization plus the matching ``T_bound``/``T_encode``/
``T_over`` charges).  The engine sequences them exactly as the paper's
method listings do — encode, charge, exchange, decode, composite,
refresh state — so the four paper methods expressed as combos price
identically to their original hand-written loops, while new points of
the design space (``radix-k:rect-rle``, ``direct-send:rle``, ...) come
for free.

Per stage the engine encodes every outgoing part first (sends must
snapshot the pre-stage image — contributions fold in only after all of
the stage's exchanges), runs the grouped exchange
(:func:`repro.cluster.collectives.exchange_grouped`), then folds the
decoded contributions in the schedule's depth order, charging ``T_over``
per non-empty fold.
"""

from __future__ import annotations

import numpy as np

from ..cluster.collectives import exchange_grouped
from ..cluster.protocol import BaseRankContext
from ..cluster.stats import PRE_STAGE
from ..errors import ConfigurationError
from ..render.image import SubImage
from ..volume.partition import PartitionPlan
from .base import CompositeOutcome, Compositor
from .codec import PixelCodec
from .schedule import IndexPart, Schedule

__all__ = ["ScheduledCompositor"]


class ScheduledCompositor(Compositor):
    """Generic compositor running a :class:`Schedule` × :class:`PixelCodec`."""

    def __init__(
        self,
        schedule: Schedule,
        codec: PixelCodec,
        *,
        name: str | None = None,
        charge_pack: bool = True,
    ):
        if schedule.part_kind not in codec.supports:
            raise ConfigurationError(
                f"codec {codec.name!r} cannot carry the {schedule.part_kind!r} "
                f"parts of schedule {schedule.name!r} "
                f"(codec supports: {sorted(codec.supports)})"
            )
        self.schedule = schedule
        self.codec = codec
        self.name = name or f"{schedule.name}:{codec.name}"
        self.charge_pack = charge_pack

    def refold_pairs(self, size: int) -> list[tuple[int, int]]:
        """Fold pairing for graceful degradation, keyed off the schedule."""
        return self.schedule.refold_pairs(size)

    async def run(
        self,
        ctx: BaseRankContext,
        image: SubImage,
        plan: PartitionPlan,
        view_dir: np.ndarray,
    ) -> CompositeOutcome:
        self.check_plan(ctx, plan)
        codec = self.codec
        program = self.schedule.build(
            ctx.rank, ctx.size, image.full_rect(), image.num_pixels, plan, view_dir
        )
        # Stage-level recovery: an installed checkpointer restores the
        # resume-point snapshot (image planes, codec state, and the
        # already-accounted stage buckets) so the loop below replays
        # only the stages after it — the restored counters keep their
        # original deterministic values, which is what makes a resumed
        # run's byte/message accounting bit-identical to a clean one.
        checkpointer = getattr(ctx, "checkpointer", None)
        snapshot = (
            checkpointer.restore(image, self.name) if checkpointer is not None else None
        )
        if snapshot is not None:
            state = snapshot.codec_state
            resume_after = snapshot.stage
            ctx.stats.stages.clear()
            ctx.stats.stages.update(snapshot.stats.stages)
        else:
            resume_after = None
            state = codec.make_state(image)
            if codec.needs_bound_scan:
                ctx.begin_stage(PRE_STAGE)
                await codec.scan(ctx, image, state)

        # Live progress: a feed installed on the context receives a
        # bit-exact partial frame after every completed exchange stage —
        # the same post-fold image the checkpointer snapshots.  Emission
        # copies pixels and charges nothing.
        progress = ctx.progress
        start = ctx.now()
        num_stages = len(program.stages)
        for ordinal, stage in enumerate(program.stages):
            if resume_after is not None and stage.index <= resume_after:
                continue
            ctx.begin_stage(stage.index)
            sends: list[tuple[int, bytes, int]] = []
            metas: list[object] = []
            for step in stage.steps:
                msg, meta = codec.encode(image, step.send_part, state)
                await codec.charge_encode(ctx, step.send_part, meta)
                if self.charge_pack and msg.buffer:
                    # Zero-byte packs charge nothing (add_counter drops
                    # zero counts), so skipping the simulator round-trip
                    # is accounting-identical and saves a step per empty
                    # message at scale.
                    await ctx.charge_pack(len(msg.buffer))
                sends.append((step.peer, msg.buffer, msg.accounted_bytes))
                metas.append(meta)
            raws = await exchange_grouped(ctx, sends, tag=stage.index)
            contribs = [
                codec.decode(ctx, raw, stage.keep_part, meta, stage.index)
                for raw, meta in zip(raws, metas)
            ]
            for slot, local_in_front in stage.composite_order:
                folded = codec.composite(
                    image, stage.keep_part, contribs[slot], local_in_front
                )
                if folded:
                    await ctx.charge_over(folded)
            codec.update_state(state, stage.keep_part, contribs)
            if checkpointer is not None:
                checkpointer.save(stage.index, image, state, ctx.stats, self.name)
            if progress is not None:
                progress.emit_stage(
                    rank=ctx.rank,
                    stage=stage.index,
                    ordinal=ordinal,
                    num_stages=num_stages,
                    num_ranks=ctx.size,
                    part=stage.keep_part,
                    image=image,
                    t=ctx.now() - start,
                )

        final = program.final_part
        if isinstance(final, IndexPart):
            return CompositeOutcome(
                image=image, owned_indices=final.indices, producer=self.name
            )
        return CompositeOutcome(image=image, owned_rect=final.rect, producer=self.name)
