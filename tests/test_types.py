"""Unit tests for repro.types (Rect and Extent3)."""

import numpy as np
import pytest

from repro.types import Extent3, Rect


class TestRectBasics:
    def test_dimensions(self):
        r = Rect(1, 2, 4, 7)
        assert r.height == 3
        assert r.width == 5
        assert r.area == 15
        assert not r.is_empty

    def test_empty_canonical(self):
        assert Rect.empty().is_empty
        assert Rect.empty().area == 0

    def test_negative_extent_is_empty(self):
        assert Rect(5, 5, 3, 9).is_empty
        assert Rect(5, 5, 9, 3).is_empty

    def test_normalized_collapses_empty(self):
        assert Rect(5, 5, 3, 9).normalized() == Rect.empty()

    def test_normalized_keeps_nonempty(self):
        r = Rect(0, 0, 2, 2)
        assert r.normalized() == r

    def test_full(self):
        r = Rect.full(10, 20)
        assert (r.y0, r.x0, r.y1, r.x1) == (0, 0, 10, 20)
        assert r.area == 200

    def test_height_width_clamped_nonnegative(self):
        r = Rect(5, 5, 1, 1)
        assert r.height == 0
        assert r.width == 0


class TestRectSetOps:
    def test_intersect_overlap(self):
        a = Rect(0, 0, 4, 4)
        b = Rect(2, 2, 6, 6)
        assert a.intersect(b) == Rect(2, 2, 4, 4)

    def test_intersect_disjoint_is_empty(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(3, 3, 5, 5)
        assert a.intersect(b).is_empty

    def test_intersect_commutes(self):
        a = Rect(0, 1, 5, 6)
        b = Rect(2, 0, 7, 4)
        assert a.intersect(b) == b.intersect(a)

    def test_union_covers_both(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(5, 5, 6, 8)
        u = a.union(b)
        assert u.contains(a) and u.contains(b)
        assert u == Rect(0, 0, 6, 8)

    def test_union_with_empty_is_identity(self):
        a = Rect(1, 1, 3, 3)
        assert a.union(Rect.empty()) == a
        assert Rect.empty().union(a) == a

    def test_contains_empty_always(self):
        assert Rect(0, 0, 1, 1).contains(Rect.empty())
        assert Rect.empty().contains(Rect.empty())

    def test_empty_contains_nothing_nonempty(self):
        assert not Rect.empty().contains(Rect(0, 0, 1, 1))

    def test_contains_point(self):
        r = Rect(1, 1, 3, 3)
        assert r.contains_point(1, 1)
        assert r.contains_point(2, 2)
        assert not r.contains_point(3, 3)  # half-open
        assert not r.contains_point(0, 1)


class TestRectSplit:
    def test_split_rows(self):
        low, high = Rect(0, 0, 10, 4).split(0)
        assert low == Rect(0, 0, 5, 4)
        assert high == Rect(5, 0, 10, 4)

    def test_split_cols(self):
        low, high = Rect(0, 0, 4, 10).split(1)
        assert low == Rect(0, 0, 4, 5)
        assert high == Rect(0, 5, 4, 10)

    def test_split_odd_size(self):
        low, high = Rect(0, 0, 5, 2).split(0)
        assert low.area + high.area == 10
        assert low.height == 2 and high.height == 3

    def test_split_bad_axis(self):
        with pytest.raises(ValueError):
            Rect(0, 0, 4, 4).split(2)

    def test_split_partition_is_exact(self):
        r = Rect(3, 7, 12, 20)
        for axis in (0, 1):
            low, high = r.split(axis)
            assert low.area + high.area == r.area
            assert low.intersect(high).is_empty
            assert r.contains(low) and r.contains(high)


class TestRectSerialization:
    def test_int16_roundtrip(self):
        r = Rect(1, 2, 300, 400)
        assert Rect.from_int16_array(r.as_int16_array()) == r

    def test_int16_empty_roundtrip(self):
        assert Rect.from_int16_array(Rect.empty().as_int16_array()).is_empty

    def test_int16_bad_shape(self):
        with pytest.raises(ValueError):
            Rect.from_int16_array(np.zeros(3, dtype=np.int16))

    def test_slices_index_correct_block(self):
        arr = np.arange(20).reshape(4, 5)
        rows, cols = Rect(1, 2, 3, 4).slices()
        block = arr[rows, cols]
        assert block.tolist() == [[7, 8], [12, 13]]

    def test_shifted(self):
        assert Rect(1, 1, 2, 2).shifted(3, 4) == Rect(4, 5, 5, 6)

    def test_shifted_empty_stays_empty(self):
        assert Rect.empty().shifted(5, 5).is_empty


class TestExtent3:
    def test_full(self):
        e = Extent3.full((4, 5, 6))
        assert e.shape == (4, 5, 6)
        assert e.num_voxels == 120
        assert not e.is_empty

    def test_center(self):
        e = Extent3(0, 0, 0, 4, 6, 8)
        assert np.allclose(e.center, [2, 3, 4])

    def test_split_each_axis(self):
        e = Extent3.full((8, 8, 8))
        for axis in range(3):
            a, b = e.split(axis)
            assert a.num_voxels + b.num_voxels == e.num_voxels
            assert a.shape[axis] == 4 and b.shape[axis] == 4

    def test_split_odd(self):
        e = Extent3.full((5, 4, 4))
        a, b = e.split(0)
        assert a.shape[0] == 2 and b.shape[0] == 3

    def test_split_too_thin(self):
        e = Extent3.full((1, 4, 4))
        with pytest.raises(ValueError):
            e.split(0)

    def test_corners_count_and_bounds(self):
        e = Extent3(1, 2, 3, 4, 6, 9)
        corners = e.corners()
        assert corners.shape == (8, 3)
        assert corners.min(axis=0).tolist() == [1, 2, 3]
        assert corners.max(axis=0).tolist() == [4, 6, 9]

    def test_slices(self):
        data = np.arange(27).reshape(3, 3, 3)
        e = Extent3(0, 1, 2, 2, 3, 3)
        sx, sy, sz = e.slices()
        assert data[sx, sy, sz].shape == (2, 2, 1)

    def test_empty(self):
        assert Extent3(0, 0, 0, 0, 5, 5).is_empty
