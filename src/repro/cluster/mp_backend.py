"""Real-transport backend: the rank programs on OS processes and queues.

The simulator gives deterministic *timing*; this backend gives a second,
*real* execution substrate for correctness: every rank is an actual
``multiprocessing`` process and every message crosses a real IPC queue.
The same rank-program coroutines run unchanged — :class:`MPRankContext`
implements the full :class:`~repro.cluster.protocol.BaseRankContext`
surface (including ``isend``/``irecv``/``wait``) with synchronous
transport calls inside ``async`` methods that never yield, so each rank
drives its coroutine to completion locally (no event loop needed).

Accounting is the same per-stage :class:`~repro.cluster.stats.RankStats`
schema the simulator fills, with two differences dictated by physics:

* times are **wall-clock** seconds (blocked receive time lands in
  ``comm_time``; skew cannot be split out on a real transport), and
* ``charge_*`` record operation *counts* only — modelled seconds make no
  sense off the simulator.

Byte counters use the exact sizing the simulator prices
(:func:`~repro.cluster.protocol.encode_payload`), so per-stage
``bytes_sent``/``bytes_recv`` match the simulated run bit for bit.

Robustness
----------
Frames carry a CRC32 of the wire payload; the receiver verifies it and
raises :class:`~repro.errors.WireFormatError` on mismatch.  Sends retry
transient queue pressure with exponential backoff up to
:data:`RETRANSMIT_BUDGET` attempts; receives poll in growing slices and
raise a typed :class:`~repro.errors.DeadlockError` naming the blocked
``(src, tag)`` — plus the waiting rank's pipeline phase and stage — when
the configured timeout expires.  The parent supervises worker liveness
through process sentinels and fails fast with
:class:`~repro.errors.RankFailedError` — carrying the worker's formatted
traceback — the moment a rank dies, instead of blocking out the full
receive timeout.  Teardown terminates stragglers and releases every
queue buffer.

Liveness is additionally tracked through **heartbeats**: every worker
stamps a shared ``monotonic`` slot from a daemon thread every
:data:`HEARTBEAT_INTERVAL` seconds, and a blocked receiver checks its
peer's slot between poll slices — a dead peer surfaces as a typed
:class:`~repro.errors.DeadlockError` after a couple of seconds instead
of the full receive timeout, independent of how long that timeout is.

Recovery (see :mod:`repro.cluster.recovery`): pass a
:class:`~repro.cluster.recovery.RespawnPlan` and the supervisor restarts
a dead worker in place — bounded by the plan's budget, and only when the
replay is protocol-safe (the dead rank never sent a message, or a stage
checkpoint pins its resume point).  Respawned ranks rerun the
replacement args (fault injection stripped, resume at the latest
checkpoint); every decision lands in ``MPRunResult.events``.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import threading
import time
import traceback
import zlib
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Any, Optional, Sequence

from .. import perf
from ..errors import (
    ConfigurationError,
    DeadlockError,
    RankFailedError,
    SimulationError,
    WireFormatError,
)
from .events import ANY_TAG
from .faults import frame_checksum
from .protocol import BaseRankContext, decode_payload, drive, encode_payload
from .stats import RankStats, merge_counters

__all__ = [
    "MPRankContext",
    "MPRequest",
    "run_rank_programs_mp",
    "DEFAULT_TIMEOUT",
    "RETRANSMIT_BUDGET",
    "HEARTBEAT_INTERVAL",
]

#: Per-receive timeout (seconds) after which a rank assumes deadlock.
DEFAULT_TIMEOUT = 60.0

#: Send attempts before the transport gives up on a message.
RETRANSMIT_BUDGET = 8

#: Seconds between worker heartbeat stamps (shared monotonic slots).
HEARTBEAT_INTERVAL = 0.25

_RETRY_BACKOFF = 0.001  # first retry sleep; doubles per attempt
_POLL_START = 0.02  # first receive poll slice; doubles up to _POLL_MAX
_POLL_MAX = 0.5


def _stale_after(interval: float) -> float:
    """Seconds without a heartbeat before a peer is presumed dead.

    Generous relative to the stamping interval so GIL scheduling hiccups
    and the supervisor's respawn window never false-positive.
    """
    return max(10.0 * interval, 2.5)


class MPRequest:
    """Handle for a nonblocking operation on the multiprocessing backend.

    Queues are buffered, so ``isend`` completes eagerly at post time;
    ``irecv`` defers the blocking queue read to :meth:`MPRankContext.wait`,
    with per-``(src, tag)`` FIFO delivery matching the simulator's
    post-order pairing even when waits complete out of order.
    """

    __slots__ = ("kind", "peer", "tag", "payload", "nbytes", "done")

    def __init__(self, kind: str, peer: int, tag: int):
        self.kind = kind  # "isend" | "irecv"
        self.peer = peer
        self.tag = tag
        self.payload: Any = None
        self.nbytes = 0
        self.done = kind == "isend"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.done else "pending"
        return f"MPRequest({self.kind}, peer={self.peer}, tag={self.tag}, {state})"


def _raw_frame_bytes(wire: Any) -> Optional[bytes]:
    """Flat bytes of an encoded wire payload (``None`` if not a buffer)."""
    if wire is None:
        return b""
    if isinstance(wire, (bytes, bytearray)):
        return bytes(wire)
    try:
        return memoryview(wire).tobytes()
    except TypeError:
        return None


class MPRankContext(BaseRankContext):
    """Rank API over multiprocessing queues (one queue per directed pair).

    Implements the full :class:`~repro.cluster.protocol.BaseRankContext`
    surface; the ``async`` methods complete synchronously, so awaiting
    them never suspends.
    """

    backend_name = "multiprocessing"

    def __init__(
        self,
        rank: int,
        size: int,
        queues,
        barrier,
        timeout: float,
        *,
        heartbeats=None,
        heartbeat_interval: float = HEARTBEAT_INTERVAL,
    ):
        self._rank = rank
        self._size = size
        self._queues = queues  # queues[src][dst]
        self._barrier = barrier
        self._timeout = timeout
        self._stats = RankStats(rank=rank)
        self._current_stage = -1
        # Shared monotonic heartbeat slots (one per rank); None disables
        # peer-liveness checks in blocked receives.
        self._heartbeats = heartbeats
        self._hb_stale = _stale_after(heartbeat_interval)
        # Unwaited irecv requests, FIFO per (src, tag).
        self._pending_irecvs: dict[tuple[int, int], deque] = {}

    # ---- identity --------------------------------------------------------
    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._size

    @property
    def stats(self) -> RankStats:
        return self._stats

    # ---- staging ----------------------------------------------------------
    def _set_stage(self, stage: int) -> None:
        self._current_stage = int(stage)

    @property
    def current_stage(self) -> int:
        return self._current_stage

    @property
    def counters(self) -> dict[str, int]:
        """All named counters merged across stages (back-compat view)."""
        return merge_counters(self._stats.stages.values())

    def _bucket(self):
        return self._stats.stage(self._current_stage)

    # ---- computation (counts only; wall time measures itself) --------------
    async def compute(self, seconds: float, *, kind: str = "compute", count: int = 0) -> None:
        self._bucket().add_counter(kind, count)

    # ---- transport ---------------------------------------------------------
    def _put_frame(self, dst: int, frame: tuple) -> None:
        """Enqueue one frame, retrying transient transport pressure with
        exponential backoff up to the retransmit budget."""
        channel = self._queues[self._rank][dst]
        backoff = _RETRY_BACKOFF
        last: Optional[BaseException] = None
        for attempt in range(RETRANSMIT_BUDGET):
            try:
                channel.put(frame, timeout=self._timeout)
                if attempt:
                    self._bucket().add_counter("retransmits", attempt)
                return
            except (queue_mod.Full, OSError) as exc:
                last = exc
                time.sleep(backoff)
                backoff = min(backoff * 2.0, 0.25)
        # Budget exhausted: account the attempts *before* raising so the
        # retransmission pressure is visible in the stats the failure
        # report ships (previously the counter vanished with the raise).
        self._bucket().add_counter("retransmits", RETRANSMIT_BUDGET)
        raise SimulationError(
            f"rank {self._rank} exhausted the {RETRANSMIT_BUDGET}-attempt "
            f"retransmit budget sending to rank {dst} "
            f"(stage {self._current_stage}): {last!r}"
        )

    def _put(
        self, dst: int, payload: Any, nbytes: Optional[int], tag: int,
        verb: str = "send",
    ) -> tuple[int, bool]:
        """Frame, size, checksum, and enqueue one message; returns
        ``(priced_size, dropped)``.  Injected faults apply here (the
        shared protocol hook), after the CRC is taken — corruption is
        always detectable."""
        faults = self._message_faults(verb, dst, tag)
        wire, size, pickled = encode_payload(payload, nbytes)
        crc = frame_checksum(wire)
        if faults is not None:
            if faults.delay > 0.0:
                time.sleep(faults.delay)
            if faults.drop:
                # The message vanished on the wire: nothing is enqueued
                # and (matching the simulator) nothing is accounted.
                return size, True
            if faults.corrupt:
                raw = _raw_frame_bytes(wire)
                if raw is not None:
                    if crc is None:
                        crc = zlib.crc32(raw) & 0xFFFFFFFF
                    wire = self._fault_injector.damage_wire(raw)
        self._put_frame(dst, (tag, wire, size, pickled, crc))
        bucket = self._bucket()
        bucket.bytes_sent += size
        bucket.msgs_sent += 1
        return size, False

    def _get(self, src: int, tag: int) -> tuple[Any, int]:
        """Blocking dequeue of one message from ``src``; returns
        ``(payload, priced_size)`` and accounts bytes/time received.

        Polls in exponentially growing slices so a dead sender surfaces
        as a typed :class:`~repro.errors.DeadlockError` naming the
        blocked ``(src, tag)``, the waiting rank's phase/stage, and the
        peer — after the configured timeout, or much sooner when the
        peer's heartbeat goes stale; transport errors are distinguished
        from plain queue emptiness."""
        start = time.perf_counter()
        deadline = start + self._timeout
        channel = self._queues[src][self._rank]
        poll = _POLL_START
        while True:
            remaining = deadline - time.perf_counter()
            if remaining <= 0.0:
                raise DeadlockError(
                    {
                        self._rank: (
                            f"recv from rank {src} (tag {tag}) timed out after "
                            f"{self._timeout:.1f}s on the {self.backend_name} backend"
                        )
                    },
                    phase=self.current_phase,
                    stage=self._current_stage,
                    peer=src,
                )
            try:
                frame = channel.get(timeout=min(poll, remaining))
                break
            except queue_mod.Empty:
                poll = min(poll * 2.0, _POLL_MAX)
                # Fast liveness: a peer whose heartbeat slot has gone
                # stale is dead — no point waiting out the full timeout.
                # Slot 0.0 means "never stamped" (still forking): skip.
                if self._heartbeats is not None:
                    last = self._heartbeats[src]
                    if last > 0.0 and time.monotonic() - last > self._hb_stale:
                        raise DeadlockError(
                            {
                                self._rank: (
                                    f"peer rank {src} stopped heartbeating "
                                    f"(>{self._hb_stale:.1f}s stale) while this "
                                    f"rank waited on tag {tag}"
                                )
                            },
                            phase=self.current_phase,
                            stage=self._current_stage,
                            peer=src,
                        )
            except (OSError, EOFError, ValueError) as exc:
                raise SimulationError(
                    f"rank {self._rank}: transport failure receiving from "
                    f"rank {src}: {exc!r}"
                ) from exc
        got_tag, wire, size, pickled, crc = frame
        if crc is not None:
            actual = frame_checksum(wire)
            if actual != crc:
                self._stats.events.append(
                    {
                        "event": "detected",
                        "fault": "corrupt",
                        "rank": self._rank,
                        "src": src,
                        "tag": got_tag,
                        "stage": self._current_stage,
                    }
                )
                raise WireFormatError(
                    f"rank {self._rank}: message from rank {src} (tag {got_tag}, "
                    f"{size}B) failed CRC32 check on the {self.backend_name} "
                    f"backend (expected {crc:#010x}, got "
                    f"{'unchecksummable' if actual is None else format(actual, '#010x')})"
                )
        if tag != ANY_TAG and got_tag != tag:
            raise SimulationError(
                f"rank {self._rank} expected tag {tag} from {src}, got {got_tag} "
                "(out-of-order traffic is not supported on this backend)"
            )
        bucket = self._bucket()
        bucket.comm_time += time.perf_counter() - start
        bucket.bytes_recv += size
        bucket.msgs_recv += 1
        return decode_payload(wire, pickled), size

    async def send(self, dst: int, payload: Any, *, nbytes=None, tag: int = 0):
        self._check_peer(dst)
        self._put(dst, payload, nbytes, tag)

    async def recv(self, src: int, *, tag: int = ANY_TAG) -> Any:
        self._check_peer(src)
        payload, _ = self._get(src, tag)
        return payload

    async def sendrecv(self, peer: int, payload: Any, *, nbytes=None, tag: int = 0) -> Any:
        if peer == self._rank:
            raise ConfigurationError("cannot sendrecv with self")
        self._check_peer(peer)
        # Queues are buffered, so send-then-receive cannot deadlock.
        _, dropped = self._put(peer, payload, nbytes, tag, verb="sendrecv")
        if dropped:
            # Matching the simulator: a dropped sendrecv means the rank's
            # NIC died mid-exchange — it gets nothing back either, and
            # the partner blocks until its receive timeout.
            return None
        received, _ = self._get(peer, tag)
        return received

    # ---- nonblocking -------------------------------------------------------
    async def isend(self, dst: int, payload: Any, *, nbytes=None, tag: int = 0):
        self._check_peer(dst)
        request = MPRequest("isend", dst, tag)
        request.nbytes, _ = self._put(dst, payload, nbytes, tag, verb="isend")
        return request

    async def irecv(self, src: int, *, tag: int = ANY_TAG):
        self._check_peer(src)
        request = MPRequest("irecv", src, tag)
        self._pending_irecvs.setdefault((src, tag), deque()).append(request)
        return request

    async def wait(self, request) -> Any:
        if not isinstance(request, MPRequest):
            raise ConfigurationError(
                f"wait takes an MPRequest on this backend, got {type(request).__name__}"
            )
        # Drain the (src, tag) channel head-first so payloads pair with
        # requests in post order regardless of the order waits are issued.
        while not request.done:
            pending = self._pending_irecvs[(request.peer, request.tag)]
            head = pending.popleft()
            head.payload, head.nbytes = self._get(head.peer, head.tag)
            head.done = True
        return request.payload if request.kind == "irecv" else None

    # ---- collective --------------------------------------------------------
    async def barrier(self) -> None:
        start = time.perf_counter()
        try:
            self._barrier.wait(timeout=self._timeout)
        except threading.BrokenBarrierError as exc:
            raise DeadlockError(
                {
                    self._rank: (
                        f"barrier broken or timed out after {self._timeout:.1f}s "
                        "(a partner rank died or never arrived)"
                    )
                },
                phase=self.current_phase,
                stage=self._current_stage,
            ) from exc
        self._bucket().comm_time += time.perf_counter() - start


def _heartbeat_loop(heartbeats, rank: int, interval: float, stop: threading.Event) -> None:
    """Daemon thread: stamp this rank's shared liveness slot."""
    while not stop.wait(interval):
        heartbeats[rank] = time.monotonic()


def _worker(
    rank, size, program, args, queues, barrier, timeout, result_queue,
    heartbeats=None, heartbeat_interval=HEARTBEAT_INTERVAL,
):
    """Subprocess entry: drive the rank coroutine to completion.

    Failures ship the exception *type name*, message, and formatted
    traceback (plus the rank's stats, whose ``events`` list records any
    injected faults) so the parent can rebuild a diagnosable error."""
    ctx = None
    stop = None
    try:
        perf.reset()  # the fork inherits the parent's counters; start clean
        if heartbeats is not None:
            heartbeats[rank] = time.monotonic()
            stop = threading.Event()
            threading.Thread(
                target=_heartbeat_loop,
                args=(heartbeats, rank, heartbeat_interval, stop),
                daemon=True,
            ).start()
        ctx = MPRankContext(
            rank, size, queues, barrier, timeout,
            heartbeats=heartbeats, heartbeat_interval=heartbeat_interval,
        )
        start = time.perf_counter()
        with perf.timer("backend.mp.rank_program"):
            value = drive(program(ctx, *args))
        wall = time.perf_counter() - start
        result_queue.put((rank, "ok", value, ctx.stats, wall, perf.report()))
    except BaseException as exc:  # report, don't hang the parent
        info = {
            "type": type(exc).__name__,
            "message": str(exc),
            "traceback": traceback.format_exc(),
            "phase": getattr(exc, "phase", None),
            "stage": getattr(exc, "stage", None),
            "peer": getattr(exc, "peer", None),
            "blocked": getattr(exc, "blocked", None),
            # Where the *rank* was (vs where the error says it was):
            # lets the supervisor judge whether a replay is safe.
            "ctx_phase": ctx.current_phase if ctx is not None else None,
            "ctx_stage": ctx.current_stage if ctx is not None else None,
        }
        stats = ctx.stats if ctx is not None else RankStats(rank=rank)
        try:
            result_queue.put((rank, "error", info, stats, 0.0, {}))
        except Exception:
            pass  # the parent's liveness supervisor notices the exit
    finally:
        if stop is not None:
            stop.set()


@dataclass
class MPRunResult:
    """Results of one multiprocessing run."""

    returns: list[Any]
    rank_stats: list[RankStats]
    wall_times: list[float] = field(default_factory=list)
    perf_reports: list[dict] = field(default_factory=list)
    #: Supervisor-level recovery events (detected failures, respawns);
    #: empty on clean runs.
    events: list[dict] = field(default_factory=list)

    @property
    def counters(self) -> list[dict[str, int]]:
        """Per-rank named counters merged across stages (back-compat)."""
        return [merge_counters(rs.stages.values()) for rs in self.rank_stats]


def _error_from_info(rank: int, info: dict, stats: Optional[RankStats]) -> Exception:
    """Rebuild a typed error from a worker's failure report."""
    events = list(stats.events) if stats is not None else []
    if info.get("type") == "WireFormatError":
        # Detected corruption keeps its type across the process
        # boundary — the CRC contract promises WireFormatError.
        err: Exception = WireFormatError(info.get("message", ""))
        err.rank = rank  # type: ignore[attr-defined]
        err.events = events  # type: ignore[attr-defined]
        return err
    if info.get("type") == "DeadlockError":
        # A rank's receive timeout surfaces as the same typed error the
        # simulator's structural detection raises, with the blocked
        # rank's phase/stage/peer diagnostics carried across processes.
        blocked = info.get("blocked")
        if not isinstance(blocked, dict) or not blocked:
            blocked = {rank: info.get("message", "")}
        phase = info.get("phase") or info.get("ctx_phase")
        stage = info.get("stage")
        if not isinstance(stage, int):
            stage = info.get("ctx_stage")
        peer = info.get("peer")
        deadlock = DeadlockError(
            blocked,
            phase=phase if isinstance(phase, str) else None,
            stage=stage if isinstance(stage, int) else None,
            peer=peer if isinstance(peer, int) else None,
        )
        deadlock.events = events  # type: ignore[attr-defined]
        return deadlock
    phase = info.get("phase")
    stage = info.get("stage")
    return RankFailedError(
        rank,
        original_type=info.get("type"),
        traceback_text=info.get("traceback"),
        detail=f"{info.get('type')}: {info.get('message')}",
        events=events,
        fault_phase=phase if isinstance(phase, str) else None,
        fault_stage=stage if isinstance(stage, int) else None,
    )


def _release_queue(channel) -> None:
    """Drain and close one queue so buffers and feeder threads go away."""
    if channel is None:
        return
    try:
        while True:
            channel.get_nowait()
    except Exception:
        pass
    try:
        channel.cancel_join_thread()
        channel.close()
    except Exception:
        pass


def _total_msgs_sent(stats: Optional[RankStats]) -> Optional[int]:
    """Messages a failed worker put on the wire (``None`` = unknown)."""
    if stats is None:
        return None
    return sum(bucket.msgs_sent for bucket in stats.stages.values())


def run_rank_programs_mp(
    num_ranks: int,
    program,
    args: Sequence[Any] = (),
    *,
    timeout: float = DEFAULT_TIMEOUT,
    respawn=None,
    heartbeat_interval: float = HEARTBEAT_INTERVAL,
) -> MPRunResult:
    """Run ``program(ctx, *args)`` on ``num_ranks`` real processes.

    ``program`` must be a picklable (module-level) ``async def``; its
    return values are collected per rank.  A supervisor loop drains
    results while watching worker liveness through process sentinels:
    the first rank that reports an error or dies without reporting
    raises immediately — :class:`~repro.errors.RankFailedError` with the
    worker's traceback (or :class:`~repro.errors.WireFormatError` for
    detected corruption) — rather than stalling out the full timeout.
    Teardown terminates any stragglers and releases every queue.

    ``respawn`` (a :class:`~repro.cluster.recovery.RespawnPlan`) turns
    the fail-fast supervisor into a recovering one: a crashed worker is
    restarted in place with the plan's replacement args, bounded by its
    budget, as long as the replay is protocol-safe — the dead rank never
    sent a message (peers' frames still sit in its inbound queues), or a
    stage checkpoint pins its resume point.  Protocol-level failures
    (``DeadlockError``/``WireFormatError``) are never respawned — a
    replay would repeat them.  Every decision is a structured event in
    ``MPRunResult.events``; an unrecoverable failure carries the events
    on the raised error so orchestrators can fall down the policy
    lattice without losing the audit trail.

    ``heartbeat_interval`` spaces worker liveness stamps (``<= 0``
    disables heartbeats and with them fast peer-death detection).
    """
    if num_ranks < 1:
        raise ConfigurationError(f"num_ranks must be >= 1, got {num_ranks}")
    mp_ctx = mp.get_context("fork")  # workers inherit numpy state cheaply
    queues = [
        [mp_ctx.Queue() if src != dst else None for dst in range(num_ranks)]
        for src in range(num_ranks)
    ]
    barrier = mp_ctx.Barrier(num_ranks)
    result_queue = mp_ctx.Queue()
    heartbeats = (
        mp_ctx.Array("d", num_ranks) if heartbeat_interval > 0.0 else None
    )

    def _spawn(rank: int, worker_args: tuple):
        process = mp_ctx.Process(
            target=_worker,
            args=(rank, num_ranks, program, worker_args, queues, barrier,
                  timeout, result_queue, heartbeats, heartbeat_interval),
        )
        process.start()
        return process

    workers = [_spawn(rank, tuple(args)) for rank in range(num_ranks)]
    retired: list = []  # replaced processes, joined at teardown

    returns: list[Any] = [None] * num_ranks
    rank_stats = [RankStats(rank=r) for r in range(num_ranks)]
    wall_times = [0.0] * num_ranks
    perf_reports: list[dict] = [{} for _ in range(num_ranks)]
    pending = set(range(num_ranks))
    failure: Optional[Exception] = None
    events: list[dict] = []
    respawns_left = respawn.budget if respawn is not None else 0
    # Workers bound their own receives by `timeout`, so honest runs
    # always report within it; the slack covers result shipping.
    deadline = time.monotonic() + timeout + 10.0

    def _replay_safe(rank: int, info: Optional[dict], stats: Optional[RankStats]) -> bool:
        """Would restarting ``rank`` keep the message protocol intact?"""
        if info is not None and info.get("type") in ("DeadlockError", "WireFormatError"):
            return False  # protocol-level failure: a replay repeats it
        sent = _total_msgs_sent(stats)
        if sent == 0:
            # Nothing on the wire yet: peers' frames still sit in this
            # rank's inbound queues, so a from-scratch replay re-consumes
            # them at exactly the right points.
            return True
        store = respawn.store if respawn is not None else None
        # Sent something (or unknown, e.g. a silent death): only a stage
        # checkpoint pins the resume point precisely enough to rejoin.
        return store is not None and store.latest_stage(rank) is not None

    def _try_respawn(rank: int, info: Optional[dict], stats: Optional[RankStats]) -> bool:
        """Restart ``rank`` in place if the plan, budget, and protocol allow."""
        nonlocal respawns_left, deadline
        if respawn is None:
            return False
        detected = {
            "event": "detected",
            "fault": "crash" if info is not None and info.get("type") == "InjectedCrash" else "failure",
            "rank": rank,
            "backend": "mp",
        }
        if info is not None:
            if isinstance(info.get("phase"), str):
                detected["phase"] = info["phase"]
            if isinstance(info.get("stage"), int):
                detected["stage"] = info["stage"]
            detected["error"] = info.get("type")
        if stats is not None:
            # The dead incarnation's injected-fault events would vanish
            # with its discarded stats; harvest them into the run record.
            events.extend(dict(ev) for ev in stats.events)
        events.append(detected)
        if not _replay_safe(rank, info, stats):
            events.append(
                {"event": "respawn", "action": "refused", "rank": rank,
                 "reason": "replay would violate the message protocol"}
            )
            return False
        if respawns_left <= 0:
            events.append(
                {"event": "respawn", "action": "exhausted", "rank": rank,
                 "budget": respawn.budget}
            )
            return False
        respawns_left -= 1
        old = workers[rank]
        if old.is_alive():
            old.terminate()
        retired.append(old)
        if heartbeats is not None:
            # Re-stamp so peers don't declare the rank dead during the
            # respawn window before its own heartbeat thread starts.
            heartbeats[rank] = time.monotonic()
        store = respawn.store
        events.append(
            {"event": "respawn", "action": "restart", "rank": rank,
             "attempt": respawn.budget - respawns_left,
             "budget": respawn.budget,
             "resume_stage": store.latest_stage(rank) if store is not None else None}
        )
        workers[rank] = _spawn(rank, tuple(respawn.args))
        pending.add(rank)
        deadline = time.monotonic() + timeout + 10.0
        return True

    def _drain(block_for: float = 0.0) -> bool:
        """Consume every available result; returns whether any arrived."""
        nonlocal failure
        got = False
        while True:
            try:
                if block_for > 0.0:
                    item = result_queue.get(timeout=block_for)
                    block_for = 0.0
                else:
                    item = result_queue.get_nowait()
            except queue_mod.Empty:
                return got
            got = True
            rank, status, value, stats, wall, report = item
            pending.discard(rank)
            if status == "ok":
                returns[rank] = value
                rank_stats[rank] = stats
                wall_times[rank] = wall
                perf_reports[rank] = report
            elif failure is None:  # first failure wins (fail fast)
                if not _try_respawn(rank, value, stats):
                    failure = _error_from_info(rank, value, stats)

    try:
        while pending and failure is None:
            if _drain():
                continue
            dead = [r for r in sorted(pending) if workers[r].exitcode is not None]
            if dead:
                # A worker that posted its result right before exiting
                # may still have the frame in flight; give it a moment.
                grace_end = time.monotonic() + 1.0
                while time.monotonic() < grace_end and any(r in pending for r in dead):
                    _drain(block_for=0.05)
                dead = [r for r in dead if r in pending]
                if dead and failure is None:
                    first = dead[0]
                    exitcode = workers[first].exitcode
                    if not _try_respawn(first, None, None):
                        failure = RankFailedError(
                            first,
                            detail=(
                                f"worker process exited with code "
                                f"{exitcode} before reporting a result"
                            ),
                        )
                continue
            if time.monotonic() > deadline:
                failure = SimulationError(
                    f"multiprocessing run failed: collection timed out after "
                    f"{timeout:.1f}s; pending ranks {sorted(pending)}"
                )
                break
            sentinels = [w.sentinel for w in workers if w.is_alive()]
            if sentinels:
                # Sleep until a worker exits or a poll slice elapses.
                mp_connection.wait(sentinels, timeout=0.05)
    finally:
        if failure is not None:
            for worker in workers:
                if worker.is_alive():
                    worker.terminate()
        for worker in list(workers) + retired:
            worker.join(timeout=5.0)
        for worker in list(workers) + retired:
            if worker.is_alive():  # pragma: no cover - terminate() sufficed so far
                worker.kill()
                worker.join(timeout=1.0)
        _release_queue(result_queue)
        for row in queues:
            for channel in row:
                _release_queue(channel)
    if failure is not None:
        if events:
            merged = list(getattr(failure, "events", None) or []) + events
            failure.events = merged  # type: ignore[attr-defined]
        raise failure
    return MPRunResult(
        returns=returns,
        rank_stats=rank_stats,
        wall_times=wall_times,
        perf_reports=perf_reports,
        events=events,
    )
