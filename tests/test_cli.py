"""Tests for the experiments CLI (quick mode end-to-end)."""

import os

import pytest

from repro.experiments.cli import build_parser, main
from repro.experiments.harness import clear_workload_cache


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_workload_cache()
    yield
    clear_workload_cache()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_quick_flag(self):
        args = build_parser().parse_args(["--quick", "table1"])
        assert args.quick and args.command == "table1"

    def test_figure_choice_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "--figure", "5"])


class TestCommands:
    def test_table1_quick(self, tmp_path, capsys):
        code = main(["--quick", "--out", str(tmp_path), "table1"])
        assert code == 0
        assert (tmp_path / "table1.txt").exists()
        assert (tmp_path / "table1.json").exists()
        out = capsys.readouterr().out
        assert "Table 1" in out

    def test_figures_quick_single(self, tmp_path, capsys):
        code = main(["--quick", "--out", str(tmp_path), "figures", "--figure", "11"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 11" in out
        assert "Figure 8" not in out

    def test_fig7_quick(self, tmp_path, capsys):
        code = main(["--quick", "--out", str(tmp_path), "fig7"])
        assert code == 0
        pgms = [f for f in os.listdir(tmp_path) if f.endswith(".pgm")]
        assert len(pgms) == 4

    def test_mmax_quick(self, tmp_path, capsys):
        code = main(["--quick", "--out", str(tmp_path), "mmax"])
        assert code == 0
        assert "M_max" in capsys.readouterr().out

    def test_rotation_quick(self, tmp_path, capsys):
        code = main(["--quick", "--out", str(tmp_path), "rotation"])
        assert code == 0
        assert "viewpoint" in capsys.readouterr().out
