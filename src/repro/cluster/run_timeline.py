"""One exportable timeline schema for every execution substrate.

A run — simulated or real — produces three kinds of evidence that used
to live in three unrelated shapes: the simulator's
:class:`~repro.cluster.simulator.TraceEvent` list, the per-rank
per-stage :class:`~repro.cluster.stats.RankStats`, and the wall-clock
counters/timers of :mod:`repro.perf`.  :class:`RunTimeline` folds all
three into a single JSON document (schema ``repro.run-timeline/1``)
that ``experiments/`` and the CLI consume identically regardless of the
backend that produced it.

Schema (top-level keys of the JSON object)::

    schema       "repro.run-timeline/1"
    backend      "sim" | "mp" | "mpi"
    clock        "modelled" (simulator) | "wall" (real transports)
    num_ranks    int
    makespan     float — virtual seconds (sim) or max rank wall (real)
    meta         {free-form run description: dataset, method, ...}
    events       [{event: "injected"|"detected"|"degraded", ...}] —
                 structured fault events (empty on clean runs)
    ranks        [{rank, wall_time, perf, stages: [{stage, comp_time,
                   comm_time, wait_time, bytes_sent, bytes_recv,
                   msgs_sent, msgs_recv, counters}]}]
    trace        [{time, rank, kind, detail}] — simulator only, optional

``wall_time``/``perf`` are zero/empty on the simulator; ``trace`` is
empty on real transports.  The stage buckets carry identical meaning on
all substrates (and identical byte counts — that is tested).  ``events``
collects the per-rank fault records
(:attr:`~repro.cluster.stats.RankStats.events`) plus any orchestrator
events (failure detection, degradation) — the audit trail a chaos run
leaves behind; ``meta["degraded"]`` marks a partial-but-valid image.

Schedule-exploration meta keys
------------------------------
Timelines produced by :class:`~repro.pipeline.system.SortLastSystem`
always carry ``meta["outcome"]`` — one of
:data:`~repro.cluster.recovery.DECLARED_OUTCOMES` (``"clean"``,
``"resumed"``, ``"degraded"``; ``"aborted"`` runs raise instead of
returning a timeline).  When the run was driven by a
:class:`~repro.cluster.schedule_policy.SchedulePolicy` (the explorer's
ordering hook), :func:`schedule_meta` adds:

* ``meta["schedule_policy"]`` — the policy name (``"random:17"``,
  ``"adversarial:lifo"``, ...);
* ``meta["schedule_decisions"]`` — how many recorded decisions the
  whole run took (accumulated across recovery re-runs);
* ``meta["schedule_trace"]`` — path of the saved
  ``repro.sched-trace/1`` decision trace, when one was written.  This
  mirrors the trace reference embedded in
  :class:`~repro.errors.DeadlockError`, so a timeline alone is enough
  to find the replayable schedule that produced it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from ..errors import ConfigurationError
from .simulator import TraceEvent
from .stats import RankStats, RunResult, StageStats

__all__ = [
    "RunTimeline",
    "TIMELINE_SCHEMA",
    "progress_meta",
    "schedule_meta",
    "tile_latency_metrics",
]

TIMELINE_SCHEMA = "repro.run-timeline/1"


def progress_meta(feed) -> dict[str, Any]:
    """Timeline ``meta`` entries describing a run's live progress feed.

    ``{}`` when no feed was installed (``feed`` is ``None``); otherwise
    the total event count, a per-kind breakdown, and the feed's final
    monotone coverage — enough for post-hoc analysis of the streamed
    delivery without persisting the pixel payloads themselves (the
    serving layer owns that, as ``repro.serve-event/1`` documents).
    """
    if feed is None:
        return {}
    kinds: dict[str, int] = {}
    for event in feed.events:
        kinds[event.kind] = kinds.get(event.kind, 0) + 1
    return {
        "progress_events": len(feed.events),
        "progress_kinds": kinds,
        "progress_coverage": feed.coverage,
    }


def schedule_meta(policy) -> dict[str, Any]:
    """Timeline ``meta`` entries describing the schedule policy of a run.

    ``{}`` when ``policy`` is ``None`` (the default engine ordering);
    otherwise the policy name and decision count, plus the saved
    ``repro.sched-trace/1`` path when the policy has one — see the
    module docstring for the key semantics.
    """
    if policy is None:
        return {}
    meta: dict[str, Any] = {
        "schedule_policy": policy.name,
        "schedule_decisions": len(policy.decisions),
    }
    if policy.trace_path is not None:
        meta["schedule_trace"] = str(policy.trace_path)
    return meta


def tile_latency_metrics(events: Iterable[dict]) -> dict[str, float]:
    """Progressive-display latencies from ``tile_complete`` events.

    The tile-routed engine appends one event per completed tile with the
    substrate time ``t`` since compositing started and the tile's pixel
    count.  Two summary latencies fall out:

    * ``latency_to_first_pixel`` — time until *any* tile of the frame is
      final (the earliest moment a progressive display has something
      correct to show);
    * ``latency_to_p50_pixels`` — time until half the completed pixels
      are final (tiles accumulated in completion order).

    Returns ``{}`` when no ``tile_complete`` events are present (every
    stage-synchronous method: their first finished pixel *is* the
    makespan, so the timeline's ``makespan`` already tells the story).
    """
    tiles = sorted(
        (
            (float(ev["t"]), int(ev["pixels"]))
            for ev in events
            if ev.get("event") == "tile_complete"
        ),
    )
    if not tiles:
        return {}
    total = sum(pixels for _, pixels in tiles)
    covered = 0
    p50 = tiles[-1][0]
    for t, pixels in tiles:
        covered += pixels
        if 2 * covered >= total:
            p50 = t
            break
    return {
        "latency_to_first_pixel": tiles[0][0],
        "latency_to_p50_pixels": p50,
    }


def _stage_to_dict(st: StageStats) -> dict[str, Any]:
    return {
        "stage": st.stage,
        "comp_time": st.comp_time,
        "comm_time": st.comm_time,
        "wait_time": st.wait_time,
        "bytes_sent": st.bytes_sent,
        "bytes_recv": st.bytes_recv,
        "msgs_sent": st.msgs_sent,
        "msgs_recv": st.msgs_recv,
        "counters": dict(st.counters),
    }


def _stage_from_dict(data: dict[str, Any]) -> StageStats:
    return StageStats(
        stage=int(data["stage"]),
        comp_time=float(data.get("comp_time", 0.0)),
        comm_time=float(data.get("comm_time", 0.0)),
        wait_time=float(data.get("wait_time", 0.0)),
        bytes_sent=int(data.get("bytes_sent", 0)),
        bytes_recv=int(data.get("bytes_recv", 0)),
        msgs_sent=int(data.get("msgs_sent", 0)),
        msgs_recv=int(data.get("msgs_recv", 0)),
        counters={str(k): int(v) for k, v in data.get("counters", {}).items()},
    )


@dataclass
class RunTimeline:
    """A backend-independent record of one run, JSON round-trippable."""

    backend: str
    clock: str  # "modelled" | "wall"
    num_ranks: int
    makespan: float
    rank_stats: list[RankStats] = field(default_factory=list)
    wall_times: list[float] = field(default_factory=list)
    rank_perf: list[dict] = field(default_factory=list)
    trace_events: list[TraceEvent] = field(default_factory=list)
    meta: dict[str, Any] = field(default_factory=dict)
    #: Structured fault events: per-rank injected/detected records
    #: harvested from the stats, plus orchestrator-level entries.
    events: list[dict[str, Any]] = field(default_factory=list)

    # ---- construction ------------------------------------------------------
    @classmethod
    def from_parts(
        cls,
        *,
        backend: str,
        clock: str,
        rank_stats: Iterable[RankStats],
        makespan: float,
        wall_times: Optional[Iterable[float]] = None,
        rank_perf: Optional[Iterable[dict]] = None,
        trace_events: Optional[Iterable[TraceEvent]] = None,
        meta: Optional[dict[str, Any]] = None,
        events: Optional[Iterable[dict[str, Any]]] = None,
    ) -> "RunTimeline":
        stats = list(rank_stats)
        harvested = [dict(ev) for rs in stats for ev in rs.events]
        if events is not None:
            harvested.extend(dict(ev) for ev in events)
        return cls(
            backend=backend,
            clock=clock,
            num_ranks=len(stats),
            makespan=float(makespan),
            rank_stats=stats,
            wall_times=list(wall_times) if wall_times is not None else [0.0] * len(stats),
            rank_perf=list(rank_perf) if rank_perf is not None else [{} for _ in stats],
            trace_events=list(trace_events) if trace_events is not None else [],
            meta=dict(meta) if meta else {},
            events=harvested,
        )

    # ---- views -------------------------------------------------------------
    def stats_view(self) -> RunResult:
        """The timeline as a :class:`~repro.cluster.stats.RunResult`
        (returns are not part of the timeline, so they come back ``None``)."""
        return RunResult(
            num_ranks=self.num_ranks,
            returns=[None] * self.num_ranks,
            rank_stats=self.rank_stats,
            makespan=self.makespan,
        )

    # ---- serialization -----------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": TIMELINE_SCHEMA,
            "backend": self.backend,
            "clock": self.clock,
            "num_ranks": self.num_ranks,
            "makespan": self.makespan,
            "meta": self.meta,
            "events": [dict(ev) for ev in self.events],
            "ranks": [
                {
                    "rank": rs.rank,
                    "wall_time": self.wall_times[i] if i < len(self.wall_times) else 0.0,
                    "perf": self.rank_perf[i] if i < len(self.rank_perf) else {},
                    "stages": [_stage_to_dict(st) for st in rs.sorted_stages()],
                }
                for i, rs in enumerate(self.rank_stats)
            ],
            "trace": [
                {"time": ev.time, "rank": ev.rank, "kind": ev.kind, "detail": ev.detail}
                for ev in self.trace_events
            ],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunTimeline":
        schema = data.get("schema")
        if schema != TIMELINE_SCHEMA:
            raise ConfigurationError(
                f"unsupported timeline schema {schema!r} (expected {TIMELINE_SCHEMA!r})"
            )
        rank_stats = []
        wall_times = []
        rank_perf = []
        for entry in data.get("ranks", []):
            rs = RankStats(rank=int(entry["rank"]))
            for st_data in entry.get("stages", []):
                st = _stage_from_dict(st_data)
                rs.stages[st.stage] = st
            rank_stats.append(rs)
            wall_times.append(float(entry.get("wall_time", 0.0)))
            rank_perf.append(dict(entry.get("perf", {})))
        trace_events = [
            TraceEvent(
                time=float(ev["time"]),
                rank=int(ev["rank"]),
                kind=str(ev["kind"]),
                detail=str(ev.get("detail", "")),
            )
            for ev in data.get("trace", [])
        ]
        return cls(
            backend=str(data["backend"]),
            clock=str(data["clock"]),
            num_ranks=int(data["num_ranks"]),
            makespan=float(data["makespan"]),
            rank_stats=rank_stats,
            wall_times=wall_times,
            rank_perf=rank_perf,
            trace_events=trace_events,
            meta=dict(data.get("meta", {})),
            events=[dict(ev) for ev in data.get("events", [])],
        )

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> "RunTimeline":
        return cls.from_dict(json.loads(text))

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
            fh.write("\n")

    @classmethod
    def load(cls, path) -> "RunTimeline":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())
