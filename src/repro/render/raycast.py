"""Vectorized orthographic ray caster (the sort-last rendering phase).

Each rank renders only its subvolume :class:`~repro.types.Extent3` into a
full-frame :class:`~repro.render.image.SubImage`.  Rays sample the scalar
field on a *global* ``t`` grid shared by every subvolume (see
:class:`~repro.render.camera.Camera`), restricted per pixel to the
ray/block intersection interval.  Because over is associative and sample
positions are identical, compositing the block renders front-to-back
reproduces the full-volume render bit-for-bit up to float rounding —
the invariant the whole test suite leans on.

Sampling uses trilinear interpolation of the *global* field
(``scipy.ndimage.map_coordinates``): samples stay inside the block's
slab, while interpolation near block faces may read neighbour voxels —
the ghost-cell data a real distributed renderer exchanges during the
partitioning phase.

Marching strategy
-----------------
The production marcher (:func:`_march_chunked`) batches ``chunk_steps``
global sample steps into a single ``map_coordinates`` call over a
*compacted* active-ray set:

* **Chunked sampling** — one interpolation call per chunk instead of one
  per step amortizes the per-call overhead and the per-step Python work.
* **Active-ray compaction** — rays are physically removed from the
  working arrays once they exit their slab interval, so late steps touch
  only the rays that still need them (no full-frame boolean masks).
* **Early-ray termination** — a ray whose accumulated opacity reaches
  the termination threshold is retired.  The default (exact) setting
  retires a ray only when its transmittance is *exactly* zero, which is
  bit-identical to marching on (every further contribution is ``+0.0``).
  An aggressive threshold < 1 trades a bounded opacity error for speed
  (see DESIGN.md "Performance notes").
* **Empty-space skipping** — a dilated block-maximum occupancy grid
  (:meth:`~repro.volume.grid.VolumeGrid.occupancy_max`) bounds every
  voxel a trilinear stencil can read.  Samples whose bound sits at or
  below the transfer function's zero-opacity threshold have ``alpha``
  exactly ``0``, so their interpolation is skipped outright — also
  bit-identical.

Per ray, the chunked marcher performs the identical sequence of float
operations as the per-step reference (:func:`_march_reference`), so the
two produce bit-identical images; ``tests/test_raycast_equivalence.py``
locks that in.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from .. import perf
from ..errors import RenderError
from ..types import Extent3, Rect
from ..volume.grid import VolumeGrid
from ..volume.transfer import TransferFunction
from .camera import Camera
from .image import SubImage

__all__ = ["render_subvolume", "render_full", "DEFAULT_CHUNK_STEPS"]

_EPS = 1e-12

#: Global sample steps batched per ``map_coordinates`` call.
DEFAULT_CHUNK_STEPS = 8

#: Edge length of the occupancy-grid blocks used for empty-space skipping.
_OCC_BLOCK = 8
#: Safety margin subtracted from the transfer zero threshold before
#: comparing against block bounds: float32 interpolation may exceed the
#: exact convex-combination bound by rounding ulps, so only blocks whose
#: bound is *comfortably* below the threshold are skipped.
_OCC_MARGIN = 1e-5


def render_subvolume(
    volume: VolumeGrid,
    transfer: TransferFunction,
    camera: Camera,
    extent: Extent3 | None = None,
    *,
    early_termination: float | None = None,
    chunk_steps: int = DEFAULT_CHUNK_STEPS,
    march: str = "chunked",
    clip_rect: Rect | None = None,
) -> SubImage:
    """Ray-cast ``extent`` of ``volume`` into a full-frame subimage.

    ``extent`` defaults to the whole volume.  The returned image is blank
    outside the extent's screen footprint.

    ``clip_rect`` restricts rendering to an image-space window: only
    rays whose pixels fall inside it march, everything else stays
    blank.  Because every pixel's ray is independent and samples the
    same global ``t`` grid, the pixels inside the window are
    bit-identical to the corresponding pixels of an unclipped render —
    the invariant the fused render+composite pipeline relies on when it
    renders tile by tile.

    ``early_termination`` is the accumulated-opacity threshold at which a
    ray stops marching.  ``None`` (the default) means *exact*: rays stop
    only at zero transmittance, which cannot change the result.  Values
    in ``(0, 1)`` opt into lossy early termination (opacity error bounded
    by ``1 - early_termination`` per pixel).  ``chunk_steps`` controls
    how many global sample steps are interpolated per batch; it never
    affects the result.  ``march`` selects the marcher: ``"chunked"``
    (production) or ``"reference"`` (the plain per-step loop kept as the
    equivalence/benchmark oracle; ignores the other two knobs).
    """
    if tuple(camera.volume_shape) != volume.shape:
        raise RenderError(
            f"camera built for volume shape {camera.volume_shape}, got {volume.shape}"
        )
    if march not in ("chunked", "reference"):
        raise RenderError(f"unknown marcher {march!r}; use 'chunked' or 'reference'")
    if chunk_steps < 1:
        raise RenderError(f"chunk_steps must be >= 1, got {chunk_steps}")
    if early_termination is not None and not (0.0 < early_termination <= 1.0):
        raise RenderError(
            f"early_termination must be in (0, 1], got {early_termination}"
        )
    if extent is None:
        extent = volume.full_extent()
    image = SubImage.blank(camera.height, camera.width)
    if extent.is_empty:
        return image

    footprint = camera.footprint_rect(extent.corners())
    if clip_rect is not None:
        footprint = footprint.intersect(clip_rect)
    if footprint.is_empty:
        return image

    origins = camera.pixel_origins(footprint).reshape(-1, 3)
    _, _, view_dir = camera.basis()
    tmin, tmax, valid = _slab_interval(origins, view_dir, extent)
    hit = valid & (tmax - tmin > _EPS)
    if not hit.any():
        return image

    origins = origins[hit]
    tmin = tmin[hit]
    tmax = tmax[hit]

    # Global sample grid indices covered by each pixel's interval:
    # t_k = -t_half + (k + 0.5) * step  with  t_k in [tmin, tmax).
    step = camera.step
    t_half = camera.t_half
    kmin = np.ceil((tmin + t_half) / step - 0.5).astype(np.int64)
    kmax = np.ceil((tmax + t_half) / step - 0.5).astype(np.int64) - 1
    np.clip(kmin, 0, camera.num_steps - 1, out=kmin)
    np.clip(kmax, -1, camera.num_steps - 1, out=kmax)

    acc_i = np.zeros(origins.shape[0], dtype=np.float64)
    acc_a = np.zeros(origins.shape[0], dtype=np.float64)
    sampled = kmax >= kmin
    if sampled.any():
        perf.incr("raycast.march_calls")
        perf.incr("raycast.rays", int(sampled.sum()))
        with perf.timer("raycast.march"):
            if march == "reference":
                _march_reference(
                    volume.data, transfer, origins, view_dir, step, t_half,
                    kmin, kmax, acc_i, acc_a,
                )
            else:
                # Empty-space skipping needs a provable zero-opacity
                # threshold; transfer functions without one (duck-typed
                # stand-ins) simply march unskipped.
                zero_lo = getattr(transfer, "zero_alpha_below", None)
                occupancy = (
                    volume.occupancy_max(_OCC_BLOCK)
                    if zero_lo is not None and zero_lo > _OCC_MARGIN
                    else None
                )
                _march_chunked(
                    volume.data, transfer, origins, view_dir, step, t_half,
                    kmin, kmax, acc_i, acc_a,
                    chunk_steps=chunk_steps,
                    opacity_limit=(
                        1.0 if early_termination is None else float(early_termination)
                    ),
                    occupancy=occupancy,
                    occ_block=_OCC_BLOCK,
                    occ_threshold=(0.0 if zero_lo is None else float(zero_lo) - _OCC_MARGIN),
                )

    # Scatter accumulated pixels back into the full frame.
    h, w = footprint.height, footprint.width
    frame_i = np.zeros(h * w, dtype=np.float64)
    frame_a = np.zeros(h * w, dtype=np.float64)
    flat_idx = np.flatnonzero(hit)
    frame_i[flat_idx] = acc_i
    frame_a[flat_idx] = acc_a
    rows, cols = footprint.slices()
    image.intensity[rows, cols] = frame_i.reshape(h, w)
    image.opacity[rows, cols] = frame_a.reshape(h, w)
    return image


def render_full(
    volume: VolumeGrid,
    transfer: TransferFunction,
    camera: Camera,
    **march_options,
) -> SubImage:
    """Render the entire volume (the sequential reference image)."""
    return render_subvolume(volume, transfer, camera, volume.full_extent(), **march_options)


# --------------------------------------------------------------------------
# internals
# --------------------------------------------------------------------------
def _slab_interval(
    origins: np.ndarray, view_dir: np.ndarray, extent: Extent3
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-pixel ray/box intersection ``[tmin, tmax]`` (slab method)."""
    n = origins.shape[0]
    tmin = np.full(n, -np.inf)
    tmax = np.full(n, np.inf)
    valid = np.ones(n, dtype=bool)
    lo = extent.lo()
    hi = extent.hi()
    for axis in range(3):
        o = origins[:, axis]
        d = float(view_dir[axis])
        if abs(d) > _EPS:
            t1 = (lo[axis] - o) / d
            t2 = (hi[axis] - o) / d
            near = np.minimum(t1, t2)
            far = np.maximum(t1, t2)
            np.maximum(tmin, near, out=tmin)
            np.minimum(tmax, far, out=tmax)
        else:
            valid &= (o >= lo[axis]) & (o < hi[axis])
    return tmin, tmax, valid


def _march_chunked(
    data: np.ndarray,
    transfer: TransferFunction,
    origins: np.ndarray,
    view_dir: np.ndarray,
    step: float,
    t_half: float,
    kmin: np.ndarray,
    kmax: np.ndarray,
    acc_i: np.ndarray,
    acc_a: np.ndarray,
    *,
    chunk_steps: int,
    opacity_limit: float,
    occupancy: np.ndarray | None = None,
    occ_block: int = _OCC_BLOCK,
    occ_threshold: float = 0.0,
) -> None:
    """Chunked front-to-back accumulation over the global sample grid.

    Bit-identical to :func:`_march_reference`: each ray sees the same
    samples in the same order with the same float expressions; batching
    only regroups *independent* per-ray work.  Rays whose interval does
    not cover a sampled step get ``alpha = 0`` there, and ``x + 0.0 == x``
    exactly for the non-negative accumulators.  Samples pruned by the
    ``occupancy`` bound would have had ``alpha`` exactly ``0``, so
    pruning them is equally exact.
    """
    unit_correction = step != 1.0
    exact = opacity_limit >= 1.0

    # Compacted working set: global positions `idx` plus per-ray state.
    idx = np.flatnonzero(kmax >= kmin)
    o_c = origins[idx]
    kn_c = kmin[idx]
    kx_c = kmax[idx]

    if occupancy is not None:
        # Tighten each ray's interval to its occupied span and drop
        # rays that never touch an occupied block.  Their accumulators
        # stay exactly 0.0 — the same value the reference computes by
        # adding +0.0 at every step.
        alive, kn2, kx2 = _occupied_span(
            data.shape, occupancy, occ_block, occ_threshold,
            o_c, view_dir, step, t_half, kn_c, kx_c,
        )
        perf.incr("raycast.empty_rays", int(idx.size - alive.sum()))
        if not alive.all():
            idx = idx[alive]
            o_c = o_c[alive]
            if idx.size == 0:
                return
        kn_c = kn2[alive]
        kx_c = kx2[alive]

    ai_c = np.zeros(idx.size, dtype=np.float64)
    aa_c = np.zeros(idx.size, dtype=np.float64)

    k_lo = int(kn_c.min())
    k_hi = int(kx_c.max())

    for c0 in range(k_lo, k_hi + 1, chunk_steps):
        c1 = min(c0 + chunk_steps, k_hi + 1)

        # Retire rays that exited their slab or saturated.  Exact mode
        # retires only at transmittance == 0 (further adds are +0.0);
        # aggressive mode retires at the configured opacity threshold.
        saturated = (aa_c == 1.0) if exact else (aa_c >= opacity_limit)
        done = (kx_c < c0) | saturated
        if done.any():
            retired = np.flatnonzero(done)
            perf.incr("raycast.terminated_rays", int(saturated[retired].sum()))
            gone = idx[retired]
            acc_i[gone] = ai_c[retired]
            acc_a[gone] = aa_c[retired]
            keep = ~done
            idx = idx[keep]
            o_c = o_c[keep]
            kn_c = kn_c[keep]
            kx_c = kx_c[keep]
            ai_c = ai_c[keep]
            aa_c = aa_c[keep]
            if idx.size == 0:
                return

        # Rays whose interval overlaps this chunk (others not started yet).
        started = kn_c < c1
        if not started.any():
            continue
        whole = bool(started.all())
        sel = slice(None) if whole else np.flatnonzero(started)
        o_s = o_c if whole else o_c[sel]
        kn_s = kn_c if whole else kn_c[sel]
        kx_s = kx_c if whole else kx_c[sel]

        ks = np.arange(c0, c1, dtype=np.int64)
        # Same scalar expression as the reference: t_k = -t_half + (k+0.5)*step,
        # then offset t_k * view_dir[axis] added to each origin component.
        # Axis-major (3, nk, m) layout keeps every row contiguous (for
        # the occupancy gather and map_coordinates) and step-major
        # (nk, m) slices contiguous for the accumulation loop below.
        ts = -t_half + (ks.astype(np.float64) + 0.5) * step
        nk = ks.size
        m = o_s.shape[0]
        coords = np.empty((3, nk, m), dtype=np.float64)
        for a in range(3):
            coords[a] = (o_s[:, a][None, :] + (ts * view_dir[a])[:, None]) - 0.5
        coords = coords.reshape(3, nk * m)  # voxel-center grid

        # Steps outside a ray's [kmin, kmax] interval contribute nothing
        # (the reference never samples them either).
        valid = (kn_s[None, :] <= ks[:, None]) & (ks[:, None] <= kx_s[None, :])
        live = valid.ravel()
        if occupancy is not None:
            # Empty-space skipping.  A trilinear stencil reads voxels
            # floor(c) and floor(c)+1 per axis (after boundary clamping);
            # floor(clip(c)) lands inside the sample's occupancy block
            # and the +1 neighbour is covered by the grid's one-block
            # dilation.  A block bound at or below the zero-opacity
            # threshold (minus the rounding margin) forces alpha == 0,
            # so the interpolation can be skipped without changing the
            # accumulators.  Integer floor-then-divide is exact, unlike
            # float division by the block size.
            bx = np.clip(coords[0], 0.0, data.shape[0] - 1.0).astype(np.intp) // occ_block
            by = np.clip(coords[1], 0.0, data.shape[1] - 1.0).astype(np.intp) // occ_block
            bz = np.clip(coords[2], 0.0, data.shape[2] - 1.0).astype(np.intp) // occ_block
            live = live & (occupancy[bx, by, bz] > occ_threshold)

        n_live = int(np.count_nonzero(live))
        perf.incr("raycast.chunks")
        perf.incr("raycast.samples", n_live)
        perf.incr("raycast.samples_skipped", nk * m - n_live)
        if n_live == 0:
            continue  # every contribution this chunk is exactly +0.0

        samples_live = ndimage.map_coordinates(
            data,
            coords if n_live == nk * m else coords[:, live],
            order=1,
            mode="nearest",
            prefilter=False,
        ).astype(np.float64)
        # Classify only the computed samples — ufuncs are elementwise,
        # so compacted classification matches the reference bit for bit.
        # Skipped positions keep alpha = emission = 0.0 exactly, which
        # is what the reference would have computed (or never touched).
        em_live, al_live = transfer.classify(samples_live)
        if unit_correction:
            al_live = 1.0 - np.power(1.0 - al_live, step)
        if n_live == nk * m:
            emission = em_live.reshape(nk, m)
            alpha = al_live.reshape(nk, m)
        else:
            emission = np.zeros(nk * m, dtype=np.float64)
            alpha = np.zeros(nk * m, dtype=np.float64)
            emission[live] = em_live
            alpha[live] = al_live
            emission = emission.reshape(nk, m)
            alpha = alpha.reshape(nk, m)

        # Front-to-back over, one global step at a time, on compacted
        # arrays.  Expressions mirror the reference exactly (left-assoc
        # trans * emission * alpha) to keep bit-identical accumulation.
        ai_s = ai_c if whole else ai_c[sel]
        aa_s = aa_c if whole else aa_c[sel]
        for j in range(nk):
            alpha_j = alpha[j]
            if not alpha_j.any():
                continue  # all contributions are exactly +0.0
            trans = 1.0 - aa_s
            ai_s += trans * emission[j] * alpha_j
            aa_s += trans * alpha_j
        if not whole:
            ai_c[sel] = ai_s
            aa_c[sel] = aa_s

    acc_i[idx] = ai_c
    acc_a[idx] = aa_c


def _occupied_span(
    data_shape: tuple[int, ...],
    occupancy: np.ndarray,
    occ_block: int,
    occ_threshold: float,
    o_c: np.ndarray,
    view_dir: np.ndarray,
    step: float,
    t_half: float,
    kn_c: np.ndarray,
    kx_c: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Tighten each ray's step interval to its occupied span.

    Tests the occupancy bound every ``stride`` steps.  A dead test at
    step ``k'`` proves every step within ``stride - 1`` of it dead: the
    sample position moves at most ``(stride - 1) * step <= 7`` voxels
    per axis, its trilinear stencil adds one more, and the occupancy
    grid's one-block (8-voxel) dilation absorbs both.  Returns
    ``(alive, kn2, kx2)``: rays with no live test are provably all-zero;
    the rest get ``[first_live - (stride-1), last_live + (stride-1)]``
    clamped to the original interval.  Cost is one cheap integer gather
    per ``stride`` steps per ray — no interpolation.
    """
    stride = max(1, 1 + int(7.0 // step))
    m = o_c.shape[0]
    first_k = np.full(m, -1, dtype=np.int64)
    last_k = np.full(m, -1, dtype=np.int64)

    act = np.arange(m)  # positions into the full per-ray arrays
    kt = kn_c.copy()
    kx_a = kx_c
    o_a = o_c
    while act.size:
        tt = -t_half + (kt.astype(np.float64) + 0.5) * step
        bx = np.clip(o_a[:, 0] + tt * view_dir[0] - 0.5, 0.0, data_shape[0] - 1.0)
        by = np.clip(o_a[:, 1] + tt * view_dir[1] - 0.5, 0.0, data_shape[1] - 1.0)
        bz = np.clip(o_a[:, 2] + tt * view_dir[2] - 0.5, 0.0, data_shape[2] - 1.0)
        live = (
            occupancy[
                bx.astype(np.intp) // occ_block,
                by.astype(np.intp) // occ_block,
                bz.astype(np.intp) // occ_block,
            ]
            > occ_threshold
        )
        if live.any():
            hit = act[live]
            k_hit = kt[live]
            last_k[hit] = k_hit
            unset = first_k[hit] < 0
            if unset.any():
                first_k[hit[unset]] = k_hit[unset]
        kt = kt + stride
        keep = kt <= kx_a
        if not keep.all():
            act = act[keep]
            kt = kt[keep]
            kx_a = kx_a[keep]
            o_a = o_a[keep]

    alive = first_k >= 0
    kn2 = np.maximum(kn_c, first_k - (stride - 1))
    kx2 = np.minimum(kx_c, last_k + (stride - 1))
    return alive, kn2, kx2


def _march_reference(
    data: np.ndarray,
    transfer: TransferFunction,
    origins: np.ndarray,
    view_dir: np.ndarray,
    step: float,
    t_half: float,
    kmin: np.ndarray,
    kmax: np.ndarray,
    acc_i: np.ndarray,
    acc_a: np.ndarray,
) -> None:
    """Per-step reference marcher (the original implementation).

    Kept as the bit-level oracle for the chunked marcher and as the
    "before" side of ``benchmarks/bench_hotpaths.py``.
    """
    k_lo = int(kmin.min())
    k_hi = int(kmax.max())
    # Per-sample opacity correction for non-unit step lengths.
    unit_correction = step != 1.0
    for k in range(k_lo, k_hi + 1):
        active = (kmin <= k) & (k <= kmax)
        if not active.any():
            continue
        t_k = -t_half + (k + 0.5) * step
        points = origins[active] + t_k * view_dir
        coords = (points - 0.5).T  # field values live at voxel centers
        samples = ndimage.map_coordinates(
            data, coords, order=1, mode="nearest", prefilter=False
        ).astype(np.float64)
        emission, alpha = transfer.classify(samples)
        if unit_correction:
            alpha = 1.0 - np.power(1.0 - alpha, step)
        trans = 1.0 - acc_a[active]
        acc_i[active] += trans * emission * alpha
        acc_a[active] += trans * alpha
