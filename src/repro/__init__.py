"""repro — sort-last-sparse parallel volume rendering, reproduced.

A production-quality reimplementation of *"Efficient Compositing Methods
for the Sort-Last-Sparse Parallel Volume Rendering System on Distributed
Memory Multicomputers"* (Yang, Yu, Chung; ICPP 1999): the BS / BSBR /
BSLC / BSBRC binary-swap compositing methods, a deterministic
discrete-event simulation of the SP2-class multicomputer they ran on, a
vectorized ray-casting renderer, synthetic stand-ins for the paper's CT
datasets, and an experiment harness that regenerates every table and
figure of the evaluation.

Quick start
-----------
>>> from repro import RunConfig, SortLastSystem
>>> result = SortLastSystem(
...     RunConfig(dataset="engine_low", image_size=96, num_ranks=8,
...               method="bsbrc", volume_shape=(64, 64, 28))
... ).run()
>>> result.final_image.allclose(result.reference_image())
True
>>> result.compositing.stats.t_total > 0
True
"""

from .cluster import (
    BACKENDS,
    IDEALIZED,
    PRESETS,
    SP2,
    SP2_FAST_NET,
    SP2_SLOW_NET,
    Backend,
    BaseRankContext,
    MachineModel,
    RankContext,
    RunResult,
    RunTimeline,
    Simulator,
    make_backend,
)
from .compositing import (
    PAPER_METHODS,
    BinarySwap,
    BinarySwapBoundingRect,
    BinarySwapBoundingRectCompression,
    BinarySwapLoadBalancedCompression,
    BinaryTreeCompression,
    CompositeOutcome,
    Compositor,
    DirectSend,
    ParallelPipeline,
    available_methods,
    make_compositor,
    over,
    register,
)
from .errors import (
    CompositingError,
    ConfigurationError,
    DeadlockError,
    PartitionError,
    RenderError,
    ReproError,
    SimulationError,
    WireFormatError,
)
from .cluster.progress import ProgressEvent, ProgressFeed
from .pipeline import (
    RenderJob,
    RenderSession,
    RunConfig,
    SortLastSystem,
    SystemResult,
    assemble_final,
    run_compositing,
    validate_ownership,
)
from .render import Camera, SubImage, composite_sequential, render_full, render_subvolume
from .types import Extent3, Rect
from .volume import (
    DATASETS,
    PAPER_DATASETS,
    PartitionPlan,
    TransferFunction,
    VolumeGrid,
    depth_order,
    make_dataset,
    recursive_bisect,
)

__version__ = "1.7.0"

__all__ = [
    "BACKENDS",
    "Backend",
    "BaseRankContext",
    "BinarySwap",
    "BinarySwapBoundingRect",
    "BinarySwapBoundingRectCompression",
    "BinarySwapLoadBalancedCompression",
    "BinaryTreeCompression",
    "Camera",
    "CompositeOutcome",
    "CompositingError",
    "Compositor",
    "ConfigurationError",
    "DATASETS",
    "DeadlockError",
    "DirectSend",
    "Extent3",
    "IDEALIZED",
    "MachineModel",
    "PAPER_DATASETS",
    "PAPER_METHODS",
    "PRESETS",
    "ParallelPipeline",
    "PartitionError",
    "PartitionPlan",
    "ProgressEvent",
    "ProgressFeed",
    "RankContext",
    "Rect",
    "RenderError",
    "RenderJob",
    "RenderSession",
    "ReproError",
    "RunConfig",
    "RunResult",
    "RunTimeline",
    "SP2",
    "SP2_FAST_NET",
    "SP2_SLOW_NET",
    "SimulationError",
    "Simulator",
    "SortLastSystem",
    "SubImage",
    "SystemResult",
    "TransferFunction",
    "VolumeGrid",
    "WireFormatError",
    "assemble_final",
    "available_methods",
    "composite_sequential",
    "depth_order",
    "make_backend",
    "make_compositor",
    "make_dataset",
    "over",
    "recursive_bisect",
    "register",
    "render_full",
    "render_subvolume",
    "run_compositing",
    "validate_ownership",
    "__version__",
]
