"""Tests for the value-based RLE codec and the bslcv comparator method."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import rendered_workload, reference_image
from repro.cluster.model import SP2
from repro.compositing.rle import MAX_RUN
from repro.compositing.value_rle import (
    VALUE_RUN_BYTES,
    pack_value_runs,
    unpack_value_runs,
    value_rle_decode,
    value_rle_encode,
)
from repro.errors import WireFormatError
from repro.pipeline.system import assemble_final, run_compositing, validate_ownership


class TestValueRLECodec:
    def test_empty(self):
        run_i, run_a, counts = value_rle_encode(np.empty(0), np.empty(0))
        assert counts.size == 0
        out_i, out_a = value_rle_decode(run_i, run_a, counts, 0)
        assert out_i.size == 0

    def test_constant_sequence_is_one_run(self):
        intensity = np.full(100, 0.5)
        opacity = np.full(100, 0.25)
        run_i, run_a, counts = value_rle_encode(intensity, opacity)
        assert counts.tolist() == [100]
        assert run_i[0] == 0.5 and run_a[0] == 0.25

    def test_distinct_values_one_run_each(self):
        intensity = np.array([0.1, 0.2, 0.3])
        opacity = np.array([0.5, 0.5, 0.5])
        _, _, counts = value_rle_encode(intensity, opacity)
        assert counts.tolist() == [1, 1, 1]

    def test_opacity_difference_breaks_run(self):
        intensity = np.array([0.4, 0.4])
        opacity = np.array([0.1, 0.2])
        _, _, counts = value_rle_encode(intensity, opacity)
        assert counts.tolist() == [1, 1]

    def test_long_run_split(self):
        n = MAX_RUN + 5
        intensity = np.zeros(n)
        _, _, counts = value_rle_encode(intensity, intensity)
        assert counts.tolist() == [MAX_RUN, 5]

    def test_decode_validates_total(self):
        with pytest.raises(WireFormatError):
            value_rle_decode(np.array([0.1]), np.array([0.2]), np.array([3], np.uint16), 4)

    def test_decode_validates_lengths(self):
        with pytest.raises(WireFormatError):
            value_rle_decode(np.array([0.1, 0.2]), np.array([0.2]), np.array([1], np.uint16), 1)

    def test_length_mismatch_rejected(self):
        with pytest.raises(WireFormatError):
            value_rle_encode(np.zeros(3), np.zeros(4))

    @given(
        seed=st.integers(0, 5000),
        n=st.integers(0, 400),
        quantize=st.sampled_from([0, 4, 16]),
    )
    @settings(max_examples=120)
    def test_roundtrip(self, seed, n, quantize):
        rng = np.random.default_rng(seed)
        intensity = rng.uniform(0, 1, n)
        opacity = rng.uniform(0, 1, n)
        if quantize:
            intensity = np.round(intensity * quantize) / quantize
            opacity = np.round(opacity * quantize) / quantize
        run_i, run_a, counts = value_rle_encode(intensity, opacity)
        out_i, out_a = value_rle_decode(run_i, run_a, counts, n)
        assert np.array_equal(out_i, intensity)
        assert np.array_equal(out_a, opacity)

    @given(seed=st.integers(0, 5000), n=st.integers(1, 300))
    @settings(max_examples=80)
    def test_wire_roundtrip(self, seed, n):
        rng = np.random.default_rng(seed)
        mask = rng.random(n) < 0.3
        intensity = np.where(mask, rng.uniform(0.1, 1, n), 0.0)
        opacity = np.where(mask, rng.uniform(0.1, 1, n), 0.0)
        msg = pack_value_runs(intensity, opacity)
        out_i, out_a = unpack_value_runs(msg.buffer, n)
        assert np.array_equal(out_i, intensity)
        assert np.array_equal(out_a, opacity)
        nruns = int.from_bytes(msg.buffer[:4], "little")
        assert msg.accounted_bytes == nruns * VALUE_RUN_BYTES

    def test_truncated_rejected(self):
        with pytest.raises(WireFormatError):
            unpack_value_runs(b"\x02\x00\x00\x00\x01", 2)


class TestPaperArgument:
    """Reproduce §3.3's claim: value RLE loses to mask RLE on float
    volume pixels, wins on quantized (surface-rendering-like) pixels."""

    def test_float_pixels_value_rle_larger(self):
        rng = np.random.default_rng(0)
        n = 4096
        mask = rng.random(n) < 0.3
        intensity = np.where(mask, rng.uniform(0.1, 1, n), 0.0)
        opacity = np.where(mask, rng.uniform(0.1, 1, n), 0.0)
        from repro.compositing.wire import pack_bslc

        value_bytes = pack_value_runs(intensity, opacity).accounted_bytes
        mask_bytes = pack_bslc(
            intensity, opacity, np.arange(n, dtype=np.int64)
        ).accounted_bytes
        assert value_bytes > mask_bytes

    def test_quantized_flat_pixels_value_rle_smaller(self):
        """Integer-like images with long constant foreground runs — the
        surface-rendering case A&P designed for."""
        n = 4096
        intensity = np.zeros(n)
        opacity = np.zeros(n)
        intensity[1000:3000] = 0.5  # one long flat foreground span
        opacity[1000:3000] = 1.0
        from repro.compositing.wire import pack_bslc

        value_bytes = pack_value_runs(intensity, opacity).accounted_bytes
        mask_bytes = pack_bslc(
            intensity, opacity, np.arange(n, dtype=np.int64)
        ).accounted_bytes
        assert value_bytes < mask_bytes


class TestBslcvMethod:
    def test_matches_reference(self):
        subimages, plan, camera = rendered_workload("engine_low", 8)
        reference = reference_image("engine_low", 8)
        run = run_compositing(list(subimages), "bslcv", plan, camera.view_dir, SP2)
        final = assemble_final(run.outcomes, *reference.shape)
        assert final.max_abs_diff(reference) < 1e-9
        validate_ownership(run.outcomes, *reference.shape)

    def test_ships_more_than_mask_bslc_on_volume_data(self):
        """The §3.3 argument, end to end on rendered float images."""
        subimages, plan, camera = rendered_workload("engine_low", 8)
        value_run = run_compositing(list(subimages), "bslcv", plan, camera.view_dir, SP2)
        mask_run = run_compositing(list(subimages), "bslc", plan, camera.view_dir, SP2)
        assert value_run.stats.mmax_bytes > mask_run.stats.mmax_bytes

    def test_registered(self):
        from repro.compositing.registry import available_methods

        assert "bslcv" in available_methods()
