"""Experiment T2 — regenerate the paper's Table 2.

Same grid as Table 1 but at 768x768 pixels and — like the paper — only
the three proposed methods (BSBR, BSLC, BSBRC); plain BS was dropped
from the paper's second table.
"""

from __future__ import annotations

from ..analysis.metrics import MethodMeasurement
from ..analysis.tables import format_paper_table
from ..cluster.model import SP2, MachineModel
from ..volume.datasets import PAPER_DATASETS
from .harness import run_grid

__all__ = ["run_table2", "format_table2", "TABLE2_RANKS", "TABLE2_IMAGE_SIZE", "TABLE2_METHODS"]

TABLE2_RANKS = (2, 4, 8, 16, 32, 64)
TABLE2_IMAGE_SIZE = 768
TABLE2_METHODS = ("bsbr", "bslc", "bsbrc")


def run_table2(
    *,
    machine: MachineModel = SP2,
    rank_counts=TABLE2_RANKS,
    image_size: int = TABLE2_IMAGE_SIZE,
    datasets=PAPER_DATASETS,
    methods=TABLE2_METHODS,
    volume_shape=None,
    verbose: bool = False,
) -> list[MethodMeasurement]:
    """Run the Table 2 grid; pass smaller knobs for a quick variant."""
    return run_grid(
        datasets,
        image_size,
        rank_counts,
        methods,
        machine=machine,
        volume_shape=volume_shape,
        verbose=verbose,
    )


def format_table2(rows: list[MethodMeasurement]) -> str:
    datasets = list(dict.fromkeys(row.dataset for row in rows))
    methods = [m for m in TABLE2_METHODS if any(r.method == m for r in rows)]
    size = rows[0].image_size if rows else TABLE2_IMAGE_SIZE
    return format_paper_table(
        rows,
        methods=methods,
        datasets=datasets,
        title=(
            f"Table 2 (reproduction): compositing time of the proposed methods "
            f"for the {size}x{size} test samples"
        ),
    )
