"""Shared fixtures for the benchmark harness.

Benchmarks run at **paper scale** (384x384 and 768x768 images over the
256-class volumes, P = 2..64).  Workload renders and grid results are
cached at session scope so each table/figure bench times only the work
it reproduces.  Formatted tables/figures are written to
``benchmarks/results/`` and echoed to the terminal (run with ``-s`` to
see them).
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: The paper's processor sweep.
PAPER_RANKS = (2, 4, 8, 16, 32, 64)


def emit(name: str, text: str) -> None:
    """Print a generated artifact and persist it under results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text + "\n")
    print(f"\n{text}\n[{name} written to {path}]")


@pytest.fixture(scope="session")
def table1_rows():
    """Table 1 measurements (also feeds Figures 8-11 benches)."""
    from repro.experiments.table1 import run_table1

    return run_table1(rank_counts=PAPER_RANKS)


def cell(rows, dataset: str, num_ranks: int):
    """{method: MethodMeasurement} for one table cell."""
    return {
        r.method: r
        for r in rows
        if r.dataset == dataset and r.num_ranks == num_ranks
    }
