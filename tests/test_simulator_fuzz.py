"""Hypothesis fuzzing of the cluster simulator.

Generates random but well-formed SPMD communication programs (pairwise
exchanges, ring shifts, random compute, nonblocking batches) and checks
the global invariants no particular schedule should be able to violate:

* conservation — total bytes/messages sent equals total received;
* determinism — identical programs produce identical timings;
* monotonicity — makespan >= every rank's busy time;
* data integrity — payloads arrive exactly once, unmodified.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster.model import MachineModel
from repro.cluster.simulator import Simulator

MODEL = MachineModel(name="fuzz", ts=1e-4, tc=1e-6, to=1e-6, tencode=1e-6, tbound=1e-6)

COMMON = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# One program step per stage: which pattern the ranks run, plus knobs.
step_strategy = st.tuples(
    st.sampled_from(["exchange", "ring", "compute", "nonblocking", "barrier"]),
    st.integers(0, 2**16),  # payload-size seed
    st.integers(0, 2),      # stage-local bit (exchange distance etc.)
)

program_strategy = st.tuples(
    st.sampled_from([2, 4, 8]),
    st.lists(step_strategy, min_size=1, max_size=6),
)


def build_program(num_ranks, steps):
    async def program(ctx):
        received = []
        for index, (kind, seed, knob) in enumerate(steps):
            ctx.begin_stage(index)
            nbytes = (seed % 4096) + 1
            if kind == "exchange":
                distance = 1 << (knob % num_ranks.bit_length())
                if distance >= num_ranks:
                    distance = 1
                peer = ctx.rank ^ distance
                if peer < num_ranks:
                    payload = (ctx.rank, index, b"x" * nbytes)
                    got = await ctx.sendrecv(peer, payload, tag=index)
                    received.append((got[0], got[1], len(got[2])))
            elif kind == "ring":
                nxt = (ctx.rank + 1) % num_ranks
                prv = (ctx.rank - 1) % num_ranks
                if num_ranks == 2:
                    got = await ctx.sendrecv(nxt, (ctx.rank, nbytes), tag=index)
                elif ctx.rank % 2 == 0:
                    await ctx.send(nxt, (ctx.rank, nbytes), nbytes=nbytes, tag=index)
                    got = await ctx.recv(prv, tag=index)
                else:
                    got = await ctx.recv(prv, tag=index)
                    await ctx.send(nxt, (ctx.rank, nbytes), nbytes=nbytes, tag=index)
                received.append(got[0])
            elif kind == "compute":
                await ctx.compute((seed % 100) * 1e-6, kind="fuzz", count=1)
            elif kind == "nonblocking":
                peer = ctx.rank ^ 1
                if peer < num_ranks:
                    recv_req = await ctx.irecv(peer, tag=1000 + index)
                    send_req = await ctx.isend(
                        peer, bytes([index % 251]) * nbytes, tag=1000 + index
                    )
                    data = await ctx.wait(recv_req)
                    await ctx.wait(send_req)
                    received.append(len(data))
            else:  # barrier
                await ctx.barrier()
        return received

    return program


class TestFuzz:
    @given(case=program_strategy)
    @settings(**COMMON)
    def test_conservation(self, case):
        num_ranks, steps = case
        result = Simulator(num_ranks, MODEL).run(build_program(num_ranks, steps))
        sent = sum(rs.bytes_sent for rs in result.rank_stats)
        recv = sum(rs.bytes_recv for rs in result.rank_stats)
        assert sent == recv
        msgs_out = sum(rs.msgs_sent for rs in result.rank_stats)
        msgs_in = sum(rs.msgs_recv for rs in result.rank_stats)
        assert msgs_out == msgs_in

    @given(case=program_strategy)
    @settings(**COMMON)
    def test_determinism(self, case):
        num_ranks, steps = case
        first = Simulator(num_ranks, MODEL).run(build_program(num_ranks, steps))
        second = Simulator(num_ranks, MODEL).run(build_program(num_ranks, steps))
        assert first.returns == second.returns
        assert first.makespan == second.makespan
        for a, b in zip(first.rank_stats, second.rank_stats):
            assert a.comp_time == b.comp_time
            assert a.comm_time == b.comm_time
            assert a.wait_time == b.wait_time

    @given(case=program_strategy)
    @settings(**COMMON)
    def test_makespan_bounds_busy_time(self, case):
        num_ranks, steps = case
        result = Simulator(num_ranks, MODEL).run(build_program(num_ranks, steps))
        for rank_stats in result.rank_stats:
            busy = rank_stats.comp_time + rank_stats.comm_time + rank_stats.wait_time
            assert result.makespan >= busy - 1e-12

    @given(case=program_strategy)
    @settings(**COMMON)
    def test_times_nonnegative(self, case):
        num_ranks, steps = case
        result = Simulator(num_ranks, MODEL).run(build_program(num_ranks, steps))
        for rank_stats in result.rank_stats:
            for stage in rank_stats.stages.values():
                assert stage.comp_time >= 0
                assert stage.comm_time >= 0
                assert stage.wait_time >= 0
