"""Tests for bounding-rectangle machinery (compositing.rect)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compositing.rect import clip_rect, find_bounding_rect, split_rect_by_centerline
from repro.types import Rect


def planes_with_points(h, w, points):
    intensity = np.zeros((h, w))
    opacity = np.zeros((h, w))
    for y, x in points:
        opacity[y, x] = 0.5
        intensity[y, x] = 0.5
    return intensity, opacity


class TestFindBoundingRect:
    def test_empty_image(self):
        intensity = np.zeros((6, 6))
        assert find_bounding_rect(intensity, intensity).is_empty

    def test_single_pixel(self):
        intensity, opacity = planes_with_points(6, 6, [(2, 3)])
        assert find_bounding_rect(intensity, opacity) == Rect(2, 3, 3, 4)

    def test_two_corners(self):
        intensity, opacity = planes_with_points(8, 9, [(1, 1), (6, 7)])
        assert find_bounding_rect(intensity, opacity) == Rect(1, 1, 7, 8)

    def test_region_clips_search(self):
        intensity, opacity = planes_with_points(8, 8, [(0, 0), (7, 7)])
        rect = find_bounding_rect(intensity, opacity, Rect(0, 0, 4, 4))
        assert rect == Rect(0, 0, 1, 1)

    def test_region_with_no_foreground(self):
        intensity, opacity = planes_with_points(8, 8, [(0, 0)])
        assert find_bounding_rect(intensity, opacity, Rect(4, 4, 8, 8)).is_empty

    def test_empty_region(self):
        intensity, opacity = planes_with_points(8, 8, [(0, 0)])
        assert find_bounding_rect(intensity, opacity, Rect.empty()).is_empty

    def test_intensity_only_pixel_counts(self):
        intensity = np.zeros((4, 4))
        opacity = np.zeros((4, 4))
        intensity[1, 2] = 0.3  # non-blank by intensity alone
        assert find_bounding_rect(intensity, opacity) == Rect(1, 2, 2, 3)

    def test_region_outside_image_clipped(self):
        intensity, opacity = planes_with_points(4, 4, [(3, 3)])
        rect = find_bounding_rect(intensity, opacity, Rect(0, 0, 100, 100))
        assert rect == Rect(3, 3, 4, 4)

    @given(
        seed=st.integers(0, 2**16),
        h=st.integers(1, 20),
        w=st.integers(1, 20),
        density=st.floats(0.0, 0.6),
    )
    @settings(max_examples=100)
    def test_rect_is_tight_cover(self, seed, h, w, density):
        rng = np.random.default_rng(seed)
        mask = rng.random((h, w)) < density
        opacity = np.where(mask, 0.5, 0.0)
        rect = find_bounding_rect(opacity, opacity)
        if not mask.any():
            assert rect.is_empty
            return
        ys, xs = np.nonzero(mask)
        # Covers everything...
        assert rect.y0 <= ys.min() and rect.y1 > ys.max()
        assert rect.x0 <= xs.min() and rect.x1 > xs.max()
        # ...tightly: each edge touches a foreground pixel.
        assert rect == Rect(ys.min(), xs.min(), ys.max() + 1, xs.max() + 1)


class TestSplitByCenterline:
    def test_split_rows(self):
        bound = Rect(1, 1, 7, 5)
        region = Rect(0, 0, 8, 6)
        low, high = split_rect_by_centerline(bound, region, 0)
        assert low == Rect(1, 1, 4, 5)
        assert high == Rect(4, 1, 7, 5)

    def test_bound_entirely_in_one_half(self):
        bound = Rect(0, 0, 2, 2)
        region = Rect(0, 0, 8, 8)
        low, high = split_rect_by_centerline(bound, region, 0)
        assert low == bound
        assert high.is_empty

    def test_empty_bound(self):
        low, high = split_rect_by_centerline(Rect.empty(), Rect(0, 0, 8, 8), 1)
        assert low.is_empty and high.is_empty

    def test_parts_partition_bound(self):
        bound = Rect(2, 3, 11, 9)
        region = Rect(0, 0, 12, 10)
        for axis in (0, 1):
            low, high = split_rect_by_centerline(bound, region, axis)
            assert low.area + high.area == bound.area
            assert low.intersect(high).is_empty

    def test_parts_inside_their_halves(self):
        bound = Rect(0, 0, 10, 10)
        region = Rect(0, 0, 10, 10)
        low_half, high_half = region.split(1)
        low, high = split_rect_by_centerline(bound, region, 1)
        assert low_half.contains(low)
        assert high_half.contains(high)


class TestClipRect:
    def test_clip_inside(self):
        assert clip_rect(Rect(1, 1, 3, 3), Rect(0, 0, 8, 8)) == Rect(1, 1, 3, 3)

    def test_clip_overflow(self):
        assert clip_rect(Rect(5, 5, 12, 12), Rect(0, 0, 8, 8)) == Rect(5, 5, 8, 8)

    def test_clip_disjoint(self):
        assert clip_rect(Rect(10, 10, 12, 12), Rect(0, 0, 8, 8)).is_empty
