"""Simulator vs multiprocessing: the full pipeline must agree exactly.

The paper's results are only as credible as the simulator's execution,
so every compositing method runs end to end on both substrates and the
final images are compared bit for bit, along with the per-stage
byte/message counters (the simulator *prices* the same traffic a real
transport *ships*).
"""

import pytest

from repro.pipeline.config import RunConfig
from repro.pipeline.system import GATHER_STAGE, SortLastSystem

#: Small enough that spawning real processes stays fast.
SMALL = dict(dataset="engine_low", volume_shape=(24, 24, 12), image_size=32)

ALL_METHODS = ["bs", "bsbr", "bslc", "bsbrc"]


def _stage_traffic(result, *, include_gather: bool) -> list[list[tuple]]:
    """Per-rank, per-stage (stage, bytes/msgs sent/recv) signature."""
    signature = []
    for rs in result.timeline.rank_stats:
        rows = []
        for st in rs.sorted_stages():
            if not include_gather and st.stage == GATHER_STAGE:
                continue
            rows.append(
                (st.stage, st.bytes_sent, st.bytes_recv, st.msgs_sent, st.msgs_recv)
            )
        signature.append(rows)
    return signature


def _run(method: str, num_ranks: int, backend: str):
    cfg = RunConfig(method=method, num_ranks=num_ranks, backend=backend, **SMALL)
    return SortLastSystem(cfg).run()


class TestSimVsMultiprocessing:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_final_images_bit_identical(self, method):
        sim = _run(method, 4, "sim")
        mp = _run(method, 4, "mp")
        assert sim.backend_name == "sim" and mp.backend_name == "mp"
        assert sim.final_image.max_abs_diff(mp.final_image) == 0.0

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_per_stage_traffic_matches(self, method):
        sim = _run(method, 4, "sim")
        mp = _run(method, 4, "mp")
        assert _stage_traffic(sim, include_gather=True) == _stage_traffic(
            mp, include_gather=True
        )

    def test_folded_plan_parity(self):
        """Non-power-of-two rank counts exercise the folding pre-merge."""
        sim = _run("bsbrc", 3, "sim")
        mp = _run("bsbrc", 3, "mp")
        assert sim.final_image.max_abs_diff(mp.final_image) == 0.0
        assert _stage_traffic(sim, include_gather=True) == _stage_traffic(
            mp, include_gather=True
        )

    def test_both_match_the_sequential_reference(self):
        sim = _run("bsbrc", 4, "sim")
        mp = _run("bsbrc", 4, "mp")
        assert sim.final_image.max_abs_diff(sim.reference_image()) < 1e-9
        assert mp.final_image.max_abs_diff(mp.reference_image()) < 1e-9

    def test_compositing_mmax_agrees(self):
        sim = _run("bsbr", 4, "sim")
        mp = _run("bsbr", 4, "mp")
        assert sim.compositing.stats.mmax_bytes == mp.compositing.stats.mmax_bytes
        assert sim.compositing.stats.mmax_bytes > 0

    def test_gather_stage_excluded_from_compositing_stats(self):
        sim = _run("bsbrc", 4, "sim")
        # The unified timeline sees the gather stage; the compositing
        # stats (the paper's measurement) must not.
        timeline_stages = {
            st.stage for rs in sim.timeline.rank_stats for st in rs.stages.values()
        }
        stats_stages = {
            st.stage
            for rs in sim.compositing.stats.rank_stats
            for st in rs.stages.values()
        }
        assert GATHER_STAGE in timeline_stages
        assert GATHER_STAGE not in stats_stages
