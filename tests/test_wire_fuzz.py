"""Adversarial fuzzing of the wire-format parsers.

A compositing message arrives from another rank; a robust system must
treat it as untrusted input.  For any corruption — truncation, garbage
extension, random byte flips — every ``unpack_*`` must either succeed or
raise :class:`WireFormatError`.  Raw ``IndexError``/``ValueError``
escapes from numpy are parser bugs.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.compositing.value_rle import unpack_value_runs
from repro.compositing.wire import (
    pack_bs,
    pack_bsbr,
    pack_bsbrc,
    pack_bslc,
    unpack_bs,
    unpack_bsbr,
    unpack_bsbrc,
    unpack_bslc,
)
from repro.errors import WireFormatError
from repro.types import Rect

COMMON = dict(
    max_examples=150,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def sample_planes(seed=0, h=10, w=8, density=0.4):
    rng = np.random.default_rng(seed)
    mask = rng.random((h, w)) < density
    intensity = np.where(mask, rng.uniform(0.1, 1, (h, w)), 0.0)
    opacity = np.where(mask, rng.uniform(0.1, 1, (h, w)), 0.0)
    return intensity, opacity


def corrupt(buf: bytes, mode: int, position: int, value: int) -> bytes:
    """Deterministic corruption: truncate, extend, or flip a byte."""
    if not buf:
        return bytes([value])
    mode = mode % 3
    position = position % max(1, len(buf))
    if mode == 0:  # truncate
        return buf[:position]
    if mode == 1:  # extend
        return buf + bytes([value]) * (1 + position % 9)
    mutated = bytearray(buf)
    mutated[position] ^= max(1, value % 256)
    return bytes(mutated)


def assert_parses_or_rejects(parser, *args):
    try:
        parser(*args)
    except WireFormatError:
        pass  # the contract: malformed input is *diagnosed*
    # Any other exception type propagates and fails the test.


class TestCorruptionSafety:
    @given(mode=st.integers(0, 2), pos=st.integers(0, 10_000), val=st.integers(0, 255))
    @settings(**COMMON)
    def test_bs(self, mode, pos, val):
        intensity, opacity = sample_planes()
        half = Rect(0, 0, 5, 8)
        msg = pack_bs(intensity, opacity, half)
        assert_parses_or_rejects(unpack_bs, corrupt(msg.buffer, mode, pos, val), half)

    @given(mode=st.integers(0, 2), pos=st.integers(0, 10_000), val=st.integers(0, 255))
    @settings(**COMMON)
    def test_bsbr(self, mode, pos, val):
        intensity, opacity = sample_planes(1)
        msg = pack_bsbr(intensity, opacity, Rect(1, 1, 8, 7))
        assert_parses_or_rejects(unpack_bsbr, corrupt(msg.buffer, mode, pos, val))

    @given(mode=st.integers(0, 2), pos=st.integers(0, 10_000), val=st.integers(0, 255))
    @settings(**COMMON)
    def test_bslc(self, mode, pos, val):
        intensity, opacity = sample_planes(2)
        indices = np.arange(40, dtype=np.int64)
        msg = pack_bslc(intensity.ravel(), opacity.ravel(), indices)
        assert_parses_or_rejects(
            unpack_bslc, corrupt(msg.buffer, mode, pos, val), 40
        )

    @given(mode=st.integers(0, 2), pos=st.integers(0, 10_000), val=st.integers(0, 255))
    @settings(**COMMON)
    def test_bsbrc(self, mode, pos, val):
        intensity, opacity = sample_planes(3)
        msg = pack_bsbrc(intensity, opacity, Rect(0, 0, 10, 8))
        assert_parses_or_rejects(unpack_bsbrc, corrupt(msg.buffer, mode, pos, val))

    @given(mode=st.integers(0, 2), pos=st.integers(0, 10_000), val=st.integers(0, 255))
    @settings(**COMMON)
    def test_value_runs(self, mode, pos, val):
        intensity, opacity = sample_planes(4)
        from repro.compositing.value_rle import pack_value_runs

        msg = pack_value_runs(intensity.ravel(), opacity.ravel())
        assert_parses_or_rejects(
            unpack_value_runs, corrupt(msg.buffer, mode, pos, val), intensity.size
        )

    @given(raw=st.binary(max_size=64))
    @settings(**COMMON)
    def test_random_garbage(self, raw):
        """Arbitrary short blobs must never crash any parser."""
        assert_parses_or_rejects(unpack_bsbr, raw)
        assert_parses_or_rejects(unpack_bsbrc, raw)
        assert_parses_or_rejects(unpack_bslc, raw, 16)
        assert_parses_or_rejects(unpack_value_runs, raw, 16)
        assert_parses_or_rejects(unpack_bs, raw, Rect(0, 0, 2, 2))
