"""``mpiexec``-able entry point for the real-MPI deployment.

Runs the full sort-last-sparse pipeline on an actual MPI job: every rank
renders its subvolume locally and the chosen compositing method runs
over real MPI messages; rank 0 assembles and writes the final image.

    mpiexec -n 8 python -m repro.pipeline.mpi_main \
        --dataset engine_low --method bsbrc --image-size 384 --out out.pgm

Requires mpi4py (see :mod:`repro.cluster.mpi_backend`); the offline test
suite covers the identical logic through the multiprocessing backend.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from ..cluster.mpi_backend import MPIRankContext, require_mpi
from ..compositing.folding import FoldedCompositor
from ..compositing.registry import available_methods, make_compositor
from ..errors import ConfigurationError
from ..render.camera import Camera
from ..render.raycast import render_subvolume
from ..render.reference import luminance
from ..volume.datasets import DATASETS, make_dataset
from ..volume.folded import FoldedPartition, partition_folded
from ..volume.io import to_gray8, write_pgm
from ..volume.partition import recursive_bisect

__all__ = ["main"]


def _drive(coro):
    """Run a compositor coroutine to completion (no event loop needed —
    MPI verbs complete synchronously)."""
    try:
        while True:
            yielded = coro.send(None)
            raise ConfigurationError(
                f"operation {yielded!r} is not supported on the MPI backend"
            )
    except StopIteration as stop:
        return stop.value


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="engine_low", choices=sorted(DATASETS))
    parser.add_argument("--method", default="bsbrc", choices=available_methods())
    parser.add_argument("--image-size", type=int, default=384)
    parser.add_argument("--rot-x", type=float, default=20.0)
    parser.add_argument("--rot-y", type=float, default=30.0)
    parser.add_argument("--out", default="mpi_composite.pgm")
    args = parser.parse_args(argv)

    require_mpi()
    ctx = MPIRankContext()
    rank, size = ctx.rank, ctx.size

    volume, transfer = make_dataset(args.dataset)
    camera = Camera(
        width=args.image_size,
        height=args.image_size,
        volume_shape=volume.shape,
        rot_x=args.rot_x,
        rot_y=args.rot_y,
    )
    if size & (size - 1) == 0:
        plan = recursive_bisect(volume.shape, size)
    else:
        plan = partition_folded(volume.shape, size)

    image = render_subvolume(volume, transfer, camera, plan.extent(rank))

    compositor = make_compositor(args.method)
    if isinstance(plan, FoldedPartition):
        compositor = FoldedCompositor(compositor)
    outcome = _drive(compositor.run(ctx, image, plan, camera.view_dir))

    # Gather owned tiles to rank 0 through MPI itself.
    values_i, values_a = outcome.owned_values()
    payload = (outcome.owned_rect, outcome.owned_indices, values_i, values_a)
    gathered = ctx._comm.gather(payload, root=0)

    if rank == 0:
        from ..render.image import SubImage

        final = SubImage.blank(camera.height, camera.width)
        flat_i = final.intensity.ravel()
        flat_a = final.opacity.ravel()
        for owned_rect, owned_indices, tile_i, tile_a in gathered:
            if owned_rect is not None:
                if owned_rect.is_empty:
                    continue
                rows, cols = owned_rect.slices()
                final.intensity[rows, cols] = tile_i.reshape(
                    owned_rect.height, owned_rect.width
                )
                final.opacity[rows, cols] = tile_a.reshape(
                    owned_rect.height, owned_rect.width
                )
            else:
                flat_i[owned_indices] = tile_i
                flat_a[owned_indices] = tile_a
        write_pgm(args.out, to_gray8(luminance(final), gain=2.0))
        print(f"[rank 0] {args.method} on {size} MPI ranks -> {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover - needs an MPI launcher
    sys.exit(main())
