"""Real-transport backend: the compositors on OS processes and queues.

The simulator gives deterministic *timing*; this backend gives a second,
*real* execution substrate for correctness: every rank is an actual
``multiprocessing`` process and every message crosses a real IPC queue.
The same compositor coroutines run unchanged — :class:`MPRankContext`
implements the rank API with synchronous transport calls inside ``async``
methods that never yield, so each rank drives its coroutine to completion
locally (no event loop needed).

This is how the library would be ported to real MPI: implement the
RankContext verbs over ``mpi4py`` the same way.  Timing is *not* modelled
here (``charge_*`` are no-ops; wall clock on a single-core host means
nothing), so use :func:`run_compositing_mp` for cross-validating results,
not for the paper's tables.
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from ..errors import ConfigurationError, SimulationError

__all__ = ["MPRankContext", "run_rank_programs_mp", "DEFAULT_TIMEOUT"]

#: Per-receive timeout (seconds) after which a rank assumes deadlock.
DEFAULT_TIMEOUT = 60.0


class MPRankContext:
    """Rank API over multiprocessing queues (one queue per directed pair).

    Implements the same surface as
    :class:`~repro.cluster.context.RankContext`; the ``async`` methods
    complete synchronously, so awaiting them never suspends.
    """

    def __init__(self, rank: int, size: int, queues, barrier, timeout: float):
        self._rank = rank
        self._size = size
        self._queues = queues  # queues[src][dst]
        self._barrier = barrier
        self._timeout = timeout
        self.counters: dict[str, int] = {}

    # ---- identity --------------------------------------------------------
    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._size

    @property
    def model(self):  # pragma: no cover - never priced on this backend
        raise ConfigurationError("the multiprocessing backend has no machine model")

    # ---- staging / accounting (no-ops on the real backend) ----------------
    def begin_stage(self, stage: int) -> None:
        pass

    def note(self, kind: str, count: int = 1) -> None:
        if count:
            self.counters[kind] = self.counters.get(kind, 0) + int(count)

    async def compute(self, seconds: float, *, kind: str = "compute", count: int = 0) -> None:
        pass

    async def charge_over(self, npixels: int) -> None:
        self.note("over", npixels)

    async def charge_encode(self, npixels: int) -> None:
        self.note("encode", npixels)

    async def charge_bound(self, npixels: int) -> None:
        self.note("bound", npixels)

    async def charge_pack(self, nbytes: int) -> None:
        self.note("pack", nbytes)

    # ---- transport ---------------------------------------------------------
    def _check_peer(self, peer: int) -> None:
        if not (0 <= peer < self._size):
            raise ConfigurationError(f"peer {peer} out of range (size {self._size})")

    async def send(self, dst: int, payload: Any, *, nbytes=None, tag: int = 0):
        self._check_peer(dst)
        self._queues[self._rank][dst].put((tag, payload))

    async def recv(self, src: int, *, tag: int = -1) -> Any:
        self._check_peer(src)
        try:
            got_tag, payload = self._queues[src][self._rank].get(timeout=self._timeout)
        except Exception as exc:
            raise SimulationError(
                f"rank {self._rank} timed out receiving from {src} (tag {tag})"
            ) from exc
        if tag != -1 and got_tag != tag:
            raise SimulationError(
                f"rank {self._rank} expected tag {tag} from {src}, got {got_tag} "
                "(out-of-order traffic is not supported on this backend)"
            )
        return payload

    async def sendrecv(self, peer: int, payload: Any, *, nbytes=None, tag: int = 0) -> Any:
        if peer == self._rank:
            raise ConfigurationError("cannot sendrecv with self")
        # Queues are buffered, so send-then-receive cannot deadlock.
        await self.send(peer, payload, tag=tag)
        return await self.recv(peer, tag=tag)

    async def barrier(self) -> None:
        self._barrier.wait(timeout=self._timeout)

    # Nonblocking verbs are not offered on this backend (queues are
    # already buffered); compositors that need them target the simulator.


def _worker(rank, size, program, args, queues, barrier, timeout, result_queue):
    """Subprocess entry: drive the rank coroutine to completion."""
    try:
        ctx = MPRankContext(rank, size, queues, barrier, timeout)
        coro = program(ctx, *args)
        try:
            while True:
                yielded = coro.send(None)
                # All MPRankContext verbs complete synchronously; a yield
                # means the program awaited a simulator-only op.
                raise SimulationError(
                    f"operation {yielded!r} is not supported on the "
                    "multiprocessing backend (simulator-only primitive)"
                )
        except StopIteration as stop:
            result_queue.put((rank, "ok", stop.value, ctx.counters))
    except BaseException as exc:  # report, don't hang the parent
        result_queue.put((rank, "error", repr(exc), {}))


@dataclass
class MPRunResult:
    """Results of one multiprocessing run."""

    returns: list[Any]
    counters: list[dict[str, int]]


def run_rank_programs_mp(
    num_ranks: int,
    program,
    args: Sequence[Any] = (),
    *,
    timeout: float = DEFAULT_TIMEOUT,
) -> MPRunResult:
    """Run ``program(ctx, *args)`` on ``num_ranks`` real processes.

    ``program`` must be a picklable (module-level) ``async def``; its
    return values are collected per rank.  Raises
    :class:`SimulationError` if any rank fails or times out.
    """
    if num_ranks < 1:
        raise ConfigurationError(f"num_ranks must be >= 1, got {num_ranks}")
    mp_ctx = mp.get_context("fork")  # workers inherit numpy state cheaply
    queues = [
        [mp_ctx.Queue() if src != dst else None for dst in range(num_ranks)]
        for src in range(num_ranks)
    ]
    barrier = mp_ctx.Barrier(num_ranks)
    result_queue = mp_ctx.Queue()

    workers = [
        mp_ctx.Process(
            target=_worker,
            args=(rank, num_ranks, program, tuple(args), queues, barrier,
                  timeout, result_queue),
        )
        for rank in range(num_ranks)
    ]
    for worker in workers:
        worker.start()

    returns: list[Any] = [None] * num_ranks
    counters: list[dict[str, int]] = [{} for _ in range(num_ranks)]
    failures: list[str] = []
    try:
        for _ in range(num_ranks):
            rank, status, value, rank_counters = result_queue.get(timeout=timeout)
            if status == "ok":
                returns[rank] = value
                counters[rank] = rank_counters
            else:
                failures.append(f"rank {rank}: {value}")
    except Exception as exc:
        failures.append(f"collection timed out: {exc!r}")
    finally:
        for worker in workers:
            worker.join(timeout=5.0)
            if worker.is_alive():
                worker.terminate()
                worker.join()
    if failures:
        raise SimulationError("multiprocessing run failed: " + "; ".join(failures))
    return MPRunResult(returns=returns, counters=counters)
