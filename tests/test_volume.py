"""Tests for the volume substrate: grid, transfer functions, datasets, IO."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.volume.datasets import (
    DATASETS,
    PAPER_DATASETS,
    make_cube,
    make_dataset,
    make_engine,
    make_head,
    make_sphere,
)
from repro.volume.grid import VolumeGrid
from repro.volume.io import (
    load_volume,
    read_pgm,
    read_ppm,
    save_volume,
    to_gray8,
    write_pgm,
    write_ppm,
)
from repro.volume.transfer import TransferFunction


class TestVolumeGrid:
    def test_basic_properties(self):
        grid = VolumeGrid(data=np.zeros((4, 5, 6), dtype=np.float32), name="z")
        assert grid.shape == (4, 5, 6)
        assert grid.num_voxels == 120
        assert np.allclose(grid.center, [2, 2.5, 3])
        assert grid.diagonal == pytest.approx(np.sqrt(16 + 25 + 36))

    def test_rejects_2d(self):
        with pytest.raises(ConfigurationError):
            VolumeGrid(data=np.zeros((4, 4), dtype=np.float32))

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            VolumeGrid(data=np.full((2, 2, 2), 1.5, dtype=np.float32))

    def test_rejects_nan(self):
        data = np.zeros((2, 2, 2), dtype=np.float32)
        data[0, 0, 0] = np.nan
        with pytest.raises(ConfigurationError):
            VolumeGrid(data=data)

    def test_rejects_integers(self):
        with pytest.raises(ConfigurationError):
            VolumeGrid(data=np.zeros((2, 2, 2), dtype=np.int32))

    def test_converts_float64(self):
        grid = VolumeGrid(data=np.zeros((2, 2, 2), dtype=np.float64))
        assert grid.data.dtype == np.float32

    def test_from_field_clamps(self):
        grid = VolumeGrid.from_field(np.full((2, 2, 2), 3.0))
        assert float(grid.data.max()) == 1.0

    def test_describe_mentions_name(self):
        grid = make_sphere((8, 8, 8))
        assert "sphere" in grid.describe()


class TestTransferFunction:
    def test_window_validation(self):
        with pytest.raises(ConfigurationError):
            TransferFunction(lo=0.5, hi=0.5)
        with pytest.raises(ConfigurationError):
            TransferFunction(lo=-0.1, hi=0.5)
        with pytest.raises(ConfigurationError):
            TransferFunction(lo=0.1, hi=0.5, max_alpha=0.0)

    def test_opacity_window(self):
        tf = TransferFunction(lo=0.2, hi=0.6, max_alpha=0.8)
        s = np.array([0.0, 0.2, 0.4, 0.6, 1.0])
        alpha = tf.opacity(s)
        assert alpha[0] == 0.0 and alpha[1] == 0.0
        assert alpha[2] == pytest.approx(0.4)
        assert alpha[3] == pytest.approx(0.8)
        assert alpha[4] == pytest.approx(0.8)

    def test_emission_scales(self):
        tf = TransferFunction(lo=0.1, hi=0.9, brightness=2.0)
        assert tf.emission(np.array([0.5]))[0] == pytest.approx(1.0)

    def test_classify_returns_pair(self):
        tf = TransferFunction(lo=0.1, hi=0.9)
        e, a = tf.classify(np.array([0.5]))
        assert e.shape == a.shape == (1,)

    def test_with_window(self):
        tf = TransferFunction(lo=0.1, hi=0.9, max_alpha=0.7)
        tighter = tf.with_window(0.5, 0.8)
        assert tighter.lo == 0.5 and tighter.max_alpha == 0.7

    def test_higher_threshold_more_transparent(self):
        low = TransferFunction(lo=0.14, hi=0.45)
        high = TransferFunction(lo=0.50, hi=0.88)
        s = np.linspace(0, 1, 101)
        assert (high.opacity(s) <= low.opacity(s) + 1e-12).all()


class TestDatasets:
    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_instantiates_small(self, name):
        volume, transfer = make_dataset(name, (24, 24, 12))
        assert volume.shape == (24, 24, 12)
        assert isinstance(transfer, TransferFunction)
        assert 0.0 <= float(volume.data.min()) <= float(volume.data.max()) <= 1.0

    def test_paper_datasets_registered(self):
        assert set(PAPER_DATASETS) <= set(DATASETS)
        assert PAPER_DATASETS == ("engine_low", "engine_high", "head", "cube")

    def test_default_shapes_match_paper(self):
        assert DATASETS["engine_low"].default_shape == (256, 256, 110)
        assert DATASETS["head"].default_shape == (256, 256, 113)
        assert DATASETS["cube"].default_shape == (256, 256, 110)

    def test_engine_volumes_shared(self):
        v1, _ = make_dataset("engine_low", (24, 24, 12))
        v2, _ = make_dataset("engine_high", (24, 24, 12))
        assert v1 is v2

    def test_engine_high_sparser_than_low(self):
        """The whole point of the two windows: the high threshold leaves
        far fewer potentially-visible voxels."""
        volume, tf_low = make_dataset("engine_low", (48, 48, 24))
        _, tf_high = make_dataset("engine_high", (48, 48, 24))
        visible_low = (tf_low.opacity(volume.data) > 0).mean()
        visible_high = (tf_high.opacity(volume.data) > 0).mean()
        assert visible_high < visible_low / 2

    def test_cube_is_sparse_but_wide(self):
        volume = make_cube((48, 48, 24))
        occupied = volume.data > 0.3
        assert 0.005 < occupied.mean() < 0.25  # sparse occupancy
        xs, ys, zs = np.nonzero(occupied)
        # ...yet spanning most of the volume extent.
        assert xs.max() - xs.min() > 48 * 0.6
        assert ys.max() - ys.min() > 48 * 0.6

    def test_head_denser_than_cube(self):
        head = make_head((48, 48, 24))
        cube = make_cube((48, 48, 24))
        assert (head.data > 0.2).mean() > (cube.data > 0.2).mean()

    def test_unknown_dataset(self):
        with pytest.raises(ConfigurationError):
            make_dataset("nope")

    def test_bad_shape(self):
        with pytest.raises(ConfigurationError):
            make_dataset("head", (4, 4))
        with pytest.raises(ConfigurationError):
            make_dataset("head", (4, 4, 1))

    def test_deterministic(self):
        a = make_engine((24, 24, 12))
        b = make_engine((24, 24, 12))
        assert np.array_equal(a.data, b.data)

    def test_sphere_radius_validation(self):
        with pytest.raises(ConfigurationError):
            make_sphere((8, 8, 8), radius=0.0)


class TestIO:
    def test_volume_roundtrip(self, tmp_path):
        grid = make_sphere((8, 8, 8))
        path = tmp_path / "vol.npz"
        save_volume(grid, path)
        loaded = load_volume(path)
        assert loaded.name == "sphere"
        assert np.array_equal(loaded.data, grid.data)

    def test_load_rejects_non_volume(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, other=np.zeros(3))
        with pytest.raises(ConfigurationError):
            load_volume(path)

    def test_pgm_roundtrip(self, tmp_path):
        rng = np.random.default_rng(0)
        gray = rng.integers(0, 256, (10, 14), dtype=np.uint8)
        path = tmp_path / "img.pgm"
        write_pgm(path, gray)
        assert np.array_equal(read_pgm(path), gray)

    def test_write_pgm_rejects_float(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_pgm(tmp_path / "x.pgm", np.zeros((2, 2)))

    def test_read_pgm_rejects_other_formats(self, tmp_path):
        path = tmp_path / "x.pgm"
        path.write_bytes(b"P6\n2 2\n255\n" + b"\x00" * 12)
        with pytest.raises(ConfigurationError):
            read_pgm(path)

    def test_read_pgm_rejects_truncated(self, tmp_path):
        path = tmp_path / "x.pgm"
        path.write_bytes(b"P5\n4 4\n255\n\x00\x00")
        with pytest.raises(ConfigurationError):
            read_pgm(path)

    def test_to_gray8_clips(self):
        plane = np.array([[-1.0, 0.5, 9.0]])
        gray = to_gray8(plane)
        assert gray.tolist() == [[0, 127, 255]]
        assert gray.dtype == np.uint8

    def test_to_gray8_gain(self):
        assert to_gray8(np.array([[0.25]]), gain=2.0)[0, 0] == 127


class TestNetpbmRoundtripProperties:
    """Round-trips must survive pixel bytes that look like line endings
    (0x0A/0x0D) — the corruption mode a text checkout introduces."""

    @given(
        st.integers(1, 12),
        st.integers(1, 12),
        st.integers(0, 2**31),
    )
    @settings(max_examples=60)
    def test_pgm_roundtrip_random(self, tmp_path_factory, width, height, seed):
        rng = np.random.default_rng(seed)
        gray = rng.integers(0, 256, (height, width), dtype=np.uint8)
        path = tmp_path_factory.mktemp("pgm") / "img.pgm"
        write_pgm(path, gray)
        assert np.array_equal(read_pgm(path), gray)

    @given(
        st.integers(1, 10),
        st.integers(1, 10),
        st.integers(0, 2**31),
    )
    @settings(max_examples=60)
    def test_ppm_roundtrip_random(self, tmp_path_factory, width, height, seed):
        rng = np.random.default_rng(seed)
        rgb = rng.integers(0, 256, (height, width, 3), dtype=np.uint8)
        path = tmp_path_factory.mktemp("ppm") / "img.ppm"
        write_ppm(path, rgb)
        assert np.array_equal(read_ppm(path), rgb)

    def test_pgm_newline_pixel_bytes_survive(self, tmp_path):
        """Every pixel is 0x0A or 0x0D: the worst case for any reader that
        splits the payload on newlines."""
        gray = np.tile(
            np.array([[0x0A, 0x0D], [0x0D, 0x0A]], dtype=np.uint8), (5, 7)
        )
        path = tmp_path / "newlines.pgm"
        write_pgm(path, gray)
        assert np.array_equal(read_pgm(path), gray)

    def test_ppm_newline_pixel_bytes_survive(self, tmp_path):
        rgb = np.full((6, 4, 3), 0x0A, dtype=np.uint8)
        rgb[::2, :, 1] = 0x0D
        path = tmp_path / "newlines.ppm"
        write_ppm(path, rgb)
        assert np.array_equal(read_ppm(path), rgb)

    def test_write_ppm_rejects_bad_shape(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_ppm(tmp_path / "x.ppm", np.zeros((2, 2), dtype=np.uint8))
        with pytest.raises(ConfigurationError):
            write_ppm(tmp_path / "x.ppm", np.zeros((2, 2, 4), dtype=np.uint8))

    def test_truncation_error_names_text_checkout(self, tmp_path):
        """The error message must point at the one corruption mode that has
        actually bitten this repo: newline normalization of binary files."""
        path = tmp_path / "x.pgm"
        path.write_bytes(b"P5\n4 4\n255\n\x00\x00")
        with pytest.raises(ConfigurationError, match="text checkout"):
            read_pgm(path)
        with pytest.raises(ConfigurationError, match=r"\.gitattributes"):
            read_pgm(path)

    def test_read_ppm_rejects_pgm(self, tmp_path):
        path = tmp_path / "x.ppm"
        path.write_bytes(b"P5\n2 2\n255\n" + b"\x00" * 4)
        with pytest.raises(ConfigurationError):
            read_ppm(path)
