"""Tests for small helpers not covered elsewhere."""

import numpy as np
import pytest

from conftest import rendered_workload
from repro.cluster.model import SP2
from repro.cluster.stats import StageStats, merge_counters
from repro.compositing.bslc import final_owned_indices
from repro.pipeline.system import run_compositing


class TestFinalOwnedIndices:
    @pytest.mark.parametrize("num_ranks", [2, 4, 8])
    def test_matches_actual_bslc_ownership(self, num_ranks):
        """The display-node recomputation must equal what the ranks
        actually ended up owning."""
        subimages, plan, camera = rendered_workload("engine_low", num_ranks)
        run = run_compositing(list(subimages), "bslc", plan, camera.view_dir, SP2)
        num_pixels = subimages[0].num_pixels
        for rank, outcome in enumerate(run.outcomes):
            recomputed = final_owned_indices(rank, num_ranks, num_pixels)
            assert np.array_equal(outcome.owned_indices, recomputed)

    def test_respects_section(self):
        a = final_owned_indices(0, 2, 64, section=1)
        b = final_owned_indices(0, 2, 64, section=8)
        assert not np.array_equal(a, b)
        assert a.size == b.size == 32

    def test_partition_across_ranks(self):
        owned = [final_owned_indices(r, 4, 100, section=3) for r in range(4)]
        combined = np.sort(np.concatenate(owned))
        assert np.array_equal(combined, np.arange(100))


class TestMergeCounters:
    def test_sums_across_buckets(self):
        a = StageStats(stage=0, counters={"over": 10, "encode": 5})
        b = StageStats(stage=1, counters={"over": 3})
        merged = merge_counters([a, b])
        assert merged == {"over": 13, "encode": 5}

    def test_empty(self):
        assert merge_counters([]) == {}


class TestStageStatsHelpers:
    def test_elapsed_time(self):
        stats = StageStats(stage=0, comp_time=1.0, comm_time=0.5, wait_time=0.25)
        assert stats.total_time == pytest.approx(1.5)
        assert stats.elapsed_time == pytest.approx(1.75)

    def test_add_counter_ignores_zero(self):
        stats = StageStats(stage=0)
        stats.add_counter("x", 0)
        assert "x" not in stats.counters
