"""Core contribution: sparse binary-swap image compositing methods.

The four methods of the paper — :class:`~repro.compositing.bs.BinarySwap`
(BS), :class:`~repro.compositing.bsbr.BinarySwapBoundingRect` (BSBR),
:class:`~repro.compositing.bslc.BinarySwapLoadBalancedCompression`
(BSLC) and
:class:`~repro.compositing.bsbrc.BinarySwapBoundingRectCompression`
(BSBRC) — plus related-work baselines, the *over* operator, the mask RLE
codec, bounding-rectangle machinery and the byte-level wire formats.
"""

from .base import CompositeOutcome, Compositor, composite_rect_pixels, split_axis_for
from .baselines import (
    BinaryTreeCompression,
    DirectSend,
    DirectSendAsync,
    ParallelPipeline,
    strip_rect,
)
from .bs import BinarySwap
from .folding import FoldedCompositor
from .bsbr import BinarySwapBoundingRect
from .bsbrc import BinarySwapBoundingRectCompression
from .bslc import BinarySwapLoadBalancedCompression, final_owned_indices
from .bslc_value import BinarySwapValueCompression
from .value_rle import (
    VALUE_RUN_BYTES,
    pack_value_runs,
    unpack_value_runs,
    value_rle_decode,
    value_rle_encode,
)
from .interleave import DEFAULT_SECTION, initial_indices, split_interleaved
from .over import is_blank, nonblank_mask, over, over_inplace, over_scalar
from .rect import clip_rect, find_bounding_rect, split_rect_by_centerline
from .registry import PAPER_METHODS, available_methods, make_compositor, register
from .rle import MAX_RUN, count_nonblank, rle_decode_mask, rle_encode_mask
from .wire import (
    WireMessage,
    pack_bs,
    pack_bsbr,
    pack_bsbrc,
    pack_bslc,
    pack_pixels_rect,
    unpack_bs,
    unpack_bsbr,
    unpack_bsbrc,
    unpack_bslc,
    unpack_pixels_rect,
)

__all__ = [
    "BinarySwap",
    "BinarySwapBoundingRect",
    "BinarySwapBoundingRectCompression",
    "BinarySwapLoadBalancedCompression",
    "BinarySwapValueCompression",
    "BinaryTreeCompression",
    "CompositeOutcome",
    "Compositor",
    "DEFAULT_SECTION",
    "DirectSend",
    "DirectSendAsync",
    "FoldedCompositor",
    "MAX_RUN",
    "PAPER_METHODS",
    "ParallelPipeline",
    "VALUE_RUN_BYTES",
    "WireMessage",
    "available_methods",
    "clip_rect",
    "composite_rect_pixels",
    "count_nonblank",
    "final_owned_indices",
    "find_bounding_rect",
    "initial_indices",
    "is_blank",
    "make_compositor",
    "nonblank_mask",
    "over",
    "over_inplace",
    "over_scalar",
    "pack_bs",
    "pack_bsbr",
    "pack_bsbrc",
    "pack_bslc",
    "pack_pixels_rect",
    "pack_value_runs",
    "register",
    "rle_decode_mask",
    "rle_encode_mask",
    "split_axis_for",
    "split_interleaved",
    "split_rect_by_centerline",
    "strip_rect",
    "unpack_bs",
    "unpack_bsbr",
    "unpack_bsbrc",
    "unpack_bslc",
    "unpack_pixels_rect",
    "unpack_value_runs",
    "value_rle_decode",
    "value_rle_encode",
]
