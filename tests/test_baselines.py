"""Behavioral tests specific to the related-work baseline compositors."""

import numpy as np
import pytest

from conftest import random_subimages, rendered_workload, reference_image
from repro.cluster.model import IDEALIZED, SP2
from repro.compositing.baselines import strip_rect
from repro.errors import CompositingError
from repro.pipeline.system import assemble_final, run_compositing


class TestStripRect:
    def test_strips_partition_rows(self):
        strips = [strip_rect(48, 40, r, 8) for r in range(8)]
        assert strips[0].y0 == 0
        assert strips[-1].y1 == 48
        total = sum(s.area for s in strips)
        assert total == 48 * 40
        for a, b in zip(strips, strips[1:]):
            assert a.y1 == b.y0

    def test_uneven_height(self):
        strips = [strip_rect(10, 4, r, 4) for r in range(4)]
        assert sum(s.area for s in strips) == 40
        assert all(not s.is_empty for s in strips)

    def test_more_ranks_than_rows(self):
        strips = [strip_rect(2, 4, r, 4) for r in range(4)]
        assert sum(s.area for s in strips) == 8
        assert sum(1 for s in strips if s.is_empty) == 2

    def test_bad_rank(self):
        with pytest.raises(CompositingError):
            strip_rect(8, 8, 9, 8)


class TestDirectSend:
    def test_each_rank_owns_its_strip(self):
        subimages, plan, camera = rendered_workload("engine_low", 8)
        run = run_compositing(list(subimages), "direct", plan, camera.view_dir, SP2)
        h, w = subimages[0].shape
        for rank, outcome in enumerate(run.outcomes):
            assert outcome.owned_rect == strip_rect(h, w, rank, 8)

    def test_message_count_p_minus_one(self):
        subimages, plan, camera = rendered_workload("engine_low", 8)
        run = run_compositing(list(subimages), "direct", plan, camera.view_dir, SP2)
        for rank_stats in run.stats.rank_stats:
            assert rank_stats.msgs_recv == 7
            assert rank_stats.msgs_sent == 7

    def test_sparse_contributions_skip_pixels(self):
        """Direct send with rect packing ships far fewer bytes than the
        dense buffered case would (A/P pixels from each of P-1 senders)."""
        subimages, plan, camera = rendered_workload("engine_high", 8)
        run = run_compositing(list(subimages), "direct", plan, camera.view_dir, SP2)
        dense_bound = 7 * (subimages[0].num_pixels // 8) * 16
        assert run.stats.mmax_bytes < dense_bound


class TestBinaryTree:
    def test_half_the_ranks_drop_out_each_stage(self):
        subimages, plan, camera = rendered_workload("engine_low", 8)
        run = run_compositing(list(subimages), "tree", plan, camera.view_dir, SP2)
        # Rank 0 receives log2(P) messages; odd ranks send exactly one.
        assert run.stats.rank_stats[0].msgs_recv == 3
        assert run.stats.rank_stats[1].msgs_sent == 1
        assert run.stats.rank_stats[1].msgs_recv == 0
        # Rank 2 receives once (stage 0) then sends once (stage 1).
        assert run.stats.rank_stats[2].msgs_recv == 1
        assert run.stats.rank_stats[2].msgs_sent == 1

    def test_root_image_is_complete(self):
        subimages, plan, camera = rendered_workload("engine_low", 8)
        reference = reference_image("engine_low", 8)
        run = run_compositing(list(subimages), "tree", plan, camera.view_dir, SP2)
        root = run.outcomes[0]
        assert root.owned_rect == subimages[0].full_rect()
        assert root.image.max_abs_diff(reference) < 1e-9

    def test_root_does_all_the_over_work(self):
        subimages, plan, camera = rendered_workload("engine_low", 8)
        run = run_compositing(list(subimages), "tree", plan, camera.view_dir, SP2)
        over0 = run.stats.rank_stats[0].counter_total("over")
        assert over0 > 0
        assert over0 >= max(
            rs.counter_total("over") for rs in run.stats.rank_stats[1:]
        )


class TestParallelPipeline:
    def test_owned_strips_partition(self):
        subimages, plan, camera = rendered_workload("engine_low", 8)
        run = run_compositing(list(subimages), "pipeline", plan, camera.view_dir, SP2)
        h, w = subimages[0].shape
        owned = sorted(
            (o.owned_rect.y0, o.owned_rect.y1) for o in run.outcomes
        )
        assert owned[0][0] == 0 and owned[-1][1] == h
        for (y0a, y1a), (y0b, y1b) in zip(owned, owned[1:]):
            assert y1a == y0b

    def test_p_minus_one_transfer_steps(self):
        subimages, plan, camera = rendered_workload("engine_low", 8)
        run = run_compositing(list(subimages), "pipeline", plan, camera.view_dir, SP2)
        for rank_stats in run.stats.rank_stats:
            assert rank_stats.msgs_sent == 7
            assert rank_stats.msgs_recv == 7

    def test_two_ranks(self, rng):
        from repro.render.reference import composite_sequential
        from repro.volume.partition import depth_order, recursive_bisect

        plan = recursive_bisect((16, 16, 8), 2)
        view = np.array([0.5, 0.5, -0.7])
        images = random_subimages(rng, 2, 20, 20)
        reference = composite_sequential(images, depth_order(plan, view))
        run = run_compositing(images, "pipeline", plan, view, IDEALIZED)
        final = assemble_final(run.outcomes, 20, 20)
        assert final.max_abs_diff(reference) < 1e-12

    @pytest.mark.parametrize("rotation", [(0, 0, 0), (0, 180, 0), (40, -100, 0)])
    def test_wrap_order_correct_across_views(self, rotation):
        """Views that invert the ring ordering exercise the dual-accumulator
        wrap logic."""
        subimages, plan, camera = rendered_workload(
            "engine_low", 4, 48, tuple(float(x) for x in rotation)
        )
        reference = reference_image("engine_low", 4, 48, tuple(float(x) for x in rotation))
        run = run_compositing(list(subimages), "pipeline", plan, camera.view_dir, SP2)
        final = assemble_final(run.outcomes, 48, 48)
        assert final.max_abs_diff(reference) < 1e-9
