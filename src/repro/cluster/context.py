"""Simulator implementation of the rank-context protocol.

A rank program is an ``async def`` function taking a
:class:`~repro.cluster.protocol.BaseRankContext`.  This module provides
the discrete-event-simulator implementation: every verb awaits a
:mod:`repro.cluster.events` op that the
:class:`~repro.cluster.simulator.Simulator` prices in virtual time via
the machine model, and the charging helpers translate *operation
counts* into seconds so algorithm code never hard-codes cost constants.

Example
-------
>>> async def program(ctx):
...     peer = ctx.rank ^ 1
...     data = await ctx.sendrecv(peer, b"x" * ctx.rank, tag=0)
...     await ctx.charge_over(100)
...     return len(data)
"""

from __future__ import annotations

from typing import Any, Optional

from ..errors import ConfigurationError
from .events import (
    ANY_TAG,
    BarrierOp,
    ComputeOp,
    IrecvOp,
    IsendOp,
    RecvOp,
    Request,
    SendOp,
    SendRecvOp,
    WaitOp,
)
from .faults import check_received
from .model import MachineModel
from .protocol import BaseRankContext, payload_nbytes
from .stats import RankStats

__all__ = ["RankContext", "payload_nbytes"]


class RankContext(BaseRankContext):
    """The view a single simulated rank has of the machine."""

    backend_name = "simulator"

    def __init__(self, simulator, proc):
        self._simulator = simulator
        self._proc = proc

    # ---- identity ----------------------------------------------------------
    @property
    def rank(self) -> int:
        return self._proc.rank

    @property
    def size(self) -> int:
        return self._simulator.num_ranks

    @property
    def model(self) -> MachineModel:
        return self._simulator.model

    @property
    def stats(self) -> RankStats:
        return self._proc.stats

    # ---- fault injection ----------------------------------------------------
    def install_fault_injector(self, injector) -> None:
        """Install the injector, wiring the simulator's schedule policy
        into its probabilistic firing points when the policy explores
        fault freedom (see :attr:`RankFaultInjector.decider`)."""
        super().install_fault_injector(injector)
        policy = getattr(self._simulator, "policy", None)
        if injector is not None and policy is not None and policy.explores_faults:
            injector.decider = policy.fault_decision

    # ---- staging ------------------------------------------------------------
    def _set_stage(self, stage: int) -> None:
        self._proc.current_stage = int(stage)

    @property
    def current_stage(self) -> int:
        return self._proc.current_stage

    # ---- fault plumbing ------------------------------------------------------
    async def _apply_send_faults(self, verb: str, dst: int, tag: int, payload, size: int):
        """Evaluate injected faults for one outgoing message.

        Returns ``(drop, payload)``: delays are charged as modelled
        compute time (a stalled sender), corruption swaps the payload
        for a :class:`~repro.cluster.faults.CorruptFrame`, and a drop
        tells the caller to skip posting the op entirely.
        """
        faults = self._message_faults(verb, dst, tag)
        if faults is None:
            return False, payload
        if faults.delay > 0.0:
            await ComputeOp(faults.delay, kind="fault_delay")
        if faults.drop:
            return True, payload
        if faults.corrupt:
            payload = self._fault_injector.wrap_for_sim(payload, size)
        return False, payload

    def _checked(self, payload, src: int, tag: int):
        return check_received(
            payload, rank=self.rank, src=src, tag=tag, backend=self.backend_name
        )

    # ---- computation ---------------------------------------------------------
    async def compute(self, seconds: float, *, kind: str = "compute", count: int = 0) -> None:
        """Advance this rank's clock by ``seconds`` of local computation."""
        await ComputeOp(seconds, kind=kind, count=count)

    def _op_seconds(self, kind: str, count: int) -> float:
        """Machine-model pricing of ``count`` operations of ``kind``."""
        model = self.model
        pricer = {
            "over": model.over_time,
            "encode": model.encode_time,
            "bound": model.bound_time,
            "pack": model.pack_time,
        }[kind]
        return pricer(count)

    # ---- point to point --------------------------------------------------------
    async def send(self, dst: int, payload: Any, *, nbytes: Optional[int] = None, tag: int = 0):
        """Blocking send (rendezvous semantics, like ``MPI_Ssend``)."""
        self._check_peer(dst)
        size = payload_nbytes(payload) if nbytes is None else int(nbytes)
        dropped, payload = await self._apply_send_faults("send", dst, tag, payload, size)
        if dropped:
            return
        await SendOp(dst, payload, size, tag=tag)

    async def recv(self, src: int, *, tag: int = ANY_TAG) -> Any:
        """Blocking receive from ``src``; returns the payload."""
        self._check_peer(src)
        return self._checked(await RecvOp(src, tag=tag), src, tag)

    async def sendrecv(
        self, peer: int, payload: Any, *, nbytes: Optional[int] = None, tag: int = 0
    ) -> Any:
        """Full-duplex pairwise exchange; returns the peer's payload.

        This is the binary-swap primitive: deadlock-free by construction,
        each side pays ``Ts + incoming_bytes·Tc``.
        """
        self._check_peer(peer)
        if peer == self.rank:
            raise ConfigurationError(f"rank {self.rank} cannot sendrecv with itself")
        size = payload_nbytes(payload) if nbytes is None else int(nbytes)
        dropped, payload = await self._apply_send_faults(
            "sendrecv", peer, tag, payload, size
        )
        if dropped:
            # The faulty rank skips the whole exchange (its NIC died
            # mid-call): it gets nothing back and the partner blocks
            # until deadlock detection or its own receive timeout.
            return None
        return self._checked(await SendRecvOp(peer, payload, size, tag=tag), peer, tag)

    # ---- nonblocking ---------------------------------------------------------------
    async def isend(
        self, dst: int, payload: Any, *, nbytes: Optional[int] = None, tag: int = 0
    ):
        """Nonblocking send; returns a :class:`~repro.cluster.events.Request`.

        The transfer runs in the background (serialized on the receiver's
        link); complete it with :meth:`wait`/:meth:`wait_all`.
        """
        self._check_peer(dst)
        size = payload_nbytes(payload) if nbytes is None else int(nbytes)
        dropped, payload = await self._apply_send_faults("isend", dst, tag, payload, size)
        if dropped:
            # Hand back an already-completed request; the message itself
            # vanished, so the receiver's irecv never matches.
            request = Request(
                kind="isend", rank=self.rank, peer=dst, tag=tag,
                nbytes=size, post_time=self._proc.clock,
            )
            request.matched = True
            request.arrival = self._proc.clock
            return request
        return await IsendOp(dst, payload, size, tag=tag)

    async def irecv(self, src: int, *, tag: int = ANY_TAG):
        """Nonblocking receive; returns a Request whose payload is
        available after :meth:`wait`."""
        self._check_peer(src)
        return await IrecvOp(src, tag=tag)

    async def wait(self, request) -> Any:
        """Block until ``request`` completes; returns its payload (irecv)
        or ``None`` (isend)."""
        results = await WaitOp([request])
        return self._checked(results[0], request.peer, request.tag)

    async def wait_all(self, requests) -> list:
        """Block until every request completes; returns payloads in order."""
        requests = list(requests)
        results = await WaitOp(requests)
        return [
            self._checked(payload, request.peer, request.tag)
            for payload, request in zip(results, requests)
        ]

    # ---- collective ----------------------------------------------------------------
    async def barrier(self) -> None:
        """Block until every rank reaches the barrier."""
        await BarrierOp()

    # ---- misc ----------------------------------------------------------------------
    def now(self) -> float:
        """This rank's virtual clock (modelled seconds since run start)."""
        return self._proc.clock

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RankContext(rank={self.rank}, size={self.size}, model={self.model.name})"
