"""Rendering substrate: camera, ray caster, subimages, sequential oracle."""

from .camera import Camera, rotation_matrix
from .image import SubImage
from .raycast import render_full, render_subvolume
from .reference import composite_sequential, luminance
from .splat import dominant_axis, splat_full, splat_subvolume

__all__ = [
    "Camera",
    "SubImage",
    "composite_sequential",
    "dominant_axis",
    "luminance",
    "render_full",
    "render_subvolume",
    "rotation_matrix",
    "splat_full",
    "splat_subvolume",
]
