"""Core contribution: sparse binary-swap image compositing methods.

Compositing factors into two orthogonal planes (see ``DESIGN.md`` §5e):

* a **schedule** (:mod:`~repro.compositing.schedule`) decides who
  exchanges which image part at each stage — binary-swap, sectioned,
  direct-send and the generalized radix-k;
* a **codec** (:mod:`~repro.compositing.codec`) decides how a part
  crosses the wire and what modelled time it charges — raw, bounding
  rect, run-length, rect + RLE.

:class:`~repro.compositing.engine.ScheduledCompositor` runs any
compatible pair; the paper's four methods (BS, BSBR, BSLC, BSBRC) are
registry aliases over these planes, priced identically to the original
hand-written classes (:mod:`.bs`, :mod:`.bsbr`, :mod:`.bslc`,
:mod:`.bsbrc`, kept as parity baselines).  Also here: related-work
baselines, the *over* operator, the mask RLE codec, bounding-rectangle
machinery and the byte-level wire formats.
"""

from .base import CompositeOutcome, Compositor, composite_rect_pixels, split_axis_for
from .baselines import (
    BinaryTreeCompression,
    DirectSend,
    DirectSendAsync,
    ParallelPipeline,
    strip_rect,
)
from .bs import BinarySwap
from .folding import FoldedCompositor
from .bsbr import BinarySwapBoundingRect
from .bsbrc import BinarySwapBoundingRectCompression
from .bslc import BinarySwapLoadBalancedCompression, final_owned_indices
from .bslc_value import BinarySwapValueCompression
from .codec import (
    BoundingRectCodec,
    PixelCodec,
    RawCodec,
    RectRLECodec,
    RunLengthCodec,
)
from .engine import ScheduledCompositor
from .value_rle import (
    VALUE_RUN_BYTES,
    pack_value_runs,
    unpack_value_runs,
    value_rle_decode,
    value_rle_encode,
)
from .interleave import DEFAULT_SECTION, initial_indices, split_interleaved
from .over import is_blank, nonblank_mask, over, over_inplace, over_scalar
from .rect import clip_rect, find_bounding_rect, split_rect_by_centerline
from .registry import (
    CODECS,
    COMBO_ALIASES,
    PAPER_METHODS,
    SCHEDULES,
    available_methods,
    make_compositor,
    make_scheduled,
    method_catalog,
    register,
    validate_method,
)
from .schedule import (
    BinarySwapSchedule,
    DirectSendSchedule,
    IndexPart,
    RadixKSchedule,
    RectPart,
    Schedule,
    SectionedSchedule,
    parse_radix,
)
from .rle import MAX_RUN, count_nonblank, rle_decode_mask, rle_encode_mask
from .wire import (
    WireMessage,
    pack_bs,
    pack_bsbr,
    pack_bsbrc,
    pack_bslc,
    pack_pixels_rect,
    pack_raw_seq,
    pack_rle_rect,
    unpack_bs,
    unpack_bsbr,
    unpack_bsbrc,
    unpack_bslc,
    unpack_pixels_rect,
    unpack_raw_seq,
    unpack_rle_rect,
)

__all__ = [
    "BinarySwap",
    "BinarySwapBoundingRect",
    "BinarySwapBoundingRectCompression",
    "BinarySwapLoadBalancedCompression",
    "BinarySwapSchedule",
    "BinarySwapValueCompression",
    "BinaryTreeCompression",
    "BoundingRectCodec",
    "CODECS",
    "COMBO_ALIASES",
    "CompositeOutcome",
    "Compositor",
    "DEFAULT_SECTION",
    "DirectSend",
    "DirectSendAsync",
    "DirectSendSchedule",
    "FoldedCompositor",
    "IndexPart",
    "MAX_RUN",
    "PAPER_METHODS",
    "ParallelPipeline",
    "PixelCodec",
    "RadixKSchedule",
    "RawCodec",
    "RectPart",
    "RectRLECodec",
    "RunLengthCodec",
    "SCHEDULES",
    "Schedule",
    "ScheduledCompositor",
    "SectionedSchedule",
    "VALUE_RUN_BYTES",
    "WireMessage",
    "available_methods",
    "clip_rect",
    "composite_rect_pixels",
    "count_nonblank",
    "final_owned_indices",
    "find_bounding_rect",
    "initial_indices",
    "is_blank",
    "make_compositor",
    "make_scheduled",
    "method_catalog",
    "nonblank_mask",
    "over",
    "over_inplace",
    "over_scalar",
    "pack_bs",
    "pack_bsbr",
    "pack_bsbrc",
    "pack_bslc",
    "pack_pixels_rect",
    "pack_raw_seq",
    "pack_rle_rect",
    "pack_value_runs",
    "parse_radix",
    "register",
    "rle_decode_mask",
    "rle_encode_mask",
    "split_axis_for",
    "split_interleaved",
    "split_rect_by_centerline",
    "strip_rect",
    "unpack_bs",
    "unpack_bsbr",
    "unpack_bsbrc",
    "unpack_bslc",
    "unpack_pixels_rect",
    "unpack_raw_seq",
    "unpack_rle_rect",
    "unpack_value_runs",
    "validate_method",
    "value_rle_decode",
    "value_rle_encode",
]
