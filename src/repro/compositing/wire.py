"""Byte-level message formats of the four compositing methods.

Messages are real serialized buffers — pixels, rectangle info and RLE
codes are packed with explicit little-endian layouts and parsed back on
the receiving rank — so that the byte counts driving the communication
model are *measured*, not assumed.

Each ``pack_*`` helper returns a :class:`WireMessage` carrying both the
actual buffer and the ``accounted_bytes`` used for pricing/M_max.  The
two differ only by self-describing length fields (``uint32`` code/pixel
counts) that a real MPI implementation gets for free from the message
envelope (``MPI_Get_count``); the paper's cost equations likewise do not
charge for them.  All *semantic* content — 16 B/pixel, 8 B rect info,
2 B/RLE code — is charged exactly as in eqs. (2), (4), (6), (8).

Layouts (little-endian)
-----------------------
* **BS**      ``float64 pixels[h*w][2]`` — the half region, row-major.
* **BSBR**    ``int16 rect[4]`` then (if non-empty) pixels of the rect.
* **BSLC**    ``uint32 ncodes``, ``uint16 codes[ncodes]``,
  ``float64 pixels[nonblank][2]`` in owned-sequence order.
* **BSBRC**   ``int16 rect[4]`` then (if non-empty) ``uint32 ncodes``,
  codes, and non-blank pixels of the rect in row-major order.

Unpack helpers hand back **read-only views** into the message buffer
wherever the caller only reads the pixels (the flat BSLC/BSBRC paths);
the rect-shaped paths reshape, which materializes a writable plane.
Pack helpers avoid dtype round-trip copies (``astype(..., copy=False)``)
— on a little-endian host every wire dtype is the native layout.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import perf
from ..errors import WireFormatError
from ..types import PIXEL_BYTES, RECT_INFO_BYTES, RLE_CODE_BYTES, Rect
from .over import nonblank_mask
from .rle import count_nonblank, rle_decode_mask, rle_encode_mask

__all__ = [
    "WireMessage",
    "pack_pixels_rect",
    "unpack_pixels_rect",
    "pack_bs",
    "unpack_bs",
    "pack_bsbr",
    "unpack_bsbr",
    "pack_bslc",
    "unpack_bslc",
    "pack_bsbrc",
    "unpack_bsbrc",
    "pack_raw_seq",
    "unpack_raw_seq",
    "pack_rle_rect",
    "unpack_rle_rect",
]

_PIXEL_DTYPE = np.dtype("<f8")
_CODE_DTYPE = np.dtype("<u2")
_RECT_DTYPE = np.dtype("<i2")
_LEN_DTYPE = np.dtype("<u4")


@dataclass(frozen=True, slots=True)
class WireMessage:
    """A serialized compositing message.

    ``buffer`` is what crosses the (simulated) wire; ``accounted_bytes``
    is the size charged to the communication model and to ``M_max`` —
    the paper's accounting, excluding self-describing length fields.
    """

    buffer: bytes
    accounted_bytes: int

    @property
    def nbytes(self) -> int:
        return len(self.buffer)


# --------------------------------------------------------------------------
# shared pixel block helpers
# --------------------------------------------------------------------------
def _pixels_to_bytes(intensity: np.ndarray, opacity: np.ndarray) -> bytes:
    """Interleave (intensity, opacity) float64 pairs, 16 bytes per pixel."""
    stacked = np.empty((intensity.size, 2), dtype=_PIXEL_DTYPE)
    # asarray is a no-copy passthrough for the float64 planes the
    # renderer produces; the strided column assignments are the single
    # interleaving pass.
    stacked[:, 0] = np.asarray(intensity, dtype=np.float64).ravel()
    stacked[:, 1] = np.asarray(opacity, dtype=np.float64).ravel()
    perf.incr("wire.packed_pixel_bytes", stacked.nbytes)
    return stacked.tobytes()

def _pixels_from_bytes(buf: bytes, npixels: int) -> tuple[np.ndarray, np.ndarray]:
    """Zero-copy views of the (intensity, opacity) columns of ``buf``.

    The returned arrays are **read-only strided views** into the message
    buffer (``np.frombuffer``); every compositing method only reads the
    received pixels, so no defensive copy is made.  Callers that need a
    writable/contiguous plane reshape (which copies) or copy explicitly.
    """
    expected = npixels * PIXEL_BYTES
    if len(buf) != expected:
        raise WireFormatError(f"pixel block is {len(buf)} bytes, expected {expected}")
    perf.incr("wire.unpacked_pixel_bytes", expected)
    flat = np.frombuffer(buf, dtype=_PIXEL_DTYPE).reshape(npixels, 2)
    return flat[:, 0], flat[:, 1]


def pack_pixels_rect(intensity: np.ndarray, opacity: np.ndarray, rect: Rect) -> bytes:
    """Row-major pixel block of ``rect`` from full-image planes."""
    rows, cols = rect.slices()
    return _pixels_to_bytes(intensity[rows, cols], opacity[rows, cols])


def unpack_pixels_rect(buf: bytes, rect: Rect) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`pack_pixels_rect`; returns ``(h, w)`` planes."""
    flat_i, flat_a = _pixels_from_bytes(buf, rect.area)
    return flat_i.reshape(rect.height, rect.width), flat_a.reshape(rect.height, rect.width)


# --------------------------------------------------------------------------
# BS — plain binary swap
# --------------------------------------------------------------------------
def pack_bs(intensity: np.ndarray, opacity: np.ndarray, half: Rect) -> WireMessage:
    """Whole half-region, blanks included (paper eq. (2): ``16 · A/2^k``)."""
    buf = pack_pixels_rect(intensity, opacity, half)
    return WireMessage(buffer=buf, accounted_bytes=half.area * PIXEL_BYTES)


def unpack_bs(msg: bytes, half: Rect) -> tuple[np.ndarray, np.ndarray]:
    return unpack_pixels_rect(msg, half)


# --------------------------------------------------------------------------
# BSBR — bounding rectangle
# --------------------------------------------------------------------------
def pack_bsbr(intensity: np.ndarray, opacity: np.ndarray, send_rect: Rect) -> WireMessage:
    """Rect info always ships (8 B); pixels only when non-empty (eq. (4))."""
    send_rect = send_rect.normalized()
    header = send_rect.as_int16_array().astype(_RECT_DTYPE, copy=False).tobytes()
    if send_rect.is_empty:
        return WireMessage(buffer=header, accounted_bytes=RECT_INFO_BYTES)
    body = pack_pixels_rect(intensity, opacity, send_rect)
    return WireMessage(
        buffer=header + body,
        accounted_bytes=RECT_INFO_BYTES + send_rect.area * PIXEL_BYTES,
    )


def unpack_bsbr(msg: bytes) -> tuple[Rect, np.ndarray | None, np.ndarray | None]:
    """Returns ``(rect, intensity, opacity)``; planes are ``None`` if empty."""
    if len(msg) < RECT_INFO_BYTES:
        raise WireFormatError(f"BSBR message too short: {len(msg)} bytes")
    rect = Rect.from_int16_array(np.frombuffer(msg[:RECT_INFO_BYTES], dtype=_RECT_DTYPE))
    if rect.is_empty:
        if len(msg) != RECT_INFO_BYTES:
            raise WireFormatError("empty-rect BSBR message has trailing bytes")
        return rect, None, None
    i_plane, a_plane = unpack_pixels_rect(msg[RECT_INFO_BYTES:], rect)
    return rect, i_plane, a_plane


# --------------------------------------------------------------------------
# BSLC — run-length codes over an interleaved owned sequence
# --------------------------------------------------------------------------
def pack_bslc(
    intensity_flat: np.ndarray, opacity_flat: np.ndarray, indices: np.ndarray
) -> WireMessage:
    """Encode the pixels at ``indices`` (the sent interleaved subset).

    ``intensity_flat``/``opacity_flat`` are flattened full-image planes.
    The mask is taken in sequence order of ``indices`` so the receiver
    (which owns the identical index set) can decode positionally.
    """
    vals_i = np.asarray(intensity_flat, dtype=np.float64)[indices]
    vals_a = np.asarray(opacity_flat, dtype=np.float64)[indices]
    mask = nonblank_mask(vals_i, vals_a)
    codes = rle_encode_mask(mask)
    pixels = _pixels_to_bytes(vals_i[mask], vals_a[mask])
    header = np.asarray([codes.size], dtype=_LEN_DTYPE).tobytes()
    buf = header + codes.astype(_CODE_DTYPE, copy=False).tobytes() + pixels
    accounted = codes.size * RLE_CODE_BYTES + int(mask.sum()) * PIXEL_BYTES
    return WireMessage(buffer=buf, accounted_bytes=accounted)


def unpack_bslc(msg: bytes, seq_len: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Decode to ``(positions, intensity, opacity)``.

    ``positions`` are offsets into the receiver's owned sequence (length
    ``seq_len``) of the non-blank pixels carried by the message.
    """
    if len(msg) < _LEN_DTYPE.itemsize:
        raise WireFormatError(f"BSLC message too short: {len(msg)} bytes")
    ncodes = int(np.frombuffer(msg[: _LEN_DTYPE.itemsize], dtype=_LEN_DTYPE)[0])
    off = _LEN_DTYPE.itemsize
    code_bytes = ncodes * RLE_CODE_BYTES
    if len(msg) < off + code_bytes:
        raise WireFormatError("BSLC message truncated in code block")
    codes = np.frombuffer(msg[off : off + code_bytes], dtype=_CODE_DTYPE)
    off += code_bytes
    mask = rle_decode_mask(codes, seq_len)
    npix = count_nonblank(codes)
    flat_i, flat_a = _pixels_from_bytes(msg[off:], npix)
    return np.flatnonzero(mask), flat_i, flat_a


# --------------------------------------------------------------------------
# schedule × codec extensions: raw sequences, RLE over a known rect
# --------------------------------------------------------------------------
def pack_raw_seq(
    intensity_flat: np.ndarray, opacity_flat: np.ndarray, indices: np.ndarray
) -> WireMessage:
    """Raw pixels of an owned-sequence subset, 16 B each, blanks included.

    Positions are implicit: the receiver owns the identical index set
    (the sectioned-schedule invariant) and decodes positionally — the
    sequence analogue of :func:`pack_bs`.
    """
    vals_i = np.asarray(intensity_flat, dtype=np.float64)[indices]
    vals_a = np.asarray(opacity_flat, dtype=np.float64)[indices]
    buf = _pixels_to_bytes(vals_i, vals_a)
    return WireMessage(buffer=buf, accounted_bytes=int(indices.shape[0]) * PIXEL_BYTES)


def unpack_raw_seq(msg: bytes, seq_len: int) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`pack_raw_seq` for a ``seq_len``-pixel sequence."""
    return _pixels_from_bytes(msg, seq_len)


def pack_rle_rect(intensity: np.ndarray, opacity: np.ndarray, rect: Rect) -> WireMessage:
    """RLE codes + non-blank pixels of ``rect``, without rect info.

    The BSLC wire layout applied to a rect's row-major pixels: the
    receiver already knows the exchanged region (it is the kept part of
    a fixed-region schedule), so unlike :func:`pack_bsbrc` no 8-byte
    rect header ships.
    """
    rows, cols = rect.slices()
    block_i = np.asarray(intensity[rows, cols], dtype=np.float64)
    block_a = np.asarray(opacity[rows, cols], dtype=np.float64)
    mask2d = nonblank_mask(block_i, block_a)
    codes = rle_encode_mask(mask2d.ravel())
    pixels = _pixels_to_bytes(block_i[mask2d], block_a[mask2d])
    header = np.asarray([codes.size], dtype=_LEN_DTYPE).tobytes()
    buf = header + codes.astype(_CODE_DTYPE, copy=False).tobytes() + pixels
    accounted = codes.size * RLE_CODE_BYTES + int(mask2d.sum()) * PIXEL_BYTES
    return WireMessage(buffer=buf, accounted_bytes=accounted)


def unpack_rle_rect(msg: bytes, rect: Rect) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Decode to ``(positions, intensity, opacity)``.

    ``positions`` are row-major offsets inside ``rect`` of the non-blank
    pixels carried by the message.
    """
    return unpack_bslc(msg, rect.area)


# --------------------------------------------------------------------------
# BSBRC — bounding rectangle + RLE inside it
# --------------------------------------------------------------------------
def pack_bsbrc(intensity: np.ndarray, opacity: np.ndarray, send_rect: Rect) -> WireMessage:
    """Rect info (8 B) + codes + non-blank pixels of the rect (eq. (8))."""
    send_rect = send_rect.normalized()
    header = send_rect.as_int16_array().astype(_RECT_DTYPE, copy=False).tobytes()
    if send_rect.is_empty:
        return WireMessage(buffer=header, accounted_bytes=RECT_INFO_BYTES)
    rows, cols = send_rect.slices()
    block_i = np.asarray(intensity[rows, cols], dtype=np.float64)
    block_a = np.asarray(opacity[rows, cols], dtype=np.float64)
    mask2d = nonblank_mask(block_i, block_a)
    codes = rle_encode_mask(mask2d.ravel())
    # 2-D boolean gather yields the non-blank pixels in row-major order
    # directly from the sliced views — no flattened intermediate copy.
    pixels = _pixels_to_bytes(block_i[mask2d], block_a[mask2d])
    len_field = np.asarray([codes.size], dtype=_LEN_DTYPE).tobytes()
    buf = header + len_field + codes.astype(_CODE_DTYPE, copy=False).tobytes() + pixels
    accounted = (
        RECT_INFO_BYTES + codes.size * RLE_CODE_BYTES + int(mask2d.sum()) * PIXEL_BYTES
    )
    return WireMessage(buffer=buf, accounted_bytes=accounted)


def unpack_bsbrc(msg: bytes) -> tuple[Rect, np.ndarray | None, np.ndarray | None, np.ndarray | None]:
    """Decode to ``(rect, positions, intensity, opacity)``.

    ``positions`` are row-major offsets inside ``rect`` of the non-blank
    pixels; all three are ``None`` for an empty rect.
    """
    if len(msg) < RECT_INFO_BYTES:
        raise WireFormatError(f"BSBRC message too short: {len(msg)} bytes")
    rect = Rect.from_int16_array(np.frombuffer(msg[:RECT_INFO_BYTES], dtype=_RECT_DTYPE))
    if rect.is_empty:
        if len(msg) != RECT_INFO_BYTES:
            raise WireFormatError("empty-rect BSBRC message has trailing bytes")
        return rect, None, None, None
    off = RECT_INFO_BYTES
    if len(msg) < off + _LEN_DTYPE.itemsize:
        raise WireFormatError("BSBRC message truncated before code count")
    ncodes = int(np.frombuffer(msg[off : off + _LEN_DTYPE.itemsize], dtype=_LEN_DTYPE)[0])
    off += _LEN_DTYPE.itemsize
    code_bytes = ncodes * RLE_CODE_BYTES
    if len(msg) < off + code_bytes:
        raise WireFormatError("BSBRC message truncated in code block")
    codes = np.frombuffer(msg[off : off + code_bytes], dtype=_CODE_DTYPE)
    off += code_bytes
    mask = rle_decode_mask(codes, rect.area)
    npix = count_nonblank(codes)
    flat_i, flat_a = _pixels_from_bytes(msg[off:], npix)
    return rect, np.flatnonzero(mask), flat_i, flat_a
