"""Tests for the per-stage breakdown experiment."""

import pytest

from repro.experiments.harness import clear_workload_cache
from repro.experiments.stages import format_stage_breakdown, run_stage_breakdown

QUICK = dict(image_size=48, volume_shape=(32, 32, 16), max_ranks=8)


@pytest.fixture(scope="module", autouse=True)
def fresh_cache():
    clear_workload_cache()
    yield
    clear_workload_cache()


class TestBreakdown:
    def test_stage_count(self):
        breakdown = run_stage_breakdown(method="bsbrc", num_ranks=8, **QUICK)
        assert [b.stage for b in breakdown] == [0, 1, 2]

    def test_bs_bytes_halve_per_stage(self):
        """Eq. (2) read off the simulation: BS stage bytes are exactly
        16 * A/2^(k+1) for every rank (mean == max)."""
        breakdown = run_stage_breakdown(method="bs", num_ranks=8, **QUICK)
        num_pixels = 48 * 48
        for b in breakdown:
            expected = 16 * (num_pixels // (2 ** (b.stage + 1)))
            assert b.max_bytes_recv == expected
            assert b.mean_bytes_recv == pytest.approx(expected)

    def test_bsbrc_over_matches_a_opaque(self):
        breakdown = run_stage_breakdown(method="bsbrc", num_ranks=8, **QUICK)
        for b in breakdown:
            assert b.mean_over_pixels == pytest.approx(b.mean_a_opaque)

    def test_bslc_encode_halves(self):
        """Eq. (5): the encode scan shrinks by ~2x each stage."""
        breakdown = run_stage_breakdown(method="bslc", num_ranks=8, **QUICK)
        encodes = [b.mean_encode_pixels for b in breakdown]
        for earlier, later in zip(encodes, encodes[1:]):
            assert later == pytest.approx(earlier / 2, rel=0.25)

    def test_sparse_methods_below_bs_bytes(self):
        bs = run_stage_breakdown(method="bs", num_ranks=8, **QUICK)
        bsbrc = run_stage_breakdown(method="bsbrc", num_ranks=8, **QUICK)
        for a, b in zip(bs, bsbrc):
            assert b.mean_bytes_recv <= a.mean_bytes_recv

    def test_format(self):
        breakdown = run_stage_breakdown(method="bsbr", num_ranks=8, **QUICK)
        text = format_stage_breakdown(breakdown, title="T")
        assert text.startswith("T\n")
        assert "a_rec" in text and "empty rects" in text
        assert text.count("\n") >= 4
