"""Tests for the experiment harness (render cache, grids, persistence)."""

import numpy as np
import pytest

from repro.analysis.metrics import MethodMeasurement
from repro.cluster.model import SP2
from repro.errors import ConfigurationError
from repro.experiments.harness import (
    RenderedWorkload,
    clear_workload_cache,
    load_rows,
    rows_from_json,
    rows_to_json,
    run_grid,
    run_method,
    save_rows,
    workload,
)
from repro.render.raycast import render_subvolume
from repro.volume.datasets import make_dataset

SMALL = dict(volume_shape=(32, 32, 16), rotation=(20.0, 30.0, 0.0))


@pytest.fixture(scope="module")
def small_workload():
    return RenderedWorkload(
        dataset="engine_low", image_size=48, max_ranks=16, **SMALL
    )


class TestRenderedWorkload:
    def test_blocks_cropped(self, small_workload):
        for rect, block_i, block_a in small_workload.blocks:
            if rect.is_empty:
                continue
            assert block_i.shape == (rect.height, rect.width)
            assert block_a.shape == block_i.shape

    @pytest.mark.parametrize("num_ranks", [2, 4, 8, 16])
    def test_assembly_equals_direct_render(self, small_workload, num_ranks):
        """The cached-blocks fast path must reproduce direct rendering."""
        volume, transfer = make_dataset("engine_low", SMALL["volume_shape"])
        plan = small_workload.plan_for(num_ranks)
        assembled = small_workload.subimages_for(num_ranks)
        for rank in range(num_ranks):
            direct = render_subvolume(
                volume, transfer, small_workload.camera, plan.extent(rank)
            )
            assert assembled[rank].max_abs_diff(direct) < 1e-12

    def test_rejects_larger_p(self, small_workload):
        with pytest.raises(ConfigurationError):
            small_workload.subimages_for(32)

    def test_rejects_non_power_of_two(self, small_workload):
        with pytest.raises(ConfigurationError):
            small_workload.subimages_for(3)

    def test_rejects_bad_max_ranks(self):
        with pytest.raises(ConfigurationError):
            RenderedWorkload(dataset="sphere", image_size=32, max_ranks=6)

    def test_plan_cache_stable(self, small_workload):
        assert small_workload.plan_for(4) is small_workload.plan_for(4)


class TestWorkloadCache:
    def test_cache_returns_same_object(self):
        clear_workload_cache()
        a = workload("sphere", 32, max_ranks=4, volume_shape=(16, 16, 16))
        b = workload("sphere", 32, max_ranks=4, volume_shape=(16, 16, 16))
        assert a is b

    def test_cache_distinguishes_rotation(self):
        clear_workload_cache()
        a = workload("sphere", 32, max_ranks=4, volume_shape=(16, 16, 16))
        b = workload(
            "sphere", 32, max_ranks=4, volume_shape=(16, 16, 16),
            rotation=(10.0, 0.0, 0.0),
        )
        assert a is not b

    def test_clear(self):
        a = workload("sphere", 32, max_ranks=4, volume_shape=(16, 16, 16))
        clear_workload_cache()
        b = workload("sphere", 32, max_ranks=4, volume_shape=(16, 16, 16))
        assert a is not b


class TestRunMethodAndGrid:
    def test_run_method_row(self, small_workload):
        row, run = run_method(small_workload, "bsbrc", 8, machine=SP2)
        assert row.method == "bsbrc"
        assert row.dataset == "engine_low"
        assert row.num_ranks == 8
        assert row.t_total > 0
        assert row.mmax_bytes == run.stats.mmax_bytes

    def test_grid_complete(self):
        rows = run_grid(
            ["engine_low", "cube"],
            48,
            [2, 4],
            ["bs", "bsbrc"],
            volume_shape=SMALL["volume_shape"],
            max_ranks=4,
        )
        assert len(rows) == 2 * 2 * 2
        keys = {(r.dataset, r.num_ranks, r.method) for r in rows}
        assert ("cube", 4, "bsbrc") in keys

    def test_grid_deterministic(self):
        kwargs = dict(volume_shape=SMALL["volume_shape"], max_ranks=4)
        rows_a = run_grid(["engine_low"], 48, [4], ["bsbrc"], **kwargs)
        rows_b = run_grid(["engine_low"], 48, [4], ["bsbrc"], **kwargs)
        assert rows_a == rows_b


class TestPersistence:
    def test_json_roundtrip(self):
        rows = [
            MethodMeasurement(
                method="bs", dataset="cube", image_size=384, num_ranks=8,
                t_comp=0.1, t_comm=0.02, mmax_bytes=1000, makespan=0.12,
                bytes_total=5000, pixels_composited=10, pixels_encoded=0,
            )
        ]
        assert rows_from_json(rows_to_json(rows)) == rows

    def test_file_roundtrip(self, tmp_path):
        rows = [
            MethodMeasurement(
                method="bslc", dataset="head", image_size=768, num_ranks=2,
                t_comp=0.3, t_comm=0.01, mmax_bytes=77, makespan=0.31,
                bytes_total=100, pixels_composited=5, pixels_encoded=9,
            )
        ]
        path = tmp_path / "rows.json"
        save_rows(rows, path)
        assert load_rows(path) == rows
