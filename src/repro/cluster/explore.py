"""Systematic interleaving exploration over the simulated cluster.

The discrete-event simulator is deterministic, which makes every test a
test of *one* interleaving.  Real clusters do not schedule that kindly:
same-time events race, ANY_TAG receives match whichever message the
fabric delivered first, and probabilistic faults fire or don't.  This
module searches that residual freedom.  An :class:`Explorer` runs N
interleavings of one *scenario* (a compositing method × a fault plan ×
a rank count), each driven by a
:class:`~repro.cluster.schedule_policy.SchedulePolicy`, and classifies
every run against a deterministic baseline:

* a completed non-degraded run must be **bit-identical** — pixels and
  the integer protocol counters (bytes/messages per stage) must equal
  the fault-free reference exactly (virtual-time floats may differ: a
  reordered link serialisation shifts timings but never payloads);
* a run absorbed by the recovery subsystem must land in a **declared
  outcome** (:data:`~repro.cluster.recovery.DECLARED_OUTCOMES`) with a
  self-consistent image — degraded pixels are validated against the
  survivor-composite reference;
* a typed abort (:class:`~repro.errors.RankFailedError` lineage) counts
  as the declared ``aborted`` outcome only when the plan contains
  destructive rules that can cause it;
* anything else — deadlock, livelock past the event budget, wrong
  pixels, counter drift, an unexpected exception — is a **failure**:
  the run's decision trace (schema ``repro.sched-trace/1``) is saved
  and :func:`Explorer.replay` reproduces the exact interleaving from it.

Drivers: ``random`` walks (one seeded
:class:`~repro.cluster.schedule_policy.RandomPolicy` per interleaving),
the ``adversarial`` rotation (every mode in
:data:`~repro.cluster.schedule_policy.ADVERSARIAL_MODES`), and ``dfs``
— bounded systematic enumeration that re-runs with progressively longer
forced decision prefixes
(:class:`~repro.cluster.schedule_policy.ForcedPrefixPolicy`), expanding
unexplored siblings depth-first and deduplicating revisited decision
states by digest.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from ..errors import (
    ConfigurationError,
    DeadlockError,
    LivelockError,
    RankFailedError,
    ReproError,
)
from .faults import FaultPlan, FaultRule
from .recovery import DECLARED_OUTCOMES
from .schedule_policy import (
    ADVERSARIAL_MODES,
    AdversarialPolicy,
    DeterministicPolicy,
    ForcedPrefixPolicy,
    RandomPolicy,
    ReplayPolicy,
    SchedulePolicy,
    load_trace,
    make_policy,
)

__all__ = [
    "EXPLORE_REPORT_SCHEMA",
    "DEFAULT_EVENT_BUDGET",
    "ExploreScenario",
    "InterleavingResult",
    "ExploreReport",
    "Explorer",
    "default_fault_plan",
]

#: Schema identifier of the exploration report document.
EXPLORE_REPORT_SCHEMA = "repro.explore-report/1"

#: Default per-interleaving simulator-step cap (livelock guard).  Small
#: scenarios take a few thousand steps; two orders of magnitude of
#: headroom keeps honest runs clear while catching genuine livelock
#: long before the simulator's own ``max_steps`` valve.
DEFAULT_EVENT_BUDGET = 500_000

#: Classification labels a single interleaving can land on.  The first
#: four are successes (bit-identical or a declared recovery outcome);
#: the rest are failures that save a replayable trace.
CLASSIFICATIONS = (
    "identical",
    "degraded",
    "resumed",
    "aborted",
    "wrong-pixels",
    "counter-mismatch",
    "deadlock",
    "livelock",
    "replay-divergence",
    "unexpected-error",
)

#: Fault kinds that can legitimately end a run in a typed abort.
_DESTRUCTIVE_KINDS = frozenset({"crash", "drop", "corrupt"})


def default_fault_plan(num_ranks: int = 8, *, seed: int = 7) -> FaultPlan:
    """The canonical crash+delay chaos plan for exploration sweeps.

    A coin-flip crash on the last rank at compositing stage 0 (the
    probabilistic rule is a genuine *fault* decision point for the
    policies — and stage 0 exists for every method, including the
    tile-routed engine which books all compositing there) plus a
    deterministic send delay on rank 1 — enough to drag the recovery
    subsystem into the explored state space.
    """
    victim = max(0, num_ranks - 1)
    return FaultPlan(
        rules=(
            FaultRule(kind="crash", rank=victim, stage=0, probability=0.5),
            FaultRule(kind="delay", rank=1 % num_ranks, seconds=5e-4),
        ),
        seed=seed,
    )


@dataclass(frozen=True)
class ExploreScenario:
    """What to explore: one method × fault plan × cluster size."""

    method: str = "binary-swap:raw"
    num_ranks: int = 8
    fault_plan: Optional[FaultPlan] = None
    dataset: str = "engine_low"
    image_size: int = 32
    volume_shape: tuple[int, int, int] = (32, 32, 16)
    recovery: str = "degrade"
    method_options: dict[str, Any] = field(default_factory=dict)

    def label(self) -> str:
        plan = "clean"
        if self.fault_plan is not None and self.fault_plan.rules:
            plan = "+".join(sorted({r.kind for r in self.fault_plan.rules}))
        return f"{self.method}@P{self.num_ranks}/{plan}"

    def to_meta(self) -> dict[str, Any]:
        """Self-contained scenario record embedded in every saved trace,
        so ``--replay-trace`` needs nothing but the trace file."""
        meta: dict[str, Any] = {
            "method": self.method,
            "num_ranks": self.num_ranks,
            "dataset": self.dataset,
            "image_size": self.image_size,
            "volume_shape": list(self.volume_shape),
            "recovery": self.recovery,
            "method_options": dict(self.method_options),
        }
        if self.fault_plan is not None:
            meta["fault_plan"] = self.fault_plan.to_dict()
        return meta

    @classmethod
    def from_meta(cls, meta: dict[str, Any]) -> "ExploreScenario":
        plan = meta.get("fault_plan")
        return cls(
            method=str(meta.get("method", "binary-swap:raw")),
            num_ranks=int(meta.get("num_ranks", 8)),
            fault_plan=FaultPlan.from_dict(plan) if plan else None,
            dataset=str(meta.get("dataset", "engine_low")),
            image_size=int(meta.get("image_size", 32)),
            volume_shape=tuple(meta.get("volume_shape", (32, 32, 16))),
            recovery=str(meta.get("recovery", "degrade")),
            method_options=dict(meta.get("method_options", {})),
        )

    def run_config(self):
        from ..pipeline.config import RunConfig

        return RunConfig(
            dataset=self.dataset,
            image_size=self.image_size,
            num_ranks=self.num_ranks,
            method=self.method,
            volume_shape=self.volume_shape,
            recovery=self.recovery,
            method_options=dict(self.method_options),
        )

    @property
    def destructive(self) -> bool:
        """Whether the plan can legitimately abort/degrade a run."""
        return self.fault_plan is not None and any(
            r.kind in _DESTRUCTIVE_KINDS for r in self.fault_plan.rules
        )


@dataclass
class InterleavingResult:
    """One explored interleaving, classified."""

    index: int
    policy: str
    classification: str
    decisions: int
    outcome: Optional[str] = None
    detail: str = ""
    trace_path: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.classification in ("identical",) + DECLARED_OUTCOMES

    def to_dict(self) -> dict[str, Any]:
        out = {
            "index": self.index,
            "policy": self.policy,
            "classification": self.classification,
            "decisions": self.decisions,
        }
        if self.outcome is not None:
            out["outcome"] = self.outcome
        if self.detail:
            out["detail"] = self.detail
        if self.trace_path is not None:
            out["trace"] = self.trace_path
        return out


@dataclass
class ExploreReport:
    """Aggregate of one exploration sweep (JSON: ``repro.explore-report/1``)."""

    scenario: ExploreScenario
    results: list[InterleavingResult] = field(default_factory=list)

    @property
    def failures(self) -> list[InterleavingResult]:
        return [r for r in self.results if not r.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for r in self.results:
            counts[r.classification] = counts.get(r.classification, 0) + 1
        return counts

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": EXPLORE_REPORT_SCHEMA,
            "scenario": self.scenario.to_meta(),
            "interleavings": len(self.results),
            "ok": self.ok,
            "counts": self.counts(),
            "results": [r.to_dict() for r in self.results],
        }

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2)
            fh.write("\n")


def _pixels(image) -> np.ndarray:
    """A subimage's planes as one array — the pixel-identity surface."""
    return np.stack([image.intensity, image.opacity]).copy()


def _int_counters(timeline) -> list[tuple]:
    """The integer protocol counters of a run — the bit-identity surface.

    Floats (comp/comm/wait seconds) are deliberately excluded: policy
    reorderings shift link-serialisation timings without changing a
    single payload byte, and the makespan difference is *expected*.
    """
    out = []
    for rs in timeline.rank_stats:
        for st in rs.sorted_stages():
            out.append(
                (
                    rs.rank,
                    st.stage,
                    st.bytes_sent,
                    st.bytes_recv,
                    st.msgs_sent,
                    st.msgs_recv,
                    tuple(sorted(st.counters.items())),
                )
            )
    return out


@dataclass
class _Baseline:
    """Deterministic oracle of one scenario."""

    pixels: np.ndarray
    counters: list[tuple]
    outcome: str
    decisions: int


class Explorer:
    """Run and classify many interleavings of one scenario.

    Parameters
    ----------
    scenario:
        What to explore.
    trace_dir:
        Directory for saved decision traces.  Failing interleavings
        always save a trace here (created on demand); pass
        ``keep_all=True`` to save every explored trace.
    event_budget:
        Per-interleaving simulator-step cap; exceeding it classifies
        the run as ``livelock``.
    keep_all:
        Save traces of passing interleavings too (soak archaeology).
    """

    def __init__(
        self,
        scenario: ExploreScenario,
        *,
        trace_dir: Optional[str] = None,
        event_budget: int = DEFAULT_EVENT_BUDGET,
        keep_all: bool = False,
    ):
        self.scenario = scenario
        self.trace_dir = trace_dir
        self.event_budget = int(event_budget)
        self.keep_all = bool(keep_all)
        self._baseline: Optional[_Baseline] = None
        self._reference_pixels: Optional[np.ndarray] = None

    # ---- plumbing ----------------------------------------------------------
    def _execute(self, policy: SchedulePolicy):
        """One full pipeline run of the scenario under ``policy``."""
        from ..pipeline.system import SortLastSystem

        policy.event_budget = self.event_budget
        system = SortLastSystem(self.scenario.run_config())
        return system.run(
            fault_plan=self.scenario.fault_plan,
            schedule_policy=policy,
        )

    def baseline(self) -> _Baseline:
        """The deterministic oracle run (memoized).

        Two runs pin it down: the scenario under the deterministic
        policy with its fault plan (fixing the declared outcome every
        explored run is compared against), and — when that run degraded
        or the plan is destructive — a fault-free clean run whose pixels
        are the bit-identity reference for non-degraded completions.
        """
        if self._baseline is not None:
            return self._baseline
        policy = DeterministicPolicy()
        result = self._execute(policy)
        outcome = result.timeline.meta["outcome"]
        if outcome == "clean":
            clean_pixels = _pixels(result.final_image)
        else:
            clean_pixels = self._clean_reference()
        self._baseline = _Baseline(
            pixels=clean_pixels,
            counters=_int_counters(result.timeline),
            outcome=outcome,
            decisions=len(policy.decisions),
        )
        return self._baseline

    def _clean_reference(self) -> np.ndarray:
        """Pixels of the scenario run with no faults at all."""
        if self._reference_pixels is None:
            from ..pipeline.system import SortLastSystem

            clean = SortLastSystem(self.scenario.run_config()).run()
            self._reference_pixels = _pixels(clean.final_image)
        return self._reference_pixels

    def _trace_file(self, policy: SchedulePolicy, index: int) -> Optional[str]:
        if self.trace_dir is None:
            return None
        slug = policy.name.replace(":", "-").replace("/", "-")
        return os.path.join(self.trace_dir, f"trace-{index:04d}-{slug}.json")

    def _save_trace(self, policy: SchedulePolicy, path: Optional[str]) -> Optional[str]:
        if path is None:
            return None
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        return policy.save_trace(
            path,
            meta={"scenario": self.scenario.to_meta(), "event_budget": self.event_budget},
        )

    # ---- classification ----------------------------------------------------
    def classify(self, policy: SchedulePolicy, index: int = 0) -> InterleavingResult:
        """Run one interleaving under ``policy`` and classify it.

        On failure the decision trace is saved (when a ``trace_dir`` is
        configured) and its path lands on the result *and* inside any
        :class:`~repro.errors.DeadlockError` raised mid-run — the
        trace path is pre-assigned before execution for exactly that.
        """
        base = self.baseline()
        trace_path = self._trace_file(policy, index)
        if trace_path is not None:
            # Pre-assign so an in-flight DeadlockError can name the
            # file its decisions will be saved to.
            policy.trace_path = trace_path

        classification, outcome, detail = self._run_classified(policy, base)
        failed = classification not in ("identical",) + DECLARED_OUTCOMES
        saved = None
        if failed or self.keep_all:
            saved = self._save_trace(policy, trace_path)
        elif trace_path is not None:
            policy.trace_path = None  # nothing written; drop the stale path
        return InterleavingResult(
            index=index,
            policy=policy.name,
            classification=classification,
            decisions=len(policy.decisions),
            outcome=outcome,
            detail=detail,
            trace_path=saved,
        )

    def _run_classified(
        self, policy: SchedulePolicy, base: _Baseline
    ) -> tuple[str, Optional[str], str]:
        destructive = self.scenario.destructive
        try:
            result = self._execute(policy)
        except DeadlockError as err:
            return "deadlock", None, str(err)
        except LivelockError as err:
            return "livelock", None, str(err)
        except ConfigurationError as err:
            if isinstance(policy, ReplayPolicy):
                return "replay-divergence", None, str(err)
            return "unexpected-error", None, f"{type(err).__name__}: {err}"
        except RankFailedError as err:
            if destructive:
                # The abort lattice floor: a declared outcome, the
                # run terminated with a typed error naming the rank.
                return "aborted", "aborted", f"{type(err).__name__}: {err}"
            return "unexpected-error", None, f"{type(err).__name__}: {err}"
        except ReproError as err:
            return "unexpected-error", None, f"{type(err).__name__}: {err}"

        outcome = result.timeline.meta["outcome"]
        if outcome not in DECLARED_OUTCOMES:  # pragma: no cover - safety net
            return "unexpected-error", outcome, f"undeclared outcome {outcome!r}"
        if outcome == "degraded":
            # Partial-but-valid: pixels must match the survivor
            # composite (allclose — the degraded reference composites
            # in float space).
            ref = result.reference_image()
            if not np.allclose(_pixels(result.final_image), _pixels(ref), atol=1e-5):
                return "wrong-pixels", outcome, "degraded image != survivor composite"
            return "degraded", outcome, ""
        # Clean or losslessly recovered: full bit-identity against the
        # fault-free reference.
        pixels = _pixels(result.final_image)
        if not np.array_equal(pixels, base.pixels):
            delta = float(np.max(np.abs(pixels - base.pixels)))
            return "wrong-pixels", outcome, f"max pixel delta {delta:g}"
        if outcome == "clean" and not (destructive and base.outcome != "clean"):
            counters = _int_counters(result.timeline)
            if counters != base.counters:
                return "counter-mismatch", outcome, _counter_diff(base.counters, counters)
        return ("identical" if outcome == "clean" else outcome), outcome, ""

    # ---- drivers -----------------------------------------------------------
    def run_random(self, interleavings: int, *, seed: int = 0) -> ExploreReport:
        """Seeded random walks: interleaving ``i`` uses seed ``seed+i``."""
        report = ExploreReport(scenario=self.scenario)
        for i in range(int(interleavings)):
            report.results.append(self.classify(RandomPolicy(seed + i), index=i))
        return report

    def run_adversarial(self, interleavings: Optional[int] = None) -> ExploreReport:
        """Rotate through the adversarial modes (default: one run each)."""
        count = len(ADVERSARIAL_MODES) if interleavings is None else int(interleavings)
        report = ExploreReport(scenario=self.scenario)
        for i in range(count):
            mode = ADVERSARIAL_MODES[i % len(ADVERSARIAL_MODES)]
            report.results.append(self.classify(AdversarialPolicy(mode), index=i))
        return report

    def run_dfs(self, interleavings: int) -> ExploreReport:
        """Bounded systematic enumeration of decision prefixes.

        Depth-first over the decision tree: run the default order, then
        for each recorded decision with unexplored siblings push a
        forced prefix ``decisions[:d] + [alt]`` and recurse.  A visited
        set over ``(depth, state-digest, alt)`` prunes re-derivations of
        the same decision-point state reached along different prefixes;
        ``interleavings`` bounds the total number of runs.
        """
        report = ExploreReport(scenario=self.scenario)
        seen: set[tuple] = set()
        # Each frontier entry is a forced choice prefix (tuple of ints).
        frontier: list[tuple[int, ...]] = [()]
        index = 0
        while frontier and index < int(interleavings):
            prefix = frontier.pop()
            policy = ForcedPrefixPolicy(prefix)
            report.results.append(self.classify(policy, index=index))
            index += 1
            # Expand siblings of every decision at or past the forced
            # prefix, deepest first so the pop order is depth-first.
            for depth in range(len(policy.decisions) - 1, len(prefix) - 1, -1):
                rec = policy.decisions[depth]
                taken = int(rec["choice"])
                state = rec.get("state", (rec.get("rank"), rec.get("rule")))
                for alt in range(int(rec["n"])):
                    if alt == taken:
                        continue
                    key = (depth, state, alt)
                    if key in seen:
                        continue
                    seen.add(key)
                    forced = tuple(
                        int(d["choice"]) for d in policy.decisions[:depth]
                    ) + (alt,)
                    frontier.append(forced)
        return report

    def run_policy_spec(
        self, spec: str, interleavings: int, *, seed: int = 0
    ) -> ExploreReport:
        """Dispatch on a CLI-style policy spec (see
        :func:`~repro.cluster.schedule_policy.make_policy`)."""
        head = str(spec).partition(":")[0]
        if head == "random":
            base_seed = seed
            _, _, arg = str(spec).partition(":")
            if arg:
                base_seed = int(arg)
            return self.run_random(interleavings, seed=base_seed)
        if head == "adversarial":
            _, _, arg = str(spec).partition(":")
            if arg:
                report = ExploreReport(scenario=self.scenario)
                for i in range(int(interleavings)):
                    report.results.append(
                        self.classify(AdversarialPolicy(arg), index=i)
                    )
                return report
            return self.run_adversarial(interleavings)
        if head == "dfs":
            return self.run_dfs(interleavings)
        if head == "deterministic":
            report = ExploreReport(scenario=self.scenario)
            for i in range(int(interleavings)):
                report.results.append(self.classify(DeterministicPolicy(), index=i))
            return report
        # Unknown spec: let make_policy raise the canonical error.
        make_policy(spec)
        raise ConfigurationError(f"policy {spec!r} has no exploration driver")

    # ---- replay ------------------------------------------------------------
    def replay(self, trace_path: str, *, strict: bool = True) -> InterleavingResult:
        """Re-run the exact interleaving a saved trace records."""
        policy = ReplayPolicy(load_trace(trace_path), strict=strict)
        return self.classify(policy, index=0)

    @classmethod
    def from_trace(
        cls, trace_path: str, *, trace_dir: Optional[str] = None, **kwargs
    ) -> "Explorer":
        """Build an explorer for the scenario a saved trace embeds."""
        trace = load_trace(trace_path)
        meta = trace.get("meta", {})
        scenario_meta = meta.get("scenario")
        if not scenario_meta:
            raise ConfigurationError(
                f"trace {trace_path!r} carries no scenario metadata; "
                "pass the scenario explicitly"
            )
        explorer = cls(
            ExploreScenario.from_meta(scenario_meta),
            trace_dir=trace_dir,
            **kwargs,
        )
        budget = meta.get("event_budget")
        if budget:
            explorer.event_budget = int(budget)
        return explorer


def _counter_diff(expected: list[tuple], got: list[tuple]) -> str:
    """First differing integer-counter row, for failure messages."""
    for exp, act in zip(expected, got):
        if exp != act:
            return f"rank {exp[0]} stage {exp[1]}: expected {exp[2:]}, got {act[2:]}"
    return f"counter row count {len(expected)} != {len(got)}"
