"""Unit tests for the fault-injection subsystem (repro.cluster.faults).

Chaos / end-to-end fault scenarios live in ``test_chaos.py``; this file
covers the building blocks: rule/plan validation and serialization,
injector determinism, frame checksums, survivor refolding geometry, and
the hardened multiprocessing supervisor.
"""

from __future__ import annotations

import os
import random
import time

import numpy as np
import pytest

from repro.cluster.faults import (
    CorruptFrame,
    FaultPlan,
    FaultRule,
    InjectedCrash,
    RankFaultInjector,
    check_received,
    corrupt_bytes,
    crash_phase_of,
    frame_checksum,
)
from repro.cluster.mp_backend import run_rank_programs_mp
from repro.errors import (
    ConfigurationError,
    DeadlockError,
    PartitionError,
    RankFailedError,
    WireFormatError,
)
from repro.pipeline.config import RunConfig
from repro.volume.partition import recursive_bisect
from repro.volume.folded import refold_survivors


# ---------------------------------------------------------------------------
# FaultRule / FaultPlan validation and serialization
# ---------------------------------------------------------------------------
class TestFaultRuleValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            FaultRule(kind="meteor", rank=0)

    def test_negative_rank_rejected(self):
        with pytest.raises(ConfigurationError, match="rank must be >= 0"):
            FaultRule(kind="drop", rank=-1)

    def test_probability_bounds(self):
        with pytest.raises(ConfigurationError, match="probability"):
            FaultRule(kind="drop", rank=0, probability=1.5)

    def test_crash_needs_target(self):
        with pytest.raises(ConfigurationError, match="stage= or phase="):
            FaultRule(kind="crash", rank=0)

    def test_crash_phase_vocabulary(self):
        with pytest.raises(ConfigurationError, match="crash phase"):
            FaultRule(kind="crash", rank=0, phase="teardown")

    def test_delay_needs_seconds(self):
        with pytest.raises(ConfigurationError, match="seconds > 0"):
            FaultRule(kind="delay", rank=0)

    def test_max_applications_defaults(self):
        assert FaultRule(kind="drop", rank=0).max_applications == 1
        assert FaultRule(kind="slow", rank=0, seconds=0.1).max_applications == 0

    def test_plan_rejects_non_rules(self):
        with pytest.raises(ConfigurationError, match="must hold FaultRule"):
            FaultPlan(rules=({"kind": "drop", "rank": 0},))


class TestFaultPlanSerialization:
    def _plan(self) -> FaultPlan:
        return FaultPlan(
            rules=(
                FaultRule(kind="crash", rank=2, stage=1),
                FaultRule(kind="drop", rank=0, dst=1, tag=5, probability=0.5),
                FaultRule(kind="delay", rank=1, seconds=0.25, max_applications=3),
                FaultRule(kind="corrupt", rank=3, stage=0),
                FaultRule(kind="slow", rank=1, seconds=0.01),
            ),
            seed=1234,
        )

    def test_json_round_trip(self):
        plan = self._plan()
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_schema_checked(self):
        with pytest.raises(ConfigurationError, match="fault-plan schema"):
            FaultPlan.from_dict({"schema": "bogus/9", "rules": []})

    def test_save_load(self, tmp_path):
        plan = self._plan()
        path = os.path.join(tmp_path, "plan.json")
        plan.save(path)
        assert FaultPlan.load(path) == plan

    def test_rules_for_and_injector_for(self):
        plan = self._plan()
        assert [i for i, _ in plan.rules_for(1)] == [2, 4]
        assert plan.injector_for(7) is None
        assert isinstance(plan.injector_for(0), RankFaultInjector)


# ---------------------------------------------------------------------------
# Injector determinism and behavior
# ---------------------------------------------------------------------------
class TestInjector:
    def test_crash_on_stage_fires_once_and_records(self):
        plan = FaultPlan(rules=(FaultRule(kind="crash", rank=0, stage=2),), seed=1)
        injector = plan.injector_for(0)
        injector.on_stage(0)  # no match
        with pytest.raises(InjectedCrash) as err:
            injector.on_stage(2)
        assert err.value.stage == 2
        assert injector.events == [
            {"event": "injected", "fault": "crash", "rank": 0, "rule": 0, "stage": 2}
        ]

    def test_checkpoint_crash_carries_phase(self):
        plan = FaultPlan(rules=(FaultRule(kind="crash", rank=1, phase="render"),))
        injector = plan.injector_for(1)
        injector.checkpoint("composite")
        with pytest.raises(InjectedCrash) as err:
            injector.checkpoint("render")
        assert err.value.phase == "render"
        assert crash_phase_of(RankFailedError(1, err.value)) == "render"

    def test_message_filters(self):
        plan = FaultPlan(
            rules=(FaultRule(kind="drop", rank=0, dst=2, tag=7, stage=1),), seed=3
        )
        injector = plan.injector_for(0)
        assert injector.on_message("send", dst=1, tag=7, stage=1) is None
        assert injector.on_message("send", dst=2, tag=0, stage=1) is None
        assert injector.on_message("send", dst=2, tag=7, stage=0) is None
        faults = injector.on_message("send", dst=2, tag=7, stage=1)
        assert faults is not None and faults.drop
        # max_applications=1: never again
        assert injector.on_message("send", dst=2, tag=7, stage=1) is None

    def test_probabilistic_rule_is_seed_deterministic(self):
        plan = FaultPlan(
            rules=(
                FaultRule(
                    kind="drop", rank=0, probability=0.5, max_applications=0
                ),
            ),
            seed=99,
        )

        def decisions():
            injector = plan.injector_for(0)
            return [
                injector.on_message("send", dst=1, tag=0, stage=s) is not None
                for s in range(32)
            ]

        first, second = decisions(), decisions()
        assert first == second
        assert any(first) and not all(first)  # the coin actually flips

    def test_delay_accumulates_and_slow_is_persistent(self):
        plan = FaultPlan(
            rules=(
                FaultRule(kind="slow", rank=0, seconds=0.5),
                FaultRule(kind="delay", rank=0, seconds=0.25),
            ),
        )
        injector = plan.injector_for(0)
        first = injector.on_message("send", dst=1, tag=0, stage=0)
        assert first.delay == pytest.approx(0.75)
        second = injector.on_message("send", dst=1, tag=0, stage=0)
        assert second.delay == pytest.approx(0.5)  # delay exhausted, slow persists

    def test_event_sink_is_used(self):
        sink: list = []
        plan = FaultPlan(rules=(FaultRule(kind="drop", rank=0),))
        injector = plan.injector_for(0, sink=sink)
        injector.on_message("send", dst=1, tag=0, stage=0)
        assert sink and sink[0]["fault"] == "drop"


# ---------------------------------------------------------------------------
# Checksums and corruption primitives
# ---------------------------------------------------------------------------
class TestChecksums:
    def test_frame_checksum_shapes(self):
        assert frame_checksum(None) is None
        assert frame_checksum(b"abc") == frame_checksum(bytearray(b"abc"))
        arr = np.arange(12, dtype=np.float64)
        assert frame_checksum(arr) == frame_checksum(arr.tobytes())
        assert frame_checksum(arr[::2]) is None  # non-contiguous

    def test_corrupt_bytes_changes_exactly_one_byte(self):
        rng = random.Random(0)
        data = bytes(range(64))
        damaged = corrupt_bytes(data, rng)
        assert len(damaged) == len(data)
        assert sum(a != b for a, b in zip(data, damaged)) == 1
        assert corrupt_bytes(b"", rng) == b"\xff"

    def test_check_received_passthrough_and_raise(self):
        assert check_received(b"ok", rank=0, src=1, tag=0, backend="simulator") == b"ok"
        frame = CorruptFrame(b"damaged", crc=0xDEADBEEF, nbytes=7)
        with pytest.raises(WireFormatError, match="failed CRC32"):
            check_received(frame, rank=0, src=1, tag=3, backend="simulator")


# ---------------------------------------------------------------------------
# Survivor refolding geometry
# ---------------------------------------------------------------------------
class TestRefoldSurvivors:
    def test_refold_p8_single_failure(self):
        plan = recursive_bisect((32, 32, 32), 8)
        folded, rank_map = refold_survivors(plan, {3})
        assert folded.core_ranks == 4
        # Pair (2,3) lost its odd member: 3 intact pairs keep extras.
        assert folded.num_extras == 3
        assert folded.num_ranks == 7
        # Core 1 is the bereaved survivor: rank 2 renders the merged block.
        assert rank_map[1] == 2
        assert folded.extent(1) == folded.core_plan.extent(1)
        assert 1 not in folded.extra_of_core
        # Intact pairs: even leaf is the core with its original extent.
        for core in (0, 2, 3):
            assert rank_map[core] == 2 * core
            assert folded.extent(core) == plan.extent(2 * core)
            extra = folded.extra_of_core[core]
            assert rank_map[extra] == 2 * core + 1
            assert folded.extent(extra) == plan.extent(2 * core + 1)
            assert folded.fold_axis[core] == plan.stage_axes[2 * core][0]
        # Core stage axes drop the stage-0 (pair) split.
        for core in range(4):
            assert folded.core_plan.stage_axes[core] == plan.stage_axes[2 * core][1:]

    def test_refold_merges_cover_the_volume(self):
        plan = recursive_bisect((16, 32, 8), 8)
        folded, _ = refold_survivors(plan, {0})
        voxels = sum(folded.core_plan.extent(i).num_voxels for i in range(4))
        assert voxels == 16 * 32 * 8
        # Survivor of pair 0 is the odd member.
        assert folded.extent(0) == folded.core_plan.extent(0)

    def test_refold_p2(self):
        plan = recursive_bisect((8, 8, 8), 2)
        folded, rank_map = refold_survivors(plan, {1})
        assert folded.num_ranks == 1 and folded.core_ranks == 1
        assert rank_map == [0]
        assert folded.core_plan.extent(0).num_voxels == 512
        assert folded.core_plan.stage_axes == ((),)

    def test_both_pair_members_dead_is_unrecoverable(self):
        plan = recursive_bisect((16, 16, 16), 4)
        with pytest.raises(PartitionError, match="no survivor"):
            refold_survivors(plan, {2, 3})

    def test_invalid_inputs(self):
        plan = recursive_bisect((16, 16, 16), 4)
        with pytest.raises(PartitionError, match="no failed ranks"):
            refold_survivors(plan, set())
        with pytest.raises(PartitionError, match="not in plan"):
            refold_survivors(plan, {9})


# ---------------------------------------------------------------------------
# Hardened multiprocessing supervisor
# ---------------------------------------------------------------------------
async def _boom_program(ctx):
    if ctx.rank == 1:
        raise ValueError("boom")
    return ctx.rank


async def _sudden_death_program(ctx):
    if ctx.rank == 1:
        os._exit(17)  # die without reporting a result
    peer = 1 if ctx.rank == 0 else 0
    if ctx.rank == 0:
        return await ctx.recv(peer, tag=0)
    return None


async def _never_sent_program(ctx):
    if ctx.rank == 0:
        return await ctx.recv(1, tag=0)  # rank 1 never sends
    return None


class TestMPSupervisor:
    def test_traceback_ships_across_the_process_boundary(self):
        with pytest.raises(RankFailedError) as err:
            run_rank_programs_mp(2, _boom_program, timeout=15)
        failure = err.value
        assert failure.rank == 1
        assert failure.original_type == "ValueError"
        assert "boom" in str(failure)
        assert failure.traceback_text is not None
        assert "_boom_program" in failure.traceback_text

    def test_dead_worker_detected_fast(self):
        start = time.monotonic()
        with pytest.raises(RankFailedError) as err:
            run_rank_programs_mp(2, _sudden_death_program, timeout=60)
        elapsed = time.monotonic() - start
        assert err.value.rank == 1
        assert "exited with code 17" in str(err.value)
        # Fail-fast: far below the 60 s receive timeout.
        assert elapsed < 5.0

    def test_missing_sender_raises_typed_deadlock(self):
        with pytest.raises(DeadlockError, match=r"recv from rank 1 \(tag 0\)"):
            run_rank_programs_mp(2, _never_sent_program, timeout=2)


# ---------------------------------------------------------------------------
# RunConfig plumbing
# ---------------------------------------------------------------------------
class TestCommTimeoutConfig:
    def test_valid_and_default(self):
        assert RunConfig().comm_timeout is None
        assert RunConfig(comm_timeout=3.5).comm_timeout == 3.5

    def test_invalid_rejected(self):
        with pytest.raises(ConfigurationError, match="comm_timeout"):
            RunConfig(comm_timeout=0.0)
