"""Tests for recursive-bisection partitioning and depth ordering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PartitionError
from repro.types import Extent3
from repro.volume.partition import depth_order, recursive_bisect


def voxel_cover(plan):
    """Boolean occupancy grid counting how many extents cover each voxel."""
    counts = np.zeros(plan.shape, dtype=np.int32)
    for rank in range(plan.num_ranks):
        sx, sy, sz = plan.extent(rank).slices()
        counts[sx, sy, sz] += 1
    return counts


class TestRecursiveBisect:
    @pytest.mark.parametrize("num_ranks", [1, 2, 4, 8, 16, 32, 64])
    def test_exact_partition(self, num_ranks):
        plan = recursive_bisect((32, 32, 16), num_ranks)
        assert plan.num_ranks == num_ranks
        assert (voxel_cover(plan) == 1).all()

    def test_non_power_of_two_rejected(self):
        with pytest.raises(PartitionError):
            recursive_bisect((32, 32, 32), 6)

    def test_too_small_volume_rejected(self):
        with pytest.raises(PartitionError):
            recursive_bisect((1, 1, 1), 8)

    def test_bad_shape_rejected(self):
        with pytest.raises(PartitionError):
            recursive_bisect((0, 4, 4), 2)

    def test_unknown_axis_policy(self):
        with pytest.raises(PartitionError):
            recursive_bisect((8, 8, 8), 2, axis_policy="spiral")

    def test_cycle_policy_axes(self):
        plan = recursive_bisect((32, 32, 32), 8, axis_policy="cycle")
        # Levels 0,1,2 use axes x,y,z; stage k corresponds to level 2-k.
        for rank in range(8):
            assert plan.stage_axes[rank] == (2, 1, 0)

    def test_longest_policy_splits_longest(self):
        plan = recursive_bisect((64, 16, 16), 2)
        a, b = plan.extent(0), plan.extent(1)
        assert a.shape == (32, 16, 16)
        assert b.shape == (32, 16, 16)

    @pytest.mark.parametrize("num_ranks", [2, 8, 16])
    def test_blocks_balanced(self, num_ranks):
        plan = recursive_bisect((64, 64, 32), num_ranks)
        sizes = [plan.extent(r).num_voxels for r in range(num_ranks)]
        assert max(sizes) <= 2 * min(sizes)

    def test_single_rank_trivial(self):
        plan = recursive_bisect((8, 8, 8), 1)
        assert plan.extent(0) == Extent3.full((8, 8, 8))
        assert plan.num_stages == 0


class TestStageStructure:
    @pytest.mark.parametrize("num_ranks", [2, 4, 8, 16, 32])
    def test_partners_share_stage_axis(self, num_ranks):
        plan = recursive_bisect((64, 64, 32), num_ranks)
        for stage in range(plan.num_stages):
            for rank in range(num_ranks):
                partner = rank ^ (1 << stage)
                assert plan.separating_axis(rank, stage) == plan.separating_axis(
                    partner, stage
                )

    @pytest.mark.parametrize("num_ranks", [2, 4, 8, 16])
    def test_plane_actually_separates_groups(self, num_ranks):
        """At stage k the extents of the two pair groups must not overlap
        along the recorded axis — the property front/back relies on."""
        plan = recursive_bisect((64, 64, 32), num_ranks)
        for stage in range(plan.num_stages):
            for rank in range(num_ranks):
                partner = rank ^ (1 << stage)
                axis = plan.separating_axis(rank, stage)
                group_a = [
                    r for r in range(num_ranks)
                    if (r | ((1 << (stage + 1)) - 1)) == (rank | ((1 << (stage + 1)) - 1))
                    and ((r >> stage) & 1) == ((rank >> stage) & 1)
                ]
                group_b = [
                    r for r in range(num_ranks)
                    if (r | ((1 << (stage + 1)) - 1)) == (partner | ((1 << (stage + 1)) - 1))
                    and ((r >> stage) & 1) == ((partner >> stage) & 1)
                ]
                lo_a = min(getattr(plan.extent(r), f"{'xyz'[axis]}0") for r in group_a)
                hi_a = max(getattr(plan.extent(r), f"{'xyz'[axis]}1") for r in group_a)
                lo_b = min(getattr(plan.extent(r), f"{'xyz'[axis]}0") for r in group_b)
                hi_b = max(getattr(plan.extent(r), f"{'xyz'[axis]}1") for r in group_b)
                assert hi_a <= lo_b or hi_b <= lo_a

    @pytest.mark.parametrize("num_ranks", [2, 8, 32])
    def test_rank_is_low_matches_extents(self, num_ranks):
        plan = recursive_bisect((64, 64, 32), num_ranks)
        for stage in range(plan.num_stages):
            for rank in range(num_ranks):
                partner = rank ^ (1 << stage)
                axis = plan.separating_axis(rank, stage)
                mine = plan.extent(rank).center[axis]
                theirs = plan.extent(partner).center[axis]
                if plan.rank_is_low(rank, stage):
                    assert mine < theirs
                else:
                    assert mine > theirs

    @given(
        num_ranks=st.sampled_from([2, 4, 8, 16]),
        vx=st.floats(-1, 1),
        vy=st.floats(-1, 1),
        vz=st.floats(-1, 1),
    )
    @settings(max_examples=100)
    def test_front_back_antisymmetric(self, num_ranks, vx, vy, vz):
        plan = recursive_bisect((32, 32, 16), num_ranks)
        view = np.array([vx, vy, vz])
        for stage in range(plan.num_stages):
            for rank in range(num_ranks):
                partner = rank ^ (1 << stage)
                assert plan.local_in_front(rank, stage, view) != plan.local_in_front(
                    partner, stage, view
                )

    def test_describe_lists_all_ranks(self):
        plan = recursive_bisect((16, 16, 8), 4)
        text = plan.describe()
        assert "rank   0" in text and "rank   3" in text


class TestDepthOrder:
    def test_is_permutation(self):
        plan = recursive_bisect((32, 32, 16), 8)
        order = depth_order(plan, np.array([0.3, -0.5, 0.8]))
        assert sorted(order) == list(range(8))

    def test_axis_aligned_view(self):
        plan = recursive_bisect((32, 32, 32), 2, axis_policy="cycle")
        # cycle policy: root split along x; viewing down +x puts low-x first.
        order = depth_order(plan, np.array([1.0, 0.0, 0.0]))
        assert order == [0, 1]
        order = depth_order(plan, np.array([-1.0, 0.0, 0.0]))
        assert order == [1, 0]

    @given(
        vx=st.floats(-1, 1), vy=st.floats(-1, 1), vz=st.floats(-1, 1),
        num_ranks=st.sampled_from([2, 4, 8]),
    )
    @settings(max_examples=100)
    def test_consistent_with_pairwise_decision(self, vx, vy, vz, num_ranks):
        """Whenever the pairwise decision says rank is in front of its
        stage partner AND the view is not perpendicular to the separating
        plane, the global order must agree."""
        view = np.array([vx, vy, vz])
        plan = recursive_bisect((32, 32, 16), num_ranks)
        order = depth_order(plan, view)
        pos = {r: i for i, r in enumerate(order)}
        for stage in range(plan.num_stages):
            for rank in range(num_ranks):
                partner = rank ^ (1 << stage)
                axis = plan.separating_axis(rank, stage)
                if abs(view[axis]) < 1e-9:
                    continue  # side-by-side: order is irrelevant
                if plan.local_in_front(rank, stage, view):
                    assert pos[rank] < pos[partner]
