"""Experiment T1 — regenerate the paper's Table 1.

Compositing time (``T_comp``, ``T_comm``, ``T_total``) of BS, BSBR,
BSLC and BSBRC on the four test datasets at 384x384 pixels for
P ∈ {2, 4, 8, 16, 32, 64}.
"""

from __future__ import annotations

from ..analysis.metrics import MethodMeasurement
from ..analysis.tables import format_paper_table
from ..cluster.model import SP2, MachineModel
from ..compositing.registry import PAPER_METHODS
from ..volume.datasets import PAPER_DATASETS
from .harness import run_grid

__all__ = ["run_table1", "format_table1", "TABLE1_RANKS", "TABLE1_IMAGE_SIZE"]

TABLE1_RANKS = (2, 4, 8, 16, 32, 64)
TABLE1_IMAGE_SIZE = 384


def run_table1(
    *,
    machine: MachineModel = SP2,
    rank_counts=TABLE1_RANKS,
    image_size: int = TABLE1_IMAGE_SIZE,
    datasets=PAPER_DATASETS,
    methods=PAPER_METHODS,
    volume_shape=None,
    verbose: bool = False,
) -> list[MethodMeasurement]:
    """Run the Table 1 grid; pass smaller knobs for a quick variant."""
    return run_grid(
        datasets,
        image_size,
        rank_counts,
        methods,
        machine=machine,
        volume_shape=volume_shape,
        verbose=verbose,
    )


def format_table1(rows: list[MethodMeasurement]) -> str:
    datasets = list(dict.fromkeys(row.dataset for row in rows))
    methods = [m for m in PAPER_METHODS if any(r.method == m for r in rows)]
    size = rows[0].image_size if rows else TABLE1_IMAGE_SIZE
    return format_paper_table(
        rows,
        methods=methods,
        datasets=datasets,
        title=(
            f"Table 1 (reproduction): compositing time of the proposed methods "
            f"for the {size}x{size} test images"
        ),
    )
