"""Render-as-a-service: sessions, QoS, and progressive frame delivery.

Layered on the pipeline's :class:`~repro.pipeline.session.RenderSession`:

* :mod:`repro.serving.service` — :class:`RenderService` multiplexes N
  concurrent sessions over one bounded :class:`WorkerPool`, with
  per-session QoS mapped onto the recovery lattice and per-job scoped
  perf registries.
* :mod:`repro.serving.frames` — :class:`ProgressiveFrame` folds
  streamed :class:`~repro.cluster.progress.ProgressEvent`\\ s into a
  best-known partial display image.
* :mod:`repro.serving.spool` — a file-spool process boundary
  (``repro.serve-job/1`` in, ``repro.serve-event/1`` +
  ``repro.serve-result/1`` out) behind the ``repro-experiments serve``
  / ``submit`` CLI.
"""

from .frames import ProgressiveFrame
from .service import (
    DEFAULT_QOS,
    JobTicket,
    QOS_POLICIES,
    QOS_SHED_PRIORITY,
    RenderService,
    SHED_POLICIES,
    SessionHandle,
    WorkerPool,
)
from .spool import (
    JOB_SCHEMA,
    LEASE_SCHEMA,
    RESULT_SCHEMA,
    load_result,
    read_events,
    serve,
    submit_job,
    wait_for_result,
)

__all__ = [
    "DEFAULT_QOS",
    "JOB_SCHEMA",
    "JobTicket",
    "LEASE_SCHEMA",
    "ProgressiveFrame",
    "QOS_POLICIES",
    "QOS_SHED_PRIORITY",
    "RESULT_SCHEMA",
    "RenderService",
    "SHED_POLICIES",
    "SessionHandle",
    "WorkerPool",
    "load_result",
    "read_events",
    "serve",
    "submit_job",
    "wait_for_result",
]
