"""BSLC — binary swap with RLE and static load balancing (paper §3.3).

Instead of contiguous halves, each stage exchanges *interleaved sections*
of the flattened owned pixel sequence (Figure 6), so concentrated
foreground is shared nearly evenly between partners.  The sent subset is
run-length encoded over its blank/non-blank mask (Figure 5) and only the
non-blank pixel values ship, preceded by the 2-byte run codes
(eq. (6)).

The price is the method's known weakness (and the paper's headline
finding): the encoder must scan *every* pixel of the sending half each
stage — ``Tencode · A/2^k`` — which asymptotically dominates and keeps
``T_comp(BSLC)`` the largest of the three proposed methods even though
its messages are the smallest.
"""

from __future__ import annotations

import numpy as np

from ..cluster.context import RankContext
from ..cluster.topology import keeps_low_half
from ..errors import CompositingError
from ..render.image import SubImage
from ..volume.partition import PartitionPlan
from .base import CompositeOutcome, Compositor
from .interleave import DEFAULT_SECTION, initial_indices, split_interleaved
from .over import over
from .wire import pack_bslc, unpack_bslc

__all__ = ["BinarySwapLoadBalancedCompression", "final_owned_indices"]


def final_owned_indices(
    rank: int, size: int, num_pixels: int, section: int = DEFAULT_SECTION
) -> np.ndarray:
    """Recompute the owned index set rank ``rank`` holds after BSLC.

    Deterministic given ``(P, A, section)``; used by the display node to
    place gathered pixels without shipping the index arrays.
    """
    from ..cluster.topology import log2_int

    indices = initial_indices(num_pixels)
    for stage in range(log2_int(size)):
        kept, _ = split_interleaved(indices, section, keeps_low_half(rank, stage))
        indices = kept
    return indices


class BinarySwapLoadBalancedCompression(Compositor):
    """The BSLC method — interleaved halves + mask RLE."""

    name = "bslc"

    def __init__(self, *, section: int = DEFAULT_SECTION, charge_pack: bool = True):
        if section < 1:
            raise CompositingError(f"section must be >= 1, got {section}")
        self.section = int(section)
        self.charge_pack = charge_pack

    async def run(
        self,
        ctx: RankContext,
        image: SubImage,
        plan: PartitionPlan,
        view_dir: np.ndarray,
    ) -> CompositeOutcome:
        stages = self.check_plan(ctx, plan)
        flat_i = image.intensity.ravel()
        flat_a = image.opacity.ravel()
        indices = initial_indices(image.num_pixels)

        for stage in range(stages):
            ctx.begin_stage(stage)
            partner = ctx.rank ^ (1 << stage)
            kept, sent = split_interleaved(
                indices, self.section, keeps_low_half(ctx.rank, stage)
            )

            # Encode the sending half: the scan touches every sent pixel,
            # blank or not — the paper's T_encode * A/2^k term.
            msg = pack_bslc(flat_i, flat_a, sent)
            await ctx.charge_encode(sent.shape[0])
            if self.charge_pack:
                await ctx.charge_pack(len(msg.buffer))
            raw = await ctx.sendrecv(
                partner, msg.buffer, nbytes=msg.accounted_bytes, tag=stage
            )

            # The partner sent its version of the subset *we* keep; its
            # sequence positions index our kept array directly.
            positions, recv_i, recv_a = unpack_bslc(raw, kept.shape[0])
            ctx.note("r_code", int.from_bytes(raw[:4], "little"))
            ctx.note("a_opaque", positions.size)
            if positions.size:
                targets = kept[positions]
                loc_i = flat_i[targets]
                loc_a = flat_a[targets]
                if plan.local_in_front(ctx.rank, stage, view_dir):
                    out_i, out_a = over(loc_i, loc_a, recv_i, recv_a)
                else:
                    out_i, out_a = over(recv_i, recv_a, loc_i, loc_a)
                flat_i[targets] = out_i
                flat_a[targets] = out_a
                await ctx.charge_over(positions.size)
            indices = kept
        return CompositeOutcome(image=image, owned_indices=indices)
