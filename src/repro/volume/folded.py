"""Non-power-of-two partitioning via *folding* (paper §5, future work #1).

The binary-swap family requires ``P = 2^k`` processors.  The standard
remedy — and the paper's first stated future-work item — is folding: let
``Q`` be the largest power of two ``<= P``.  The volume is bisected into
``Q`` core blocks; the ``E = P - Q`` *extra* ranks each take half of one
core block (the core rank keeps the other half).  Before the swap, every
extra rank ships its rendered subimage to its core buddy, which folds it
in with one *over*; the ordinary ``Q``-rank binary swap then proceeds
unchanged.  Extra ranks own nothing afterwards.

Because each (core, extra) pair's subvolumes are the two halves of one
axis-aligned split, the fold's over order is determined by the same
plane rule the swap stages use, and all correctness invariants carry
over — see ``tests/test_folding.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import PartitionError
from ..types import Extent3
from .partition import PartitionPlan, depth_order, recursive_bisect

__all__ = [
    "FoldedPartition",
    "partition_folded",
    "folded_depth_order",
    "core_count",
    "refold_survivors",
]


def core_count(num_ranks: int) -> int:
    """Largest power of two not exceeding ``num_ranks``."""
    if num_ranks < 1:
        raise PartitionError(f"num_ranks must be >= 1, got {num_ranks}")
    return 1 << (num_ranks.bit_length() - 1)


@dataclass(frozen=True)
class FoldedPartition:
    """Partition of a volume over any ``P >= 1`` ranks.

    Ranks ``0..Q-1`` are *core* ranks running the binary swap; ranks
    ``Q..P-1`` are *extra* ranks that fold into their buddies first.
    ``extents[r]`` is what rank ``r`` renders.  For a power-of-two ``P``
    the structure degenerates: no extras, core extents = plan extents.
    """

    num_ranks: int
    core_plan: PartitionPlan
    extents: tuple[Extent3, ...]
    #: extra rank -> its core buddy.
    buddy_of_extra: dict[int, int]
    #: core rank -> its extra partner (absent if unfolded).
    extra_of_core: dict[int, int]
    #: core rank -> axis of the fold split (only for folded cores).
    fold_axis: dict[int, int]

    @property
    def core_ranks(self) -> int:
        return self.core_plan.num_ranks

    @property
    def num_extras(self) -> int:
        return self.num_ranks - self.core_ranks

    def is_extra(self, rank: int) -> bool:
        return rank >= self.core_ranks

    def extent(self, rank: int) -> Extent3:
        return self.extents[rank]

    def core_in_front(self, core_rank: int, view_dir: np.ndarray) -> bool:
        """Whether the core's (low) half occludes its extra's (high) half.

        By construction the core keeps the low-coordinate half of the
        fold split, so the rule matches
        :meth:`~repro.volume.partition.PartitionPlan.local_in_front`.
        """
        axis = self.fold_axis[core_rank]
        return float(view_dir[axis]) >= 0.0


def partition_folded(
    shape: tuple[int, int, int],
    num_ranks: int,
    *,
    axis_policy: str = "longest",
) -> FoldedPartition:
    """Partition ``shape`` over any ``num_ranks >= 1`` with folding.

    The ``E`` largest core blocks (ties broken by rank) are the ones
    split for the extras, which balances per-rank render load.
    """
    if num_ranks < 1:
        raise PartitionError(f"num_ranks must be >= 1, got {num_ranks}")
    core = core_count(num_ranks)
    plan = recursive_bisect(shape, core, axis_policy=axis_policy)
    extras = num_ranks - core

    extents: list[Extent3] = [plan.extent(rank) for rank in range(core)]
    buddy_of_extra: dict[int, int] = {}
    extra_of_core: dict[int, int] = {}
    fold_axis: dict[int, int] = {}

    # Split the largest core blocks for the extras (deterministic order).
    order = sorted(range(core), key=lambda r: (-plan.extent(r).num_voxels, r))
    for j in range(extras):
        core_rank = order[j]
        extra_rank = core + j
        extent = extents[core_rank]
        axis = int(np.argmax(extent.shape))
        if extent.shape[axis] < 2:
            raise PartitionError(
                f"volume {shape} too small to fold {num_ranks} ranks "
                f"(core block {core_rank} cannot split)"
            )
        low, high = extent.split(axis)
        extents[core_rank] = low
        extents.append(high)
        buddy_of_extra[extra_rank] = core_rank
        extra_of_core[core_rank] = extra_rank
        fold_axis[core_rank] = axis

    # Extras were appended in extra-rank order; make the list index-true.
    assert len(extents) == num_ranks
    return FoldedPartition(
        num_ranks=num_ranks,
        core_plan=plan,
        extents=tuple(extents),
        buddy_of_extra=buddy_of_extra,
        extra_of_core=extra_of_core,
        fold_axis=fold_axis,
    )


def refold_survivors(
    plan: PartitionPlan, failed, *, pairs=None
) -> tuple[FoldedPartition, list[int]]:
    """Refold a power-of-two bisection plan onto the survivors of ``failed``.

    Graceful degradation (see ``DESIGN.md`` §5d): a ``P = 2^n`` recursive
    bisection *is* a fully-folded ``Q = P/2``-core partition — stage-0
    swap partners ``(2i, 2i+1)`` are the two halves of one axis-aligned
    split, exactly a (core, extra) fold pair.  When ranks die before
    compositing, this builds the ``Q``-core plan whose block ``i`` merges
    leaves ``2i`` and ``2i+1``:

    * both members of pair ``i`` alive — the even leaf becomes core ``i``
      (rendering its original extent), the odd leaf becomes an extra that
      folds in across the pair's split plane;
    * one member dead — the survivor becomes core ``i`` and renders the
      *merged* block, covering for its buddy;
    * both members dead — the block is unrecoverable and a
      :class:`~repro.errors.PartitionError` is raised.

    Returns ``(folded, rank_map)`` where ``rank_map[new_rank]`` is the
    original rank that plays ``new_rank`` in the degraded run (cores
    first, then extras in pair order).
    """
    num_ranks = plan.num_ranks
    if num_ranks < 2 or num_ranks & (num_ranks - 1):
        raise PartitionError(
            f"refolding requires a power-of-two plan with P >= 2, got P={num_ranks}"
        )
    failed = set(failed)
    unknown = failed - set(range(num_ranks))
    if unknown:
        raise PartitionError(f"failed ranks {sorted(unknown)} not in plan of P={num_ranks}")
    if not failed:
        raise PartitionError("refold_survivors called with no failed ranks")
    core = num_ranks // 2
    # Schedules advertise their stage-0 fold pairing via ``refold_pairs``;
    # degradation only knows how to merge the bisection's (2i, 2i+1)
    # buddies, so anything else must fail loudly rather than silently
    # rerun with a mismatched depth order.
    if pairs is not None:
        expected = [(2 * i, 2 * i + 1) for i in range(core)]
        if [tuple(p) for p in pairs] != expected:
            raise PartitionError(
                f"schedule's fold pairing {list(pairs)} does not match the "
                f"bisection buddies {expected}; graceful degradation is only "
                "defined for binary-swap-style stage-0 pairs"
            )

    core_extents: list[Extent3] = []
    core_axes: list[tuple[int, ...]] = []
    render_extents: list[Extent3] = []
    rank_map: list[int] = []
    extra_specs: list[tuple[int, int, int]] = []  # (core_rank, original_rank, axis)

    for i in range(core):
        even, odd = 2 * i, 2 * i + 1
        even_dead, odd_dead = even in failed, odd in failed
        if even_dead and odd_dead:
            raise PartitionError(
                f"ranks {even} and {odd} both failed: block {i} has no survivor "
                "to re-render it"
            )
        lo_ext, hi_ext = plan.extent(even), plan.extent(odd)
        merged = Extent3(
            min(lo_ext.x0, hi_ext.x0),
            min(lo_ext.y0, hi_ext.y0),
            min(lo_ext.z0, hi_ext.z0),
            max(lo_ext.x1, hi_ext.x1),
            max(lo_ext.y1, hi_ext.y1),
            max(lo_ext.z1, hi_ext.z1),
        )
        core_extents.append(merged)
        # Core stage-k partners differ in original bit k+1: drop stage 0.
        core_axes.append(tuple(plan.stage_axes[even][1:]))
        if even_dead or odd_dead:
            survivor = odd if even_dead else even
            rank_map.append(survivor)
            render_extents.append(merged)
        else:
            rank_map.append(even)
            render_extents.append(lo_ext)
            extra_specs.append((i, odd, plan.stage_axes[even][0]))

    buddy_of_extra: dict[int, int] = {}
    extra_of_core: dict[int, int] = {}
    fold_axis: dict[int, int] = {}
    for j, (core_rank, original, axis) in enumerate(extra_specs):
        extra_rank = core + j
        buddy_of_extra[extra_rank] = core_rank
        extra_of_core[core_rank] = extra_rank
        fold_axis[core_rank] = axis
        rank_map.append(original)
        render_extents.append(plan.extent(original))

    folded = FoldedPartition(
        num_ranks=core + len(extra_specs),
        core_plan=PartitionPlan(
            shape=plan.shape,
            extents=tuple(core_extents),
            stage_axes=tuple(core_axes),
        ),
        extents=tuple(render_extents),
        buddy_of_extra=buddy_of_extra,
        extra_of_core=extra_of_core,
        fold_axis=fold_axis,
    )
    return folded, rank_map


def folded_depth_order(folded: FoldedPartition, view_dir: np.ndarray) -> list[int]:
    """Front-to-back rank order over all ``P`` subvolumes.

    The core tree order, with each folded core expanded into its
    (core, extra) pair ordered by the fold plane.
    """
    view_dir = np.asarray(view_dir, dtype=np.float64)
    order: list[int] = []
    for core_rank in depth_order(folded.core_plan, view_dir):
        extra = folded.extra_of_core.get(core_rank)
        if extra is None:
            order.append(core_rank)
        elif folded.core_in_front(core_rank, view_dir):
            order.extend((core_rank, extra))
        else:
            order.extend((extra, core_rank))
    return order
