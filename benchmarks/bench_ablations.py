"""Ablation benches for the design choices called out in DESIGN.md §5.

* BSLC interleave section size (pixel vs scanline granularity),
* image split-axis policy for the halving methods,
* machine-model network sensitivity (who wins when the net is 4x
  faster/slower than the SP2's),
* the related-work baselines (direct send, binary tree, pipeline)
  against BSBRC on the same workloads.
"""

import pytest

from conftest import emit
from repro.analysis.tables import format_generic
from repro.cluster.model import SP2, SP2_FAST_NET, SP2_SLOW_NET
from repro.experiments.harness import run_method, workload

P = 16
DATASET = "engine_high"


@pytest.fixture(scope="module")
def work():
    return workload(DATASET, 384, max_ranks=64)


def test_bench_bslc_section_size(benchmark, work):
    """BSLC load-balance granularity: smaller sections balance better
    (lower max received bytes) but fragment runs (more code bytes)."""
    sections = (1, 8, 32, 128, 512, 4096)

    def sweep():
        return {
            s: run_method(work, "bslc", P, section=s)[0] for s in sections
        }

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_generic(
        ["section", "T_total (ms)", "M_max (B)", "bytes_total"],
        [
            (s, f"{m.t_total * 1e3:.2f}", m.mmax_bytes, m.bytes_total)
            for s, m in rows.items()
        ],
    )
    emit("ablation_bslc_section", "BSLC section-size ablation\n" + table)
    # Finer interleaving must not *worsen* the balance substantially:
    assert rows[1].mmax_bytes <= rows[4096].mmax_bytes * 1.25
    # ...but it costs extra run codes on the wire:
    assert rows[1].bytes_total >= rows[512].bytes_total


def test_bench_split_policy(benchmark, work):
    """Halving-axis policy barely matters for BS (content-free) but can
    shift BSBR/BSBRC rect sizes; all must stay correct and close."""
    policies = ("longest", "alternate", "rows")

    def sweep():
        out = {}
        for method in ("bs", "bsbr", "bsbrc"):
            for policy in policies:
                out[(method, policy)] = run_method(
                    work, method, P, split_policy=policy
                )[0]
        return out

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_generic(
        ["method", "policy", "T_total (ms)", "M_max (B)"],
        [
            (m, pol, f"{row.t_total * 1e3:.2f}", row.mmax_bytes)
            for (m, pol), row in rows.items()
        ],
    )
    emit("ablation_split_policy", "Split-axis policy ablation\n" + table)
    # BS is content-independent: identical bytes under every policy.
    bs_bytes = {rows[("bs", pol)].mmax_bytes for pol in policies}
    assert len(bs_bytes) == 1
    # Policies shift BSBRC totals by less than 2x on this workload.
    totals = [rows[("bsbrc", pol)].t_total for pol in policies]
    assert max(totals) / min(totals) < 2.0


def test_bench_network_sensitivity(benchmark, work):
    """Eq. (5)-(6) trade computation for bytes: a slower network rewards
    BSLC's smaller messages, a faster one rewards BSBR's cheap CPU."""
    machines = {"fast": SP2_FAST_NET, "sp2": SP2, "slow": SP2_SLOW_NET}

    def sweep():
        return {
            (name, method): run_method(work, method, P, machine=machine)[0]
            for name, machine in machines.items()
            for method in ("bsbr", "bslc", "bsbrc")
        }

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_generic(
        ["net", "method", "T_comp (ms)", "T_comm (ms)", "T_total (ms)"],
        [
            (n, m, f"{r.t_comp * 1e3:.2f}", f"{r.t_comm * 1e3:.2f}", f"{r.t_total * 1e3:.2f}")
            for (n, m), r in rows.items()
        ],
    )
    emit("ablation_network", "Network-speed sensitivity\n" + table)
    # The BSLC-vs-BSBR total gap must shrink as the network slows.
    gap = {
        name: rows[(name, "bslc")].t_total - rows[(name, "bsbr")].t_total
        for name in machines
    }
    assert gap["slow"] < gap["fast"]
    # BSBRC stays the best of the three on this sparse dataset throughout.
    for name in machines:
        totals = {m: rows[(name, m)].t_total for m in ("bsbr", "bslc", "bsbrc")}
        assert totals["bsbrc"] == min(totals.values()), name


def test_bench_value_vs_mask_rle(benchmark, work):
    """Reproduce §3.3's codec argument at paper scale: Ahrens & Painter
    value-RLE (bslcv) ships more bytes than the paper's mask-RLE (bslc)
    on floating-point volume pixels, because non-repeating values make
    every non-blank pixel its own 18-byte run."""

    def sweep():
        out = {}
        for method in ("bslc", "bslcv"):
            for p in (2, 16, 64):
                out[(method, p)] = run_method(work, method, p)[0]
        return out

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_generic(
        ["codec", "P", "T_total (ms)", "M_max (B)", "bytes_total"],
        [
            (m, p, f"{r.t_total * 1e3:.2f}", r.mmax_bytes, r.bytes_total)
            for (m, p), r in rows.items()
        ],
    )
    emit("ablation_value_rle", "Value-RLE (A&P) vs mask-RLE (paper)\n" + table)
    for p in (2, 16, 64):
        assert rows[("bslcv", p)].mmax_bytes > rows[("bslc", p)].mmax_bytes, p
        assert rows[("bslcv", p)].bytes_total > rows[("bslc", p)].bytes_total, p


def test_bench_folded_nonpow2(benchmark, work):
    """Folding extension: non-power-of-two P sits on the trend line of
    its power-of-two neighbours (cost-wise), and stays correct."""
    counts = (8, 11, 16, 24, 32)

    def sweep():
        return {p: run_method(work, "bsbrc", p)[0] for p in counts}

    import repro.volume.folded as folded_mod

    # run_method needs per-P subimage assembly; folded counts render
    # directly from the folded partition instead.
    from repro.pipeline.system import run_compositing
    from repro.render.raycast import render_subvolume
    from repro.volume.datasets import make_dataset
    from repro.analysis.metrics import measure

    def run_folded(p):
        if p & (p - 1) == 0:
            return run_method(work, "bsbrc", p)[0]
        volume, transfer = make_dataset(DATASET)
        plan = folded_mod.partition_folded(volume.shape, p)
        images = [
            render_subvolume(volume, transfer, work.camera, plan.extent(r))
            for r in range(p)
        ]
        run = run_compositing(images, "bsbrc", plan, work.camera.view_dir, SP2)
        return measure(run.stats, method="bsbrc", dataset=DATASET, image_size=384)

    rows = benchmark.pedantic(
        lambda: {p: run_folded(p) for p in counts}, rounds=1, iterations=1
    )
    table = format_generic(
        ["P", "T_total (ms)", "M_max (B)"],
        [(p, f"{r.t_total * 1e3:.2f}", r.mmax_bytes) for p, r in rows.items()],
    )
    emit("ablation_folded", "Folded (non-power-of-two) BSBRC scaling\n" + table)
    # Folded P=11 and P=24 land within the band of their pow2 neighbours.
    lo = min(rows[8].t_total, rows[16].t_total)
    hi = max(rows[8].t_total, rows[16].t_total)
    assert rows[11].t_total <= hi * 1.6 and rows[11].t_total >= lo * 0.5
    lo = min(rows[16].t_total, rows[32].t_total)
    hi = max(rows[16].t_total, rows[32].t_total)
    assert rows[24].t_total <= hi * 1.6 and rows[24].t_total >= lo * 0.5


def test_bench_render_load_balance(benchmark):
    """Weighted-median partitioning (the paper's future-work render
    load balancing): visible-voxel imbalance collapses, while the
    compositing phase stays correct and in the same cost band."""
    from repro.pipeline.config import RunConfig
    from repro.pipeline.system import SortLastSystem
    from repro.volume.datasets import make_dataset
    from repro.volume.partition import (
        recursive_bisect,
        render_load_weights,
    )

    def sweep():
        volume, transfer = make_dataset(DATASET)
        weights = render_load_weights(volume.data, transfer)
        out = {}
        for label, kw in (("midpoint", {}), ("weighted", {"weights": weights})):
            plan = recursive_bisect(volume.shape, P, **kw)
            loads = []
            for rank in range(P):
                sx, sy, sz = plan.extent(rank).slices()
                loads.append(float((transfer.opacity(volume.data[sx, sy, sz]) > 0).sum()))
            out[label] = (max(loads) / max(1.0, min(loads)), loads)
        return out

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_generic(
        ["partition", "visible-voxel imbalance (max/min)"],
        [(label, f"{imb:.2f}") for label, (imb, _) in rows.items()],
    )
    emit("ablation_render_balance", "Render load balancing (weighted splits)\n" + table)
    assert rows["weighted"][0] < rows["midpoint"][0]
    assert rows["weighted"][0] < 3.0

    # End-to-end correctness with balancing on (small config, full check).
    cfg = RunConfig(
        dataset=DATASET, method="bsbrc", num_ranks=8, image_size=96,
        volume_shape=(64, 64, 28), balance_render_load=True,
    )
    result = SortLastSystem(cfg).run()
    assert result.final_image.max_abs_diff(result.reference_image()) < 1e-9


def test_bench_async_overlap(benchmark, work):
    """Nonblocking direct send vs the rendezvous-round version on the
    high-latency Ethernet machine: posting all transfers up front
    removes every partner-alignment stall (wait = 0) and can only help
    the makespan — the bytes are identical by construction."""
    from repro.cluster.model import ETHERNET_CLUSTER

    def sweep():
        out = {}
        for method in ("direct", "direct-async"):
            for p in (8, 32):
                row, run = run_method(work, method, p, machine=ETHERNET_CLUSTER)
                out[(method, p)] = (row, run.stats.makespan, run.stats.t_wait_max)
        return out

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_generic(
        ["method", "P", "T_total (ms)", "makespan (ms)", "max wait (ms)"],
        [
            (m, p, f"{row.t_total * 1e3:.2f}", f"{mk * 1e3:.2f}", f"{w * 1e3:.2f}")
            for (m, p), (row, mk, w) in rows.items()
        ],
    )
    emit("ablation_async", "Nonblocking overlap (Ethernet-latency machine)\n" + table)
    for p in (8, 32):
        _, mk_sync, wait_sync = rows[("direct", p)]
        _, mk_async, wait_async = rows[("direct-async", p)]
        assert wait_async == 0.0
        assert mk_async <= mk_sync * 1.01
        assert wait_sync > 0.0  # the rounds really do stall


def test_bench_baselines_vs_bsbrc(benchmark, work):
    """Related-work families on the same workload: binary-swap variants
    keep per-rank traffic O(A/P·logP)-ish while direct send pays P-1
    latencies and the tree serializes onto rank 0."""
    methods = ("bsbrc", "direct", "tree", "pipeline")

    def sweep():
        return {m: run_method(work, m, P)[0] for m in methods}

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_generic(
        ["method", "T_total (ms)", "M_max (B)", "makespan (ms)"],
        [
            (m, f"{r.t_total * 1e3:.2f}", r.mmax_bytes, f"{r.makespan * 1e3:.2f}")
            for m, r in rows.items()
        ],
    )
    emit("ablation_baselines", "Baseline families vs BSBRC\n" + table)
    # The tree funnels the whole image through rank 0: its critical-path
    # composite work exceeds the swap's distributed work.
    assert rows["tree"].t_total > rows["bsbrc"].t_total
    # The pipeline pays P-1 serialized ring steps: worse makespan.
    assert rows["pipeline"].makespan > rows["bsbrc"].makespan
