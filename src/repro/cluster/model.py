"""Machine cost model for the simulated distributed-memory multicomputer.

The paper analyses every compositing method with a linear communication
model and per-pixel computation constants (its eqs. (1)-(8)):

* ``Ts``      — start-up (latency) time per message, seconds
* ``Tc``      — transmission time per byte, seconds
* ``To``      — time of one *over* operation per pixel, seconds
* ``Tencode`` — run-length-encoding time per scanned pixel, seconds
* ``Tbound``  — bounding-rectangle scan time per pixel (first stage), seconds

The :data:`SP2` preset is calibrated against Table 1 of the paper so that
the plain binary-swap numbers land in the right regime: at ``P=2`` on a
384x384 image, BS composites ``A/2 = 73728`` pixels (~298 ms measured →
``To ≈ 4.0 µs``) and ships ``16 * A/2`` bytes (~29 ms measured →
``Tc ≈ 25 ns/byte ≈ 40 MB/s``, consistent with the SP2 High Performance
Switch).  Absolute agreement with the 1999 testbed is *not* a goal; the
constants only need to preserve the computation/communication balance so
that the paper's crossovers reproduce.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ConfigurationError

__all__ = [
    "MachineModel",
    "SP2",
    "SP2_FAST_NET",
    "SP2_SLOW_NET",
    "IDEALIZED",
    "T3E",
    "ETHERNET_CLUSTER",
    "MODERN_CLUSTER",
    "PRESETS",
]


@dataclass(frozen=True, slots=True)
class MachineModel:
    """Linear cost model of one node + interconnect of the multicomputer.

    All times are in **seconds**.  Instances are immutable; use
    :meth:`with_overrides` to derive variants for sensitivity sweeps.
    """

    name: str
    #: Message start-up latency (per message), seconds.
    ts: float
    #: Transmission time per byte, seconds.
    tc: float
    #: One *over* composite per pixel, seconds.
    to: float
    #: Run-length encode scan per pixel, seconds.
    tencode: float
    #: Bounding-rectangle scan per pixel (initial full-image scan), seconds.
    tbound: float
    #: Pack/copy cost per byte moved into a send buffer, seconds.  The paper
    #: folds buffer packing into computation time; a small per-byte constant
    #: models the ``memcpy`` traffic of steps 8-12 of the BSBRC algorithm.
    tpack: float = 0.0

    def __post_init__(self) -> None:
        for field in ("ts", "tc", "to", "tencode", "tbound", "tpack"):
            value = getattr(self, field)
            if not (value >= 0.0):  # also rejects NaN
                raise ConfigurationError(f"MachineModel.{field} must be >= 0, got {value!r}")

    # ---- cost helpers ----------------------------------------------------
    def message_time(self, nbytes: int) -> float:
        """Time to move one ``nbytes`` message across the network."""
        if nbytes < 0:
            raise ConfigurationError(f"nbytes must be >= 0, got {nbytes}")
        return self.ts + nbytes * self.tc

    def transfer_time(self, nbytes: int) -> float:
        """Per-byte portion only (no start-up)."""
        if nbytes < 0:
            raise ConfigurationError(f"nbytes must be >= 0, got {nbytes}")
        return nbytes * self.tc

    def over_time(self, npixels: int) -> float:
        """Time to composite ``npixels`` pixels with the over operator."""
        if npixels < 0:
            raise ConfigurationError(f"npixels must be >= 0, got {npixels}")
        return npixels * self.to

    def encode_time(self, npixels: int) -> float:
        """Time to RLE-scan ``npixels`` pixels."""
        if npixels < 0:
            raise ConfigurationError(f"npixels must be >= 0, got {npixels}")
        return npixels * self.tencode

    def bound_time(self, npixels: int) -> float:
        """Time to scan ``npixels`` pixels for the initial bounding rect."""
        if npixels < 0:
            raise ConfigurationError(f"npixels must be >= 0, got {npixels}")
        return npixels * self.tbound

    def pack_time(self, nbytes: int) -> float:
        """Time to pack ``nbytes`` into a send buffer."""
        if nbytes < 0:
            raise ConfigurationError(f"nbytes must be >= 0, got {nbytes}")
        return nbytes * self.tpack

    def with_overrides(self, **kwargs: float) -> "MachineModel":
        """Return a copy with some constants replaced (for sweeps)."""
        return replace(self, **kwargs)


#: Calibrated IBM SP2 (POWER2 66.7 MHz + High Performance Switch) preset.
SP2 = MachineModel(
    name="sp2",
    ts=50e-6,
    tc=25e-9,  # ~40 MB/s effective point-to-point bandwidth
    to=4.0e-6,
    tencode=0.80e-6,
    tbound=0.15e-6,
    tpack=1.0e-9,
)

#: SP2 node speed with a 4x faster network (sensitivity study).
SP2_FAST_NET = SP2.with_overrides(name="sp2-fast-net", tc=SP2.tc / 4.0)

#: SP2 node speed with a 4x slower network (sensitivity study).
SP2_SLOW_NET = SP2.with_overrides(name="sp2-slow-net", tc=SP2.tc * 4.0)

#: Zero-latency, zero-cost machine — useful in tests where only the data
#: flow (not the timing) is under test.
IDEALIZED = MachineModel(
    name="idealized", ts=0.0, tc=0.0, to=0.0, tencode=0.0, tbound=0.0, tpack=0.0
)

# --- other machine architectures (paper §5, future work #3) ----------------
#: Cray T3E-class node/network: ~2x the SP2's CPU speed, a much faster,
#: lower-latency torus (~300 MB/s, ~10 us) — compute/communication balance
#: tilts strongly toward computation, favouring the cheap-CPU methods.
T3E = MachineModel(
    name="t3e",
    ts=10e-6,
    tc=3.3e-9,
    to=2.0e-6,
    tencode=0.40e-6,
    tbound=0.075e-6,
    tpack=0.5e-9,
)

#: Commodity Ethernet cluster of SP2-era workstations: similar CPUs but a
#: shared 100 Mb/s network with high start-up cost — the regime where
#: message-size reduction (BSLC/BSBRC) matters most.
ETHERNET_CLUSTER = MachineModel(
    name="ethernet-cluster",
    ts=500e-6,
    tc=100e-9,
    to=4.0e-6,
    tencode=0.80e-6,
    tbound=0.15e-6,
    tpack=1.0e-9,
)

#: A modern many-core cluster node (~1000x the POWER2's per-pixel speed)
#: with 100 Gb/s-class fabric: both terms shrink, latency dominates tiny
#: messages — the regime where the paper's CPU/byte trade-offs compress.
MODERN_CLUSTER = MachineModel(
    name="modern-cluster",
    ts=2e-6,
    tc=0.1e-9,
    to=4.0e-9,
    tencode=0.8e-9,
    tbound=0.15e-9,
    tpack=0.01e-9,
)

PRESETS: dict[str, MachineModel] = {
    m.name: m
    for m in (
        SP2,
        SP2_FAST_NET,
        SP2_SLOW_NET,
        IDEALIZED,
        T3E,
        ETHERNET_CLUSTER,
        MODERN_CLUSTER,
    )
}
