"""Tests for the Compositor framework pieces (base.py, registry)."""

import numpy as np
import pytest

from repro.compositing.base import (
    CompositeOutcome,
    Compositor,
    composite_rect_pixels,
    split_axis_for,
)
from repro.compositing.registry import available_methods, make_compositor, register
from repro.errors import CompositingError, ConfigurationError
from repro.render.image import SubImage
from repro.types import Rect


class TestCompositeOutcome:
    def test_requires_exactly_one_ownership(self):
        image = SubImage.blank(4, 4)
        with pytest.raises(CompositingError):
            CompositeOutcome(image=image)
        with pytest.raises(CompositingError):
            CompositeOutcome(
                image=image,
                owned_rect=Rect(0, 0, 2, 2),
                owned_indices=np.arange(4),
            )

    def test_rect_owned_values(self):
        image = SubImage.blank(4, 4)
        image.intensity[1, 1] = 0.5
        image.opacity[1, 1] = 0.25
        outcome = CompositeOutcome(image=image, owned_rect=Rect(1, 1, 2, 3))
        values_i, values_a = outcome.owned_values()
        assert values_i.tolist() == [0.5, 0.0]
        assert values_a.tolist() == [0.25, 0.0]
        assert outcome.owned_pixel_count == 2

    def test_index_owned_values(self):
        image = SubImage.blank(2, 2)
        image.intensity[1, 1] = 0.7
        outcome = CompositeOutcome(
            image=image, owned_indices=np.array([0, 3], dtype=np.int64)
        )
        values_i, _ = outcome.owned_values()
        assert values_i.tolist() == [0.0, 0.7]
        assert outcome.owned_pixel_count == 2

    def test_owned_values_are_copies(self):
        image = SubImage.blank(2, 2)
        outcome = CompositeOutcome(image=image, owned_rect=Rect(0, 0, 2, 2))
        values_i, _ = outcome.owned_values()
        values_i[0] = 99.0
        assert image.intensity[0, 0] == 0.0


class TestSplitAxisFor:
    def test_longest(self):
        assert split_axis_for(Rect(0, 0, 10, 4), 0, "longest") == 0
        assert split_axis_for(Rect(0, 0, 4, 10), 0, "longest") == 1
        assert split_axis_for(Rect(0, 0, 4, 4), 0, "longest") == 0  # tie → rows

    def test_alternate(self):
        assert split_axis_for(Rect(0, 0, 4, 4), 0, "alternate") == 0
        assert split_axis_for(Rect(0, 0, 4, 4), 1, "alternate") == 1
        assert split_axis_for(Rect(0, 0, 4, 4), 2, "alternate") == 0

    def test_rows(self):
        for stage in range(4):
            assert split_axis_for(Rect(0, 0, 4, 9), stage, "rows") == 0

    def test_unknown_policy(self):
        with pytest.raises(CompositingError):
            split_axis_for(Rect(0, 0, 4, 4), 0, "diagonal")


class TestCompositeRectPixels:
    def test_empty_rect_noop(self):
        image = SubImage.blank(4, 4)
        composite_rect_pixels(
            image, Rect.empty(), np.zeros((0, 0)), np.zeros((0, 0)),
            local_in_front=True,
        )
        assert image.nonblank_count() == 0

    def test_local_in_front_semantics(self):
        image = SubImage.blank(1, 1)
        image.intensity[0, 0] = 0.8
        image.opacity[0, 0] = 1.0  # opaque local pixel
        recv_i = np.array([[0.5]])
        recv_a = np.array([[0.5]])
        front = image.copy()
        composite_rect_pixels(front, Rect(0, 0, 1, 1), recv_i, recv_a,
                              local_in_front=True)
        assert front.intensity[0, 0] == pytest.approx(0.8)  # local hides recv
        behind = image.copy()
        composite_rect_pixels(behind, Rect(0, 0, 1, 1), recv_i, recv_a,
                              local_in_front=False)
        assert behind.intensity[0, 0] == pytest.approx(0.5 + 0.5 * 0.8)


class TestRegistry:
    def test_known_methods_present(self):
        methods = available_methods()
        for name in ("bs", "bsbr", "bslc", "bsbrc", "bslcv", "direct",
                     "direct-async", "tree", "pipeline"):
            assert name in methods

    def test_unknown_method(self):
        with pytest.raises(ConfigurationError):
            make_compositor("nope")

    def test_case_insensitive(self):
        assert make_compositor("BSBRC").name == "bsbrc"

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register("bs", lambda: None)

    def test_custom_registration(self):
        class Custom(Compositor):
            name = "custom-test-method"

            async def run(self, ctx, image, plan, view_dir):
                return CompositeOutcome(image=image, owned_rect=image.full_rect())

        register("custom-test-method", Custom)
        assert make_compositor("custom-test-method").name == "custom-test-method"

    def test_options_forwarded(self):
        # Paper aliases route through the engine; schedule options land
        # on the schedule plane.
        compositor = make_compositor("bslc", section=11)
        assert compositor.schedule.section == 11
        compositor = make_compositor("bsbrc", split_policy="alternate")
        assert compositor.schedule.split_policy == "alternate"

    def test_check_plan_mismatch(self):
        from repro.cluster.model import IDEALIZED
        from repro.cluster.simulator import Simulator
        from repro.errors import RankFailedError
        from repro.volume.partition import recursive_bisect

        plan = recursive_bisect((16, 16, 16), 4)

        async def program(ctx):
            compositor = make_compositor("bs")
            await compositor.run(
                ctx, SubImage.blank(8, 8), plan, np.array([0, 0, -1.0])
            )

        with pytest.raises(RankFailedError) as excinfo:
            Simulator(2, IDEALIZED).run(program)
        assert isinstance(excinfo.value.original, CompositingError)
