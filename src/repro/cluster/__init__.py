"""Simulated distributed-memory multicomputer substrate.

The paper ran on an 80-node IBM SP2; this environment has one core and no
MPI, so the cluster is *simulated*: rank programs are coroutines scheduled
deterministically with per-rank virtual clocks priced by a
:class:`~repro.cluster.model.MachineModel` (see DESIGN.md §6 for the exact
timing semantics).  Real data flows through the simulated messages, so
algorithm correctness is end-to-end testable while timing is exactly the
paper's analytic regime.
"""

from .backend import (
    BACKENDS,
    Backend,
    BackendRunResult,
    MPBackend,
    MPIBackend,
    SimBackend,
    make_backend,
)
from .collectives import allreduce, bcast, gather
from .context import RankContext, payload_nbytes
from .events import (
    ANY_TAG,
    BarrierOp,
    ComputeOp,
    IrecvOp,
    IsendOp,
    Op,
    RecvOp,
    Request,
    SendOp,
    SendRecvOp,
    WaitOp,
)
from .model import (
    ETHERNET_CLUSTER,
    IDEALIZED,
    MODERN_CLUSTER,
    PRESETS,
    SP2,
    SP2_FAST_NET,
    SP2_SLOW_NET,
    T3E,
    MachineModel,
)
from .protocol import (
    BaseRankContext,
    EncodedPayload,
    decode_payload,
    drive,
    encode_payload,
)
from .explore import (
    EXPLORE_REPORT_SCHEMA,
    Explorer,
    ExploreReport,
    ExploreScenario,
    InterleavingResult,
    default_fault_plan,
)
from .run_timeline import TIMELINE_SCHEMA, RunTimeline, schedule_meta
from .schedule_policy import (
    ADVERSARIAL_MODES,
    POLICIES,
    SCHED_TRACE_SCHEMA,
    AdversarialPolicy,
    DeterministicPolicy,
    ForcedPrefixPolicy,
    RandomPolicy,
    ReplayPolicy,
    SchedulePolicy,
    load_trace,
    make_policy,
)
from .simulator import Simulator, TraceEvent
from .stats import PRE_STAGE, RankStats, RunResult, StageStats, merge_counters
from .topology import (
    TreeStep,
    binary_swap_partner,
    binary_swap_schedule,
    binary_tree_schedule,
    is_power_of_two,
    keeps_low_half,
    log2_int,
    ring_next,
    ring_prev,
)

__all__ = [
    "ADVERSARIAL_MODES",
    "ANY_TAG",
    "AdversarialPolicy",
    "BACKENDS",
    "Backend",
    "DeterministicPolicy",
    "EXPLORE_REPORT_SCHEMA",
    "ExploreReport",
    "ExploreScenario",
    "Explorer",
    "ForcedPrefixPolicy",
    "InterleavingResult",
    "POLICIES",
    "RandomPolicy",
    "ReplayPolicy",
    "SCHED_TRACE_SCHEMA",
    "SchedulePolicy",
    "default_fault_plan",
    "load_trace",
    "make_policy",
    "schedule_meta",
    "BackendRunResult",
    "BarrierOp",
    "BaseRankContext",
    "EncodedPayload",
    "ComputeOp",
    "ETHERNET_CLUSTER",
    "IDEALIZED",
    "MODERN_CLUSTER",
    "MPBackend",
    "MPIBackend",
    "MachineModel",
    "Op",
    "PRESETS",
    "PRE_STAGE",
    "RankContext",
    "RankStats",
    "IrecvOp",
    "IsendOp",
    "RecvOp",
    "Request",
    "RunResult",
    "RunTimeline",
    "SP2",
    "SP2_FAST_NET",
    "SP2_SLOW_NET",
    "SendOp",
    "SimBackend",
    "T3E",
    "SendRecvOp",
    "Simulator",
    "StageStats",
    "TIMELINE_SCHEMA",
    "TraceEvent",
    "WaitOp",
    "TreeStep",
    "allreduce",
    "bcast",
    "binary_swap_partner",
    "binary_swap_schedule",
    "binary_tree_schedule",
    "decode_payload",
    "drive",
    "encode_payload",
    "gather",
    "is_power_of_two",
    "keeps_low_half",
    "log2_int",
    "make_backend",
    "merge_counters",
    "payload_nbytes",
    "ring_next",
    "ring_prev",
]
