"""Smoke tests that keep the example scripts runnable.

Every example must parse ``--help``; the two fastest also run end to end
(the rest exercise the same library paths already covered elsewhere).
"""

import os
import runpy
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")
ALL_EXAMPLES = [
    "quickstart.py",
    "compare_methods.py",
    "viewpoint_rotation.py",
    "custom_dataset.py",
    "scaling_study.py",
    "timeline_gantt.py",
]


def run_example(name: str, argv: list[str]) -> None:
    path = os.path.join(EXAMPLES_DIR, name)
    old_argv = sys.argv
    sys.argv = [path] + argv
    try:
        runpy.run_path(path, run_name="__main__")
    except SystemExit as exit_info:
        if exit_info.code not in (0, None):
            raise AssertionError(f"{name} exited with {exit_info.code}")
    finally:
        sys.argv = old_argv


class TestHelp:
    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_help_parses(self, name, capsys):
        # argparse exits 0 on --help; run_example swallows clean exits.
        run_example(name, ["--help"])
        out = capsys.readouterr().out
        assert "usage" in out.lower()


class TestEndToEnd:
    def test_quickstart(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        run_example("quickstart.py", ["--out", str(tmp_path / "q.pgm")])
        out = capsys.readouterr().out
        assert "T_total" in out
        assert (tmp_path / "q.pgm").exists()

    def test_custom_dataset(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        run_example(
            "custom_dataset.py", ["--ranks", "4", "--out", str(tmp_path / "t.pgm")]
        )
        out = capsys.readouterr().out
        assert "torus" in out
        assert (tmp_path / "t.pgm").exists()

    def test_timeline_gantt(self, capsys):
        run_example("timeline_gantt.py", ["--ranks", "4", "--methods", "bsbr"])
        out = capsys.readouterr().out
        assert "legend" in out
