"""Lightweight performance counters and timers for the hot paths.

The renderer, the codecs and the experiment harness account their work
here so that benchmarks (``benchmarks/bench_hotpaths.py``) and curious
users can see *where* time and bytes go without attaching a profiler.

Design constraints:

* **Near-zero overhead when idle.**  Counters are plain dict adds and
  are bumped at call/chunk granularity, never per pixel or per sample
  element.  Timers call ``time.perf_counter``/``time.process_time``
  twice per timed region, so they wrap whole renders or harness stages,
  not inner loops.
* **Process-global, explicitly resettable.**  A module-level registry
  keeps the API to three verbs: :func:`incr`, :func:`timer`,
  :func:`report` (plus :func:`reset`).  Thread safety is not a goal —
  the simulator is single-process by design.

Example
-------
>>> from repro import perf
>>> perf.reset()
>>> with perf.timer("render"):
...     perf.incr("rays", 1024)
>>> rep = perf.report()
>>> rep["counters"]["rays"]
1024
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "incr",
    "timer",
    "counter",
    "report",
    "reset",
    "format_report",
]

#: name -> accumulated count (ints or floats).
_COUNTERS: dict[str, float] = {}
#: name -> [wall_seconds, cpu_seconds, calls].
_TIMERS: dict[str, list[float]] = {}


def incr(name: str, amount: float = 1) -> None:
    """Add ``amount`` to counter ``name`` (creating it at zero)."""
    _COUNTERS[name] = _COUNTERS.get(name, 0) + amount


def counter(name: str) -> float:
    """Current value of counter ``name`` (0 if never bumped)."""
    return _COUNTERS.get(name, 0)


@contextmanager
def timer(name: str) -> Iterator[None]:
    """Accumulate wall and CPU time of the ``with`` body under ``name``."""
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    try:
        yield
    finally:
        wall1 = time.perf_counter()
        cpu1 = time.process_time()
        slot = _TIMERS.get(name)
        if slot is None:
            slot = [0.0, 0.0, 0]
            _TIMERS[name] = slot
        slot[0] += wall1 - wall0
        slot[1] += cpu1 - cpu0
        slot[2] += 1


def report() -> dict:
    """Snapshot of all counters and timers (JSON-serializable)."""
    return {
        "counters": dict(_COUNTERS),
        "timers": {
            name: {"wall_s": slot[0], "cpu_s": slot[1], "calls": slot[2]}
            for name, slot in _TIMERS.items()
        },
    }


def reset() -> None:
    """Zero every counter and timer."""
    _COUNTERS.clear()
    _TIMERS.clear()


def format_report() -> str:
    """Human-readable one-line-per-entry rendering of :func:`report`."""
    lines = ["perf counters:"]
    if not _COUNTERS and not _TIMERS:
        return "perf counters: (empty)"
    for name in sorted(_COUNTERS):
        value = _COUNTERS[name]
        shown = f"{value:.6g}" if isinstance(value, float) else str(value)
        lines.append(f"  {name:40s} {shown}")
    if _TIMERS:
        lines.append("perf timers:")
        for name in sorted(_TIMERS):
            wall, cpu, calls = _TIMERS[name]
            lines.append(
                f"  {name:40s} wall {wall * 1e3:10.2f} ms  "
                f"cpu {cpu * 1e3:10.2f} ms  calls {calls}"
            )
    return "\n".join(lines)
