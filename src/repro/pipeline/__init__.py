"""End-to-end sort-last-sparse pipeline."""

from .config import RunConfig
from .system import (
    CompositingRun,
    SortLastSystem,
    SystemResult,
    assemble_final,
    run_compositing,
    validate_ownership,
)

__all__ = [
    "CompositingRun",
    "RunConfig",
    "SortLastSystem",
    "SystemResult",
    "assemble_final",
    "run_compositing",
    "validate_ownership",
]
