"""Hypothesis property suite over the whole compositing stack.

These generate arbitrary sparse images, processor counts, viewpoints and
method options, and assert the master invariant (parallel composite ==
sequential depth-order composite) plus cross-method agreement on bytes
and results.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster.model import IDEALIZED
from repro.pipeline.system import assemble_final, run_compositing, validate_ownership
from repro.render.image import SubImage
from repro.render.reference import composite_sequential
from repro.volume.partition import depth_order, recursive_bisect

COMMON = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def build_images(seed, num_ranks, height, width, density):
    rng = np.random.default_rng(seed)
    images = []
    for _ in range(num_ranks):
        mask = rng.random((height, width)) < density
        opacity = np.where(mask, rng.uniform(0.05, 0.95, (height, width)), 0.0)
        intensity = np.where(mask, rng.uniform(0.0, 1.0, (height, width)) * opacity, 0.0)
        images.append(SubImage(intensity=intensity, opacity=opacity))
    return images


workload_strategy = st.tuples(
    st.integers(0, 10_000),               # seed
    st.sampled_from([2, 4, 8]),           # num_ranks
    st.integers(8, 40),                   # height
    st.integers(8, 40),                   # width
    st.floats(0.0, 1.0),                  # density
    st.tuples(st.floats(-1, 1), st.floats(-1, 1), st.floats(-1, 1)),  # view
)


def run_case(method, seed, num_ranks, height, width, density, view, **options):
    images = build_images(seed, num_ranks, height, width, density)
    plan = recursive_bisect((32, 32, 16), num_ranks)
    view_dir = np.asarray(view)
    reference = composite_sequential(images, depth_order(plan, view_dir))
    run = run_compositing(images, method, plan, view_dir, IDEALIZED, **options)
    final = assemble_final(run.outcomes, height, width)
    return final, reference, run


class TestMasterInvariant:
    @given(case=workload_strategy)
    @settings(**COMMON)
    def test_bs(self, case):
        final, reference, _ = run_case("bs", *case)
        assert final.max_abs_diff(reference) < 1e-9

    @given(case=workload_strategy)
    @settings(**COMMON)
    def test_bsbr(self, case):
        final, reference, run = run_case("bsbr", *case)
        assert final.max_abs_diff(reference) < 1e-9
        validate_ownership(run.outcomes, *final.shape)

    @given(case=workload_strategy, section=st.sampled_from([1, 3, 16, 128]))
    @settings(**COMMON)
    def test_bslc(self, case, section):
        final, reference, run = run_case("bslc", *case, section=section)
        assert final.max_abs_diff(reference) < 1e-9
        validate_ownership(run.outcomes, *final.shape)

    @given(case=workload_strategy, policy=st.sampled_from(["longest", "alternate", "rows"]))
    @settings(**COMMON)
    def test_bsbrc(self, case, policy):
        final, reference, run = run_case("bsbrc", *case, split_policy=policy)
        assert final.max_abs_diff(reference) < 1e-9
        validate_ownership(run.outcomes, *final.shape)

    @given(case=workload_strategy)
    @settings(**COMMON)
    def test_direct(self, case):
        final, reference, _ = run_case("direct", *case)
        assert final.max_abs_diff(reference) < 1e-9

    @given(case=workload_strategy)
    @settings(**COMMON)
    def test_pipeline(self, case):
        final, reference, _ = run_case("pipeline", *case)
        assert final.max_abs_diff(reference) < 1e-9

    @given(case=workload_strategy)
    @settings(**COMMON)
    def test_tree(self, case):
        final, reference, _ = run_case("tree", *case)
        assert final.max_abs_diff(reference) < 1e-9


class TestCrossMethodAgreement:
    @given(case=workload_strategy)
    @settings(**COMMON)
    def test_all_swap_methods_identical_output(self, case):
        """BS and its sparse variants must agree bitwise — they perform the
        identical over operations, just ship different bytes."""
        finals = {}
        for method in ("bs", "bsbr", "bsbrc"):
            final, _, _ = run_case(method, *case)
            finals[method] = final
        assert finals["bs"].max_abs_diff(finals["bsbr"]) == 0.0
        assert finals["bs"].max_abs_diff(finals["bsbrc"]) == 0.0

    @given(case=workload_strategy)
    @settings(**COMMON)
    def test_sparse_methods_never_ship_more_than_bs(self, case):
        """Per-rank received bytes: BSBR/BSBRC <= BS + header overhead."""
        _, _, run_bs = run_case("bs", *case)
        _, _, run_bsbr = run_case("bsbr", *case)
        _, _, run_bsbrc = run_case("bsbrc", *case)
        num_ranks = case[1]
        stages = num_ranks.bit_length() - 1
        header_slack = 8 * stages
        code_slack = 2 * (case[2] * case[3] + 2 * stages)  # worst-case RLE
        for rank in range(num_ranks):
            bs_bytes = run_bs.stats.rank_stats[rank].bytes_recv
            assert (
                run_bsbr.stats.rank_stats[rank].bytes_recv
                <= bs_bytes + header_slack
            )
            assert (
                run_bsbrc.stats.rank_stats[rank].bytes_recv
                <= bs_bytes + header_slack + code_slack
            )


class TestExtremes:
    @pytest.mark.parametrize("method", ["bs", "bsbr", "bslc", "bsbrc", "direct", "tree", "pipeline"])
    def test_fully_opaque_images(self, method):
        images = []
        for rank in range(4):
            img = SubImage.blank(16, 16)
            img.intensity[:] = 0.1 * (rank + 1)
            img.opacity[:] = 1.0
            images.append(img)
        plan = recursive_bisect((16, 16, 16), 4)
        view = np.array([0.2, 0.3, -0.9])
        reference = composite_sequential(images, depth_order(plan, view))
        run = run_compositing(images, method, plan, view, IDEALIZED)
        final = assemble_final(run.outcomes, 16, 16)
        assert final.max_abs_diff(reference) < 1e-12

    @pytest.mark.parametrize("method", ["bsbr", "bsbrc"])
    def test_single_nonblank_pixel(self, method):
        """Tiny bounding rects travel across all stages correctly."""
        images = [SubImage.blank(16, 16) for _ in range(8)]
        images[5].intensity[3, 11] = 0.7
        images[5].opacity[3, 11] = 0.4
        plan = recursive_bisect((32, 32, 16), 8)
        view = np.array([0.1, -0.5, -0.8])
        reference = composite_sequential(images, depth_order(plan, view))
        run = run_compositing(images, method, plan, view, IDEALIZED)
        final = assemble_final(run.outcomes, 16, 16)
        assert final.max_abs_diff(reference) == 0.0
        assert final.nonblank_count() == 1
