"""The sort-last-sparse system: partition → render → composite → gather.

Two entry points:

* :func:`run_compositing` — the paper's measurement unit: given already
  rendered per-rank subimages, run just the compositing phase on the
  simulated cluster and return per-rank outcomes plus the timing stats
  that populate Tables 1-2.
* :class:`SortLastSystem` — the full pipeline driven by a
  :class:`~repro.pipeline.config.RunConfig`, executed end to end on a
  pluggable :class:`~repro.cluster.backend.Backend`: every rank renders
  its subvolume *inside* its rank program, composites, and the owned
  tiles are gathered to rank 0 over the same substrate.  The simulator
  and the multiprocessing backend produce bit-identical final images
  (tested); the result carries a unified
  :class:`~repro.cluster.run_timeline.RunTimeline` either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

import numpy as np

from ..cluster.backend import Backend, BackendRunResult, SimBackend, make_backend
from ..cluster.faults import FaultPlan, crash_phase_of
from ..cluster.model import MachineModel
from ..cluster.run_timeline import RunTimeline
from ..cluster.stats import RankStats, RunResult
from ..compositing.base import CompositeOutcome, Compositor
from ..compositing.registry import make_compositor
from ..errors import CompositingError, RankFailedError
from ..render.camera import Camera
from ..render.image import SubImage
from ..render.reference import composite_sequential
from ..volume.folded import FoldedPartition, folded_depth_order, refold_survivors
from ..volume.partition import PartitionPlan, depth_order
from .assemble import assemble_outcomes
from .config import RunConfig
from .phases import (
    GATHER_STAGE,
    build_scene,
    degraded_rank_program,
    pipeline_rank_program,
)

__all__ = [
    "CompositingRun",
    "SystemResult",
    "SortLastSystem",
    "run_compositing",
    "assemble_final",
    "validate_ownership",
    "GATHER_STAGE",
]


@dataclass
class CompositingRun:
    """Outcome of one compositing phase."""

    compositor: Compositor
    outcomes: list[CompositeOutcome]
    stats: RunResult

    @property
    def method(self) -> str:
        return self.compositor.name


def run_compositing(
    images: Sequence[SubImage],
    method: str | Compositor,
    plan: PartitionPlan | FoldedPartition,
    view_dir: np.ndarray,
    model: MachineModel,
    **method_options: Any,
) -> CompositingRun:
    """Composite pre-rendered subimages on the simulated cluster.

    ``images[r]`` is rank ``r``'s rendered subimage; inputs are copied,
    not mutated.  Returns outcomes plus the :class:`RunResult` whose
    totals are exactly the compositing-phase ``T_comp``/``T_comm``.

    Passing a :class:`~repro.volume.folded.FoldedPartition` (any rank
    count) automatically wraps swap-structured methods in a
    :class:`~repro.compositing.folding.FoldedCompositor`.
    """
    num_ranks = len(images)
    if plan.num_ranks != num_ranks:
        raise CompositingError(
            f"{num_ranks} images supplied for a {plan.num_ranks}-rank plan"
        )
    compositor = (
        make_compositor(method, **method_options) if isinstance(method, str) else method
    )
    if isinstance(plan, FoldedPartition):
        from ..compositing.folding import FoldedCompositor

        if not isinstance(compositor, FoldedCompositor):
            compositor = FoldedCompositor(compositor)
    view_dir = np.asarray(view_dir, dtype=np.float64)
    outcomes: list[CompositeOutcome | None] = [None] * num_ranks

    async def program(ctx):
        local = images[ctx.rank].copy()
        outcomes[ctx.rank] = await compositor.run(ctx, local, plan, view_dir)

    result = SimBackend().run(num_ranks, program, model=model)
    assert all(o is not None for o in outcomes)
    return CompositingRun(
        compositor=compositor,
        outcomes=outcomes,  # type: ignore[arg-type]
        stats=result.to_run_result(),
    )


def validate_ownership(
    outcomes: Sequence[CompositeOutcome], height: int, width: int
) -> None:
    """Check that rank ownerships partition the ``height x width`` image
    exactly once.

    Methods where one rank ends with the whole image (binary tree) only
    pass when a single outcome is supplied — empty ownerships contribute
    nothing.
    """
    seen = np.zeros(height * width, dtype=np.int32)
    for outcome in outcomes:
        if outcome.owned_rect is not None:
            rect = outcome.owned_rect
            if rect.is_empty:
                continue
            flat = (
                np.arange(rect.y0, rect.y1)[:, None] * width
                + np.arange(rect.x0, rect.x1)[None, :]
            ).ravel()
            seen[flat] += 1
        else:
            seen[outcome.owned_indices] += 1  # type: ignore[index]
    if not np.all(seen == 1):
        missing = int((seen == 0).sum())
        dup = int((seen > 1).sum())
        raise CompositingError(
            f"ownership is not a partition: {missing} unowned, {dup} multiply-owned pixels"
        )


def assemble_final(
    outcomes: Sequence[CompositeOutcome], height: int, width: int
) -> SubImage:
    """Merge every rank's owned pixels into the display image (see
    :func:`~repro.pipeline.assemble.assemble_tiles` for the one scatter
    routine behind every backend path)."""
    return assemble_outcomes(outcomes, height, width)


def _strip_stage(rank_stats: Sequence[RankStats], stage: int) -> list[RankStats]:
    """Per-rank stats with one stage bucket removed (shared buckets)."""
    out: list[RankStats] = []
    for rs in rank_stats:
        copy = RankStats(rank=rs.rank, events=list(rs.events))
        for key, bucket in rs.stages.items():
            if key != stage:
                copy.stages[key] = bucket
        out.append(copy)
    return out


def _compositing_stats(backend_result: BackendRunResult) -> RunResult:
    """Compositing-phase view of a unified pipeline run.

    Drops the :data:`GATHER_STAGE` bucket.  On the simulator the
    filtered makespan is exact: rendering charges no virtual time, and a
    rank's clock equals its accumulated ``comp + comm + wait``, so the
    max filtered ``elapsed_time`` equals the makespan of a
    compositing-only run.
    """
    stats = _strip_stage(backend_result.rank_stats, GATHER_STAGE)
    makespan = max((rs.elapsed_time for rs in stats), default=0.0)
    return RunResult(
        num_ranks=backend_result.num_ranks,
        returns=[None] * backend_result.num_ranks,
        rank_stats=stats,
        makespan=makespan,
    )


@dataclass
class SystemResult:
    """Everything the full pipeline produces."""

    config: RunConfig
    plan: PartitionPlan | FoldedPartition
    camera: Camera
    subimages: list[SubImage]
    compositing: CompositingRun
    final_image: SubImage
    #: Short name of the backend that executed the run ("sim"/"mp"/"mpi").
    backend_name: str = "sim"
    #: Unified run timeline (all phases, including the gather stage).
    timeline: Optional[RunTimeline] = field(default=None, repr=False)
    #: True when ranks were lost and the run re-folded onto survivors;
    #: the final image is partial-but-valid and the timeline carries the
    #: fault/degradation events.
    degraded: bool = False
    #: Original ranks lost before compositing (degraded runs only).
    failed_ranks: list[int] = field(default_factory=list)

    def reference_image(self) -> SubImage:
        """Sequential depth-order composite of the rendered subimages."""
        if isinstance(self.plan, FoldedPartition):
            order = folded_depth_order(self.plan, self.camera.view_dir)
        else:
            order = depth_order(self.plan, self.camera.view_dir)
        return composite_sequential(self.subimages, order)


class SortLastSystem:
    """Full sort-last-sparse pipeline on a pluggable execution backend."""

    def __init__(self, config: RunConfig):
        self.config = config

    def run(
        self,
        *,
        gather_final: bool = True,
        backend: str | Backend | None = None,
        trace: bool = False,
        fault_plan: Optional[FaultPlan] = None,
        degrade: bool = True,
    ) -> SystemResult:
        """Execute partition → render → composite (→ gather & assemble).

        ``backend`` overrides the config's ``backend`` field; pass a
        short name ("sim", "mp", "mpi") or a
        :class:`~repro.cluster.backend.Backend` instance.  ``trace``
        records the simulator's event trace into the timeline.

        ``fault_plan`` injects the plan's faults through the shared
        protocol layer (identically on every backend).  When a rank is
        lost before compositing and ``degrade`` is on, the run re-folds
        the bisection plan onto the survivors
        (:func:`~repro.volume.folded.refold_survivors`) and returns a
        valid image flagged ``degraded``; any other failure — or
        ``degrade=False`` — re-raises the typed error.
        """
        cfg = self.config
        if backend is None:
            backend = cfg.backend
        engine = make_backend(backend) if isinstance(backend, str) else backend

        # Host-side scene build: the result mirrors what every rank
        # derives (memoized, and inherited by forked mp workers).
        scene = build_scene(cfg)

        args: tuple = (cfg, gather_final)
        if fault_plan is not None:
            args = (cfg, gather_final, fault_plan)
        try:
            backend_result = engine.run(
                cfg.num_ranks,
                pipeline_rank_program,
                args,
                model=cfg.machine,
                trace=trace,
                timeout=cfg.comm_timeout,
            )
        except RankFailedError as err:
            if (
                not degrade
                or fault_plan is None
                or crash_phase_of(err) != "render"
                or not isinstance(scene.plan, PartitionPlan)
                or scene.plan.num_ranks < 2
            ):
                raise
            return self._run_degraded(
                engine, scene, err, gather_final=gather_final, trace=trace
            )

        return self._build_result(
            engine, scene, backend_result, gather_final=gather_final
        )

    def _run_degraded(
        self, engine: Backend, scene, err: RankFailedError, *, gather_final: bool,
        trace: bool,
    ) -> SystemResult:
        """Re-fold onto the survivors of a render-phase rank loss and
        rerun the pipeline clean (no fault injection) on the smaller
        folded machine."""
        cfg = self.config
        failed = [err.rank]
        compositor = make_compositor(cfg.method, **cfg.method_options)
        pairs_of = getattr(compositor, "refold_pairs", None)
        pairs = pairs_of(scene.plan.num_ranks) if pairs_of is not None else None
        folded, rank_map = refold_survivors(scene.plan, failed, pairs=pairs)
        orchestrator_events = list(err.events) + [
            {
                "event": "detected",
                "fault": "crash",
                "rank": err.rank,
                "phase": "render",
                "backend": engine.name,
            },
            {
                "event": "degraded",
                "failed_ranks": failed,
                "survivor_ranks": rank_map,
                "core_ranks": folded.core_ranks,
            },
        ]
        backend_result = engine.run(
            folded.num_ranks,
            degraded_rank_program,
            (cfg, folded, gather_final),
            model=cfg.machine,
            trace=trace,
            timeout=cfg.comm_timeout,
        )
        degraded_scene = type(scene)(
            scene.volume, scene.transfer, scene.camera, folded
        )
        return self._build_result(
            engine,
            degraded_scene,
            backend_result,
            gather_final=gather_final,
            degraded=True,
            failed_ranks=failed,
            extra_events=orchestrator_events,
        )

    def _build_result(
        self,
        engine: Backend,
        scene,
        backend_result: BackendRunResult,
        *,
        gather_final: bool,
        degraded: bool = False,
        failed_ranks: Optional[list[int]] = None,
        extra_events: Optional[list[dict]] = None,
    ) -> SystemResult:
        cfg = self.config
        subimages = [ret[0] for ret in backend_result.returns]
        outcomes = [ret[1] for ret in backend_result.returns]

        compositor = make_compositor(cfg.method, **cfg.method_options)
        if isinstance(scene.plan, FoldedPartition):
            from ..compositing.folding import FoldedCompositor

            compositor = FoldedCompositor(compositor)
        compositing = CompositingRun(
            compositor=compositor,
            outcomes=outcomes,
            stats=_compositing_stats(backend_result),
        )

        if gather_final:
            final = backend_result.returns[0][2]
            assert final is not None
        else:
            final = assemble_final(outcomes, scene.camera.height, scene.camera.width)

        timeline = backend_result.timeline(
            meta={
                "dataset": cfg.dataset,
                "method": cfg.method,
                "num_ranks": cfg.num_ranks,
                "image_size": cfg.image_size,
                "machine": cfg.machine.name,
                "renderer": cfg.renderer,
                "gather_final": gather_final,
                "degraded": degraded,
                "failed_ranks": list(failed_ranks or []),
            },
            events=extra_events,
        )
        return SystemResult(
            config=cfg,
            plan=scene.plan,
            camera=scene.camera,
            subimages=subimages,
            compositing=compositing,
            final_image=final,
            backend_name=engine.name,
            timeline=timeline,
            degraded=degraded,
            failed_ranks=list(failed_ranks or []),
        )
