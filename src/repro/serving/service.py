"""The render service: N sessions multiplexed over one bounded pool.

:class:`RenderService` is the concurrency layer above
:class:`~repro.pipeline.session.RenderSession`:

* **One shared :class:`WorkerPool`** (bounded threads) executes every
  session's jobs.  The simulator substrate releases the GIL poorly but
  models time, not wall time, so threads are the right grain: the pool
  bounds *admission* (how many renders are in flight), which is the
  resource the service actually rations.
* **Per-session serialization** — jobs within one session run in
  submission order on the session's warm backend; different sessions
  run concurrently up to the pool bound.
* **Per-session QoS on the recovery lattice** — opening a session picks
  a quality class that maps onto the existing recovery policies
  (:data:`QOS_POLICIES`): a ``degrade``-QoS session's job that loses a
  rank comes back *fast* as a flagged partial frame
  (``result.degraded``), a ``lossless`` session pays for checkpoints
  and resumes bit-identically, a ``strict`` session surfaces the typed
  error.  A job may still override its own ``recovery`` explicitly.
* **Per-job perf scoping** — each job runs under its own
  :class:`repro.perf.PerfRegistry` scope, so concurrent sessions never
  interleave counters; the report lands on the ticket.
* **Progressive delivery** — sim-substrate jobs get a
  :class:`~repro.cluster.progress.ProgressFeed` automatically;
  :meth:`JobTicket.stream` yields bit-exact partial frames while the
  render is still in flight.
"""

from __future__ import annotations

import itertools
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from .. import perf
from ..cluster.progress import ProgressEvent, ProgressFeed
from ..errors import ConfigurationError
from ..pipeline.config import RunConfig
from ..pipeline.session import RenderJob, RenderSession
from ..pipeline.system import SystemResult

__all__ = [
    "DEFAULT_QOS",
    "JobTicket",
    "QOS_POLICIES",
    "RenderService",
    "SessionHandle",
    "WorkerPool",
]

#: QoS class -> recovery policy on the lattice
#: ``abort < degrade < respawn < checkpoint-resume``.
QOS_POLICIES = {
    "strict": "abort",  # fail loudly; never serve a partial frame
    "degrade": "degrade",  # flagged partial frame fast, never an error
    "available": "respawn",  # replace lost workers in place (mp)
    "lossless": "checkpoint-resume",  # bit-identical recovery, slower
}

DEFAULT_QOS = "degrade"


class WorkerPool:
    """Bounded shared executor for render jobs.

    A thin, countable wrapper over :class:`ThreadPoolExecutor`: at most
    ``max_workers`` renders progress at once; excess submissions queue
    in FIFO order.  One pool is shared by every session of a service —
    and can also back :func:`repro.experiments.harness.run_grid`, so
    batch sweeps ride the same admission control as interactive jobs.
    """

    def __init__(self, max_workers: int = 2):
        if max_workers < 1:
            raise ConfigurationError(f"worker pool needs >= 1 worker, got {max_workers}")
        self.max_workers = max_workers
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-render"
        )
        self._lock = threading.Lock()
        self.jobs_submitted = 0
        self.jobs_active = 0
        self.peak_active = 0

    def submit(self, fn, *args: Any, **kwargs: Any) -> Future:
        with self._lock:
            self.jobs_submitted += 1

        def _tracked() -> Any:
            with self._lock:
                self.jobs_active += 1
                self.peak_active = max(self.peak_active, self.jobs_active)
            try:
                return fn(*args, **kwargs)
            finally:
                with self._lock:
                    self.jobs_active -= 1

        return self._executor.submit(_tracked)

    def shutdown(self, wait: bool = True) -> None:
        self._executor.shutdown(wait=wait)


@dataclass
class SessionHandle:
    """One client session registered with the service."""

    name: str
    session: RenderSession
    qos: str
    #: Serializes this session's jobs (its backend is single-tenant).
    lock: threading.Lock = field(default_factory=threading.Lock)
    jobs_submitted: int = 0


class JobTicket:
    """Handle for one submitted job: stream progress, then collect."""

    _ids = itertools.count(1)

    def __init__(
        self,
        session: str,
        job: RenderJob,
        feed: Optional[ProgressFeed],
        qos: str,
    ):
        self.job_id = f"job-{next(self._ids)}"
        self.session = session
        self.job = job
        self.feed = feed
        self.qos = qos
        self.future: Future = Future()
        #: The job's scoped perf report, set on completion.
        self.perf_report: Optional[dict] = None

    def stream(self, timeout: Optional[float] = None) -> Iterator[ProgressEvent]:
        """Yield the job's progress events as they happen (see
        :meth:`~repro.cluster.progress.ProgressFeed.stream`)."""
        if self.feed is None:
            return iter(())
        return self.feed.stream(timeout)

    def result(self, timeout: Optional[float] = None) -> SystemResult:
        """Block for the job's :class:`SystemResult` (raises what it raised)."""
        return self.future.result(timeout)

    def done(self) -> bool:
        return self.future.done()


class RenderService:
    """Multiplex concurrent render sessions over one bounded pool."""

    def __init__(
        self,
        base_config: RunConfig,
        *,
        max_workers: int = 2,
        pool: Optional[WorkerPool] = None,
    ):
        self.base_config = base_config
        self.pool = pool if pool is not None else WorkerPool(max_workers)
        self._sessions: dict[str, SessionHandle] = {}
        self._lock = threading.Lock()
        self._closed = False

    # ---- sessions ----------------------------------------------------------
    def open_session(
        self,
        name: str,
        *,
        qos: str = DEFAULT_QOS,
        config: Optional[RunConfig] = None,
        backend: Optional[str] = None,
    ) -> SessionHandle:
        """Register a session; idempotent for an existing ``name``/``qos``."""
        if qos not in QOS_POLICIES:
            raise ConfigurationError(
                f"unknown QoS class {qos!r}; available: {sorted(QOS_POLICIES)}"
            )
        with self._lock:
            if self._closed:
                raise ConfigurationError("render service is shut down")
            found = self._sessions.get(name)
            if found is not None:
                if found.qos != qos:
                    raise ConfigurationError(
                        f"session {name!r} already open with QoS {found.qos!r}"
                    )
                return found
            cfg = config if config is not None else self.base_config
            handle = SessionHandle(
                name=name,
                session=RenderSession(cfg, backend=backend, name=name),
                qos=qos,
            )
            self._sessions[name] = handle
            return handle

    def close_session(self, name: str) -> None:
        with self._lock:
            handle = self._sessions.pop(name, None)
        if handle is not None:
            handle.session.close()

    # ---- jobs --------------------------------------------------------------
    def submit(
        self,
        session: str = "default",
        job: Optional[RenderJob] = None,
        *,
        stream: bool = True,
        **deltas: Any,
    ) -> JobTicket:
        """Queue one job on ``session`` (opened with default QoS if new).

        ``stream=True`` (sim substrate only) attaches a fresh
        :class:`ProgressFeed` when the job does not carry one.  The
        session's QoS supplies the recovery policy unless the job sets
        its own.  Returns immediately with a :class:`JobTicket`.
        """
        with self._lock:
            handle = self._sessions.get(session)
        if handle is None:
            handle = self.open_session(session)
        if job is None:
            job = RenderJob(deltas=deltas)
        elif deltas:
            raise ConfigurationError("pass either a RenderJob or config deltas, not both")
        if job.recovery is None:
            job = RenderJob(
                deltas=job.deltas,
                gather_final=job.gather_final,
                trace=job.trace,
                fault_plan=job.fault_plan,
                recovery=QOS_POLICIES[handle.qos],
                schedule_policy=job.schedule_policy,
                progress=job.progress,
                label=job.label,
            )
        feed = job.progress
        if feed is None and stream and handle.session.backend.name == "sim":
            feed = ProgressFeed()
            job = RenderJob(
                deltas=job.deltas,
                gather_final=job.gather_final,
                trace=job.trace,
                fault_plan=job.fault_plan,
                recovery=job.recovery,
                schedule_policy=job.schedule_policy,
                progress=feed,
                label=job.label,
            )
        ticket = JobTicket(session, job, feed, handle.qos)
        handle.jobs_submitted += 1
        self.pool.submit(self._execute, handle, ticket)
        return ticket

    @staticmethod
    def _execute(handle: SessionHandle, ticket: JobTicket) -> None:
        try:
            with handle.lock:  # one job at a time per session
                with perf.scope() as registry:
                    result = handle.session.submit(ticket.job)
                ticket.perf_report = registry.report()
        except BaseException as err:  # noqa: BLE001 - future carries it
            ticket.future.set_exception(err)
        else:
            ticket.future.set_result(result)
        finally:
            # The system layer closes the feed after a run; close again
            # here (idempotent) so a pre-run failure can't hang a stream.
            if ticket.feed is not None:
                ticket.feed.close()

    # ---- lifecycle ---------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting sessions and drain (or abandon) the pool."""
        with self._lock:
            self._closed = True
            handles = list(self._sessions.values())
            self._sessions.clear()
        self.pool.shutdown(wait=wait)
        for handle in handles:
            handle.session.close()

    def __enter__(self) -> "RenderService":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
