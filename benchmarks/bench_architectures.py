"""Benchmark A1 — the methods on other machine architectures (paper §5 #3).

The paper's third future-work item is trying the methods on different
machines.  This bench sweeps the four methods over the calibrated SP2,
a T3E-class machine (fast torus), a commodity Ethernet cluster (slow,
high-latency net) and a modern cluster, and checks how the trade-offs
shift: expensive bytes reward small messages (BSLC closes in), cheap
bytes reward cheap CPU (BSBR/BSBRC pull ahead), and the sparse methods
beat plain BS on *every* architecture.
"""

from conftest import emit
from repro.analysis.tables import format_generic
from repro.cluster.model import ETHERNET_CLUSTER, MODERN_CLUSTER, SP2, T3E
from repro.experiments.harness import run_method, workload

P = 16
DATASET = "engine_high"
MACHINES = (SP2, T3E, ETHERNET_CLUSTER, MODERN_CLUSTER)
METHODS = ("bs", "bsbr", "bslc", "bsbrc")


def test_bench_machine_architectures(benchmark):
    work = workload(DATASET, 384, max_ranks=64)

    def sweep():
        return {
            (machine.name, method): run_method(work, method, P, machine=machine)[0]
            for machine in MACHINES
            for method in METHODS
        }

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_generic(
        ["machine", "method", "T_comp (ms)", "T_comm (ms)", "T_total (ms)"],
        [
            (
                name,
                method,
                f"{r.t_comp * 1e3:.3f}",
                f"{r.t_comm * 1e3:.3f}",
                f"{r.t_total * 1e3:.3f}",
            )
            for (name, method), r in rows.items()
        ],
    )
    emit("architectures", f"Machine-architecture study ({DATASET}, P={P})\n" + table)

    for machine in MACHINES:
        totals = {m: rows[(machine.name, m)].t_total for m in METHODS}
        # Sparse compositing wins on every architecture.
        assert totals["bs"] == max(totals.values()), machine.name
        assert totals["bsbrc"] < totals["bs"] / 2, machine.name

    # Byte cost shifts the BSLC-vs-BSBRC gap: highest on the T3E (cheap
    # bytes expose BSLC's encode CPU), lowest on the Ethernet cluster.
    def gap(name):
        return rows[(name, "bslc")].t_total / rows[(name, "bsbrc")].t_total

    assert gap("ethernet-cluster") < gap("sp2") <= gap("t3e") * 1.05

    # M_max is architecture-independent (same data, same algorithms).
    for method in METHODS:
        sizes = {rows[(m.name, method)].mmax_bytes for m in MACHINES}
        assert len(sizes) == 1, method
