"""Tests for the orthographic camera."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.render.camera import Camera, rotation_matrix
from repro.types import Rect


def make_camera(**kwargs):
    defaults = dict(width=64, height=48, volume_shape=(32, 32, 16))
    defaults.update(kwargs)
    return Camera(**defaults)


class TestRotationMatrix:
    def test_identity(self):
        assert np.allclose(rotation_matrix(0, 0, 0), np.eye(3))

    def test_orthonormal(self):
        rot = rotation_matrix(33, -70, 12)
        assert np.allclose(rot @ rot.T, np.eye(3), atol=1e-12)
        assert np.linalg.det(rot) == pytest.approx(1.0)

    def test_x_rotation_90(self):
        rot = rotation_matrix(90, 0, 0)
        assert np.allclose(rot @ [0, 1, 0], [0, 0, 1], atol=1e-12)

    def test_composition_order(self):
        rot = rotation_matrix(90, 90, 0)
        expected = rotation_matrix(0, 90, 0) @ rotation_matrix(90, 0, 0)
        assert np.allclose(rot, expected)


class TestCameraValidation:
    def test_bad_size(self):
        with pytest.raises(ConfigurationError):
            make_camera(width=0)

    def test_bad_step(self):
        with pytest.raises(ConfigurationError):
            make_camera(step=0.0)

    def test_bad_scale(self):
        with pytest.raises(ConfigurationError):
            make_camera(scale=-1.0)

    def test_bad_volume_shape(self):
        with pytest.raises(ConfigurationError):
            Camera(width=4, height=4, volume_shape=(0, 4, 4))


class TestBasis:
    def test_default_view_down_negative_z(self):
        right, up, view = make_camera().basis()
        assert np.allclose(right, [1, 0, 0])
        assert np.allclose(up, [0, 1, 0])
        assert np.allclose(view, [0, 0, -1])

    def test_basis_orthonormal_after_rotation(self):
        right, up, view = make_camera(rot_x=30, rot_y=45, rot_z=10).basis()
        for v in (right, up, view):
            assert np.linalg.norm(v) == pytest.approx(1.0)
        assert abs(right @ up) < 1e-12
        assert abs(right @ view) < 1e-12

    def test_rotated_copy(self):
        cam = make_camera(rot_x=10)
        cam2 = cam.rotated(rot_y=20)
        assert cam2.rot_x == 10 and cam2.rot_y == 20
        assert cam.rot_y == 0.0


class TestSampling:
    def test_t_grid_covers_volume(self):
        cam = make_camera()
        ts = cam.sample_ts()
        assert ts.shape == (cam.num_steps,)
        assert ts[0] >= -cam.t_half
        assert ts[-1] <= cam.t_half
        # Sample spacing equals the step everywhere.
        assert np.allclose(np.diff(ts), cam.step)

    def test_smaller_step_more_samples(self):
        coarse = make_camera(step=2.0)
        fine = make_camera(step=0.5)
        assert fine.num_steps > coarse.num_steps

    def test_default_scale_fits_volume(self):
        cam = make_camera()
        span = cam.pixel_scale * min(cam.width, cam.height)
        assert span >= cam.diagonal  # bounding sphere fits


class TestProjection:
    def test_project_pixel_origins_roundtrip(self):
        cam = make_camera(rot_x=25, rot_y=-40, rot_z=5)
        rect = Rect(3, 7, 13, 19)
        origins = cam.pixel_origins(rect)
        projected = cam.project_points(origins.reshape(-1, 3)).reshape(
            rect.height, rect.width, 2
        )
        rows_expect = np.arange(rect.y0, rect.y1, dtype=float)
        cols_expect = np.arange(rect.x0, rect.x1, dtype=float)
        assert np.allclose(projected[..., 0], rows_expect[:, None], atol=1e-9)
        assert np.allclose(projected[..., 1], cols_expect[None, :], atol=1e-9)

    def test_center_projects_to_image_center(self):
        cam = make_camera(rot_x=33, rot_y=70)
        rc = cam.project_points(cam.center[None, :])[0]
        assert rc[0] == pytest.approx(cam.height / 2 - 0.5)
        assert rc[1] == pytest.approx(cam.width / 2 - 0.5)

    def test_footprint_contains_projected_points(self):
        cam = make_camera(rot_x=20, rot_y=30)
        corners = np.array(
            [[0, 0, 0], [32, 0, 0], [0, 32, 0], [0, 0, 16], [32, 32, 16]], dtype=float
        )
        rect = cam.footprint_rect(corners)
        rc = cam.project_points(corners)
        for row, col in rc:
            assert rect.y0 <= row <= rect.y1
            assert rect.x0 <= col <= rect.x1

    def test_footprint_clipped_to_image(self):
        cam = make_camera()
        huge = np.array([[-1000, -1000, -1000], [1000, 1000, 1000]], dtype=float)
        rect = cam.footprint_rect(huge)
        assert Rect.full(cam.height, cam.width).contains(rect)

    def test_view_dir_unit(self):
        cam = make_camera(rot_x=12, rot_y=34, rot_z=56)
        assert np.linalg.norm(cam.view_dir) == pytest.approx(1.0)
