"""Compositing-phase cross-validation on the multiprocessing backend.

Runs the same compositor coroutine on real OS processes with real IPC
queues (see :mod:`repro.cluster.mp_backend`) and assembles the final
image — a second, transport-level check that the simulator's results
are genuine algorithm output, not an artifact of the simulation.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ..cluster.mp_backend import run_rank_programs_mp
from ..compositing.registry import make_compositor
from ..errors import CompositingError
from ..render.image import SubImage
from ..volume.folded import FoldedPartition
from ..volume.partition import PartitionPlan

__all__ = ["run_compositing_mp"]


async def _rank_program(ctx, images, method_name, method_options, plan, view_dir):
    """Per-rank compositing program (module-level: picklable)."""
    compositor = make_compositor(method_name, **method_options)
    if isinstance(plan, FoldedPartition):
        from ..compositing.folding import FoldedCompositor

        compositor = FoldedCompositor(compositor)
    image = images[ctx.rank].copy()
    outcome = await compositor.run(ctx, image, plan, view_dir)
    values_i, values_a = outcome.owned_values()
    return (outcome.owned_rect, outcome.owned_indices, values_i, values_a)


def run_compositing_mp(
    images: Sequence[SubImage],
    method: str,
    plan: PartitionPlan | FoldedPartition,
    view_dir: np.ndarray,
    *,
    timeout: float = 60.0,
    **method_options: Any,
) -> SubImage:
    """Composite on real processes; returns the assembled final image.

    Methods requiring simulator-only primitives (``direct-async``) are
    rejected by the backend at run time.
    """
    num_ranks = len(images)
    if plan.num_ranks != num_ranks:
        raise CompositingError(
            f"{num_ranks} images supplied for a {plan.num_ranks}-rank plan"
        )
    view_dir = np.asarray(view_dir, dtype=np.float64)
    result = run_rank_programs_mp(
        num_ranks,
        _rank_program,
        args=(list(images), method, dict(method_options), plan, view_dir),
        timeout=timeout,
    )

    height, width = images[0].shape
    final = SubImage.blank(height, width)
    flat_i = final.intensity.ravel()
    flat_a = final.opacity.ravel()
    for owned_rect, owned_indices, values_i, values_a in result.returns:
        if owned_rect is not None:
            if owned_rect.is_empty:
                continue
            rows, cols = owned_rect.slices()
            final.intensity[rows, cols] = values_i.reshape(
                owned_rect.height, owned_rect.width
            )
            final.opacity[rows, cols] = values_a.reshape(
                owned_rect.height, owned_rect.width
            )
        else:
            flat_i[owned_indices] = values_i
            flat_a[owned_indices] = values_a
    return final
