"""RenderSession: many jobs on one warm backend, bit-identical to one-shots.

The determinism contract behind the serving layer: back-to-back runs on
a reused backend (sim and mp) produce timelines and images
bit-identical to fresh one-shot ``SortLastSystem.run`` calls — the
session's warmth (scene memo, render caches, backend object) must never
leak state into results.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.pipeline.config import RunConfig
from repro.pipeline.session import RenderJob, RenderSession
from repro.pipeline.system import SortLastSystem


def _cfg(**kw):
    base = dict(
        dataset="sphere",
        image_size=64,
        num_ranks=4,
        method="bsbrc",
        volume_shape=(32, 32, 16),
    )
    base.update(kw)
    return RunConfig(**base)


def _integer_projection(timeline):
    """The deterministic cross-substrate slice of a timeline: per-rank,
    per-stage byte/message counters and named op counters (wall and
    modelled times are substrate-dependent on mp)."""
    out = []
    for rs in timeline.rank_stats:
        stages = {}
        for key, st in rs.stages.items():
            stages[key] = (
                st.bytes_sent,
                st.bytes_recv,
                st.msgs_sent,
                st.msgs_recv,
                tuple(sorted(st.counters.items())),
            )
        out.append((rs.rank, stages))
    return out


class TestSimSession:
    def test_back_to_back_runs_bit_identical_to_fresh_backends(self):
        cfg = _cfg()
        session = RenderSession(cfg)
        first = session.submit()
        second = session.submit()
        fresh_a = SortLastSystem(cfg).run()
        fresh_b = SortLastSystem(cfg).run()
        for got, want in ((first, fresh_a), (second, fresh_b)):
            assert np.array_equal(
                got.final_image.intensity, want.final_image.intensity
            )
            assert np.array_equal(got.final_image.opacity, want.final_image.opacity)
            # Full timeline identity on the simulator: modelled times,
            # byte/msg counters, events — everything.
            assert got.timeline.to_dict()["ranks"] == want.timeline.to_dict()["ranks"]
            assert got.timeline.makespan == want.timeline.makespan
        assert session.jobs_completed == 2

    def test_config_deltas_per_job(self):
        session = RenderSession(_cfg())
        rotated = session.submit(rot_y=45.0)
        retiled = session.submit(method="tile-routed:rle")
        assert rotated.config.rot_y == 45.0
        assert retiled.config.method == "tile-routed:rle"
        # Each delta run equals its one-shot equivalent.
        want = SortLastSystem(_cfg(rot_y=45.0)).run()
        assert np.array_equal(
            rotated.final_image.intensity, want.final_image.intensity
        )
        # The session's base config is untouched by deltas.
        assert session.config.rot_y != 45.0
        assert session.config.method == "bsbrc"

    def test_prepared_job_with_progress_feed(self):
        from repro.cluster.progress import ProgressFeed

        feed = ProgressFeed()
        session = RenderSession(_cfg())
        result = session.submit(RenderJob(progress=feed))
        assert feed.events[-1].kind == "final"
        assert np.array_equal(
            feed.events[-1].intensity, result.final_image.intensity
        )

    def test_job_and_deltas_are_exclusive(self):
        session = RenderSession(_cfg())
        with pytest.raises(ConfigurationError, match="not both"):
            session.submit(RenderJob(), rot_y=1.0)

    def test_closed_session_rejects_jobs(self):
        with RenderSession(_cfg()) as session:
            session.submit()
        with pytest.raises(ConfigurationError, match="closed"):
            session.submit()


class TestMPSession:
    def test_back_to_back_mp_runs_match_fresh_backends(self):
        cfg = _cfg(backend="mp", num_ranks=2, image_size=48)
        session = RenderSession(cfg)
        first = session.submit()
        second = session.submit()
        fresh = SortLastSystem(cfg).run()
        for got in (first, second):
            assert got.backend_name == "mp"
            assert np.array_equal(
                got.final_image.intensity, fresh.final_image.intensity
            )
            assert np.array_equal(got.final_image.opacity, fresh.final_image.opacity)
            # Wall clocks differ run to run; the integer accounting
            # (bytes, messages, op counters) must be byte-identical.
            assert _integer_projection(got.timeline) == _integer_projection(
                fresh.timeline
            )

    def test_mp_session_matches_sim_pixels(self):
        mp = RenderSession(_cfg(backend="mp", num_ranks=2, image_size=48)).submit()
        sim = RenderSession(_cfg(backend="sim", num_ranks=2, image_size=48)).submit()
        assert np.array_equal(mp.final_image.intensity, sim.final_image.intensity)
