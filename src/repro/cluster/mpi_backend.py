"""mpi4py backend: run the compositors on a real MPI cluster.

The faithful deployment path: the same compositor coroutines that run on
the simulator and the multiprocessing backend execute over real MPI.
``mpi4py`` is not installable in the offline development environment, so
this backend is exercised indirectly — it is a line-for-line mirror of
:mod:`repro.cluster.mp_backend` (which *is* tested end to end) with the
queue verbs swapped for ``mpi4py`` calls.  Import is lazy and guarded;
everything else in the library works without MPI.

Usage on a cluster::

    mpiexec -n 8 python -m repro.pipeline.mpi_main \
        --dataset engine_low --method bsbrc --image-size 384 --out out.pgm
"""

from __future__ import annotations

from typing import Any

from ..errors import ConfigurationError

__all__ = ["MPIRankContext", "require_mpi"]


def require_mpi():
    """Import and return ``mpi4py.MPI`` with a helpful failure message."""
    try:
        from mpi4py import MPI  # type: ignore[import-not-found]
    except ImportError as exc:
        raise ConfigurationError(
            "the MPI backend needs mpi4py (pip install mpi4py) and an MPI "
            "runtime; use the simulator or the multiprocessing backend "
            "otherwise"
        ) from exc
    return MPI


class MPIRankContext:
    """Rank API over an ``mpi4py`` communicator.

    Mirrors :class:`~repro.cluster.mp_backend.MPRankContext`: the
    ``async`` verbs complete synchronously via blocking MPI calls, so
    compositor coroutines run to completion without an event loop
    (drive them with ``coro.send(None)`` until ``StopIteration``).
    """

    def __init__(self, comm=None):
        mpi = require_mpi()
        self._mpi = mpi
        self._comm = comm if comm is not None else mpi.COMM_WORLD
        self.counters: dict[str, int] = {}

    # ---- identity --------------------------------------------------------
    @property
    def rank(self) -> int:
        return self._comm.Get_rank()

    @property
    def size(self) -> int:
        return self._comm.Get_size()

    @property
    def model(self):  # pragma: no cover - never priced on this backend
        raise ConfigurationError("the MPI backend has no machine model")

    # ---- staging / accounting ----------------------------------------------
    def begin_stage(self, stage: int) -> None:
        pass

    def note(self, kind: str, count: int = 1) -> None:
        if count:
            self.counters[kind] = self.counters.get(kind, 0) + int(count)

    async def compute(self, seconds: float, *, kind: str = "compute",
                      count: int = 0) -> None:
        pass

    async def charge_over(self, npixels: int) -> None:
        self.note("over", npixels)

    async def charge_encode(self, npixels: int) -> None:
        self.note("encode", npixels)

    async def charge_bound(self, npixels: int) -> None:
        self.note("bound", npixels)

    async def charge_pack(self, nbytes: int) -> None:
        self.note("pack", nbytes)

    # ---- transport -----------------------------------------------------------
    def _check_peer(self, peer: int) -> None:
        if not (0 <= peer < self.size):
            raise ConfigurationError(f"peer {peer} out of range (size {self.size})")

    async def send(self, dst: int, payload: Any, *, nbytes=None, tag: int = 0):
        self._check_peer(dst)
        self._comm.send(payload, dest=dst, tag=tag)

    async def recv(self, src: int, *, tag: int = -1) -> Any:
        self._check_peer(src)
        mpi_tag = self._mpi.ANY_TAG if tag == -1 else tag
        return self._comm.recv(source=src, tag=mpi_tag)

    async def sendrecv(self, peer: int, payload: Any, *, nbytes=None,
                       tag: int = 0) -> Any:
        if peer == self.rank:
            raise ConfigurationError("cannot sendrecv with self")
        return self._comm.sendrecv(
            payload, dest=peer, sendtag=tag, source=peer, recvtag=tag
        )

    async def barrier(self) -> None:
        self._comm.Barrier()
