"""The MPI backend must degrade gracefully without mpi4py installed."""

import pytest

from repro.cluster.mpi_backend import MPIRankContext, require_mpi
from repro.errors import ConfigurationError


def mpi_available() -> bool:
    try:
        import mpi4py  # noqa: F401

        return True
    except ImportError:
        return False


@pytest.mark.skipif(mpi_available(), reason="mpi4py present; guard not reachable")
class TestWithoutMpi4py:
    def test_require_mpi_explains(self):
        with pytest.raises(ConfigurationError) as excinfo:
            require_mpi()
        assert "mpi4py" in str(excinfo.value)

    def test_context_construction_fails_cleanly(self):
        with pytest.raises(ConfigurationError):
            MPIRankContext()

    def test_mpi_main_fails_cleanly(self):
        from repro.pipeline.mpi_main import main

        with pytest.raises(ConfigurationError):
            main(["--dataset", "sphere", "--image-size", "32"])


    def test_mpi_backend_run_fails_cleanly(self):
        from repro.cluster.backend import MPIBackend

        async def program(ctx):
            return ctx.rank

        with pytest.raises(ConfigurationError):
            MPIBackend().run(2, program)


def test_module_imports_without_mpi():
    """Importing the backend must never require mpi4py."""
    import repro.cluster.mpi_backend  # noqa: F401
    import repro.pipeline.mpi_main  # noqa: F401


def test_context_class_implements_full_protocol_without_mpi():
    """The ABC surface is checkable (and complete) even with no mpi4py:
    a missing verb would show up here, not on a cluster."""
    from repro.cluster.mpi_backend import MPIRankContext
    from repro.cluster.protocol import BaseRankContext

    assert issubclass(MPIRankContext, BaseRankContext)
    assert not MPIRankContext.__abstractmethods__


def test_mpi_backend_is_registered():
    from repro.cluster.backend import BACKENDS, MPIBackend

    assert BACKENDS["mpi"] is MPIBackend
