"""Benchmark C1 — quantified reproduction fidelity vs the published tables.

Regenerates Tables 1 and 2 and scores them against the paper's own
numbers (transcribed in ``repro.experiments.paper_data``).  The asserted
thresholds encode "the shape reproduces": the same method wins most
cells, pairwise method orderings agree overwhelmingly, and measured
totals rank-correlate strongly with the published ones.
"""

from conftest import PAPER_RANKS, emit
from repro.experiments.compare import compare_to_paper, format_fidelity
from repro.experiments.table2 import run_table2


def test_bench_fidelity_table1(benchmark, table1_rows):
    report = benchmark.pedantic(
        lambda: compare_to_paper(table1_rows), rounds=1, iterations=1
    )
    emit("fidelity_table1", format_fidelity(report))
    assert report.cells_compared == 96
    assert report.winner_agreement >= 0.6
    assert report.pairwise_agreement >= 0.85
    assert report.spearman_total >= 0.8
    # Every winner mismatch is a near-tie between the two best sparse
    # methods, never a BS-vs-sparse or BSLC-at-scale confusion.
    for line in report.mismatched_winners:
        assert "bs " not in line.split("=")[1]
        assert ("bsbr" in line and "bsbrc" in line) or "bslc" in line


def test_bench_fidelity_table2(benchmark):
    rows = run_table2(rank_counts=PAPER_RANKS)
    report = benchmark.pedantic(lambda: compare_to_paper(rows), rounds=1, iterations=1)
    emit("fidelity_table2", format_fidelity(report))
    assert report.cells_compared == 72
    assert report.winner_agreement >= 0.6
    assert report.pairwise_agreement >= 0.75
    assert report.spearman_total >= 0.5
    # BSLC — the method whose cost is dominated by the content-free
    # encode term — tracks the paper tightest (its per-method rank
    # correlation and ratio band are informative regardless).
    q25, median, q75 = report.per_method_ratio["bslc"]
    assert 0.7 < median < 1.3
