"""Transfer functions: scalar field value → per-sample opacity & emission.

The paper renders 8-bit gray-level images: a pixel carries an intensity
and an opacity (16 wire bytes).  Our transfer function is a classic
windowed linear ramp — scalars below ``lo`` are fully transparent,
scalars above ``hi`` reach ``max_alpha`` — which is exactly the knob that
distinguishes *Engine_low* (low threshold → most material visible →
dense subimages) from *Engine_high* (high threshold → only dense
internals → sparse subimages).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError

__all__ = ["TransferFunction"]


@dataclass(frozen=True, slots=True)
class TransferFunction:
    """Windowed linear opacity ramp with grayscale emission.

    ``alpha(s) = 0`` for ``s < lo``, rising linearly to ``max_alpha`` at
    ``s >= hi``.  Emission is the scalar value itself scaled by
    ``brightness`` (the ray caster premultiplies by alpha).
    """

    lo: float
    hi: float
    max_alpha: float = 0.6
    brightness: float = 1.0
    name: str = "ramp"

    def __post_init__(self) -> None:
        if not (0.0 <= self.lo < self.hi <= 1.0 + 1e-9):
            raise ConfigurationError(
                f"require 0 <= lo < hi <= 1, got lo={self.lo}, hi={self.hi}"
            )
        if not (0.0 < self.max_alpha <= 1.0):
            raise ConfigurationError(f"max_alpha must be in (0, 1], got {self.max_alpha}")
        if self.brightness <= 0.0:
            raise ConfigurationError(f"brightness must be > 0, got {self.brightness}")

    @property
    def zero_alpha_below(self) -> float:
        """Scalar threshold at or below which opacity is *exactly* zero.

        The ray caster uses this for empty-space skipping: samples whose
        conservative upper bound is at or below this value contribute
        nothing, so their interpolation can be skipped bit-identically.
        """
        return self.lo

    def opacity(self, s: np.ndarray) -> np.ndarray:
        """Per-sample opacity in ``[0, max_alpha]``."""
        s = np.asarray(s, dtype=np.float64)
        ramp = (s - self.lo) / (self.hi - self.lo)
        return np.clip(ramp, 0.0, 1.0) * self.max_alpha

    def emission(self, s: np.ndarray) -> np.ndarray:
        """Per-sample emitted intensity (grayscale, not premultiplied)."""
        return np.asarray(s, dtype=np.float64) * self.brightness

    def classify(self, s: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(emission, opacity)`` for an array of samples."""
        return self.emission(s), self.opacity(s)

    def with_window(self, lo: float, hi: float) -> "TransferFunction":
        return TransferFunction(
            lo=lo, hi=hi, max_alpha=self.max_alpha, brightness=self.brightness, name=self.name
        )
