"""Tests for RankContext helpers, payload sizing, and the error hierarchy."""

import numpy as np
import pytest

from repro.cluster.context import payload_nbytes
from repro.cluster.model import IDEALIZED, SP2
from repro.cluster.simulator import Simulator
from repro.errors import (
    CompositingError,
    ConfigurationError,
    DeadlockError,
    PartitionError,
    RankFailedError,
    RenderError,
    ReproError,
    SimulationError,
    WireFormatError,
)


class TestPayloadNbytes:
    def test_none_is_zero(self):
        assert payload_nbytes(None) == 0

    def test_bytes(self):
        assert payload_nbytes(b"abc") == 3

    def test_bytearray_and_memoryview(self):
        assert payload_nbytes(bytearray(5)) == 5
        assert payload_nbytes(memoryview(b"abcd")) == 4

    def test_numpy(self):
        assert payload_nbytes(np.zeros(10, dtype=np.float64)) == 80

    def test_pickle_fallback(self):
        assert payload_nbytes({"a": 1}) > 0

    def test_unpicklable_rejected(self):
        with pytest.raises(ConfigurationError):
            payload_nbytes(lambda: None)


class TestContextHelpers:
    def test_identity_properties(self):
        captured = {}

        async def program(ctx):
            captured["rank"] = ctx.rank
            captured["size"] = ctx.size
            captured["model"] = ctx.model.name
            captured["repr"] = repr(ctx)

        Simulator(1, SP2).run(program)
        assert captured["rank"] == 0
        assert captured["size"] == 1
        assert captured["model"] == "sp2"
        assert "rank=0" in captured["repr"]

    def test_note_records_counter(self):
        async def program(ctx):
            ctx.begin_stage(3)
            ctx.note("a_rec", 42)
            ctx.note("a_rec", 8)
            ctx.note("empty_recv_rect")

        result = Simulator(1, IDEALIZED).run(program)
        bucket = result.rank_stats[0].stages[3]
        assert bucket.counters["a_rec"] == 50
        assert bucket.counters["empty_recv_rect"] == 1
        assert bucket.comp_time == 0.0  # notes are free

    def test_note_zero_ignored(self):
        async def program(ctx):
            ctx.note("thing", 0)

        result = Simulator(1, IDEALIZED).run(program)
        assert "thing" not in result.rank_stats[0].stages[-1].counters

    def test_current_stage_tracks(self):
        async def program(ctx):
            assert ctx.current_stage == -1
            ctx.begin_stage(5)
            assert ctx.current_stage == 5

        Simulator(1, IDEALIZED).run(program)

    def test_charge_pack(self):
        async def program(ctx):
            await ctx.charge_pack(10**6)

        result = Simulator(1, SP2).run(program)
        assert result.rank_stats[0].comp_time == pytest.approx(SP2.pack_time(10**6))


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ConfigurationError,
            SimulationError,
            WireFormatError,
            PartitionError,
            RenderError,
            CompositingError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_configuration_error_is_value_error(self):
        assert issubclass(ConfigurationError, ValueError)

    def test_deadlock_carries_blocked_map(self):
        err = DeadlockError({0: "RecvOp(src=1)", 1: "RecvOp(src=0)"})
        assert err.blocked == {0: "RecvOp(src=1)", 1: "RecvOp(src=0)"}
        assert "rank 0" in str(err)

    def test_rank_failed_carries_original(self):
        original = ValueError("x")
        err = RankFailedError(3, original)
        assert err.rank == 3
        assert err.original is original
        assert issubclass(RankFailedError, SimulationError)

    def test_wire_format_is_value_error(self):
        assert issubclass(WireFormatError, ValueError)
